package rstore_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"rstore"
)

// TestFacadeEndToEnd drives the whole public API surface.
func TestFacadeEndToEnd(t *testing.T) {
	kv, err := rstore.OpenCluster(context.Background(), rstore.ClusterConfig{
		Nodes: 3, ReplicationFactor: 2, Cost: rstore.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := rstore.Open(context.Background(), rstore.Config{
		KV: kv, Partitioner: rstore.BottomUp(0), ChunkCapacity: 4096, SubChunkK: 2, BatchSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	v0, err := st.Commit(context.Background(), rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{
		"x": []byte("x0"), "y": []byte("y0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := st.Commit(context.Background(), v0, rstore.Change{Puts: map[rstore.Key][]byte{"x": []byte("x1")}})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := st.Commit(context.Background(), v1, rstore.Change{Deletes: []rstore.Key{"y"}})
	if err != nil {
		t.Fatal(err)
	}

	recs, stats, err := st.GetVersionAll(context.Background(), v2)
	if err != nil || len(recs) != 1 || stats.Records != 1 {
		t.Fatalf("GetVersion: %d records, %v", len(recs), err)
	}
	if string(recs[0].Value) != "x1" {
		t.Fatalf("v2 x = %q", recs[0].Value)
	}
	if _, _, err := st.GetRecord(context.Background(), "y", v2); !errors.Is(err, rstore.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	hist, _, err := st.GetHistoryAll(context.Background(), "x")
	if err != nil || len(hist) != 2 {
		t.Fatalf("history: %d, %v", len(hist), err)
	}
	if err := st.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.GetRecord(context.Background(), "x", v0); err != nil {
		t.Fatalf("after materialize: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(context.Background(), v2, rstore.Change{}); !errors.Is(err, rstore.ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}
}

// Example demonstrates the basic commit/retrieve cycle.
func Example() {
	st, _ := rstore.Open(context.Background(), rstore.Config{})
	v0, _ := st.Commit(context.Background(), rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{
		"patient-1": []byte(`{"age":52}`),
	}})
	v1, _ := st.Commit(context.Background(), v0, rstore.Change{Puts: map[rstore.Key][]byte{
		"patient-1": []byte(`{"age":53}`),
	}})
	rec, _, _ := st.GetRecord(context.Background(), "patient-1", v1)
	old, _, _ := st.GetRecord(context.Background(), "patient-1", v0)
	fmt.Printf("now: %s, then: %s\n", rec.Value, old.Value)
	// Output: now: {"age":53}, then: {"age":52}
}

// ExampleStore_GetHistory shows record-evolution retrieval.
func ExampleStore_GetHistory() {
	st, _ := rstore.Open(context.Background(), rstore.Config{})
	parent := rstore.NoParent
	for i := 0; i < 3; i++ {
		v, _ := st.Commit(context.Background(), parent, rstore.Change{Puts: map[rstore.Key][]byte{
			"doc": []byte(fmt.Sprintf(`{"rev":%d}`, i)),
		}})
		parent = v
	}
	history, _, _ := st.GetHistoryAll(context.Background(), "doc")
	for _, r := range history {
		fmt.Printf("v%d: %s\n", r.CK.Version, r.Value)
	}
	// Output:
	// v0: {"rev":0}
	// v1: {"rev":1}
	// v2: {"rev":2}
}

// ExampleStore_GetRange shows partial version retrieval.
func ExampleStore_GetRange() {
	st, _ := rstore.Open(context.Background(), rstore.Config{})
	v0, _ := st.Commit(context.Background(), rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{
		"a1": []byte("1"), "a2": []byte("2"), "b1": []byte("3"),
	}})
	recs, _, _ := st.GetRangeAll(context.Background(), rstore.KeyRange("a", "b"), v0)
	for _, r := range recs {
		fmt.Printf("%s=%s\n", r.CK.Key, r.Value)
	}
	// Output:
	// a1=1
	// a2=2
}

// TestFacadeBranchWorkflow exercises the VCS-style surface.
func TestFacadeBranchWorkflow(t *testing.T) {
	st, err := rstore.Open(context.Background(), rstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := st.Commit(context.Background(), rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{"d": []byte("0")}})
	if err := st.SetBranch(context.Background(), "main", v0); err != nil {
		t.Fatal(err)
	}
	main, _ := st.Tip("main")
	vExp, _ := st.Commit(context.Background(), main, rstore.Change{Puts: map[rstore.Key][]byte{"d": []byte("exp")}})
	if err := st.SetBranch(context.Background(), "experiment", vExp); err != nil {
		t.Fatal(err)
	}
	// Merge experiment back.
	vm, err := st.CommitMerge(context.Background(), []rstore.VersionID{main, vExp}, rstore.Change{
		Puts: map[rstore.Key][]byte{"d": []byte("exp")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Graph().IsMerge(vm) {
		t.Fatal("merge not recorded")
	}
	bs := st.Branches()
	if len(bs) != 2 {
		t.Fatalf("branches: %v", bs)
	}
}
