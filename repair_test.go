package rstore_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"rstore"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
	"rstore/internal/types"
)

// repairCluster is the 3-daemon harness of the repair acceptance test:
// real disklog backends behind TCP, each restartable in place, with the
// backend handles exposed so the test can assert what each replica holds
// ON DISK — the whole point of repair is that convergence reaches the
// backend, not just the merged read view.
type repairCluster struct {
	t        *testing.T
	dirs     []string
	addrs    []string
	backends []*disklog.Backend
	servers  []*engined.Server
}

func startRepairCluster(t *testing.T, n int) *repairCluster {
	t.Helper()
	c := &repairCluster{
		t:        t,
		dirs:     make([]string, n),
		addrs:    make([]string, n),
		backends: make([]*disklog.Backend, n),
		servers:  make([]*engined.Server, n),
	}
	root := t.TempDir()
	for i := 0; i < n; i++ {
		c.dirs[i] = filepath.Join(root, fmt.Sprintf("node-%d", i))
		be, err := disklog.Open(c.dirs[i], disklog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := engined.Start("127.0.0.1:0", be)
		if err != nil {
			t.Fatal(err)
		}
		c.backends[i], c.servers[i] = be, srv
		c.addrs[i] = srv.Addr().String()
	}
	t.Cleanup(func() {
		for i := range c.servers {
			if c.servers[i] != nil {
				c.servers[i].Close()
			}
			if c.backends[i] != nil {
				c.backends[i].Close()
			}
		}
	})
	return c
}

// kill is a real process death: socket refused, backend files released.
func (c *repairCluster) kill(i int) {
	c.t.Helper()
	c.servers[i].Close()
	if err := c.backends[i].Close(); err != nil {
		c.t.Fatal(err)
	}
	c.servers[i], c.backends[i] = nil, nil
}

// restart reopens node i from its data directory on the same address.
func (c *repairCluster) restart(i int) {
	c.t.Helper()
	be, err := disklog.Open(c.dirs[i], disklog.Options{})
	if err != nil {
		c.t.Fatal(err)
	}
	srv, err := engined.Start(c.addrs[i], be)
	if err != nil {
		c.t.Fatal(err)
	}
	c.backends[i], c.servers[i] = be, srv
}

// raw reads a replica's on-disk state directly through its backend handle.
func (c *repairCluster) raw(i int, table, key string) ([]byte, bool) {
	c.t.Helper()
	v, ok, err := c.backends[i].Get(context.Background(), table, key)
	if err != nil {
		c.t.Fatal(err)
	}
	return v, ok
}

func (c *repairCluster) config(opts rstore.RepairOptions) rstore.ClusterConfig {
	return rstore.ClusterConfig{
		Engine: rstore.EngineRemote, NodeAddrs: c.addrs, ReplicationFactor: len(c.addrs),
		Remote: remote.Options{Attempts: 2, Backoff: time.Millisecond},
		Repair: opts,
	}
}

func poll(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRepairEndToEnd is the repair acceptance test on a real cluster:
// kill a storage daemon, overwrite and delete through the survivors,
// restart it, and require that its ON-DISK state converges to the LWW
// winners with no explicit client read of the repaired keys (hinted
// handoff), that fully-acknowledged tombstones are physically collected
// everywhere, and — separately, with hints disabled — that a single read
// repairs a stale replica (read repair).
func TestRepairEndToEnd(t *testing.T) {
	const nKeys = 20
	c := startRepairCluster(t, 3)
	ctx := context.Background()
	key := func(i int) string { return fmt.Sprintf("doc-%02d", i) }

	kv, err := rstore.OpenCluster(context.Background(), c.config(rstore.RepairOptions{
		HintInterval: 10 * time.Millisecond, HintMaxBackoff: 100 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nKeys; i++ {
		if err := kv.Put(ctx, "t", key(i), []byte(fmt.Sprintf("v1-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Node 1 dies; the cluster keeps taking overwrites and deletes.
	c.kill(1)
	for i := 0; i < 10; i++ {
		if err := kv.Put(ctx, "t", key(i), []byte(fmt.Sprintf("v2-%02d", i))); err != nil {
			t.Fatalf("put with node down: %v", err)
		}
	}
	for i := 10; i < 15; i++ {
		if err := kv.Delete(ctx, "t", key(i)); err != nil {
			t.Fatalf("delete with node down: %v", err)
		}
	}
	if st := kv.Stats(ctx); st.HintsQueued != 15 || st.HintsPending != 15 {
		t.Fatalf("hints queued/pending = %d/%d, want 15/15", st.HintsQueued, st.HintsPending)
	}

	// Restart node 1: stale for every overwrite and delete it missed. Hint
	// drain must converge it with NO client reads of the repaired keys.
	c.restart(1)
	poll(t, "hint queue drained", func() bool { return kv.Stats(ctx).HintsPending == 0 })

	// Overwritten keys: node 1's on-disk bytes equal a surviving replica's
	// (the winning envelope, timestamp and all).
	for i := 0; i < 10; i++ {
		want, ok := c.raw(0, "t", key(i))
		if !ok {
			t.Fatalf("node 0 missing %s", key(i))
		}
		poll(t, fmt.Sprintf("%s converged on node 1's disk", key(i)), func() bool {
			got, ok := c.raw(1, "t", key(i))
			return ok && bytes.Equal(got, want)
		})
	}
	// Deleted keys: the tombstone reached node 1 (completing the ack set),
	// so it must be physically collected from EVERY replica.
	for i := 10; i < 15; i++ {
		poll(t, fmt.Sprintf("tombstone for %s collected everywhere", key(i)), func() bool {
			for n := 0; n < 3; n++ {
				if _, ok := c.raw(n, "t", key(i)); ok {
					return false
				}
			}
			return true
		})
		if _, err := kv.Get(ctx, "t", key(i)); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("deleted %s readable after GC: %v", key(i), err)
		}
	}
	st := kv.Stats(ctx)
	if st.HintsReplayed != 15 || st.TombstonesGCed < 5 {
		t.Fatalf("replayed=%d gced=%d, want 15/>=5", st.HintsReplayed, st.TombstonesGCed)
	}
	// With every key converged and the bookkeeping tables symmetric, the
	// replicas hold identical resident volumes.
	nb := kv.NodeBytes(ctx)
	if nb[0] != nb[1] || nb[1] != nb[2] {
		t.Fatalf("replica volumes diverge after repair: %v", nb)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	// Read repair, isolated: a fresh client with hints disabled writes
	// while node 2 is down, so nothing is parked anywhere. After node 2
	// returns, ONE read of the key must rewrite its on-disk copy.
	c.kill(2)
	kvB, err := rstore.OpenCluster(context.Background(), c.config(rstore.RepairOptions{DisableHints: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer kvB.Close()
	if err := kvB.Put(ctx, "t", "rr-doc", []byte("rr-v1")); err != nil {
		t.Fatal(err)
	}
	c.restart(2)
	if _, ok := c.raw(2, "t", "rr-doc"); ok {
		t.Fatal("restarted node has a write it provably missed")
	}
	if got, err := kvB.Get(ctx, "t", "rr-doc"); err != nil || string(got) != "rr-v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	want, _ := c.raw(0, "t", "rr-doc")
	poll(t, "read repair rewrote the missing replica on disk", func() bool {
		got, ok := c.raw(2, "t", "rr-doc")
		return ok && bytes.Equal(got, want)
	})
	var stB rstore.ClusterStats = kvB.Stats(ctx)
	if stB.RepairWrites < 1 || stB.HintsQueued != 0 {
		t.Fatalf("repairWrites=%d hintsQueued=%d, want >=1/0", stB.RepairWrites, stB.HintsQueued)
	}
}

// TestRepairHintsSurviveClientRestart: hints are durable through the
// engine seam — a cluster client that dies after parking hints leaves them
// in the !hints table, and the next client recovers and drains them.
func TestRepairHintsSurviveClientRestart(t *testing.T) {
	c := startRepairCluster(t, 3)
	ctx := context.Background()

	slow := rstore.RepairOptions{HintInterval: time.Hour} // park only
	kv1, err := rstore.OpenCluster(context.Background(), c.config(slow))
	if err != nil {
		t.Fatal(err)
	}
	if err := kv1.Put(ctx, "t", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c.kill(0)
	if err := kv1.Put(ctx, "t", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := kv1.Stats(ctx).HintsPending; got != 1 {
		t.Fatalf("pending hints = %d, want 1", got)
	}
	if err := kv1.Close(); err != nil { // client dies with the hint parked
		t.Fatal(err)
	}
	c.restart(0)

	kv2, err := rstore.OpenCluster(context.Background(), c.config(rstore.RepairOptions{
		HintInterval: 10 * time.Millisecond, HintMaxBackoff: 100 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if got := kv2.Stats(ctx).HintsPending; got != 1 {
		t.Fatalf("recovered hints = %d, want 1", got)
	}
	want, _ := c.raw(1, "t", "k")
	poll(t, "recovered hint delivered to the restarted node", func() bool {
		got, ok := c.raw(0, "t", "k")
		return ok && bytes.Equal(got, want)
	})
}
