// EHR: the paper's §1 motivating scenario. A healthcare provider maintains
// electronic health records for a cohort of patients; analytics teams score
// subsets of patients on their own branches, cohort snapshots are pulled for
// training, and per-patient histories support audits.
//
// The run demonstrates: (1) branched concurrent analytics with record-level
// dedup, (2) partial-version retrieval of a cohort slice, (3) evolution
// history for auditing a single patient, and (4) the storage/span win of the
// Bottom-Up partitioner over naive placement.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"rstore"
)

const patients = 400

func patientKey(i int) rstore.Key { return rstore.Key(fmt.Sprintf("patient-%04d", i)) }

func ehr(rng *rand.Rand, id int, visits int, risk float64) []byte {
	return []byte(fmt.Sprintf(
		`{"id":%d,"visits":%d,"risk":%.3f,"vitals":{"bp":"%d/%d","hr":%d},"hist":"%x"}`,
		id, visits, risk, 100+rng.Intn(40), 60+rng.Intn(30), 55+rng.Intn(50), rng.Int63(),
	))
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	st, err := rstore.Open(ctx, rstore.Config{
		ChunkCapacity: 8 << 10,
		SubChunkK:     4, // compress up to 4 versions of a patient record together
		BatchSize:     8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Intake: the full patient roster.
	intake := rstore.Change{Puts: map[rstore.Key][]byte{}}
	for i := 0; i < patients; i++ {
		intake.Puts[patientKey(i)] = ehr(rng, i, 1, 0)
	}
	v0, err := st.Commit(ctx, rstore.NoParent, intake)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intake: %d patients in version %d\n", patients, v0)

	// Monthly visit updates on the main branch: each month a small random
	// subset of patients has new measurements (the paper: "the number of
	// updates per version usually remains restricted to a small percentage").
	main := v0
	for month := 1; month <= 6; month++ {
		ch := rstore.Change{Puts: map[rstore.Key][]byte{}}
		for i := 0; i < patients/20; i++ {
			p := rng.Intn(patients)
			ch.Puts[patientKey(p)] = ehr(rng, p, 1+month, 0)
		}
		main, err = st.Commit(ctx, main, ch)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := st.SetBranch(ctx, "main", main); err != nil {
		log.Fatal(err)
	}

	// Two analytics teams branch from the same snapshot and write model
	// scores into their cohorts' records — decentralized, branched updates.
	cardio := main
	for round := 0; round < 3; round++ {
		ch := rstore.Change{Puts: map[rstore.Key][]byte{}}
		for p := 0; p < patients; p += 7 { // the cardiology cohort
			ch.Puts[patientKey(p)] = ehr(rng, p, 7, 0.1*float64(round+1))
		}
		cardio, err = st.Commit(ctx, cardio, ch)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := st.SetBranch(ctx, "cardio-model", cardio); err != nil {
		log.Fatal(err)
	}

	diabetes := main
	for round := 0; round < 2; round++ {
		ch := rstore.Change{Puts: map[rstore.Key][]byte{}}
		for p := 3; p < patients; p += 11 { // the diabetes cohort
			ch.Puts[patientKey(p)] = ehr(rng, p, 7, 0.05*float64(round+1))
		}
		diabetes, err = st.Commit(ctx, diabetes, ch)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := st.SetBranch(ctx, "diabetes-model", diabetes); err != nil {
		log.Fatal(err)
	}

	// Periodic full repartitioning (offline Bottom-Up over everything).
	if err := st.Materialize(ctx); err != nil {
		log.Fatal(err)
	}

	// (1) Reproducibility: pull the exact snapshot the cardio model was
	// trained on — even though main and diabetes moved on.
	recs, stats, err := st.GetVersionAll(ctx, cardio)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncardio training snapshot v%d: %d records, span=%d chunks, %.2fms simulated\n",
		cardio, len(recs), stats.Span, float64(stats.SimElapsed.Microseconds())/1000)

	// (2) Partial version retrieval: one ward's slice of the roster.
	lo, hi := patientKey(100), patientKey(150)
	ward, stats2, err := st.GetRangeAll(ctx, rstore.KeyRange(lo, hi), main)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ward slice [%s, %s) at main: %d records, span=%d\n", lo, hi, len(ward), stats2.Span)

	// (3) Audit: the full history of one patient across every branch.
	history, stats3, err := st.GetHistoryAll(ctx, patientKey(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit of %s: %d record revisions (key span=%d):\n", patientKey(7), len(history), stats3.Span)
	for _, r := range history {
		fmt.Printf("  v%-3d %.60s...\n", r.CK.Version, r.Value)
	}

	// (4) Storage accounting: records shared by branches are stored once.
	kvStats := st.KV().Stats(ctx)
	fmt.Printf("\nversions=%d chunks=%d stored=%.2fMB (deduplicated, sub-chunk compressed)\n",
		st.NumVersions(), st.NumChunks(), float64(kvStats.BytesStored)/(1<<20))
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
}
