// Quickstart: commit a few versions of a small document collection, branch,
// and run all four retrieval query kinds through the streaming cursor API.
package main

import (
	"context"
	"fmt"
	"log"

	"rstore"
)

func main() {
	ctx := context.Background()
	st, err := rstore.Open(ctx, rstore.Config{ChunkCapacity: 4096, BatchSize: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Root version: three documents.
	v0, err := st.Commit(ctx, rstore.NoParent, rstore.Change{Puts: map[rstore.Key][]byte{
		"doc-a": []byte(`{"title":"alpha","rev":0}`),
		"doc-b": []byte(`{"title":"beta","rev":0}`),
		"doc-c": []byte(`{"title":"gamma","rev":0}`),
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed root:", v0)

	// Two updates on main.
	v1, err := st.Commit(ctx, v0, rstore.Change{Puts: map[rstore.Key][]byte{
		"doc-a": []byte(`{"title":"alpha","rev":1}`),
	}})
	if err != nil {
		log.Fatal(err)
	}
	v2, err := st.Commit(ctx, v1, rstore.Change{
		Puts:    map[rstore.Key][]byte{"doc-d": []byte(`{"title":"delta","rev":0}`)},
		Deletes: []rstore.Key{"doc-b"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.SetBranch(ctx, "main", v2); err != nil {
		log.Fatal(err)
	}

	// A branch off v1: a collaborator edits doc-c concurrently.
	vb, err := st.Commit(ctx, v1, rstore.Change{Puts: map[rstore.Key][]byte{
		"doc-c": []byte(`{"title":"gamma","rev":1,"note":"experiment"}`),
	}})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.SetBranch(ctx, "experiment", vb); err != nil {
		log.Fatal(err)
	}

	// Full version retrieval (Q1), streamed: records arrive incrementally
	// as chunks are fetched, and the stats are complete once the cursor is
	// exhausted. Breaking out of the loop early (or cancelling ctx) would
	// stop the remaining chunk fetches.
	cur := st.GetVersion(ctx, v2)
	fmt.Printf("\nversion %d records:\n", v2)
	for r, err := range cur.Records() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s (origin v%d): %s\n", r.CK.Key, r.CK.Version, r.Value)
	}
	stats := cur.Stats()
	fmt.Printf("  (%d records, span=%d, %d requests)\n", stats.Records, stats.Span, stats.Requests)

	// Point retrieval.
	rec, _, err := st.GetRecord(ctx, "doc-a", v2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndoc-a at v%d: %s\n", v2, rec.Value)

	// The old version is still intact — v0's doc-a is rev 0.
	rec0, _, err := st.GetRecord(ctx, "doc-a", v0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doc-a at v%d: %s\n", v0, rec0.Value)

	// Range retrieval (Q2): keys in [doc-a, doc-c). GetRangeAll is the
	// buffered convenience wrapper over the cursor (sorted output);
	// rstore.KeyRangeFrom("doc-a") would read to the top of the keyspace.
	ranged, _, err := st.GetRangeAll(ctx, rstore.KeyRange("doc-a", "doc-c"), vb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange [doc-a, doc-c) at branch tip v%d: %d records\n", vb, len(ranged))

	// Record evolution (Q3): every revision of doc-a, streamed.
	fmt.Println("\nevolution of doc-a:")
	for r, err := range st.GetHistory(ctx, "doc-a").Records() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  originated v%d: %s\n", r.CK.Version, r.Value)
	}

	tip, _ := st.Tip("experiment")
	fmt.Printf("\nbranches: %v (experiment tip = v%d)\n", st.Branches(), tip)
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
}
