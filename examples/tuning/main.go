// Tuning: how RStore's knobs — partitioning algorithm, chunk capacity, and
// sub-chunk size k — trade storage against query span on one workload
// (paper §2.4: "simple tuning knobs that allow adapting to a specific data
// and query workload").
package main

import (
	"context"
	"fmt"
	"log"

	"rstore"
	"rstore/internal/corpus"
	"rstore/internal/workload"
)

// spec is the shared dataset description (BulkLoad takes ownership of a
// corpus, so each configuration regenerates it deterministically).
var spec = workload.Spec{
	Name: "tune", Versions: 120, AvgDepth: 30, RecordsPerVersion: 300,
	UpdatePct: 0.10, Update: workload.RandomUpdate,
	RecordSize: 512, Pd: 0.05, Seed: 21,
}

func dataset() *corpus.Corpus {
	c, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	// A moderately branched dataset: 120 versions, ~300 records each.
	c := dataset()
	fmt.Printf("dataset: %d versions, %d unique records, %.1fMB unique volume\n\n",
		c.NumVersions(), c.NumRecords(), float64(c.TotalBytes())/(1<<20))

	fmt.Printf("%-14s %-10s %-4s %-9s %-14s %-12s %-12s\n",
		"partitioner", "chunk", "k", "#chunks", "total span", "storage", "Q1 latency")

	type knob struct {
		name string
		p    rstore.Partitioner
		cap  int
		k    int
	}
	knobs := []knob{
		{"bottom-up", rstore.BottomUp(0), 8 << 10, 1},
		{"bottom-up β=16", rstore.BottomUp(16), 8 << 10, 1},
		{"shingle", rstore.Shingle(5), 8 << 10, 1},
		{"depth-first", rstore.DepthFirst(), 8 << 10, 1},
		{"breadth-first", rstore.BreadthFirst(), 8 << 10, 1},
		{"bottom-up", rstore.BottomUp(0), 2 << 10, 1},
		{"bottom-up", rstore.BottomUp(0), 32 << 10, 1},
		{"bottom-up", rstore.BottomUp(0), 8 << 10, 4},
		{"bottom-up", rstore.BottomUp(0), 8 << 10, 16},
	}

	for _, kn := range knobs {
		st, err := rstore.Open(context.Background(), rstore.Config{
			Partitioner: kn.p, ChunkCapacity: kn.cap, SubChunkK: kn.k,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := st.BulkLoad(context.Background(), dataset()); err != nil {
			log.Fatal(err)
		}
		last := rstore.VersionID(st.NumVersions() - 1)
		_, q1, err := st.GetVersionAll(context.Background(), last)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-10s %-4d %-9d %-14d %-12s %-12s\n",
			kn.name,
			fmt.Sprintf("%dKB", kn.cap>>10),
			kn.k,
			st.NumChunks(),
			st.TotalVersionSpan(),
			fmt.Sprintf("%.2fMB", float64(st.ChunkStorageBytes(context.Background()))/(1<<20)),
			fmt.Sprintf("%.2fms", float64(q1.SimElapsed.Microseconds())/1000),
		)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - the tree-aware partitioners (bottom-up, shingle) beat the greedy")
	fmt.Println("    traversals at equal storage; β trades a little span for faster")
	fmt.Println("    partitioning on huge trees")
	fmt.Println("  - smaller chunks shrink wasted transfer per query but raise span;")
	fmt.Println("    larger chunks do the opposite (the §2.3 trade-off)")
	fmt.Println("  - larger k compresses more aggressively (less storage) while span")
	fmt.Println("    shifts with the two Fig 10 factors")
}
