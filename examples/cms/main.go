// CMS: a content-management workload — large JSON documents receiving many
// small edits — demonstrating record-level compression with sub-chunks
// (paper §3.4): multiple versions of an article are delta-encoded together,
// shrinking storage while version retrieval stays chunk-local.
//
// The run commits the same editing history into two stores (k=1 vs k=8) and
// compares storage volume and query costs.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rstore"
)

const (
	articles  = 120
	revisions = 40
	bodyWords = 300
)

func articleKey(i int) rstore.Key { return rstore.Key(fmt.Sprintf("article-%03d", i)) }

// body generates a large document; edit rewrites a few words of it (a small
// change relative to the document size — the sub-chunk sweet spot).
func body(rng *rand.Rand) []string {
	words := make([]string, bodyWords)
	for i := range words {
		words[i] = fmt.Sprintf("w%05d", rng.Intn(99999))
	}
	return words
}

func edit(rng *rand.Rand, words []string) []string {
	out := append([]string(nil), words...)
	for i := 0; i < 5; i++ {
		out[rng.Intn(len(out))] = fmt.Sprintf("e%05d", rng.Intn(99999))
	}
	return out
}

func render(title string, words []string) []byte {
	return []byte(fmt.Sprintf(`{"title":%q,"body":%q}`, title, strings.Join(words, " ")))
}

func run(k int) (storageMB float64, q1ms, q3ms float64, span int) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	st, err := rstore.Open(ctx, rstore.Config{ChunkCapacity: 64 << 10, SubChunkK: k})
	if err != nil {
		log.Fatal(err)
	}

	bodies := make([][]string, articles)
	root := rstore.Change{Puts: map[rstore.Key][]byte{}}
	for i := range bodies {
		bodies[i] = body(rng)
		root.Puts[articleKey(i)] = render(fmt.Sprintf("article %d", i), bodies[i])
	}
	tip, err := st.Commit(ctx, rstore.NoParent, root)
	if err != nil {
		log.Fatal(err)
	}

	// Editing stream: every revision touches a handful of articles with
	// small word-level changes.
	for r := 0; r < revisions; r++ {
		ch := rstore.Change{Puts: map[rstore.Key][]byte{}}
		for e := 0; e < 4; e++ {
			a := rng.Intn(articles)
			bodies[a] = edit(rng, bodies[a])
			ch.Puts[articleKey(a)] = render(fmt.Sprintf("article %d", a), bodies[a])
		}
		tip, err = st.Commit(ctx, tip, ch)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Materialize(ctx); err != nil {
		log.Fatal(err)
	}

	_, q1, err := st.GetVersionAll(ctx, tip)
	if err != nil {
		log.Fatal(err)
	}
	_, q3, err := st.GetHistoryAll(ctx, articleKey(7))
	if err != nil {
		log.Fatal(err)
	}
	return float64(st.ChunkStorageBytes(ctx)) / (1 << 20),
		float64(q1.SimElapsed.Microseconds()) / 1000,
		float64(q3.SimElapsed.Microseconds()) / 1000,
		q1.Span
}

func main() {
	fmt.Printf("%d articles × %d revisions, ~%d-word bodies, 5-word edits\n\n",
		articles, revisions, bodyWords)
	fmt.Printf("%-22s %-12s %-12s %-12s\n", "config", "chunk store", "Q1 latency", "Q3 latency")
	for _, k := range []int{1, 8} {
		storage, q1, q3, _ := run(k)
		label := "no compression (k=1)"
		if k > 1 {
			label = fmt.Sprintf("sub-chunks (k=%d)", k)
		}
		fmt.Printf("%-22s %-12s %-12s %-12s\n", label,
			fmt.Sprintf("%.2fMB", storage),
			fmt.Sprintf("%.2fms", q1),
			fmt.Sprintf("%.2fms", q3))
	}
	fmt.Println("\nsub-chunking stores near-duplicate revisions as binary deltas against")
	fmt.Println("their parent revision, cutting chunk storage while keeping every")
	fmt.Println("version reconstructable from a handful of chunk fetches.")
}
