// Replica: the distributed deployment story — a writable application server
// and a read-only replica fronting the same cluster (paper §2.4: "Multiple
// copies of AS could co-exist"), accessed over the HTTP JSON API with the
// typed Go client.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"rstore"
	"rstore/internal/client"
	"rstore/internal/server"
)

func main() {
	ctx := context.Background()
	// One shared 4-node cluster with replication.
	kv, err := rstore.OpenCluster(ctx, rstore.ClusterConfig{
		Nodes: 4, ReplicationFactor: 2, ReadBalance: true,
		Cost: rstore.DefaultCostModel(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Primary application server (writable).
	primary, err := rstore.Open(ctx, rstore.Config{KV: kv, BatchSize: 4})
	if err != nil {
		log.Fatal(err)
	}
	primarySrv := httptest.NewServer(server.New(primary))
	defer primarySrv.Close()
	writer := client.New(primarySrv.URL, nil)

	// Ingest through the API.
	v, err := writer.Commit(ctx, -1, map[string][]byte{
		"sensor-1": []byte(`{"temp":21.5}`),
		"sensor-2": []byte(`{"temp":19.8}`),
	}, nil, "main")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v, err = writer.Commit(ctx, int64(v), map[string][]byte{
			"sensor-1": []byte(fmt.Sprintf(`{"temp":%0.1f}`, 21.5+float64(i))),
		}, nil, "main")
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := writer.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary ingested %d versions\n", v+1)

	// Read-only replica over the same cluster: loads placement state from
	// the KVS, serves every query, rejects writes.
	replicaStore, err := rstore.Load(ctx, rstore.Config{KV: kv, ReadOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	replicaSrv := httptest.NewServer(server.New(replicaStore))
	defer replicaSrv.Close()
	reader := client.New(replicaSrv.URL, nil)

	// Stream the tip: the client decodes NDJSON records as the replica
	// fetches chunks; the loop could stop (or ctx cancel) to abort the
	// remaining fetches mid-flight.
	cur, err := reader.GetVersion(ctx, "main")
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for _, err := range cur.Records() {
		if err != nil {
			log.Fatal(err)
		}
		n++
	}
	fmt.Printf("replica streamed tip: %d records, span=%d, %.2fms simulated\n",
		n, cur.Stats().Span, cur.Stats().SimElapsedMS)

	history, _, err := reader.GetHistoryAll(ctx, "sensor-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica served history of sensor-1: %d revisions\n", len(history))

	// Writes against the replica fail loudly, over the wire and directly.
	_, err = reader.Commit(ctx, int64(v), map[string][]byte{"x": []byte("1")}, nil, "")
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		fmt.Printf("replica rejected write over HTTP: status %d\n", apiErr.Status)
	}
	if _, err := replicaStore.Commit(ctx, rstore.VersionID(v), rstore.Change{}); errors.Is(err, rstore.ErrReadOnly) {
		fmt.Println("replica rejected direct write: ErrReadOnly")
	}
}
