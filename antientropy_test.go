package rstore_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"rstore"
)

// Divergence-injection acceptance test for Merkle-tree anti-entropy.
//
// The scenarios read repair and hinted handoff cannot cover share one
// shape: a replica's on-disk state changes (or rots) with no corresponding
// store operation — a disk restored from an old backup, a file-level
// corruption, an operator's stray write. No hint was ever queued, and if no
// client happens to read the damaged keys, nothing foreground notices. This
// test injects exactly that class of damage behind a live TCP cluster's
// back and requires the background hash-tree sync, alone — hints disabled,
// read repair disabled, zero client reads of the damaged keys — to bring
// every replica's bytes back into agreement.

// scanTable snapshots a replica's full on-disk table through its backend
// handle, values copied (Scan may alias backend buffers).
func scanTable(t *testing.T, c *repairCluster, node int, table string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := c.backends[node].Scan(context.Background(), table, func(key string, value []byte) bool {
		out[key] = append([]byte(nil), value...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// tablesEqual reports whether two replicas hold byte-identical tables.
func tablesEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || !bytes.Equal(v, bv) {
			return false
		}
	}
	return true
}

func TestAntiEntropyEndToEnd(t *testing.T) {
	const nKeys = 40
	c := startRepairCluster(t, 3)
	ctx := context.Background()
	key := func(i int) string { return fmt.Sprintf("doc-%02d", i) }

	kv, err := rstore.OpenCluster(ctx, c.config(rstore.RepairOptions{
		AntiEntropyInterval: 10 * time.Millisecond,
		DisableReadRepair:   true,
		DisableHints:        true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	for i := 0; i < nKeys; i++ {
		if err := kv.Put(ctx, "t", key(i), []byte(fmt.Sprintf("v1-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Capture live envelopes now — they become the "restored from an old
	// backup" payloads after the overwrites below move the cluster on.
	stale := map[string][]byte{}
	for i := 0; i < 5; i++ {
		raw, ok := c.raw(1, "t", key(i))
		if !ok {
			t.Fatalf("node 1 missing %s before injection", key(i))
		}
		stale[key(i)] = raw
	}
	for i := 0; i < 5; i++ {
		if err := kv.Put(ctx, "t", key(i), []byte(fmt.Sprintf("v2-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// A delete node 2 never hears about (it is dead and hints are off):
	// the tombstone on nodes 0/1 is stuck at 2 of 3 acks, un-GC-able, and
	// node 2 comes back still holding the live value — a resurrection
	// candidate only anti-entropy can put down.
	if err := kv.Put(ctx, "t", "ghost", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	c.kill(2)
	if err := kv.Delete(ctx, "t", "ghost"); err != nil {
		t.Fatal(err)
	}
	c.restart(2)
	if _, ok := c.raw(2, "t", "ghost"); !ok {
		t.Fatal("precondition: restarted node should still hold the deleted value")
	}

	// Silent corruption on node 1, injected straight into its backend
	// while its daemon serves traffic. The store sees none of it.
	for i := 0; i < 5; i++ {
		if err := c.backends[1].Put(ctx, "t", key(i), stale[key(i)]); err != nil { // regressed to v1
			t.Fatal(err)
		}
	}
	for i := 5; i < 10; i++ {
		if err := c.backends[1].Delete(ctx, "t", key(i)); err != nil { // silently lost
			t.Fatal(err)
		}
	}
	if err := c.backends[1].Put(ctx, "t", key(10), []byte{0xff, 0x01, 0x02}); err != nil { // bit rot
		t.Fatal(err)
	}

	// Convergence, with NO client reads: every replica's full table — keys,
	// envelopes, timestamps, byte for byte — and the resident volumes agree.
	poll(t, "anti-entropy converged all replicas byte-identically", func() bool {
		t0 := scanTable(t, c, 0, "t")
		if _, ok := t0["ghost"]; ok {
			return false // tombstone spread but not yet fully acked + GC'd
		}
		if !tablesEqual(t0, scanTable(t, c, 1, "t")) || !tablesEqual(t0, scanTable(t, c, 2, "t")) {
			return false
		}
		nb := kv.NodeBytes(ctx)
		return nb[0] == nb[1] && nb[1] == nb[2]
	})

	// The winners must be the cluster's versions, not the injected ones.
	for i := 0; i < 5; i++ {
		raw, ok := c.raw(1, "t", key(i))
		if !ok || !bytes.HasSuffix(raw, []byte(fmt.Sprintf("v2-%02d", i))) {
			t.Fatalf("node 1 %s = %q, %v; want the v2 envelope", key(i), raw, ok)
		}
	}
	for i := 5; i < 11; i++ {
		if _, ok := c.raw(1, "t", key(i)); !ok {
			t.Fatalf("node 1 still missing %s", key(i))
		}
	}
	// The resurrection is dead everywhere: the tombstone spread to node 2,
	// completed its ack set through the repair writes, and was collected.
	for n := 0; n < 3; n++ {
		if raw, ok := c.raw(n, "t", "ghost"); ok {
			t.Fatalf("node %d still holds ghost = %q", n, raw)
		}
	}

	st := kv.Stats(ctx)
	if st.AESyncs < 1 || st.AERangesDiffed < 1 || st.AEKeysRepaired < 11 || st.AEBytesHashed < 1 {
		t.Fatalf("AE stats = syncs %d, ranges %d, keys %d, bytes %d; want all positive (>=11 keys)",
			st.AESyncs, st.AERangesDiffed, st.AEKeysRepaired, st.AEBytesHashed)
	}
	if st.HintsQueued != 0 || st.HintsReplayed != 0 {
		t.Fatalf("hinted handoff leaked into the test: queued=%d replayed=%d", st.HintsQueued, st.HintsReplayed)
	}
}

// TestAntiEntropySurvivesNodeRestartMidSync: the loop must ride out a
// replica dying and returning mid-sync — ticks against the dead node fail
// or skip without wedging the loop, and the divergence (both the damage
// injected before the crash and the restart-window staleness) still
// converges afterwards.
func TestAntiEntropySurvivesNodeRestartMidSync(t *testing.T) {
	const nKeys = 20
	c := startRepairCluster(t, 3)
	ctx := context.Background()
	key := func(i int) string { return fmt.Sprintf("doc-%02d", i) }

	kv, err := rstore.OpenCluster(ctx, c.config(rstore.RepairOptions{
		AntiEntropyInterval: 5 * time.Millisecond,
		DisableReadRepair:   true,
		DisableHints:        true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	for i := 0; i < nKeys; i++ {
		if err := kv.Put(ctx, "t", key(i), []byte(fmt.Sprintf("v1-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Inject damage on node 1, then immediately bounce node 2 while the
	// loop is mid-rotation: syncs touching node 2 fail over the dead TCP
	// connection until the breaker opens, then resume after restart.
	for i := 0; i < 5; i++ {
		if err := c.backends[1].Delete(ctx, "t", key(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.kill(2)
	poll(t, "sync rounds against a dead node", func() bool { return kv.Stats(ctx).AESyncs >= 2 })
	c.restart(2)
	// The cluster client's breaker may still consider node 2 down; writes
	// through the store re-probe it. Write fresh keys so the restarted
	// node also has post-restart divergence to repair (its breaker window
	// missed them... or not — either way AE must reconcile).
	for i := 0; i < 5; i++ {
		if err := kv.Put(ctx, "t", fmt.Sprintf("late-%02d", i), []byte("late")); err != nil {
			t.Fatal(err)
		}
	}

	poll(t, "post-restart convergence", func() bool {
		t0 := scanTable(t, c, 0, "t")
		return tablesEqual(t0, scanTable(t, c, 1, "t")) && tablesEqual(t0, scanTable(t, c, 2, "t"))
	})
	if st := kv.Stats(ctx); st.AEKeysRepaired < 5 {
		t.Fatalf("AEKeysRepaired = %d, want >= 5", st.AEKeysRepaired)
	}
}
