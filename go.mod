module rstore

go 1.22
