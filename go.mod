module rstore

go 1.23
