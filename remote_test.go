package rstore_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rstore"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
)

// TestRemoteClusterEndToEnd is the deployment acceptance test: a full
// RStore (commits, online partitioning, every query class) running on a
// real cluster — three disklog storage daemons behind TCP sockets — must
// survive one node being killed and restarted (writes routed around,
// reads recovering from replicas), and a close/reopen of the whole stack
// must return identical query results, exactly like the single-process
// disklog test.
func TestRemoteClusterEndToEnd(t *testing.T) {
	const nNodes = 3

	// One storage daemon per node, each over its own disklog directory.
	root := t.TempDir()
	dirs := make([]string, nNodes)
	backends := make([]*disklog.Backend, nNodes)
	servers := make([]*engined.Server, nNodes)
	addrs := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		dirs[i] = filepath.Join(root, fmt.Sprintf("node-%d", i))
		be, err := disklog.Open(dirs[i], disklog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := engined.Start("127.0.0.1:0", be)
		if err != nil {
			t.Fatal(err)
		}
		backends[i], servers[i] = be, srv
		addrs[i] = srv.Addr().String()
	}
	t.Cleanup(func() {
		for i := range servers {
			servers[i].Close()
			backends[i].Close()
		}
	})

	cluster := rstore.ClusterConfig{
		Engine: rstore.EngineRemote, NodeAddrs: addrs, ReplicationFactor: 2,
		Remote: remote.Options{Attempts: 2, Backoff: time.Millisecond},
	}
	kv, err := rstore.OpenCluster(context.Background(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rstore.Open(context.Background(), rstore.Config{KV: kv, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}

	doc := func(i, rev int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf(`{"doc":%d,"rev":%d}`, i, rev)), 20)
	}

	// A linear history of 8 versions over 6 documents, flushed through the
	// online partitioner in batches of 3.
	parent := rstore.NoParent
	var versions []rstore.VersionID
	for rev := 0; rev < 8; rev++ {
		puts := map[rstore.Key][]byte{}
		for d := 0; d < 6; d++ {
			if (rev+d)%2 == 0 {
				puts[rstore.Key(fmt.Sprintf("doc-%d", d))] = doc(d, rev)
			}
		}
		v, err := st.Commit(context.Background(), parent, rstore.Change{Puts: puts})
		if err != nil {
			t.Fatalf("commit %d: %v", rev, err)
		}
		versions = append(versions, v)
		parent = v
	}
	if err := st.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.SetBranch(context.Background(), "main", parent); err != nil {
		t.Fatal(err)
	}

	// snapshot captures every query class for later equality comparison.
	type snapshot struct {
		Versions map[rstore.VersionID]map[string]string
		History  map[string][]string
	}
	capture := func(st *rstore.Store) snapshot {
		t.Helper()
		snap := snapshot{
			Versions: map[rstore.VersionID]map[string]string{},
			History:  map[string][]string{},
		}
		for _, v := range versions {
			recs, _, err := st.GetVersionAll(context.Background(), v)
			if err != nil {
				t.Fatalf("GetVersion(%d): %v", v, err)
			}
			m := map[string]string{}
			for _, r := range recs {
				m[string(r.CK.Key)] = string(r.Value)
			}
			snap.Versions[v] = m
		}
		for d := 0; d < 6; d++ {
			key := fmt.Sprintf("doc-%d", d)
			recs, _, err := st.GetHistoryAll(context.Background(), rstore.Key(key))
			if err != nil {
				t.Fatalf("GetHistory(%s): %v", key, err)
			}
			for _, r := range recs {
				snap.History[key] = append(snap.History[key], fmt.Sprintf("v%d:%s", r.CK.Version, r.Value))
			}
		}
		return snap
	}
	before := capture(st)
	if len(before.Versions[versions[7]]) != 6 {
		t.Fatalf("tip version has %d records, want 6", len(before.Versions[versions[7]]))
	}

	// Marker keys for the stale-replica check below: written now so every
	// node (including the one about to die) holds the old revision.
	mk := make([]string, 10)
	for i := range mk {
		mk[i] = fmt.Sprintf("marker-%d", i)
		if err := kv.Put(context.Background(), "e2e", mk[i], []byte("old")); err != nil {
			t.Fatal(err)
		}
	}

	// Kill node 1: a real process death — socket refused, not a flag.
	servers[1].Close()
	if err := backends[1].Close(); err != nil {
		t.Fatal(err)
	}

	// Reads recover from surviving replicas (rf=2 keeps every chunk alive).
	if got := capture(st); !reflect.DeepEqual(before, got) {
		t.Fatal("query results changed with one node down")
	}

	// Writes route around the dead node.
	for rev := 8; rev < 11; rev++ {
		puts := map[rstore.Key][]byte{}
		for d := 0; d < 6; d++ {
			puts[rstore.Key(fmt.Sprintf("doc-%d", d))] = doc(d, rev)
		}
		v, err := st.Commit(context.Background(), parent, rstore.Change{Puts: puts})
		if err != nil {
			t.Fatalf("commit %d with node down: %v", rev, err)
		}
		versions = append(versions, v)
		parent = v
	}
	if err := st.Flush(context.Background()); err != nil {
		t.Fatalf("flush with node down: %v", err)
	}
	if err := st.SetBranch(context.Background(), "main", parent); err != nil {
		t.Fatal(err)
	}

	// Overwrite the marker keys while node 1 is down: its replicas of them
	// are now permanently one revision behind.
	for _, k := range mk {
		if err := kv.Put(context.Background(), "e2e", k, []byte("new")); err != nil {
			t.Fatal(err)
		}
	}

	// Restart node 1 from its data directory on the same address. It is
	// stale for everything written while it was down; reads must fall back
	// across replicas transparently.
	be, err := disklog.Open(dirs[1], disklog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := engined.Start(addrs[1], be)
	if err != nil {
		t.Fatal(err)
	}
	backends[1], servers[1] = be, srv

	// The restarted replica still serves "old" for the markers it holds;
	// the batched read path (one OpMultiGet per node, answers LWW-merged
	// per key across the replica batches) must outvote it on every key.
	mres, err := kv.MultiGet(context.Background(), "e2e", mk)
	if err != nil {
		t.Fatalf("multiget after stale restart: %v", err)
	}
	if len(mres.Missing) != 0 {
		t.Fatalf("multiget after stale restart: missing %v", mres.Missing)
	}
	for i, v := range mres.Values {
		if string(v) != "new" {
			t.Fatalf("marker %d = %q after stale restart, want %q (stale replica not outvoted)", i, v, "new")
		}
	}

	afterRestart := capture(st)
	for _, v := range versions {
		if len(afterRestart.Versions[v]) == 0 {
			t.Fatalf("version %d empty after node restart", v)
		}
	}
	if got := afterRestart.Versions[parent]; len(got) != 6 || got["doc-0"] != string(doc(0, 10)) {
		t.Fatalf("tip after restart: %d records", len(got))
	}

	// Close the whole stack and reopen from the daemons: identical results.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	kv2, err := rstore.OpenCluster(context.Background(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	exists, err := rstore.Exists(context.Background(), kv2)
	if err != nil || !exists {
		t.Fatalf("Exists after reopen: %v %v", exists, err)
	}
	st2, err := rstore.Load(context.Background(), rstore.Config{KV: kv2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	defer kv2.Close()
	if tip, err := st2.Tip("main"); err != nil || tip != parent {
		t.Fatalf("Tip after reopen: %d %v", tip, err)
	}
	if got := capture(st2); !reflect.DeepEqual(afterRestart, got) {
		t.Fatal("query results differ after close/reopen of the cluster")
	}
}

// TestRemoteClusterLSMEndToEnd is the lsm twin of the disklog deployment
// test: a full RStore on three lsm storage daemons behind TCP sockets. On
// top of the kill/restart cycle it drives compaction over the wire —
// OpCompact against every node through kvstore.Store.Compact — before and
// after the crash, proving the merged SSTable layout the daemons converge
// to serves identical query results. The killed node dies hard (descriptors
// dropped unsynced, lsm.Backend.Kill), so its restart exercises real WAL
// replay and debris recovery, not a graceful close.
func TestRemoteClusterLSMEndToEnd(t *testing.T) {
	const nNodes = 3

	// Tiny memtables force every node into a multi-SSTable layout.
	root := t.TempDir()
	dirs := make([]string, nNodes)
	backends := make([]*lsm.Backend, nNodes)
	servers := make([]*engined.Server, nNodes)
	addrs := make([]string, nNodes)
	for i := 0; i < nNodes; i++ {
		dirs[i] = filepath.Join(root, fmt.Sprintf("node-%d", i))
		be, err := lsm.Open(dirs[i], lsm.Options{MemtableBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := engined.Start("127.0.0.1:0", be)
		if err != nil {
			t.Fatal(err)
		}
		backends[i], servers[i] = be, srv
		addrs[i] = srv.Addr().String()
	}
	t.Cleanup(func() {
		for i := range servers {
			servers[i].Close()
			backends[i].Close()
		}
	})

	cluster := rstore.ClusterConfig{
		Engine: rstore.EngineRemote, NodeAddrs: addrs, ReplicationFactor: 2,
		Remote: remote.Options{Attempts: 2, Backoff: time.Millisecond},
	}
	kv, err := rstore.OpenCluster(context.Background(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rstore.Open(context.Background(), rstore.Config{KV: kv, BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}

	doc := func(i, rev int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf(`{"doc":%d,"rev":%d}`, i, rev)), 20)
	}

	// An overwrite-heavy history: every document updated in every version,
	// so the daemons accumulate shadowed chunk versions worth merging.
	parent := rstore.NoParent
	var versions []rstore.VersionID
	for rev := 0; rev < 8; rev++ {
		puts := map[rstore.Key][]byte{}
		for d := 0; d < 6; d++ {
			puts[rstore.Key(fmt.Sprintf("doc-%d", d))] = doc(d, rev)
		}
		v, err := st.Commit(context.Background(), parent, rstore.Change{Puts: puts})
		if err != nil {
			t.Fatalf("commit %d: %v", rev, err)
		}
		versions = append(versions, v)
		parent = v
	}
	if err := st.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.SetBranch(context.Background(), "main", parent); err != nil {
		t.Fatal(err)
	}

	capture := func(st *rstore.Store) map[rstore.VersionID]map[string]string {
		t.Helper()
		snap := map[rstore.VersionID]map[string]string{}
		for _, v := range versions {
			recs, _, err := st.GetVersionAll(context.Background(), v)
			if err != nil {
				t.Fatalf("GetVersion(%d): %v", v, err)
			}
			m := map[string]string{}
			for _, r := range recs {
				m[string(r.CK.Key)] = string(r.Value)
			}
			snap[v] = m
		}
		return snap
	}
	before := capture(st)
	if len(before[versions[7]]) != 6 {
		t.Fatalf("tip version has %d records, want 6", len(before[versions[7]]))
	}

	// Compact every daemon over the wire; results must not change.
	if _, err := kv.Compact(context.Background()); err != nil {
		t.Fatalf("compact over TCP: %v", err)
	}
	if got := capture(st); !reflect.DeepEqual(before, got) {
		t.Fatal("query results changed after remote compaction")
	}

	// Kill node 1 hard: socket refused AND descriptors dropped unsynced.
	servers[1].Close()
	backends[1].Kill()

	// Reads recover from surviving replicas; writes route around.
	if got := capture(st); !reflect.DeepEqual(before, got) {
		t.Fatal("query results changed with one node down")
	}
	for rev := 8; rev < 10; rev++ {
		puts := map[rstore.Key][]byte{}
		for d := 0; d < 6; d++ {
			puts[rstore.Key(fmt.Sprintf("doc-%d", d))] = doc(d, rev)
		}
		v, err := st.Commit(context.Background(), parent, rstore.Change{Puts: puts})
		if err != nil {
			t.Fatalf("commit %d with node down: %v", rev, err)
		}
		versions = append(versions, v)
		parent = v
	}
	if err := st.Flush(context.Background()); err != nil {
		t.Fatalf("flush with node down: %v", err)
	}
	if err := st.SetBranch(context.Background(), "main", parent); err != nil {
		t.Fatal(err)
	}

	// Restart node 1 from its directory: WAL replay + debris recovery.
	be, err := lsm.Open(dirs[1], lsm.Options{MemtableBytes: 4 << 10})
	if err != nil {
		t.Fatalf("reopen killed node: %v", err)
	}
	srv, err := engined.Start(addrs[1], be)
	if err != nil {
		t.Fatal(err)
	}
	backends[1], servers[1] = be, srv

	// Compact again over TCP with the restarted (stale) node in rotation.
	if _, err := kv.Compact(context.Background()); err != nil {
		t.Fatalf("compact over TCP after restart: %v", err)
	}
	afterRestart := capture(st)
	for _, v := range versions {
		if len(afterRestart[v]) == 0 {
			t.Fatalf("version %d empty after node restart", v)
		}
	}
	if got := afterRestart[parent]; len(got) != 6 || got["doc-0"] != string(doc(0, 9)) {
		t.Fatalf("tip after restart: %d records", len(got))
	}

	// Close the whole stack and reopen from the daemons: identical results.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	kv2, err := rstore.OpenCluster(context.Background(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := rstore.Load(context.Background(), rstore.Config{KV: kv2})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	defer kv2.Close()
	if tip, err := st2.Tip("main"); err != nil || tip != parent {
		t.Fatalf("Tip after reopen: %d %v", tip, err)
	}
	if got := capture(st2); !reflect.DeepEqual(afterRestart, got) {
		t.Fatal("query results differ after close/reopen of the cluster")
	}
}
