#!/usr/bin/env bash
# check-docs.sh — keep the documentation honest.
#
# 1. Every relative markdown link in README.md and docs/*.md must resolve
#    to a file in the repository.
# 2. Every Go identifier referenced in backticks under docs/ must still
#    exist somewhere in the Go sources (grep-based: a doc that names
#    `engine.Compactor` or `Materialize` breaks this check when the
#    identifier is renamed away).
#
# Run from anywhere; exits non-zero with one line per problem.
set -u
cd "$(dirname "$0")/.."

errors=0
err() {
    echo "check-docs: $*" >&2
    errors=1
}

# --- 1. markdown links -----------------------------------------------------

for f in README.md docs/*.md; do
    [ -e "$f" ] || continue
    base=$(dirname "$f")
    # Inline links: [text](target). External schemes and pure-fragment
    # links are skipped; everything else must exist relative to the
    # linking file (or the repo root).
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
            err "$f: broken link: ($target)"
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

# Both docs the README promises must exist.
for f in docs/ARCHITECTURE.md docs/FORMATS.md; do
    [ -e "$f" ] || err "missing $f"
done

# --- 2. Go identifiers referenced from docs/ -------------------------------

# Backtick spans that look like Go identifiers:
#   - dotted references (pkg.Ident, pkg.Type.Method): the final exported
#     segment must appear in the Go sources;
#   - single exported identifiers (CamelCase, at least one lowercase
#     letter so ALLCAPS file names and abbreviations are not mistaken
#     for Go symbols).
# Spans containing spaces, slashes, or dashes (shell commands, paths,
# flags) are handled separately or skipped.
check_ident() {
    local doc=$1 span=$2 ident=$3
    if ! grep -rqw --include='*.go' -- "$ident" .; then
        err "$doc: references Go identifier \`$span\` but \`$ident\` no longer exists in the sources"
    fi
}

for f in docs/*.md; do
    [ -e "$f" ] || continue
    while IFS= read -r span; do
        case "$span" in
        *[!A-Za-z0-9_.]*) # anything beyond identifier chars and dots
            # Repo paths in backticks must exist too.
            case "$span" in
            internal/* | cmd/* | docs/* | examples/* | scripts/*)
                [ -e "${span%%#*}" ] || err "$f: references path \`$span\` which does not exist"
                ;;
            esac
            continue
            ;;
        esac
        if [[ "$span" == *.* ]]; then
            last="${span##*.}"
            if [[ "$last" =~ ^[A-Z][A-Za-z0-9_]*$ && "$last" =~ [a-z] ]]; then
                check_ident "$f" "$span" "$last"
            fi
        elif [[ "$span" =~ ^[A-Z][A-Za-z0-9_]*$ && "$span" =~ [a-z] ]]; then
            check_ident "$f" "$span" "$span"
        fi
    done < <(grep -oE '`[^`]+`' "$f" | sed -E 's/^`//; s/`$//' | sort -u)
done

if [ "$errors" -ne 0 ]; then
    exit 1
fi
echo "check-docs: OK"
