#!/usr/bin/env bash
# check.sh — the repository's lint and static-analysis gate, runnable
# locally exactly as CI runs it.
#
# Usage: scripts/check.sh [section ...]
#
# Sections: gofmt vet staticcheck rstore-vet docs fuzz. No arguments runs
# the default gate (everything except fuzz, which CI runs as a separate
# smoke because it costs tens of seconds). staticcheck is skipped with a
# warning when the binary is not installed — CI installs a pinned version;
# the zero-dependency module itself never requires it.
set -euo pipefail
cd "$(dirname "$0")/.."

run_gofmt() {
  echo "== gofmt"
  out=$(gofmt -l .)
  if [ -n "$out" ]; then
    echo "gofmt needed on:"
    echo "$out"
    return 1
  fi
}

run_vet() {
  echo "== go vet"
  go vet ./...
}

run_staticcheck() {
  echo "== staticcheck"
  if ! command -v staticcheck >/dev/null 2>&1; then
    echo "staticcheck not installed; skipping (CI installs it)"
    return 0
  fi
  staticcheck ./...
}

run_rstore_vet() {
  echo "== rstore-vet"
  tool="$(mktemp -d)/rstore-vet"
  go build -o "$tool" ./cmd/rstore-vet
  go vet -vettool="$tool" ./...
}

run_docs() {
  echo "== docs"
  ./scripts/check-docs.sh
}

run_fuzz() {
  echo "== fuzz smoke"
  go test -fuzz=FuzzReadFrame -fuzztime=10s -run '^$' ./internal/engine/remote/wire/
  go test -fuzz=FuzzHashTreeFrame -fuzztime=10s -run '^$' ./internal/engine/remote/wire/
  go test -fuzz=FuzzHashRangeFrame -fuzztime=10s -run '^$' ./internal/engine/remote/wire/
  go test -fuzz=FuzzUnenvelope -fuzztime=10s -run '^$' ./internal/kvstore/
}

sections=("$@")
if [ ${#sections[@]} -eq 0 ]; then
  sections=(gofmt vet staticcheck rstore-vet docs)
fi
for s in "${sections[@]}"; do
  case "$s" in
  gofmt) run_gofmt ;;
  vet) run_vet ;;
  staticcheck) run_staticcheck ;;
  rstore-vet) run_rstore_vet ;;
  docs) run_docs ;;
  fuzz) run_fuzz ;;
  *)
    echo "unknown section: $s (known: gofmt vet staticcheck rstore-vet docs fuzz)"
    exit 2
    ;;
  esac
done
echo "ok"
