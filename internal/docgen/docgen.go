// Package docgen generates and mutates the JSON documents used as record
// payloads (paper §5.1: "each record is created as a JSON document ... a
// randomly generated value of the requisite size"), and supports the P_d
// knob of §5.3: when a record is updated, the change relative to the parent
// record is limited to a bounded percentage of its bytes, which controls how
// compressible co-grouped record versions are.
package docgen

import (
	"fmt"
	"math/rand"

	"rstore/internal/types"
)

// Generator produces deterministic document payloads.
type Generator struct {
	rng *rand.Rand
}

// New returns a generator seeded deterministically.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

// fieldValueLen is the length of each generated field value; fields are the
// mutation granularity, mirroring "only a single attribute may be updated in
// a large JSON document" (§2.2).
const fieldValueLen = 16

// Document generates a JSON document for the given primary key with
// approximately size bytes of payload, structured as an object with an id
// field and enough fixed-width data fields to reach the target size.
func (g *Generator) Document(key types.Key, size int) []byte {
	buf := make([]byte, 0, size+64)
	buf = append(buf, `{"id":"`...)
	buf = append(buf, key...)
	buf = append(buf, `"`...)
	i := 0
	for len(buf) < size {
		buf = append(buf, fmt.Sprintf(`,"f%04d":"`, i)...)
		for j := 0; j < fieldValueLen; j++ {
			buf = append(buf, alphabet[g.rng.Intn(len(alphabet))])
		}
		buf = append(buf, '"')
		i++
	}
	buf = append(buf, '}')
	return buf
}

// Mutate returns a new version of doc in which at most pd (fraction in
// (0,1]) of the payload bytes are rewritten, by overwriting whole field
// values in place. pd ≤ 0 rewrites a single field; pd ≥ 1 regenerates all
// fields. The returned slice is a fresh copy.
func (g *Generator) Mutate(doc []byte, pd float64) []byte {
	out := make([]byte, len(doc))
	copy(out, doc)
	// Locate field value regions: spans of fieldValueLen between `:"` and
	// `"` following ",\"fNNNN\"". A structural scan keeps this robust to
	// any document our generator produced.
	var spans [][2]int
	for i := 0; i+1 < len(out); i++ {
		if out[i] == ':' && out[i+1] == '"' {
			start := i + 2
			end := start
			for end < len(out) && out[end] != '"' {
				end++
			}
			// Skip the id field (first span, holds the primary key, must
			// stay stable).
			spans = append(spans, [2]int{start, end})
			i = end
		}
	}
	if len(spans) <= 1 {
		return out
	}
	spans = spans[1:] // drop id field
	budget := int(pd * float64(len(out)))
	if budget < fieldValueLen {
		budget = fieldValueLen
	}
	changed := 0
	// Rewrite random distinct fields until the byte budget is exhausted.
	perm := g.rng.Perm(len(spans))
	for _, si := range perm {
		if changed+fieldValueLen > budget {
			break
		}
		s := spans[si]
		for j := s[0]; j < s[1]; j++ {
			out[j] = alphabet[g.rng.Intn(len(alphabet))]
		}
		changed += s[1] - s[0]
	}
	return out
}

// DiffFraction measures the fraction of byte positions at which a and b
// differ (over the longer length) — used by tests to verify the P_d bound.
func DiffFraction(a, b []byte) float64 {
	long := len(a)
	if len(b) > long {
		long = len(b)
	}
	if long == 0 {
		return 0
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	diff := long - n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(long)
}
