package docgen

import (
	"encoding/json"
	"testing"

	"rstore/internal/types"
)

func TestDocumentIsValidJSON(t *testing.T) {
	g := New(1)
	for _, size := range []int{64, 256, 1024, 8192} {
		doc := g.Document(types.Key("k-1"), size)
		var parsed map[string]any
		if err := json.Unmarshal(doc, &parsed); err != nil {
			t.Fatalf("size %d: invalid JSON: %v\n%s", size, err, doc)
		}
		if parsed["id"] != "k-1" {
			t.Fatalf("size %d: id = %v", size, parsed["id"])
		}
		if len(doc) < size {
			t.Fatalf("size %d: document only %d bytes", size, len(doc))
		}
		if len(doc) > size+64 {
			t.Fatalf("size %d: document overshoots to %d bytes", size, len(doc))
		}
	}
}

func TestDocumentDeterminism(t *testing.T) {
	a := New(7).Document("k", 512)
	b := New(7).Document("k", 512)
	if string(a) != string(b) {
		t.Fatal("same seed produced different documents")
	}
	c := New(8).Document("k", 512)
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestMutateStaysValidJSONAndBounded(t *testing.T) {
	g := New(2)
	doc := g.Document("key-9", 2048)
	for _, pd := range []float64{0.01, 0.05, 0.10, 0.5} {
		mut := g.Mutate(doc, pd)
		var parsed map[string]any
		if err := json.Unmarshal(mut, &parsed); err != nil {
			t.Fatalf("pd=%.2f: mutated doc invalid: %v", pd, err)
		}
		if parsed["id"] != "key-9" {
			t.Fatalf("pd=%.2f: id changed to %v", pd, parsed["id"])
		}
		frac := DiffFraction(doc, mut)
		if frac == 0 {
			t.Fatalf("pd=%.2f: no change applied", pd)
		}
		// The bound: changed bytes ≤ pd budget + one field of slack (the
		// generator rewrites whole fields).
		bound := pd + float64(2*fieldValueLen)/float64(len(doc))
		if frac > bound {
			t.Fatalf("pd=%.2f: changed fraction %.4f exceeds bound %.4f", pd, frac, bound)
		}
	}
}

func TestMutateDoesNotAliasInput(t *testing.T) {
	g := New(3)
	doc := g.Document("k", 256)
	orig := string(doc)
	_ = g.Mutate(doc, 0.5)
	if string(doc) != orig {
		t.Fatal("Mutate modified its input")
	}
}

func TestMutateTinyDocument(t *testing.T) {
	g := New(4)
	// A document with only the id field cannot be mutated; must not panic
	// and must return an equal copy.
	doc := g.Document("k", 1)
	mut := g.Mutate(doc, 0.5)
	if string(mut) != string(doc) {
		t.Fatalf("tiny doc mutated: %s", mut)
	}
}

func TestDiffFraction(t *testing.T) {
	if DiffFraction(nil, nil) != 0 {
		t.Fatal("empty diff")
	}
	if DiffFraction([]byte("aaaa"), []byte("aaaa")) != 0 {
		t.Fatal("identical diff")
	}
	if got := DiffFraction([]byte("aaaa"), []byte("aaab")); got != 0.25 {
		t.Fatalf("one-of-four diff = %v", got)
	}
	// Length differences count as differences.
	if got := DiffFraction([]byte("aa"), []byte("aaaa")); got != 0.5 {
		t.Fatalf("length diff = %v", got)
	}
}
