// Package bitset implements dense uint64-word bitmaps used by chunk maps
// (per-version membership bitmaps over a chunk's record slots, paper §2.4)
// and by the partitioners' set algebra over record ids.
package bitset

import (
	"fmt"
	"math/bits"

	"rstore/internal/codec"
	"rstore/internal/types"
)

const wordBits = 64

// BitSet is a growable bitmap over uint32 positions. The zero value is an
// empty set ready to use.
type BitSet struct {
	words []uint64
}

// New returns a bitset pre-sized to hold positions [0, n).
func New(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice builds a bitset from a list of positions, pre-sized to the
// largest position.
func FromSlice(ids []uint32) *BitSet {
	max := uint32(0)
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	b := New(int(max) + 1)
	for _, id := range ids {
		b.Set(id)
	}
	return b
}

// grow extends the word slice to cover the given word index, doubling to
// amortize repeated ascending Sets.
func (b *BitSet) grow(word int) {
	if word < len(b.words) {
		return
	}
	newLen := word + 1
	if d := 2 * len(b.words); d > newLen {
		newLen = d
	}
	nw := make([]uint64, newLen)
	copy(nw, b.words)
	b.words = nw
}

// Set adds position i to the set.
func (b *BitSet) Set(i uint32) {
	w := int(i / wordBits)
	b.grow(w)
	b.words[w] |= 1 << (i % wordBits)
}

// Clear removes position i from the set.
func (b *BitSet) Clear(i uint32) {
	w := int(i / wordBits)
	if w < len(b.words) {
		b.words[w] &^= 1 << (i % wordBits)
	}
}

// Contains reports whether position i is in the set.
func (b *BitSet) Contains(i uint32) bool {
	w := int(i / wordBits)
	return w < len(b.words) && b.words[w]&(1<<(i%wordBits)) != 0
}

// Count returns the number of set positions.
func (b *BitSet) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether no position is set.
func (b *BitSet) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b *BitSet) Clone() *BitSet {
	nw := make([]uint64, len(b.words))
	copy(nw, b.words)
	return &BitSet{words: nw}
}

// Or sets b = b ∪ other.
func (b *BitSet) Or(other *BitSet) {
	b.grow(len(other.words) - 1)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b = b ∩ other.
func (b *BitSet) And(other *BitSet) {
	for i := range b.words {
		if i < len(other.words) {
			b.words[i] &= other.words[i]
		} else {
			b.words[i] = 0
		}
	}
}

// AndNot sets b = b \ other.
func (b *BitSet) AndNot(other *BitSet) {
	for i := range b.words {
		if i < len(other.words) {
			b.words[i] &^= other.words[i]
		}
	}
}

// Equal reports whether two bitsets contain the same positions.
func (b *BitSet) Equal(other *BitSet) bool {
	long, short := b.words, other.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set position in increasing order. It stops early
// if fn returns false.
func (b *BitSet) ForEach(fn func(uint32) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(uint32(wi*wordBits + tz)) {
				return
			}
			w &^= 1 << tz
		}
	}
}

// Slice returns the set positions in increasing order.
func (b *BitSet) Slice() []uint32 {
	out := make([]uint32, 0, b.Count())
	b.ForEach(func(i uint32) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders a small bitset for debugging.
func (b *BitSet) String() string {
	return fmt.Sprintf("BitSet%v", b.Slice())
}

// AppendBinary serializes the bitset compactly: dense word encoding when the
// set is dense, posting-list encoding when sparse. A one-byte tag selects the
// representation.
func (b *BitSet) AppendBinary(buf []byte) []byte {
	n := b.Count()
	// Trailing zero words carry no information.
	last := len(b.words)
	for last > 0 && b.words[last-1] == 0 {
		last--
	}
	denseSize := 8 * last
	// Sparse estimate: ~2 bytes/gap for small universes.
	if n*3 < denseSize {
		buf = append(buf, 1) // sparse
		return codec.PutPostingList(buf, b.Slice())
	}
	buf = append(buf, 0) // dense
	buf = codec.PutUvarint(buf, uint64(last))
	for _, w := range b.words[:last] {
		var tmp [8]byte
		for i := 0; i < 8; i++ {
			tmp[i] = byte(w >> (8 * i))
		}
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodeBinary consumes a bitset serialized by AppendBinary and returns the
// remaining buffer.
func DecodeBinary(buf []byte) (*BitSet, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("%w: empty bitset encoding", types.ErrCorrupt)
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case 0: // dense
		n, rest, err := codec.Uvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if uint64(len(rest)) < 8*n {
			return nil, nil, fmt.Errorf("%w: short dense bitset", types.ErrCorrupt)
		}
		words := make([]uint64, n)
		for i := range words {
			var w uint64
			for j := 0; j < 8; j++ {
				w |= uint64(rest[8*i+j]) << (8 * j)
			}
			words[i] = w
		}
		return &BitSet{words: words}, rest[8*n:], nil
	case 1: // sparse
		ids, rest, err := codec.PostingList(buf)
		if err != nil {
			return nil, nil, err
		}
		return FromSlice(ids), rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown bitset tag %d", types.ErrCorrupt, tag)
	}
}
