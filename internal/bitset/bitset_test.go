package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	b := New(10)
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("new bitset not empty")
	}
	b.Set(3)
	b.Set(64)
	b.Set(200) // beyond initial sizing: must grow
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	for _, i := range []uint32{3, 64, 200} {
		if !b.Contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if b.Contains(4) || b.Contains(1000) {
		t.Fatal("spurious membership")
	}
	b.Clear(64)
	if b.Contains(64) || b.Count() != 2 {
		t.Fatal("clear failed")
	}
	b.Clear(99999) // clearing beyond the end is a no-op
	if got := b.Slice(); len(got) != 2 || got[0] != 3 || got[1] != 200 {
		t.Fatalf("Slice = %v", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 100})
	b := FromSlice([]uint32{2, 3, 4})

	or := a.Clone()
	or.Or(b)
	if got := or.Slice(); len(got) != 5 {
		t.Fatalf("Or = %v", got)
	}

	and := a.Clone()
	and.And(b)
	if got := and.Slice(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("And = %v", got)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Slice(); len(got) != 2 || got[0] != 1 || got[1] != 100 {
		t.Fatalf("AndNot = %v", got)
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	a := FromSlice([]uint32{1, 2})
	b := FromSlice([]uint32{1, 2})
	b.Set(1000)
	b.Clear(1000) // trailing zero words must not break equality
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equality with trailing zero words")
	}
	b.Set(70)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	b := FromSlice([]uint32{5, 10, 15})
	var seen []uint32
	b.ForEach(func(i uint32) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 10 {
		t.Fatalf("early stop: %v", seen)
	}
}

// TestModelEquivalence drives random operations against a map-based model.
func TestModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := New(0)
	model := map[uint32]bool{}
	for op := 0; op < 5000; op++ {
		i := uint32(rng.Intn(500))
		switch rng.Intn(3) {
		case 0:
			b.Set(i)
			model[i] = true
		case 1:
			b.Clear(i)
			delete(model, i)
		default:
			if b.Contains(i) != model[i] {
				t.Fatalf("op %d: Contains(%d) = %v, model %v", op, i, b.Contains(i), model[i])
			}
		}
	}
	if b.Count() != len(model) {
		t.Fatalf("Count = %d, model %d", b.Count(), len(model))
	}
	for _, i := range b.Slice() {
		if !model[i] {
			t.Fatalf("spurious %d", i)
		}
	}
}

// TestEncodingRoundTrip covers both dense and sparse representations.
func TestEncodingRoundTrip(t *testing.T) {
	cases := []*BitSet{
		New(0),                          // empty
		FromSlice([]uint32{0}),          // single
		FromSlice([]uint32{1000000}),    // sparse far bit
		FromSlice(seq(0, 512)),          // dense run
		FromSlice([]uint32{3, 77, 900}), // sparse few
	}
	for i, b := range cases {
		got, rest, err := DecodeBinary(b.AppendBinary(nil))
		if err != nil || len(rest) != 0 {
			t.Fatalf("case %d: %v", i, err)
		}
		if !got.Equal(b) {
			t.Fatalf("case %d: round trip mismatch: %v vs %v", i, got.Slice(), b.Slice())
		}
	}
	// Property: arbitrary sets round-trip.
	f := func(ids []uint32) bool {
		for i := range ids {
			ids[i] %= 1 << 20 // keep memory bounded
		}
		b := FromSlice(ids)
		got, rest, err := DecodeBinary(b.AppendBinary(nil))
		return err == nil && len(rest) == 0 && got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSparseEncodingIsCompact(t *testing.T) {
	// A single far bit must not serialize the whole dense prefix.
	b := FromSlice([]uint32{1 << 20})
	enc := b.AppendBinary(nil)
	if len(enc) > 16 {
		t.Fatalf("sparse encoding is %d bytes", len(enc))
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := DecodeBinary([]byte{9, 1, 2}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, _, err := DecodeBinary([]byte{0, 2, 1}); err == nil {
		t.Error("truncated dense accepted")
	}
}

func seq(start, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(start + i)
	}
	return out
}
