package bitset

import (
	"math/rand"
	"testing"
)

func randomSet(n, universe int, seed int64) *BitSet {
	rng := rand.New(rand.NewSource(seed))
	b := New(universe)
	for i := 0; i < n; i++ {
		b.Set(uint32(rng.Intn(universe)))
	}
	return b
}

func BenchmarkSetContains(b *testing.B) {
	s := randomSet(10000, 1<<16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Contains(uint32(i) & 0xffff)
	}
}

func BenchmarkAnd(b *testing.B) {
	x := randomSet(10000, 1<<16, 1)
	y := randomSet(10000, 1<<16, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.And(y)
	}
}

func BenchmarkForEach(b *testing.B) {
	s := randomSet(10000, 1<<16, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		s.ForEach(func(uint32) bool { count++; return true })
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	for _, density := range []struct {
		name string
		n    int
	}{{"sparse", 100}, {"dense", 30000}} {
		s := randomSet(density.n, 1<<16, 4)
		b.Run(density.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc := s.AppendBinary(nil)
				if _, _, err := DecodeBinary(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
