package codec

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rstore/internal/types"
)

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64} {
		buf := PutUvarint(nil, v)
		got, rest, err := Uvarint(buf)
		if err != nil || got != v || len(rest) != 0 {
			t.Errorf("Uvarint(%d): got %d, rest %d, err %v", v, got, len(rest), err)
		}
		if len(buf) != UvarintLen(v) {
			t.Errorf("UvarintLen(%d) = %d, encoded %d", v, UvarintLen(v), len(buf))
		}
	}
	if _, _, err := Uvarint(nil); !errors.Is(err, types.ErrCorrupt) {
		t.Errorf("empty uvarint: %v", err)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, rest, err := Varint(PutVarint(nil, v))
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesAndString(t *testing.T) {
	f := func(b []byte, s string) bool {
		buf := PutBytes(nil, b)
		buf = PutString(buf, s)
		gb, rest, err := Bytes(buf)
		if err != nil || !bytes.Equal(gb, b) {
			return false
		}
		gs, rest, err := String(rest)
		return err == nil && gs == s && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Truncation is detected.
	buf := PutBytes(nil, []byte("hello"))
	if _, _, err := Bytes(buf[:3]); !errors.Is(err, types.ErrCorrupt) {
		t.Errorf("truncated bytes: %v", err)
	}
}

func TestPostingListRoundTrip(t *testing.T) {
	cases := [][]uint32{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{10, 100, 1000, 1 << 30},
	}
	for _, ids := range cases {
		got, rest, err := PostingList(PutPostingList(nil, ids))
		if err != nil || len(rest) != 0 {
			t.Fatalf("PostingList(%v): err %v", ids, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("PostingList(%v) = %v", ids, got)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("PostingList(%v) = %v", ids, got)
			}
		}
	}
}

// TestPostingListProperty: any sorted unique uint32 set round-trips.
func TestPostingListProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		seen := map[uint32]bool{}
		var ids []uint32
		for _, v := range raw {
			if !seen[v] {
				seen[v] = true
				ids = append(ids, v)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		got, rest, err := PostingList(PutPostingList(nil, ids))
		if err != nil || len(rest) != 0 || len(got) != len(ids) {
			return false
		}
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPostingListRejectsDuplicates(t *testing.T) {
	// Hand-craft a zero gap: count=2, first=7, gap=0.
	buf := PutUvarint(nil, 2)
	buf = PutUvarint(buf, 7)
	buf = PutUvarint(buf, 0)
	if _, _, err := PostingList(buf); !errors.Is(err, types.ErrCorrupt) {
		t.Errorf("zero gap: %v", err)
	}
}

func TestCompositeKeyRecordRoundTrip(t *testing.T) {
	ck := types.CompositeKey{Key: "patient-42", Version: 1234}
	gotCK, rest, err := CompositeKey(PutCompositeKey(nil, ck))
	if err != nil || gotCK != ck || len(rest) != 0 {
		t.Fatalf("CompositeKey round trip: %v %v", gotCK, err)
	}
	rec := types.Record{CK: ck, Value: []byte(`{"x":1}`)}
	gotRec, rest, err := Record(PutRecord(nil, rec))
	if err != nil || len(rest) != 0 {
		t.Fatalf("Record round trip: %v", err)
	}
	if gotRec.CK != rec.CK || !bytes.Equal(gotRec.Value, rec.Value) {
		t.Fatalf("Record = %+v", gotRec)
	}
	// Decoded value must not alias the input buffer.
	buf := PutRecord(nil, rec)
	gotRec, _, _ = Record(buf)
	buf[len(buf)-1] ^= 0xff
	if !bytes.Equal(gotRec.Value, rec.Value) {
		t.Error("decoded record aliases input buffer")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := &types.Delta{
		Adds: []types.Record{
			{CK: types.CompositeKey{Key: "a", Version: 3}, Value: []byte("v1")},
			{CK: types.CompositeKey{Key: "b", Version: 3}, Value: nil},
		},
		Dels: []types.CompositeKey{{Key: "a", Version: 1}},
	}
	got, err := DecodeDelta(PutDelta(nil, d))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Adds) != 2 || len(got.Dels) != 1 {
		t.Fatalf("decoded %d adds %d dels", len(got.Adds), len(got.Dels))
	}
	if got.Adds[0].CK != d.Adds[0].CK || string(got.Adds[0].Value) != "v1" {
		t.Fatalf("add mismatch: %+v", got.Adds[0])
	}
	if got.Dels[0] != d.Dels[0] {
		t.Fatalf("del mismatch: %v", got.Dels[0])
	}
	// Trailing bytes are rejected.
	if _, err := DecodeDelta(append(PutDelta(nil, d), 0x00)); !errors.Is(err, types.ErrCorrupt) {
		t.Errorf("trailing bytes: %v", err)
	}
	// Empty delta round-trips.
	empty, err := DecodeDelta(PutDelta(nil, &types.Delta{}))
	if err != nil || len(empty.Adds) != 0 || len(empty.Dels) != 0 {
		t.Fatalf("empty delta: %+v, %v", empty, err)
	}
}

func TestDeltaPropertyRoundTrip(t *testing.T) {
	f := func(keys []string, vals [][]byte, dels []string) bool {
		d := &types.Delta{}
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			d.Adds = append(d.Adds, types.Record{
				CK: types.CompositeKey{Key: types.Key(k), Version: types.VersionID(i)}, Value: v,
			})
		}
		for i, k := range dels {
			d.Dels = append(d.Dels, types.CompositeKey{Key: types.Key(k), Version: types.VersionID(i + 1000)})
		}
		got, err := DecodeDelta(PutDelta(nil, d))
		if err != nil || len(got.Adds) != len(d.Adds) || len(got.Dels) != len(d.Dels) {
			return false
		}
		for i := range d.Adds {
			if got.Adds[i].CK != d.Adds[i].CK || !bytes.Equal(got.Adds[i].Value, d.Adds[i].Value) {
				return false
			}
		}
		for i := range d.Dels {
			if got.Dels[i] != d.Dels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
