package codec

import (
	"fmt"

	"rstore/internal/types"
)

// PutDelta appends a serialized delta: the added records (with payloads)
// followed by the deleted composite keys.
func PutDelta(buf []byte, d *types.Delta) []byte {
	buf = PutUvarint(buf, uint64(len(d.Adds)))
	for _, r := range d.Adds {
		buf = PutRecord(buf, r)
	}
	buf = PutUvarint(buf, uint64(len(d.Dels)))
	for _, ck := range d.Dels {
		buf = PutCompositeKey(buf, ck)
	}
	return buf
}

// Delta consumes a serialized delta.
func Delta(buf []byte) (*types.Delta, []byte, error) {
	n, rest, err := Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	d := &types.Delta{}
	for i := uint64(0); i < n; i++ {
		var r types.Record
		r, rest, err = Record(rest)
		if err != nil {
			return nil, nil, err
		}
		d.Adds = append(d.Adds, r)
	}
	n, rest, err = Uvarint(rest)
	if err != nil {
		return nil, nil, err
	}
	for i := uint64(0); i < n; i++ {
		var ck types.CompositeKey
		ck, rest, err = CompositeKey(rest)
		if err != nil {
			return nil, nil, err
		}
		d.Dels = append(d.Dels, ck)
	}
	return d, rest, nil
}

// DecodeDelta consumes a serialized delta and requires the buffer to be
// fully consumed.
func DecodeDelta(buf []byte) (*types.Delta, error) {
	d, rest, err := Delta(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing delta bytes", types.ErrCorrupt)
	}
	return d, nil
}
