// Package codec provides the binary encodings shared by every structure
// RStore persists to the backing key-value store: unsigned varints, zig-zag
// signed varints, length-prefixed byte strings, and delta-gap compressed
// posting lists (the adjacency-list compression for the projection indexes,
// paper §2.4 "standard techniques from inverted indexes literature").
//
// All encoders append to a caller-supplied buffer and return the extended
// slice; all decoders consume from the front of a slice and return the
// remaining tail, so structures compose without intermediate copies.
package codec

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"rstore/internal/types"
)

// PutUvarint appends v as an unsigned varint.
func PutUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// Uvarint consumes an unsigned varint from the front of buf.
func Uvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", types.ErrCorrupt)
	}
	return v, buf[n:], nil
}

// PutVarint appends v as a zig-zag signed varint.
func PutVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// Varint consumes a zig-zag signed varint from the front of buf.
func Varint(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", types.ErrCorrupt)
	}
	return v, buf[n:], nil
}

// PutBytes appends b with a uvarint length prefix.
func PutBytes(buf, b []byte) []byte {
	buf = PutUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Bytes consumes a length-prefixed byte string. The returned slice aliases
// buf; callers that retain it across buffer reuse must copy.
func Bytes(buf []byte) ([]byte, []byte, error) {
	n, rest, err := Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("%w: short byte string (want %d, have %d)", types.ErrCorrupt, n, len(rest))
	}
	return rest[:n], rest[n:], nil
}

// PutString appends s with a uvarint length prefix.
func PutString(buf []byte, s string) []byte {
	buf = PutUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// String consumes a length-prefixed string.
func String(buf []byte) (string, []byte, error) {
	b, rest, err := Bytes(buf)
	if err != nil {
		return "", nil, err
	}
	return string(b), rest, nil
}

// PutPostingList appends a sorted, strictly-increasing list of uint32 ids
// using delta-gap varint compression: the count, the first id, then the gaps.
// This is the standard inverted-index adjacency compression used to persist
// the version→chunk and key→chunk projections.
func PutPostingList(buf []byte, ids []uint32) []byte {
	buf = PutUvarint(buf, uint64(len(ids)))
	prev := uint32(0)
	for i, id := range ids {
		if i == 0 {
			buf = PutUvarint(buf, uint64(id))
		} else {
			buf = PutUvarint(buf, uint64(id-prev))
		}
		prev = id
	}
	return buf
}

// PostingList consumes a delta-gap compressed posting list. It validates that
// the list is strictly increasing (gaps after the first element must be ≥ 1;
// a zero gap would mean a duplicate id, which the encoders never produce).
func PostingList(buf []byte) ([]uint32, []byte, error) {
	n, rest, err := Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]uint32, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var gap uint64
		gap, rest, err = Uvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		var id uint64
		if i == 0 {
			id = gap
		} else {
			if gap == 0 {
				return nil, nil, fmt.Errorf("%w: zero gap in posting list", types.ErrCorrupt)
			}
			id = prev + gap
		}
		if id > uint64(^uint32(0)) {
			return nil, nil, fmt.Errorf("%w: posting id overflow", types.ErrCorrupt)
		}
		ids = append(ids, uint32(id))
		prev = id
	}
	return ids, rest, nil
}

// PutCompositeKey appends a composite key.
func PutCompositeKey(buf []byte, ck types.CompositeKey) []byte {
	buf = PutString(buf, string(ck.Key))
	return PutUvarint(buf, uint64(ck.Version))
}

// CompositeKey consumes a composite key.
func CompositeKey(buf []byte) (types.CompositeKey, []byte, error) {
	k, rest, err := String(buf)
	if err != nil {
		return types.CompositeKey{}, nil, err
	}
	v, rest, err := Uvarint(rest)
	if err != nil {
		return types.CompositeKey{}, nil, err
	}
	return types.CompositeKey{Key: types.Key(k), Version: types.VersionID(v)}, rest, nil
}

// PutRecord appends a record (composite key + payload).
func PutRecord(buf []byte, r types.Record) []byte {
	buf = PutCompositeKey(buf, r.CK)
	return PutBytes(buf, r.Value)
}

// Record consumes a record. The payload is copied so the result does not
// alias buf.
func Record(buf []byte) (types.Record, []byte, error) {
	ck, rest, err := CompositeKey(buf)
	if err != nil {
		return types.Record{}, nil, err
	}
	val, rest, err := Bytes(rest)
	if err != nil {
		return types.Record{}, nil, err
	}
	out := make([]byte, len(val))
	copy(out, val)
	return types.Record{CK: ck, Value: out}, rest, nil
}

// UvarintLen reports the encoded size of v without encoding it.
func UvarintLen(v uint64) int {
	if v == 0 {
		return 1
	}
	return (bits.Len64(v) + 6) / 7
}
