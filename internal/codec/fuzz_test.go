package codec

import (
	"testing"

	"rstore/internal/types"
)

// Decoder hardening: arbitrary bytes must never panic any codec entry point.

func FuzzPostingList(f *testing.F) {
	f.Add(PutPostingList(nil, []uint32{1, 5, 9, 100000}))
	f.Add([]byte{})
	f.Add([]byte{200, 200, 200, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, _, err := PostingList(data)
		if err == nil {
			// Valid posting lists are strictly increasing.
			for i := 1; i < len(ids); i++ {
				if ids[i] <= ids[i-1] {
					t.Fatalf("non-increasing posting list decoded: %v", ids)
				}
			}
		}
	})
}

func FuzzDecodeDelta(f *testing.F) {
	d := &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "k", Version: 3}, Value: []byte("vv")}},
		Dels: []types.CompositeKey{{Key: "k", Version: 1}},
	}
	f.Add(PutDelta(nil, d))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeDelta(data)
		if err == nil && got != nil {
			for _, r := range got.Adds {
				_ = r.CK
			}
		}
	})
}

func FuzzRecord(f *testing.F) {
	f.Add(PutRecord(nil, types.Record{
		CK: types.CompositeKey{Key: "abc", Version: 7}, Value: []byte("payload"),
	}))
	f.Add([]byte{3, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = Record(data)
	})
}
