// Package partition implements the chunking algorithms of paper §3: the
// shingle-based partitioner (Algorithms 1–2), the Bottom-Up version-tree
// partitioner (Algorithm 3, with the subtree-size bound β of §3.2.1), and
// the greedy Depth-First / Breadth-First traversal partitioners
// (Algorithm 4). All of them solve the optimization problem of §2.5:
// assign items (records, or sub-chunks when record-level compression is
// enabled) to approximately fixed-size chunks so that the number of chunks
// retrieved per version — the span — is minimized.
package partition

import (
	"fmt"

	"rstore/internal/bitset"
	"rstore/internal/chunk"
	"rstore/internal/corpus"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// DefaultSlack is the chunk-size variation the paper allows (§2.5: "with
// variations of upto 25% allowed").
const DefaultSlack = 0.25

// Input is a partitioning problem instance. Items live in "item id" space:
// for the no-compression case (k=1) item i is record i; with sub-chunking,
// items are sub-chunks and the graph is the transformed version tree of
// §3.4.
type Input struct {
	// Graph is the version tree guiding tree-based partitioners.
	Graph *vgraph.Graph
	// Items are the units to place.
	Items []chunk.Item
	// Adds[v] / Dels[v] are the sorted item-id deltas of version v against
	// its tree parent.
	Adds [][]uint32
	Dels [][]uint32
	// Capacity is the nominal chunk size C in bytes.
	Capacity int
	// Slack is the allowed overfill fraction; 0 means DefaultSlack.
	Slack float64
}

func (in *Input) slack() float64 {
	if in.Slack <= 0 {
		return DefaultSlack
	}
	return in.Slack
}

// hardCap is the absolute chunk-size ceiling C·(1+slack).
func (in *Input) hardCap() int {
	return int(float64(in.Capacity) * (1 + in.slack()))
}

// Validate checks the instance for structural problems.
func (in *Input) Validate() error {
	if in.Capacity <= 0 {
		return fmt.Errorf("partition: capacity must be positive, got %d", in.Capacity)
	}
	n := in.Graph.NumVersions()
	if len(in.Adds) != n || len(in.Dels) != n {
		return fmt.Errorf("partition: graph has %d versions, deltas have %d/%d", n, len(in.Adds), len(in.Dels))
	}
	for v := 0; v < n; v++ {
		for _, lists := range [][]uint32{in.Adds[v], in.Dels[v]} {
			for _, id := range lists {
				if int(id) >= len(in.Items) {
					return fmt.Errorf("partition: version %d references item %d of %d", v, id, len(in.Items))
				}
			}
		}
	}
	return nil
}

// Assignment is a partitioning result: per chunk, the item ids in placement
// order.
type Assignment struct {
	Chunks [][]uint32
	// Overfull counts chunks whose packed size exceeds the nominal
	// capacity (they stay within the slack ceiling).
	Overfull int
}

// NumChunks returns the number of chunks produced.
func (a *Assignment) NumChunks() int { return len(a.Chunks) }

// ChunkOf flattens the assignment into an item→chunk lookup. Unassigned
// items map to chunk.NoChunk.
func (a *Assignment) ChunkOf(numItems int) []uint32 {
	out := make([]uint32, numItems)
	for i := range out {
		out[i] = chunk.NoChunk
	}
	for cid, items := range a.Chunks {
		for _, it := range items {
			out[it] = uint32(cid)
		}
	}
	return out
}

// Algorithm is a partitioning strategy.
type Algorithm interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Partition solves the instance.
	Partition(in *Input) (*Assignment, error)
}

// packer fills chunks sequentially under the capacity/slack rule, skipping
// items that were already placed (records can be re-encountered through
// merge edges or re-adds; the paper deduplicates with a hash table, §3.2).
type packer struct {
	in       *Input
	placed   []bool
	chunks   [][]uint32
	sizes    []int
	cur      []uint32
	curSize  int
	overfull int
}

func newPacker(in *Input) *packer {
	return &packer{in: in, placed: make([]bool, len(in.Items))}
}

// add places one item, opening a new chunk when the current one cannot take
// it. A chunk accepts an item beyond the nominal capacity only while staying
// under the hard ceiling; an item larger than the ceiling gets a chunk of
// its own.
func (p *packer) add(item uint32) {
	if p.placed[item] {
		return
	}
	p.placed[item] = true
	size := p.in.Items[item].PackedSize()
	if p.curSize > 0 {
		fits := p.curSize+size <= p.in.Capacity
		squeeze := p.curSize < p.in.Capacity && p.curSize+size <= p.in.hardCap()
		if !fits && !squeeze {
			p.closeCurrent()
		}
	}
	p.cur = append(p.cur, item)
	p.curSize += size
}

// addAll places a list of items in order.
func (p *packer) addAll(items []uint32) {
	for _, it := range items {
		p.add(it)
	}
}

func (p *packer) closeCurrent() {
	if len(p.cur) == 0 {
		return
	}
	p.chunks = append(p.chunks, p.cur)
	p.sizes = append(p.sizes, p.curSize)
	if p.curSize > p.in.Capacity {
		p.overfull++
	}
	p.cur = nil
	p.curSize = 0
}

// finish closes the trailing chunk and returns the assignment.
func (p *packer) finish() *Assignment {
	p.closeCurrent()
	return &Assignment{Chunks: p.chunks, Overfull: p.overfull}
}

// partial is an unfinished chunk produced by a per-version chunking step of
// the Bottom-Up algorithm; partials are merged at the very end to reduce
// fragmentation (§3.2) without splitting their contents.
type partial struct {
	items []uint32
	size  int
}

// mergePartials packs whole partials into chunks, preserving creation order
// (partials of nearby versions stay adjacent — Bottom-Up emits them in
// post-order, so neighbours share long version runs) with a bounded
// first-fit lookback to curb fragmentation.
func mergePartials(in *Input, parts []partial) ([][]uint32, []int) {
	const lookback = 8
	var chunks [][]uint32
	var sizes []int
	for _, pt := range parts {
		placedAt := -1
		start := len(chunks) - lookback
		if start < 0 {
			start = 0
		}
		for i := len(chunks) - 1; i >= start; i-- {
			if sizes[i]+pt.size <= in.Capacity {
				placedAt = i
				break
			}
		}
		if placedAt == -1 {
			chunks = append(chunks, nil)
			sizes = append(sizes, 0)
			placedAt = len(chunks) - 1
		}
		chunks[placedAt] = append(chunks[placedAt], pt.items...)
		sizes[placedAt] += pt.size
	}
	return chunks, sizes
}

// forEachVersionItems walks the version tree in pre-order presenting each
// version's live item bitmap (delta apply/undo, same technique as
// corpus.ForEachVersion but in item space).
func forEachVersionItems(in *Input, fn func(v uint32, live *bitset.BitSet)) {
	if in.Graph.NumVersions() == 0 {
		return
	}
	live := bitset.New(len(in.Items))
	var walk func(v uint32)
	walk = func(v uint32) {
		for _, id := range in.Dels[v] {
			live.Clear(id)
		}
		for _, id := range in.Adds[v] {
			live.Set(id)
		}
		fn(v, live)
		for _, ch := range in.Graph.Children(types.VersionID(v)) {
			walk(uint32(ch))
		}
		for _, id := range in.Adds[v] {
			live.Clear(id)
		}
		for _, id := range in.Dels[v] {
			live.Set(id)
		}
	}
	walk(0)
}

// NewInputFromCorpus builds the k=1 (no record-level compression) instance:
// every record is its own item; deltas carry over directly from the corpus
// (paper §2.5 Case 1).
func NewInputFromCorpus(c *corpus.Corpus, capacity int) (*Input, error) {
	items := make([]chunk.Item, c.NumRecords())
	for id := 0; id < c.NumRecords(); id++ {
		it, err := chunk.SingleRecordItem(c, uint32(id))
		if err != nil {
			return nil, err
		}
		items[id] = it
	}
	n := c.NumVersions()
	adds := make([][]uint32, n)
	dels := make([][]uint32, n)
	for v := 0; v < n; v++ {
		adds[v] = c.Adds(types.VersionID(v))
		dels[v] = c.Dels(types.VersionID(v))
	}
	return &Input{
		Graph:    c.Graph(),
		Items:    items,
		Adds:     adds,
		Dels:     dels,
		Capacity: capacity,
	}, nil
}
