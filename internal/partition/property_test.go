package partition_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rstore/internal/partition"
	"rstore/internal/types"
	"rstore/internal/workload"
)

// instanceParams drive random instance generation for property tests.
type instanceParams struct {
	Versions uint8
	Records  uint8
	Depth    uint8
	Update   uint8
	Seed     int64
}

// TestQuickAllAlgorithmsTotalAndDisjoint property-checks the fundamental
// partitioning invariant on randomized datasets: every algorithm produces a
// total, disjoint assignment whose per-chunk sizes respect the hard cap.
func TestQuickAllAlgorithmsTotalAndDisjoint(t *testing.T) {
	f := func(p instanceParams) bool {
		versions := 3 + int(p.Versions)%40
		records := 8 + int(p.Records)%60
		depth := float64(1 + int(p.Depth)%versions)
		update := 0.05 + float64(p.Update%40)/100
		c, err := workload.Generate(workload.Spec{
			Name: "prop", Versions: versions, AvgDepth: depth,
			RecordsPerVersion: records, UpdatePct: update,
			Update: workload.UpdateType(p.Seed % 2), RecordSize: 64,
			Seed: p.Seed,
		})
		if err != nil {
			return false
		}
		in, err := partition.NewInputFromCorpus(c, 1024)
		if err != nil {
			return false
		}
		hard := int(float64(in.Capacity) * (1 + partition.DefaultSlack))
		for _, algo := range []partition.Algorithm{
			partition.BottomUp{}, partition.BottomUp{Beta: 4},
			partition.Shingle{Seed: p.Seed}, partition.DepthFirst{}, partition.BreadthFirst{},
		} {
			a, err := algo.Partition(in)
			if err != nil {
				return false
			}
			seen := make([]bool, len(in.Items))
			for _, ch := range a.Chunks {
				size := 0
				for _, it := range ch {
					if seen[it] {
						return false // duplicate placement
					}
					seen[it] = true
					size += in.Items[it].PackedSize()
				}
				if size > hard && len(ch) > 1 {
					return false // capacity violation
				}
			}
			for _, s := range seen {
				if !s {
					return false // unassigned item
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(99)),
	}); err != nil {
		t.Error(err)
	}
}

// TestQuickSpanConsistency property-checks that ChunkSpan agrees with a
// brute-force recomputation from materialized memberships.
func TestQuickSpanConsistency(t *testing.T) {
	f := func(seed int64) bool {
		c, err := workload.Generate(workload.Spec{
			Name: "span", Versions: 20, AvgDepth: 6, RecordsPerVersion: 30,
			UpdatePct: 0.2, Update: workload.RandomUpdate, RecordSize: 64,
			Seed: seed,
		})
		if err != nil {
			return false
		}
		in, err := partition.NewInputFromCorpus(c, 512)
		if err != nil {
			return false
		}
		a, err := partition.BottomUp{}.Partition(in)
		if err != nil {
			return false
		}
		spans := partition.ChunkSpan(in, a)
		chunkOf := a.ChunkOf(len(in.Items))
		for v := 0; v < c.NumVersions(); v++ {
			members, err := c.Members(uint32OK(v))
			if err != nil {
				return false
			}
			want := map[uint32]struct{}{}
			for _, id := range members {
				want[chunkOf[id]] = struct{}{}
			}
			if spans[v] != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func uint32OK(v int) types.VersionID { return types.VersionID(v) }
