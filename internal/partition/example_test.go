package partition_test

import (
	"fmt"

	"rstore/internal/corpus"
	"rstore/internal/partition"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// Example demonstrates partitioning a tiny three-version chain and reading
// the resulting spans.
func Example() {
	// Build the version tree: V0 → V1 → V2.
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v1)

	// Register deltas: V0 has records a and b; V1 modifies a; V2 deletes b.
	c := corpus.New(g)
	_ = c.AddVersionDelta(v0, &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "a", Version: v0}, Value: []byte("a-value-0")},
		{CK: types.CompositeKey{Key: "b", Version: v0}, Value: []byte("b-value-0")},
	}})
	_ = c.AddVersionDelta(v1, &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "a", Version: v1}, Value: []byte("a-value-1")}},
		Dels: []types.CompositeKey{{Key: "a", Version: v0}},
	})
	_ = c.AddVersionDelta(v2, &types.Delta{
		Dels: []types.CompositeKey{{Key: "b", Version: v0}},
	})

	// Partition with the Bottom-Up algorithm into ~2-record chunks, so
	// record lifetimes decide placement: the two records of the root
	// (which die earlier) share a chunk, the long-lived replacement of "a"
	// gets its own.
	in, _ := partition.NewInputFromCorpus(c, 32)
	assignment, _ := partition.BottomUp{}.Partition(in)

	spans := partition.ChunkSpan(in, assignment)
	fmt.Printf("chunks: %d\n", assignment.NumChunks())
	for v, span := range spans {
		fmt.Printf("version %d span: %d\n", v, span)
	}
	// Output:
	// chunks: 2
	// version 0 span: 1
	// version 1 span: 2
	// version 2 span: 1
}
