package partition_test

import (
	"testing"

	"rstore/internal/corpus"
	"rstore/internal/partition"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// TestExample5DFSvsBFS reproduces the paper's Example 5 (Fig 6): on the
// version tree V0 → {V1 → {V3, V4}, V2 → {V5, V6}} with 4 records in the
// root and 2 new records per other version, chunk capacity of 4 records,
// DFS packing admits descendants to share chunks along a root-leaf path,
// while BFS mixes sibling branches — so DFS's total span must not lose.
func TestExample5DFSvsBFS(t *testing.T) {
	g := vgraph.New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v0)
	for _, p := range []types.VersionID{v1, v1, v2, v2} { // V3..V6
		if _, err := g.AddVersion(p); err != nil {
			t.Fatal(err)
		}
	}

	c := corpus.New(g)
	payload := func(s string) []byte { return []byte(s + "-0123456789") }
	addN := func(v types.VersionID, n int, replace bool) {
		t.Helper()
		d := &types.Delta{}
		for i := 0; i < n; i++ {
			key := types.Key(string(rune('a'+int(v)*8+i)) + "k")
			d.Adds = append(d.Adds, types.Record{
				CK:    types.CompositeKey{Key: key, Version: v},
				Value: payload(string(key)),
			})
		}
		if err := c.AddVersionDelta(v, d); err != nil {
			t.Fatal(err)
		}
	}
	addN(0, 4, false)
	for v := types.VersionID(1); v <= 6; v++ {
		addN(v, 2, false)
	}

	recSize := c.Record(0).Size()
	in, err := partition.NewInputFromCorpus(c, 4*recSize)
	if err != nil {
		t.Fatal(err)
	}
	in.Slack = 0.01 // Example 5 uses exact 4-record chunks

	dfs, err := partition.DepthFirst{}.Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := partition.BreadthFirst{}.Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	dfsSpan := partition.TotalSpan(in, dfs)
	bfsSpan := partition.TotalSpan(in, bfs)
	if dfsSpan > bfsSpan {
		t.Fatalf("Example 5: DFS span %d worse than BFS %d", dfsSpan, bfsSpan)
	}

	// Under DFS, V1's records share a chunk with a *descendant* (V3), never
	// with its sibling branch V2 — the property Example 5 argues for.
	chunkOf := dfs.ChunkOf(len(in.Items))
	v1Chunk := chunkOf[c.Adds(1)[0]]
	for _, id := range c.Adds(2) {
		if chunkOf[id] == v1Chunk {
			t.Fatalf("DFS put sibling-branch records (V1, V2) in one chunk")
		}
	}
	sharedWithChild := false
	for _, id := range c.Adds(3) {
		if chunkOf[id] == v1Chunk {
			sharedWithChild = true
		}
	}
	if !sharedWithChild {
		t.Fatal("DFS did not co-locate V1 with its descendant V3")
	}
}

// TestBottomUpChainEquivalence: on a linear chain, items that die at the
// same version with the same run length must land contiguously; the
// resulting span must match DepthFirst (both optimal orderings coincide on
// chains with uniform record sizes) or better.
func TestBottomUpChainOrdering(t *testing.T) {
	g := vgraph.New()
	v, _ := g.AddRoot()
	for i := 0; i < 19; i++ {
		v, _ = g.AddVersion(v)
	}
	c := corpus.New(g)
	// Root: 16 records; each version i replaces record (i mod 16).
	keys := make([]types.Key, 16)
	root := &types.Delta{}
	for i := range keys {
		keys[i] = types.Key(string(rune('a' + i)))
		root.Adds = append(root.Adds, types.Record{
			CK:    types.CompositeKey{Key: keys[i], Version: 0},
			Value: []byte("0123456789abcdef"),
		})
	}
	if err := c.AddVersionDelta(0, root); err != nil {
		t.Fatal(err)
	}
	origin := make([]types.VersionID, 16)
	for i := 1; i < 20; i++ {
		ki := (i - 1) % 16
		d := &types.Delta{
			Adds: []types.Record{{
				CK:    types.CompositeKey{Key: keys[ki], Version: types.VersionID(i)},
				Value: []byte("fedcba9876543210"),
			}},
			Dels: []types.CompositeKey{{Key: keys[ki], Version: origin[ki]}},
		}
		if err := c.AddVersionDelta(types.VersionID(i), d); err != nil {
			t.Fatal(err)
		}
		origin[ki] = types.VersionID(i)
	}

	in, err := partition.NewInputFromCorpus(c, 4*c.Record(0).Size())
	if err != nil {
		t.Fatal(err)
	}
	bu, err := partition.BottomUp{}.Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := partition.DepthFirst{}.Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	// On this adversarial round-robin chain neither ordering dominates
	// (the paper's claim is statistical, over realistic datasets — see
	// Fig 8 / the fig8 bench, where BottomUp wins clearly); bound the
	// regression instead.
	buSpan, dfsSpan := partition.TotalSpan(in, bu), partition.TotalSpan(in, dfs)
	if buSpan > dfsSpan*5/4 {
		t.Fatalf("chain: BottomUp span %d more than 25%% worse than DFS %d", buSpan, dfsSpan)
	}
}

// TestPackerSlack verifies the §2.5 overfill rule directly: a chunk accepts
// a final item while under capacity and under the hard cap, and Overfull
// counts it.
func TestPackerSlack(t *testing.T) {
	g := vgraph.New()
	g.AddRoot()
	c := corpus.New(g)
	d := &types.Delta{}
	// Items of 100 bytes payload (+16 overhead +4 packing = 120 packed...
	// exact sizes depend on encoding; derive from the items themselves).
	for i := 0; i < 10; i++ {
		d.Adds = append(d.Adds, types.Record{
			CK:    types.CompositeKey{Key: types.Key(rune('a' + i)), Version: 0},
			Value: make([]byte, 100),
		})
	}
	if err := c.AddVersionDelta(0, d); err != nil {
		t.Fatal(err)
	}
	in, err := partition.NewInputFromCorpus(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	itemSize := in.Items[0].PackedSize()
	// Capacity 2.5 items, slack 25% → hard cap 3.125 items: chunks of 3
	// with the third squeezed in, each counted overfull.
	in.Capacity = itemSize*5/2 + 1
	a, err := partition.DepthFirst{}.Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range a.Chunks {
		if len(ch) > 3 {
			t.Fatalf("chunk of %d items exceeds hard cap", len(ch))
		}
	}
	if a.Overfull == 0 {
		t.Fatal("no overfull chunks counted despite squeeze")
	}
}
