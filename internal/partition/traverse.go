package partition

import (
	"rstore/internal/bitset"
)

// DepthFirst is the greedy traversal partitioner of paper Algorithm 4: walk
// the version tree depth-first from the root and pack each version's newly
// originated items into the current chunk as they are encountered. Because
// most versions differ little from their parent, items packed together along
// a root-to-leaf path stay accessible to all descendants (Example 5),
// making DFS the better of the two greedy orders.
type DepthFirst struct{}

// Name implements Algorithm.
func (DepthFirst) Name() string { return "DEPTHFIRST" }

// Partition implements Algorithm.
func (DepthFirst) Partition(in *Input) (*Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p := newPacker(in)
	for _, v := range in.Graph.PreOrder() {
		p.addAll(in.Adds[v])
	}
	packOrphans(in, p)
	return p.finish(), nil
}

// BreadthFirst packs items in breadth-first version order. The paper shows
// it is never better than DepthFirst except on linear chains, where the two
// coincide; it is included as the comparison point of Fig 8.
type BreadthFirst struct{}

// Name implements Algorithm.
func (BreadthFirst) Name() string { return "BREADTHFIRST" }

// Partition implements Algorithm.
func (BreadthFirst) Partition(in *Input) (*Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p := newPacker(in)
	for _, v := range in.Graph.BFSOrder() {
		p.addAll(in.Adds[v])
	}
	packOrphans(in, p)
	return p.finish(), nil
}

// packOrphans places any item that appeared in no version delta (possible
// only for items synthesized outside the graph, but assignments must be
// total for the chunk builder).
func packOrphans(in *Input, p *packer) {
	for id := range in.Items {
		p.add(uint32(id))
	}
}

// ChunkSpan computes, for a finished assignment, the span of each version —
// the number of distinct chunks holding its records — without building
// physical chunks. Used by the partitioning-quality experiments (Figs 8–10)
// where only spans matter.
func ChunkSpan(in *Input, a *Assignment) []int {
	chunkOf := a.ChunkOf(len(in.Items))
	spans := make([]int, in.Graph.NumVersions())
	forEachVersionItems(in, func(v uint32, live *bitset.BitSet) {
		seen := make(map[uint32]struct{})
		live.ForEach(func(item uint32) bool {
			seen[chunkOf[item]] = struct{}{}
			return true
		})
		spans[v] = len(seen)
	})
	return spans
}

// TotalSpan sums ChunkSpan over all versions.
func TotalSpan(in *Input, a *Assignment) int {
	total := 0
	for _, s := range ChunkSpan(in, a) {
		total += s
	}
	return total
}

// ForEachVersionLive calls fn once for every (version, live item) pair,
// walking the version tree with delta apply/undo. Experiment code uses it
// to compute filtered span metrics (e.g. partial-version spans).
func ForEachVersionLive(in *Input, fn func(v, item uint32)) {
	forEachVersionItems(in, func(v uint32, live *bitset.BitSet) {
		live.ForEach(func(item uint32) bool {
			fn(v, item)
			return true
		})
	})
}
