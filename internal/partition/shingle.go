package partition

import (
	"sort"

	"rstore/internal/bitset"
	"rstore/internal/minhash"
)

// Shingle is the min-hash partitioner of paper §3.1 (Algorithms 1 and 2):
// for every item, l min-hashes of its containing-version set form a shingle
// vector; items sorted lexicographically by shingles place items with highly
// overlapping version sets next to each other, and chunks are filled in that
// order. Unlike the tree-based partitioners it ignores the version-graph
// structure, which the paper shows costs it on shallow, branchy graphs.
type Shingle struct {
	// L is the number of hash functions (shingle length). 0 means
	// DefaultShingles.
	L int
	// Seed makes the hash family deterministic.
	Seed int64
}

// DefaultShingles is the default shingle vector length.
const DefaultShingles = 4

// Name implements Algorithm.
func (Shingle) Name() string { return "SHINGLE" }

// Partition implements Algorithm.
func (s Shingle) Partition(in *Input) (*Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	l := s.L
	if l <= 0 {
		l = DefaultShingles
	}
	family := minhash.NewFamily(l, s.Seed)

	// Compute each item's signature incrementally: one pre-order pass over
	// the tree maintaining the live item set, folding the version id into
	// every live item's signature (Algorithm 1 run for all items at once;
	// cost O(n·m'·l), the paper's stated bound).
	sigs := make([]minhash.Signature, len(in.Items))
	for i := range sigs {
		sigs[i] = minhash.NewSignature(l)
	}
	forEachVersionItems(in, func(v uint32, live *bitset.BitSet) {
		live.ForEach(func(item uint32) bool {
			sigs[item].Observe(family, v)
			return true
		})
	})

	// Algorithm 2: sort items by shingle vector, lexicographically, and
	// fill chunks in that order. Ties broken by item id for determinism.
	order := make([]uint32, len(in.Items))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		c := minhash.Compare(sigs[order[i]], sigs[order[j]])
		if c != 0 {
			return c < 0
		}
		return order[i] < order[j]
	})

	p := newPacker(in)
	p.addAll(order)
	return p.finish(), nil
}
