package partition_test

import (
	"testing"

	"rstore/internal/bitset"
	"rstore/internal/chunk"
	"rstore/internal/corpus"
	"rstore/internal/index"
	"rstore/internal/partition"
	"rstore/internal/subchunk"
	"rstore/internal/types"
	"rstore/internal/workload"
)

// genDataset builds a small deterministic dataset for integration tests.
func genDataset(t testing.TB, name string, versions, records int, depth float64, pct float64, upd workload.UpdateType) *corpus.Corpus {
	t.Helper()
	c, err := workload.Generate(workload.Spec{
		Name: name, Versions: versions, AvgDepth: depth,
		RecordsPerVersion: records, UpdatePct: pct, Update: upd,
		RecordSize: 128, Seed: 7,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("corpus validate: %v", err)
	}
	return c
}

func algorithms() []partition.Algorithm {
	return []partition.Algorithm{
		partition.BottomUp{},
		partition.BottomUp{Beta: 8},
		partition.Shingle{Seed: 11},
		partition.DepthFirst{},
		partition.BreadthFirst{},
	}
}

// TestAlgorithmsProduceCompleteAssignments checks the core invariant: every
// algorithm assigns every item to exactly one chunk.
func TestAlgorithmsProduceCompleteAssignments(t *testing.T) {
	for _, shape := range []struct {
		name  string
		depth float64
	}{
		{"chain", 0},
		{"branchy", 12},
	} {
		c := genDataset(t, shape.name, 60, 150, shape.depth, 0.10, workload.RandomUpdate)
		in, err := partition.NewInputFromCorpus(c, 4096)
		if err != nil {
			t.Fatalf("%s: input: %v", shape.name, err)
		}
		for _, algo := range algorithms() {
			a, err := algo.Partition(in)
			if err != nil {
				t.Fatalf("%s/%s: %v", shape.name, algo.Name(), err)
			}
			seen := make([]bool, len(in.Items))
			for _, ch := range a.Chunks {
				if len(ch) == 0 {
					t.Errorf("%s/%s: empty chunk", shape.name, algo.Name())
				}
				for _, it := range ch {
					if seen[it] {
						t.Fatalf("%s/%s: item %d in two chunks", shape.name, algo.Name(), it)
					}
					seen[it] = true
				}
			}
			for i, s := range seen {
				if !s {
					t.Fatalf("%s/%s: item %d unassigned", shape.name, algo.Name(), i)
				}
			}
		}
	}
}

// TestChunkSizesRespectSlack checks the fixed-chunk-size rule of §2.5: no
// chunk exceeds C·(1+slack) unless it holds a single oversized item.
func TestChunkSizesRespectSlack(t *testing.T) {
	c := genDataset(t, "sizes", 40, 120, 8, 0.15, workload.RandomUpdate)
	in, err := partition.NewInputFromCorpus(c, 2048)
	if err != nil {
		t.Fatal(err)
	}
	hard := int(float64(in.Capacity) * (1 + partition.DefaultSlack))
	for _, algo := range algorithms() {
		a, err := algo.Partition(in)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		for ci, ch := range a.Chunks {
			size := 0
			for _, it := range ch {
				size += in.Items[it].PackedSize()
			}
			if size > hard && len(ch) > 1 {
				t.Errorf("%s: chunk %d size %d exceeds hard cap %d with %d items",
					algo.Name(), ci, size, hard, len(ch))
			}
		}
	}
}

// TestBuildAndExtractVersions builds physical chunks for each algorithm and
// verifies that every version can be reconstructed exactly from chunks +
// chunk maps, matching the corpus's ground truth.
func TestBuildAndExtractVersions(t *testing.T) {
	c := genDataset(t, "extract", 30, 80, 6, 0.20, workload.SkewedUpdate)
	in, err := partition.NewInputFromCorpus(c, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range algorithms() {
		a, err := algo.Partition(in)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		proj := index.New()
		built, err := chunk.Build(c, in.Items, a.Chunks, proj)
		if err != nil {
			t.Fatalf("%s: build: %v", algo.Name(), err)
		}
		proj.Normalize()

		for v := types.VersionID(0); int(v) < c.NumVersions(); v++ {
			want, err := c.Members(v)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[types.CompositeKey][]byte)
			for _, cid := range proj.VersionChunks(v) {
				recs, err := chunk.DecodeChunk(built.Payloads[cid])
				if err != nil {
					t.Fatalf("%s: decode chunk %d: %v", algo.Name(), cid, err)
				}
				slots := built.Maps[cid].SlotsOf(v)
				if slots == nil {
					t.Fatalf("%s: chunk %d in projection of v%d but no map entry", algo.Name(), cid, v)
				}
				slots.ForEach(func(s uint32) bool {
					got[recs[s].CK] = recs[s].Value
					return true
				})
			}
			if len(got) != len(want) {
				t.Fatalf("%s: v%d: got %d records, want %d", algo.Name(), v, len(got), len(want))
			}
			for _, id := range want {
				r := c.Record(id)
				val, ok := got[r.CK]
				if !ok {
					t.Fatalf("%s: v%d missing record %v", algo.Name(), v, r.CK)
				}
				if string(val) != string(r.Value) {
					t.Fatalf("%s: v%d record %v payload mismatch", algo.Name(), v, r.CK)
				}
			}
		}
	}
}

// TestSubchunkRoundTrip verifies the k>1 pipeline: grouping, compression,
// transformed-tree partitioning, physical build, and exact reconstruction.
func TestSubchunkRoundTrip(t *testing.T) {
	c, err := workload.Generate(workload.Spec{
		Name: "sub", Versions: 40, AvgDepth: 10, RecordsPerVersion: 60,
		UpdatePct: 0.25, Update: workload.RandomUpdate,
		RecordSize: 256, Pd: 0.05, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 5, 12} {
		res, err := subchunk.Build(c, k, 4096)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Every record appears in exactly one item, groups within bound.
		counts := make([]int, c.NumRecords())
		for _, it := range res.In.Items {
			if len(it.Members) > k && k > 1 {
				t.Errorf("k=%d: item with %d members", k, len(it.Members))
			}
			for _, m := range it.Members {
				counts[m]++
			}
		}
		for id, n := range counts {
			if n != 1 {
				t.Fatalf("k=%d: record %d in %d items", k, id, n)
			}
		}
		if k > 1 && res.CompressionRatio() < 1.0 {
			t.Errorf("k=%d: compression ratio %.2f < 1", k, res.CompressionRatio())
		}

		a, err := partition.BottomUp{}.Partition(res.In)
		if err != nil {
			t.Fatalf("k=%d: partition: %v", k, err)
		}
		proj := index.New()
		built, err := chunk.Build(c, res.In.Items, a.Chunks, proj)
		if err != nil {
			t.Fatalf("k=%d: build: %v", k, err)
		}
		proj.Normalize()

		// Spot-check a few versions end to end.
		for _, v := range []types.VersionID{0, types.VersionID(c.NumVersions() / 2), types.VersionID(c.NumVersions() - 1)} {
			want, err := c.Members(v)
			if err != nil {
				t.Fatal(err)
			}
			gotSet := make(map[types.CompositeKey]string)
			for _, cid := range proj.VersionChunks(v) {
				recs, err := chunk.DecodeChunk(built.Payloads[cid])
				if err != nil {
					t.Fatal(err)
				}
				slots := built.Maps[cid].SlotsOf(v)
				if slots == nil {
					continue
				}
				slots.ForEach(func(s uint32) bool {
					gotSet[recs[s].CK] = string(recs[s].Value)
					return true
				})
			}
			if len(gotSet) != len(want) {
				t.Fatalf("k=%d v%d: got %d records want %d", k, v, len(gotSet), len(want))
			}
			for _, id := range want {
				r := c.Record(id)
				if gotSet[r.CK] != string(r.Value) {
					t.Fatalf("k=%d v%d: record %v mismatch", k, v, r.CK)
				}
			}
		}
	}
}

// TestBottomUpBeatsBaselineOrderings reproduces the headline comparison in
// miniature: on a branchy dataset, BottomUp's total span should not lose to
// BreadthFirst (the weakest tree traversal per Fig 8).
func TestBottomUpBeatsBaselineOrderings(t *testing.T) {
	c := genDataset(t, "quality", 120, 200, 15, 0.10, workload.RandomUpdate)
	in, err := partition.NewInputFromCorpus(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	span := func(algo partition.Algorithm) int {
		a, err := algo.Partition(in)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		return partition.TotalSpan(in, a)
	}
	bu := span(partition.BottomUp{})
	bfs := span(partition.BreadthFirst{})
	if bu > bfs {
		t.Errorf("BottomUp span %d worse than BreadthFirst %d", bu, bfs)
	}
}

// TestForEachVersionItemsMatchesMembers cross-validates the apply/undo item
// walk against direct materialization.
func TestForEachVersionItemsMatchesMembers(t *testing.T) {
	c := genDataset(t, "walk", 25, 50, 5, 0.2, workload.RandomUpdate)
	in, err := partition.NewInputFromCorpus(c, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a, err := partition.DepthFirst{}.Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	spans := partition.ChunkSpan(in, a)
	chunkOf := a.ChunkOf(len(in.Items))
	for v := 0; v < c.NumVersions(); v++ {
		members, err := c.Members(types.VersionID(v))
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint32]struct{})
		for _, id := range members {
			want[chunkOf[id]] = struct{}{}
		}
		if spans[v] != len(want) {
			t.Fatalf("v%d: span %d, want %d", v, spans[v], len(want))
		}
	}
	_ = bitset.New(1) // keep import for potential debugging helpers
}
