package partition

import (
	"sort"

	"rstore/internal/bitset"
	"rstore/internal/intset"
	"rstore/internal/types"
)

// BottomUp is the version-tree partitioner of paper §3.2 (Algorithm 3). It
// processes versions bottom-up; at every version it knows, for each item
// still alive, how many consecutive versions below contain it (the π
// collection), identifies the items that die when moving up (the ψ sets
// α¹…α^p), and chunks them immediately — deepest-spanning sets first — so
// items co-resident in long runs of versions land in the same chunks.
// Partial chunks left by each per-version chunking step are merged at the
// very end to curb fragmentation.
//
// The π sets are computed directly from deltas rather than materialized
// version contents: S¹_i = ∆⁻_{i,c}, S^{j+1}_i = S^j_c \ ∆⁺_{i,c} and
// α^j_i = S^j_c ∩ ∆⁺_{i,c}, which keeps per-version work proportional to
// delta sizes (the O(nβm′) bound of §3.2).
type BottomUp struct {
	// Beta bounds the number of sets retained per subtree (§3.2.1); when a
	// version's collection exceeds Beta, smallest sets are merged into
	// their parent set (the next-shallower run). 0 means unlimited.
	Beta int
	// NoPartialMerge disables the end-of-run merging of per-version
	// partial chunks (§3.2 merges them "to reduce fragmentation"). With it
	// set, every partial becomes its own chunk — an ablation knob that
	// isolates the merge step's storage-vs-span trade-off.
	NoPartialMerge bool
}

// Name implements Algorithm.
func (BottomUp) Name() string { return "BOTTOM-UP" }

// spanSet is one member of a π collection: the items whose run of
// consecutive containing versions, counted from the collection's version
// downward, has the given weight.
type spanSet struct {
	weight int
	items  intset.Set
}

// Partition implements Algorithm.
func (b BottomUp) Partition(in *Input) (*Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p := newPacker(in)
	var partials []partial

	// chunkSets packs one per-version chunking step: sets in descending
	// weight order fill fresh chunks; the unfinished tail becomes a partial.
	chunkSets := func(sets []spanSet) {
		sort.SliceStable(sets, func(i, j int) bool { return sets[i].weight > sets[j].weight })
		for _, s := range sets {
			p.addAll(s.items)
		}
		if pt := p.extractPartial(); len(pt.items) > 0 {
			partials = append(partials, pt)
		}
	}

	live := bitset.New(len(in.Items))
	var walk func(v types.VersionID) []spanSet
	walk = func(v types.VersionID) []spanSet {
		vi := uint32(v)
		for _, id := range in.Dels[vi] {
			live.Clear(id)
		}
		for _, id := range in.Adds[vi] {
			live.Set(id)
		}
		defer func() {
			for _, id := range in.Adds[vi] {
				live.Clear(id)
			}
			for _, id := range in.Dels[vi] {
				live.Set(id)
			}
		}()

		children := in.Graph.Children(v)
		if len(children) == 0 {
			// Leaf: everything alive here has run length 1.
			snapshot := intset.Set(live.Slice())
			if len(snapshot) == 0 {
				return nil
			}
			return []spanSet{{weight: 1, items: snapshot}}
		}

		var pi []spanSet
		if len(children) == 1 {
			pi = b.processLinear(in, children[0], walk(children[0]), chunkSets)
		} else {
			pi = b.processBranching(in, children, walk, chunkSets)
		}
		pi = b.limitBeta(pi)
		return pi
	}

	root := walk(0)
	// Nothing remains above the root: chunk the entire remaining collection.
	chunkSets(root)

	if b.NoPartialMerge {
		// Ablation: every per-version partial stays its own chunk.
		for _, pt := range partials {
			p.chunks = append(p.chunks, pt.items)
			p.sizes = append(p.sizes, pt.size)
		}
	} else {
		// Merge the per-version partials to reduce fragmentation (§3.2).
		chunks, sizes := mergePartials(in, partials)
		for i, c := range chunks {
			p.chunks = append(p.chunks, c)
			p.sizes = append(p.sizes, sizes[i])
			if sizes[i] > in.Capacity {
				p.overfull++
			}
		}
	}
	packOrphans(in, p)
	return p.finish(), nil
}

// processLinear handles a version with exactly one child c: dead items
// (α sets) are chunked, surviving sets shift one deeper, and ∆⁻ becomes S¹.
func (b BottomUp) processLinear(in *Input, c types.VersionID, childPi []spanSet, chunkSets func([]spanSet)) []spanSet {
	adds := intset.Set(in.Adds[c]) // items in c but not in the parent
	dels := intset.Set(in.Dels[c]) // items in the parent but not in c

	var dead []spanSet
	pi := make([]spanSet, 0, len(childPi)+1)
	for _, s := range childPi {
		d := intset.Intersect(s.items, adds)
		if len(d) > 0 {
			dead = append(dead, spanSet{weight: s.weight, items: d})
		}
		surv := s.items
		if len(d) > 0 {
			surv = intset.Diff(s.items, d)
		}
		if len(surv) > 0 {
			pi = append(pi, spanSet{weight: s.weight + 1, items: surv})
		}
	}
	if len(dead) > 0 {
		chunkSets(dead)
	}
	if len(dels) > 0 {
		// S¹: present at this version but in no version below.
		pi = append(pi, spanSet{weight: 1, items: dels.Clone()})
	}
	return pi
}

// processBranching handles a version with multiple children: surviving items
// accumulate their per-child run lengths (the paper's additive count), dead
// sets from all children with equal weight are chunked together, and S¹ is
// the intersection of the children's ∆⁻ sets.
func (b BottomUp) processBranching(in *Input, children []types.VersionID, walk func(types.VersionID) []spanSet, chunkSets func([]spanSet)) []spanSet {
	acc := make(map[uint32]int) // surviving item → Σ child run lengths
	deadByWeight := make(map[int][]uint32)
	for _, c := range children {
		childPi := walk(c)
		adds := intset.Set(in.Adds[uint32(c)])
		for _, s := range childPi {
			d := intset.Intersect(s.items, adds)
			if len(d) > 0 {
				deadByWeight[s.weight] = append(deadByWeight[s.weight], d...)
			}
			surv := s.items
			if len(d) > 0 {
				surv = intset.Diff(s.items, d)
			}
			for _, item := range surv {
				acc[item] += s.weight
			}
		}
	}

	if len(deadByWeight) > 0 {
		dead := make([]spanSet, 0, len(deadByWeight))
		for w, items := range deadByWeight {
			dead = append(dead, spanSet{weight: w, items: intset.FromUnsorted(items)})
		}
		chunkSets(dead)
	}

	// S¹ = ∩ over children of ∆⁻: alive here, absent from every child.
	s1 := intset.Set(in.Dels[uint32(children[0])])
	for _, c := range children[1:] {
		s1 = intset.Intersect(s1, intset.Set(in.Dels[uint32(c)]))
		if len(s1) == 0 {
			break
		}
	}

	buckets := make(map[int][]uint32)
	for item, w := range acc {
		buckets[w+1] = append(buckets[w+1], item)
	}
	if len(s1) > 0 {
		buckets[1] = append(buckets[1], s1...)
	}
	pi := make([]spanSet, 0, len(buckets))
	for w, items := range buckets {
		pi = append(pi, spanSet{weight: w, items: intset.FromUnsorted(items)})
	}
	sort.Slice(pi, func(i, j int) bool { return pi[i].weight < pi[j].weight })
	return pi
}

// limitBeta enforces the subtree bound β (§3.2.1): while the collection has
// more than β sets, the smallest set is merged into its parent — the set
// with the next-smaller weight (or the next-larger when the smallest-weight
// set is chosen). Merging trades partitioning quality (run-length
// resolution) for processing cost, the Fig 9 trade-off.
func (b BottomUp) limitBeta(pi []spanSet) []spanSet {
	if b.Beta <= 0 || len(pi) <= b.Beta {
		return pi
	}
	sort.Slice(pi, func(i, j int) bool { return pi[i].weight < pi[j].weight })
	for len(pi) > b.Beta {
		smallest := 0
		for i := 1; i < len(pi); i++ {
			if len(pi[i].items) < len(pi[smallest].items) {
				smallest = i
			}
		}
		target := smallest - 1
		if target < 0 {
			target = 1
		}
		merged := spanSet{
			weight: pi[target].weight,
			items:  intset.Union(pi[target].items, pi[smallest].items),
		}
		pi[target] = merged
		pi = append(pi[:smallest], pi[smallest+1:]...)
	}
	return pi
}

// extractPartial removes the packer's in-progress chunk and returns it as a
// partial, leaving the packer ready for a fresh chunk (each per-version
// chunking step "starts filling a new chunk", §3.2).
func (p *packer) extractPartial() partial {
	pt := partial{items: p.cur, size: p.curSize}
	p.cur = nil
	p.curSize = 0
	return pt
}
