package rvet

import (
	"go/ast"
	"go/types"
)

// Callee resolves a call expression to the function or method object it
// invokes, or nil for indirect calls (function values, conversions).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. "os".Rename, "time".Now).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Type().(*types.Signature).Recv() == nil
}

// ReceiverType returns the method receiver's type with any pointer
// indirection removed, or nil if call is not a method call.
func ReceiverType(info *types.Info, call *ast.CallExpr) types.Type {
	fn := Callee(info, call)
	if fn == nil {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t
}

// IsMethodCall reports whether call invokes a method named name whose
// receiver is the named type pkgPath.typeName (through a pointer or not).
func IsMethodCall(info *types.Info, call *ast.CallExpr, pkgPath, typeName, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	named, ok := ReceiverType(info, call).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// MethodOnPackageType returns the method name if call invokes a method
// whose receiver's named type is declared in package pkgPath (interfaces
// included), and "" otherwise. It answers "is this a call on some net.*
// value" without enumerating net's concrete types.
func MethodOnPackageType(info *types.Info, call *ast.CallExpr, pkgPath string) string {
	fn := Callee(info, call)
	if fn == nil {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == pkgPath {
			return fn.Name()
		}
	}
	return ""
}

// IsErrorSentinel reports whether obj is a package-level error variable
// following the ErrXxx naming convention — the sentinels errclass requires
// errors.Is for.
func IsErrorSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	name := v.Name()
	if len(name) < 4 || name[:3] != "Err" || name[3] < 'A' || name[3] > 'Z' {
		return false
	}
	return types.Implements(v.Type(), errorInterface) || types.Implements(types.NewPointer(v.Type()), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// ExprObject resolves an expression to the object it names: a bare
// identifier or a pkg.Ident / recv.Field selector. Returns nil for
// anything more structured.
func ExprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// MutexOp recognizes x.Lock/TryLock/RLock/TryRLock/Unlock/RUnlock calls on
// a sync.Mutex or sync.RWMutex value, returning the mutex expression and
// the operation ("lock", "rlock", "unlock", "runlock"). Shared by the
// lock-discipline analyzers (lockio, lockorder) so they cannot disagree on
// what counts as a lock operation.
func MutexOp(info *types.Info, call *ast.CallExpr) (expr ast.Expr, mode string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "TryLock":
		mode = "lock"
	case "RLock", "TryRLock":
		mode = "rlock"
	case "Unlock":
		mode = "unlock"
	case "RUnlock":
		mode = "runlock"
	default:
		return nil, "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil, "", false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return nil, "", false
	}
	return sel.X, mode, true
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
