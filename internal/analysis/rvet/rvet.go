// Package rvet is the self-contained driver framework behind rstore-vet,
// the project's static-analysis suite (see docs/ANALYZERS.md). It plays the
// role golang.org/x/tools/go/analysis plays for upstream vet tools —
// Analyzer values with a Run function over a type-checked package, a
// diagnostic sink, a testdata harness (rvettest), and the `go vet -vettool`
// unit protocol (unit.go) — but is built on the standard library alone, so
// the zero-dependency module stays zero-dependency.
//
// The one deliberate extension over x/tools is the escape hatch: a finding
// that is intentional is suppressed with a comment of the form
//
//	//lint:rstore-vet <analyzer>: <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory — an escape without one (or naming an unknown analyzer) is
// itself a diagnostic, so suppressions stay auditable.
package rvet

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Doc's first line is the
// one-line summary `rstore-vet -list` prints; the rest elaborates.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Summary returns the first line of Doc.
func (a *Analyzer) Summary() string {
	if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
		return a.Doc[:i]
	}
	return a.Doc
}

// Diagnostic is one reported finding, already positioned.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path. Test variants keep their go/list
	// spelling ("pkg [pkg.test]", "pkg_test"); scope checks use BasePath.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// BasePath is Path with test-variant decorations stripped: the
// "pkg [pkg.test]" recompiled-for-test spelling and the "_test" external
// test package suffix both reduce to the package under test, so analyzer
// scoping by path prefix treats them alike.
func (p *Package) BasePath() string {
	path := p.Path
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// IsTestFile reports whether pos sits in a _test.go file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Loader resolves an import path to a loaded, type-checked package with
// full syntax — the hook interprocedural analyzers (lockorder, wiresym)
// use to look across package boundaries. Production drivers back it with
// the go tool (NewModuleLoader); rvettest backs it with fixture sibling
// packages. Loaders are memoized by the driver, so analyzers call them
// freely.
type Loader func(importPath string) (*Package, error)

// ErrNoLoader is returned by Pass.Load under drivers that provide no
// cross-package loading (single-package fixture runs). Analyzers treat it
// like any load failure: degrade to package-local analysis.
var ErrNoLoader = errors.New("rvet: driver provides no package loader")

// RunConfig carries optional driver capabilities for RunWith.
type RunConfig struct {
	// Load resolves other packages' source for interprocedural analyzers;
	// nil means Pass.Load fails with ErrNoLoader.
	Load Loader
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report  func(Diagnostic)
	escapes *escapeIndex
	load    Loader
}

// Load resolves another package's source through the driver's loader.
// It fails with ErrNoLoader when the driver has none. Loaded packages use
// their own FileSet: diagnostics must still be reported at positions in
// the pass's own package.
func (p *Pass) Load(importPath string) (*Package, error) {
	if p.load == nil {
		return nil, ErrNoLoader
	}
	return p.load(importPath)
}

// Fset, Files, Path, TypesPkg and TypesInfo are conveniences over Pkg.
func (p *Pass) Fset() *token.FileSet     { return p.Pkg.Fset }
func (p *Pass) Files() []*ast.File       { return p.Pkg.Files }
func (p *Pass) Path() string             { return p.Pkg.Path }
func (p *Pass) TypesInfo() *types.Info   { return p.Pkg.Info }
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// BasePath is Pkg.BasePath: the import path with test-variant decorations
// stripped.
func (p *Pass) BasePath() string { return p.Pkg.BasePath() }

// InScope reports whether the package under analysis lives at or below any
// of the given import-path prefixes.
func (p *Pass) InScope(prefixes ...string) bool {
	base := p.Pkg.BasePath()
	for _, pre := range prefixes {
		if base == pre || strings.HasPrefix(base, pre+"/") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos sits in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// Reportf records a finding at pos unless a matching escape comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.escapes.suppress(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// escapeName is the diagnostic "analyzer" name under which the framework
// reports malformed escape comments; it is not suppressible.
const escapeName = "rstore-vet"

var escapeRe = regexp.MustCompile(`^//lint:rstore-vet\b(.*)$`)

type escape struct {
	analyzer string
	reason   string
}

// escapeIndex maps (filename, line) to parsed escape comments.
type escapeIndex struct {
	byLine map[string]map[int]escape
}

// parseEscapes scans every comment of the package for escape-hatch
// comments. Malformed escapes — missing analyzer name, unknown analyzer,
// or an empty reason — are reported through sink immediately: a
// suppression that cannot be attributed and justified is a finding, not a
// suppression.
func parseEscapes(pkg *Package, known []*Analyzer, sink func(Diagnostic)) *escapeIndex {
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	idx := &escapeIndex{byLine: make(map[string]map[int]escape)}
	bad := func(pos token.Pos, format string, args ...any) {
		sink(Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: escapeName, Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := escapeRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				rest := strings.TrimSpace(m[1])
				name, reason, ok := strings.Cut(rest, ":")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				switch {
				case !ok || name == "":
					bad(c.Pos(), "escape comment must name an analyzer: //lint:rstore-vet <analyzer>: <reason>")
					continue
				case !names[name]:
					bad(c.Pos(), "escape comment names unknown analyzer %q", name)
					continue
				case reason == "":
					bad(c.Pos(), "escape comment for %q requires a reason after the colon", name)
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				lines := idx.byLine[position.Filename]
				if lines == nil {
					lines = make(map[int]escape)
					idx.byLine[position.Filename] = lines
				}
				lines[position.Line] = escape{analyzer: name, reason: reason}
			}
		}
	}
	return idx
}

// suppress reports whether an escape for analyzer sits on the diagnostic's
// line or the line directly above it.
func (idx *escapeIndex) suppress(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if e, ok := lines[line]; ok && e.analyzer == analyzer {
			return true
		}
	}
	return false
}

// Run executes every analyzer over pkg and returns the surviving
// diagnostics sorted by position. An analyzer returning an error surfaces
// as a diagnostic at the package's first file, so a broken check fails
// loudly instead of silently passing.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunWith(pkg, analyzers, RunConfig{})
}

// RunWith is Run with driver capabilities (cross-package loading).
func RunWith(pkg *Package, analyzers []*Analyzer, cfg RunConfig) []Diagnostic {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }
	escapes := parseEscapes(pkg, analyzers, sink)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, report: sink, escapes: escapes, load: cfg.Load}
		if err := a.Run(pass); err != nil {
			pos := token.Position{Filename: pkg.Path}
			if len(pkg.Files) > 0 {
				pos = pkg.Fset.Position(pkg.Files[0].Pos())
			}
			diags = append(diags, Diagnostic{Pos: pos, Analyzer: a.Name, Message: fmt.Sprintf("analyzer failed: %v", err)})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}
