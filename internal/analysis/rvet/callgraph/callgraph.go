// Package callgraph builds the package-local call graph the
// interprocedural rvet analyzers share. It generalizes the fixed-point
// machinery fsyncrename grew for its sync-closure: a map from every
// declared function to its body, the call edges between them, and a
// transitive-closure operator over any per-call predicate. lockorder uses
// the declarations to summarize which locks a callee may take,
// goroutinelife uses them to resolve `go f()` targets and propagate
// stop-signal observation, and fsyncrename's sync sets are a direct
// Closure call.
//
// The graph is package-local and name-resolved: indirect calls through
// function values or interfaces have no edge. Analyzers that need
// cross-package reach resolve the callee's package through
// rvet.Pass.Load and build a Graph per package.
package callgraph

import (
	"go/ast"
	"go/types"

	"rstore/internal/analysis/rvet"
)

// Graph is one package's declared functions and the call edges between
// them. Test files are excluded — the production drivers analyze non-test
// compilation units, and fixtures never mix.
type Graph struct {
	Pkg *rvet.Package
	// Decls maps each declared function or method to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls lists, per function, the package-local functions its body
	// calls (anywhere in the body, function literals included).
	Calls map[*types.Func][]*types.Func
}

// Build constructs the call graph of pkg.
func Build(pkg *rvet.Package) *Graph {
	g := &Graph{
		Pkg:   pkg,
		Decls: make(map[*types.Func]*ast.FuncDecl),
		Calls: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				g.Decls[fn] = fd
			}
		}
	}
	for fn, fd := range g.Decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := rvet.Callee(pkg.Info, call); callee != nil {
				if _, local := g.Decls[callee]; local {
					g.Calls[fn] = append(g.Calls[fn], callee)
				}
			}
			return true
		})
	}
	return g
}

// Closure returns the set of functions that directly contain a call
// satisfying pred, or transitively (through package-local calls) reach one
// that does — the fixed point fsyncrename uses for its file- and
// directory-sync sets.
func (g *Graph) Closure(pred func(*ast.CallExpr) bool) map[*types.Func]bool {
	direct := make(map[*types.Func]bool)
	for fn, fd := range g.Decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pred(call) {
				direct[fn] = true
				return false
			}
			return true
		})
	}
	g.Propagate(direct)
	return direct
}

// Propagate closes set over the call edges in place: a function whose body
// calls a member of set (transitively) joins it. Analyzers with their own
// notion of "directly satisfying" seed the set and let the graph do the
// fixed point.
func (g *Graph) Propagate(set map[*types.Func]bool) {
	for changed := true; changed; {
		changed = false
		for fn, callees := range g.Calls {
			if set[fn] {
				continue
			}
			for _, callee := range callees {
				if set[callee] {
					set[fn] = true
					changed = true
					break
				}
			}
		}
	}
}
