// Package rvettest is the analysistest counterpart for rvet analyzers: it
// type-checks a testdata fixture directory, runs one analyzer over it, and
// matches the diagnostics against `// want "regexp"` comments in the
// fixture sources. Every want must be hit and every diagnostic must be
// wanted, so fixtures are exact: they fail without the analyzer (unmatched
// wants) and pass with it.
//
// Because analyzers scope themselves by import path, the fixture is checked
// under a caller-chosen fake import path (e.g. a fixture exercising the
// fsyncrename rules is presented as a package under rstore/internal/engine).
// Fixture imports resolve against the real module and standard library via
// `go list -export`, exactly like the production drivers.
package rvettest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"rstore/internal/analysis/rvet"
)

var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run analyzes the fixture directory under importPath with analyzer a and
// reports any mismatch between diagnostics and want comments through t.
func Run(t *testing.T, a *rvet.Analyzer, dir, importPath string) {
	t.Helper()
	pkg := load(t, dir, importPath)
	wants := collectWants(t, pkg.Fset, pkg.Files)
	diags := rvet.Run(pkg, []*rvet.Analyzer{a})
	match(t, diags, wants)
}

// match verifies diagnostics and want comments cover each other exactly.
func match(t *testing.T, diags []rvet.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// RunTree analyzes a multi-package fixture: root holds one subdirectory per
// fixture package, paths maps each subdirectory name to the fake import
// path it is checked under, and target names the subdirectory the analyzer
// runs on. Fixture packages may import each other by fake path — they are
// type-checked in dependency order against one shared FileSet and resolve
// through rvet.Pass.Load, which is how lockorder's cross-package lock graph
// and wiresym's consumer scans are exercised without compiled fixtures.
// Want comments are collected from every file in the tree.
func RunTree(t *testing.T, a *rvet.Analyzer, root, target string, paths map[string]string) {
	t.Helper()
	pkg, loader, files, fset := loadTree(t, root, target, paths)
	wants := collectWants(t, fset, files)
	diags := rvet.RunWith(pkg, []*rvet.Analyzer{a}, rvet.RunConfig{Load: loader})
	match(t, diags, wants)
}

// TreeDiagnostics loads a multi-package fixture like RunTree and returns
// the raw diagnostics without want matching (the tree counterpart of
// Diagnostics, for escape-hatch fixtures).
func TreeDiagnostics(t *testing.T, a *rvet.Analyzer, root, target string, paths map[string]string) []rvet.Diagnostic {
	t.Helper()
	pkg, loader, _, _ := loadTree(t, root, target, paths)
	return rvet.RunWith(pkg, []*rvet.Analyzer{a}, rvet.RunConfig{Load: loader})
}

// loadTree parses and type-checks every fixture package under root in
// dependency order, returning the target package, a Loader over the whole
// tree, and all files with their shared FileSet.
func loadTree(t *testing.T, root, target string, paths map[string]string) (*rvet.Package, rvet.Loader, []*ast.File, *token.FileSet) {
	t.Helper()
	if _, ok := paths[target]; !ok {
		t.Fatalf("target %q not in the fixture path map", target)
	}
	fake := make(map[string]bool, len(paths))
	for _, p := range paths {
		fake[p] = true
	}
	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	var allFiles []*ast.File
	subdirs := make([]string, 0, len(paths))
	for sub := range paths {
		subdirs = append(subdirs, sub)
	}
	sort.Strings(subdirs)
	for _, sub := range subdirs {
		names, err := filepath.Glob(filepath.Join(root, sub, "*.go"))
		if err != nil || len(names) == 0 {
			t.Fatalf("no fixture files in %s/%s (%v)", root, sub, err)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			parsed[sub] = append(parsed[sub], f)
			allFiles = append(allFiles, f)
		}
	}
	checked := make(map[string]*rvet.Package)
	deps := make(map[string]*types.Package)
	remaining := append([]string(nil), subdirs...)
	for len(remaining) > 0 {
		var next []string
		for _, sub := range remaining {
			ready := true
			for _, f := range parsed[sub] {
				for _, imp := range f.Imports {
					p := strings.Trim(imp.Path.Value, `"`)
					if fake[p] && deps[p] == nil {
						ready = false
					}
				}
			}
			if !ready {
				next = append(next, sub)
				continue
			}
			exports, err := exportData(parsed[sub], fake)
			if err != nil {
				t.Fatalf("resolving %s imports: %v", sub, err)
			}
			pkg, err := rvet.CheckParsedDeps(paths[sub], fset, parsed[sub], nil, exports, deps)
			if err != nil {
				t.Fatalf("type-checking fixture package %s: %v", sub, err)
			}
			checked[paths[sub]] = pkg
			deps[paths[sub]] = pkg.Types
		}
		if len(next) == len(remaining) {
			t.Fatalf("import cycle among fixture packages: %v", next)
		}
		remaining = next
	}
	loader := func(importPath string) (*rvet.Package, error) {
		if pkg, ok := checked[importPath]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("rvettest: %s is not a fixture package of this tree", importPath)
	}
	return checked[paths[target]], loader, allFiles, fset
}

// Diagnostics loads dir like Run and returns the raw diagnostics without
// want matching. Tests use it for diagnostics that cannot carry a trailing
// want comment — notably malformed escape-hatch comments, which the
// framework reports on the comment's own line.
func Diagnostics(t *testing.T, a *rvet.Analyzer, dir, importPath string) []rvet.Diagnostic {
	t.Helper()
	return rvet.Run(load(t, dir, importPath), []*rvet.Analyzer{a})
}

// load parses and type-checks every fixture file in dir as one package
// under the fake import path.
func load(t *testing.T, dir, importPath string) *rvet.Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	exports, err := exportData(files, nil)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	pkg, err := rvet.CheckParsed(importPath, fset, files, nil, exports)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return pkg
}

// collectWants parses `// want "re" ["re" ...]` comments. The want applies
// to the comment's own line, so trailing comments annotate the offending
// statement directly.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pattern, err := unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return out
		}
		out = append(out, s[:i+1])
		s = s[i+1:]
	}
}

func unquote(q string) (string, error) {
	var s string
	if err := json.Unmarshal([]byte(q), &s); err != nil {
		return "", err
	}
	return s, nil
}

// exportData resolves the fixture's imports (and their dependencies) to
// compiled export data via `go list -export`, run from the module so
// rstore-internal imports resolve alongside the standard library. Imports
// in skip (fake fixture-package paths, which the go tool cannot know)
// are left to the source-dependency map.
func exportData(files []*ast.File, skip map[string]bool) (map[string]string, error) {
	seen := make(map[string]bool)
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "unsafe" || seen[path] || skip[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	sort.Strings(imports)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, imports...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
