// Package rvettest is the analysistest counterpart for rvet analyzers: it
// type-checks a testdata fixture directory, runs one analyzer over it, and
// matches the diagnostics against `// want "regexp"` comments in the
// fixture sources. Every want must be hit and every diagnostic must be
// wanted, so fixtures are exact: they fail without the analyzer (unmatched
// wants) and pass with it.
//
// Because analyzers scope themselves by import path, the fixture is checked
// under a caller-chosen fake import path (e.g. a fixture exercising the
// fsyncrename rules is presented as a package under rstore/internal/engine).
// Fixture imports resolve against the real module and standard library via
// `go list -export`, exactly like the production drivers.
package rvettest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"rstore/internal/analysis/rvet"
)

var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run analyzes the fixture directory under importPath with analyzer a and
// reports any mismatch between diagnostics and want comments through t.
func Run(t *testing.T, a *rvet.Analyzer, dir, importPath string) {
	t.Helper()
	pkg := load(t, dir, importPath)
	wants := collectWants(t, pkg.Fset, pkg.Files)
	diags := rvet.Run(pkg, []*rvet.Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// Diagnostics loads dir like Run and returns the raw diagnostics without
// want matching. Tests use it for diagnostics that cannot carry a trailing
// want comment — notably malformed escape-hatch comments, which the
// framework reports on the comment's own line.
func Diagnostics(t *testing.T, a *rvet.Analyzer, dir, importPath string) []rvet.Diagnostic {
	t.Helper()
	return rvet.Run(load(t, dir, importPath), []*rvet.Analyzer{a})
}

// load parses and type-checks every fixture file in dir as one package
// under the fake import path.
func load(t *testing.T, dir, importPath string) *rvet.Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	exports, err := exportData(files)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	pkg, err := rvet.CheckParsed(importPath, fset, files, nil, exports)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return pkg
}

// collectWants parses `// want "re" ["re" ...]` comments. The want applies
// to the comment's own line, so trailing comments annotate the offending
// statement directly.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pattern, err := unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return out
		}
		out = append(out, s[:i+1])
		s = s[i+1:]
	}
}

func unquote(q string) (string, error) {
	var s string
	if err := json.Unmarshal([]byte(q), &s); err != nil {
		return "", err
	}
	return s, nil
}

// exportData resolves the fixture's imports (and their dependencies) to
// compiled export data via `go list -export`, run from the module so
// rstore-internal imports resolve alongside the standard library.
func exportData(files []*ast.File) (map[string]string, error) {
	seen := make(map[string]bool)
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			imports = append(imports, path)
		}
	}
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	sort.Strings(imports)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, imports...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
