package rvet

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// unitConfig mirrors the JSON vet.cfg file cmd/go hands a -vettool binary
// for each package unit (the same contract x/tools' unitchecker consumes).
// Fields the suite does not use (facts inputs, ignored files) are parsed so
// decoding stays strict about nothing and tolerant of everything.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single package unit described by the vet.cfg file at
// cfgPath and returns the process exit code: 0 clean, 1 driver error, 2
// findings. Diagnostics go to stderr in the standard file:line:col form so
// `go vet` surfaces them verbatim.
//
// The suite carries no cross-package facts, so the facts output file (which
// cmd/go caches and feeds back as PackageVetx on dependents) is a constant
// marker, written unconditionally — including for units the suite skips —
// because cmd/go expects it to exist after a successful run.
func RunUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rstore-vet: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rstore-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("rstore-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "rstore-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Only this module's packages carry rstore invariants; dependency units
	// (the standard library) are acknowledged without the cost of a parse.
	base := cfg.ImportPath
	if i := strings.Index(base, " ["); i >= 0 {
		base = base[:i]
	}
	if base != "rstore" && !strings.HasPrefix(base, "rstore/") {
		return 0
	}
	if len(cfg.GoFiles) == 0 {
		return 0
	}
	pkg, err := CheckPackage(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rstore-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	// Cross-package analyzers resolve sources through the go tool anchored
	// at the unit's own directory — inside the module, so rstore import
	// paths resolve exactly as in standalone mode.
	diags := RunWith(pkg, analyzers, RunConfig{Load: NewModuleLoader(cfg.Dir)})
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
