package rvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// LoadPackages loads and type-checks the packages matching patterns, using
// the go tool for package discovery and compiled export data for import
// resolution — the same offline mechanism the `go vet -vettool` unit
// protocol uses, so the standalone and vet-driven modes see identical
// type information. Only non-test files are loaded; test packages are
// covered by the vettool path, which receives them as separate units.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}
	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := CheckPackage(t.ImportPath, files, nil, exports)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckPackage parses and type-checks one package from its file list.
// importMap maps source import paths to canonical package paths (nil for
// the identity map); packageFile maps canonical paths to gc export data
// files.
func CheckPackage(path string, filenames []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return CheckParsed(path, fset, files, importMap, packageFile)
}

// CheckParsed type-checks already-parsed files under the given import path.
func CheckParsed(path string, fset *token.FileSet, files []*ast.File, importMap, packageFile map[string]string) (*Package, error) {
	return CheckParsedDeps(path, fset, files, importMap, packageFile, nil)
}

// CheckParsedDeps is CheckParsed with already-type-checked source
// dependencies: deps maps import paths to packages checked earlier against
// the same FileSet, consulted before export data. rvettest's multi-package
// fixtures use it so fixture packages can import each other under their
// fake paths, for which no compiled export data can exist.
func CheckParsedDeps(path string, fset *token.FileSet, files []*ast.File, importMap, packageFile map[string]string, deps map[string]*types.Package) (*Package, error) {
	compiler := importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		file, ok := packageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := importMap[importPath]; ok {
			importPath = mapped
		}
		if dep, ok := deps[importPath]; ok {
			return dep, nil
		}
		return compiler.Import(importPath)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// NewModuleLoader returns a memoized Loader that resolves import paths to
// their non-test source through the go tool, anchored at dir (any
// directory inside the module). It backs Pass.Load in both production
// drivers — standalone and the vet unit protocol — so interprocedural
// analyzers see the same cross-package view either way.
func NewModuleLoader(dir string) Loader {
	type result struct {
		pkg *Package
		err error
	}
	var mu sync.Mutex
	memo := make(map[string]result)
	return func(importPath string) (*Package, error) {
		mu.Lock()
		defer mu.Unlock()
		if r, ok := memo[importPath]; ok {
			return r.pkg, r.err
		}
		pkgs, err := LoadPackages(dir, []string{importPath})
		var pkg *Package
		if err == nil {
			for _, p := range pkgs {
				if p.Path == importPath {
					pkg = p
				}
			}
			if pkg == nil {
				err = fmt.Errorf("rvet: package %s not found", importPath)
			}
		}
		memo[importPath] = result{pkg, err}
		return pkg, err
	}
}
