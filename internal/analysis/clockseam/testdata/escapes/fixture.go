package kvstore

import "time"

func reasonless() int64 {
	//lint:rstore-vet clockseam:
	return time.Now().UnixNano()
}

func unknownAnalyzer() int64 {
	//lint:rstore-vet nosuchcheck: some reason
	return time.Now().UnixNano()
}
