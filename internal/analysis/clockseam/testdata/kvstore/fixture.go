package kvstore

import "time"

func stampBad() uint64 {
	return uint64(time.Now().UnixNano()) // want "time.Now in an LWW/envelope/repair path"
}

func stampGood() uint64 {
	return uint64(walltime().UnixNano())
}

func clockValueBad() func() time.Time {
	return time.Now // want "time.Now in an LWW/envelope/repair path"
}

func stampEscaped() int64 {
	//lint:rstore-vet clockseam: fixture exercising the reasoned escape hatch
	return time.Now().UnixNano()
}

func stampEscapedTrailing() int64 {
	return time.Now().UnixNano() //lint:rstore-vet clockseam: same-line escapes suppress too
}
