package kvstore

import "time"

// The designated seam file is the one place allowed to name time.Now.
var walltime = time.Now
