package kvstore

import "time"

// Test files are outside the rule's scope: deterministic-clock tests may
// read the real clock freely.
func stampInTest() int64 {
	return time.Now().UnixNano()
}
