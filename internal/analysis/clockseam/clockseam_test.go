package clockseam

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

func TestFixture(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/kvstore", "rstore/internal/kvstore")
}

// TestOutOfScope runs the same fixture under a path outside the kvstore
// scope: nothing may fire.
func TestOutOfScope(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/bench")
	for _, d := range diags {
		if d.Analyzer == Analyzer.Name {
			t.Errorf("out-of-scope package produced diagnostic: %s", d)
		}
	}
}

// TestEscapeRequiresReason proves a reason-less or misattributed escape is
// itself reported and does not suppress the underlying finding.
func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/kvstore")
	var reasonless, unknown bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case strings.Contains(d.Message, "unknown analyzer"):
			unknown = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	if !unknown {
		t.Error("escape naming an unknown analyzer was not reported")
	}
	if findings != 2 {
		t.Errorf("malformed escapes must not suppress: got %d findings, want 2 (diags: %v)", findings, diags)
	}
}
