// Package clockseam forbids direct time.Now reads in the LWW / envelope /
// repair code paths: rstore/internal/kvstore must take wall-clock
// timestamps through the walltime accessor in clock.go, the package's one
// designated clock seam. LWW correctness (envelope timestamps, hint
// backoff scheduling, tombstone GC) hinges on every timestamp flowing
// through one swappable source — a stray time.Now() reintroduces the
// untestable clock the seam exists to remove.
package clockseam

import (
	"go/ast"
	"path/filepath"

	"rstore/internal/analysis/rvet"
)

// Analyzer is the clockseam rule.
var Analyzer = &rvet.Analyzer{
	Name: "clockseam",
	Doc: "time.Now is forbidden in kvstore's LWW/envelope/repair paths outside the clock.go walltime seam\n\n" +
		"Scope: rstore/internal/kvstore, non-test files. Both time.Now() calls and\n" +
		"bare time.Now references (assigning the func value) are flagged; clock.go,\n" +
		"which defines the walltime accessor, is the only file allowed to name it.",
	Run: run,
}

// seamFile is the one file of the scoped package allowed to reference
// time.Now: it defines the walltime accessor everything else must use.
const seamFile = "clock.go"

func run(pass *rvet.Pass) error {
	if !pass.InScope("rstore/internal/kvstore") {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		name := filepath.Base(pass.Fset().Position(f.Pos()).Filename)
		if name == seamFile || pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || obj.Name() != "Now" || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(), "time.Now in an LWW/envelope/repair path: take timestamps through the walltime seam (clock.go)")
			return true
		})
	}
	return nil
}
