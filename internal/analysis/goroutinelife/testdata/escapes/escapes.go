package escapes

type S struct{ n int }

func (s *S) bump() { s.n++ }

// The escape below carries no reason, so it must be reported and must not
// suppress the fire-and-forget finding.
func (s *S) Bad() {
	//lint:rstore-vet goroutinelife:
	go s.bump()
}
