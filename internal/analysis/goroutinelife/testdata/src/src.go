package src

import (
	"context"
	"sync"
)

type S struct {
	wg   sync.WaitGroup
	stop chan struct{}
	runs int
}

// Scatter-gather: the body joins the WaitGroup.
func (s *S) Scatter() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runs++
	}()
	s.wg.Wait()
}

// The worker loop observes the stop channel; spawning it by name is bound.
func (s *S) StartWorker() {
	go s.worker()
}

func (s *S) worker() {
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

// Range over a channel ends when the producer closes it.
func Drain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// A cancellable context is a stop signal.
func Watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Polling ctx.Err counts: the goroutine exits once the context dies.
func Poll(ctx context.Context, work func()) {
	go func() {
		for ctx.Err() == nil {
			work()
		}
	}()
}

// Fire-and-forget: nothing waits for this body.
func (s *S) Leak() {
	go func() { // want "goroutine is not lifecycle-bound"
		s.run()
	}()
}

func (s *S) run() {}

// A nested goroutine's binding does not bind its spawner.
func (s *S) NestedLeak() {
	go func() { // want "goroutine is not lifecycle-bound"
		go func() {
			<-s.stop
		}()
	}()
}

// Spawning a fire-and-forget named function is a finding at the spawn.
func (s *S) LeakNamed() {
	go s.run() // want "run observes no stop signal"
}

// The body binds through a package-local callee (worker selects on stop).
func (s *S) TransitiveBound() {
	go func() {
		s.worker()
	}()
}

// A function value cannot be resolved, so it cannot be verified.
func Spawn(fn func()) {
	go fn() // want "cannot be resolved to a declaration"
}
