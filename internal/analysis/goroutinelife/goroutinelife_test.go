package goroutinelife

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

func TestLifecycleBinding(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/src", "rstore/internal/server")
}

// TestOutOfScope: packages outside the long-lived subsystems spawn freely.
func TestOutOfScope(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/tools")
	for _, d := range diags {
		if d.Analyzer == Analyzer.Name {
			t.Errorf("out-of-scope package produced a finding: %v", d)
		}
	}
}

func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/server")
	var reasonless bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	if findings != 1 {
		t.Errorf("a reason-less escape must not suppress: got %d findings, want 1 (diags: %v)", findings, diags)
	}
}
