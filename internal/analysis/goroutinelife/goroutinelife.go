// Package goroutinelife implements the rstore-vet analyzer that requires
// every goroutine spawned in the long-lived subsystems to be
// lifecycle-bound. A store that is Closed must actually stop: a goroutine
// that neither observes a stop signal (a cancellable context, a stop/done
// channel, a channel range that ends at close) nor participates in a
// WaitGroup join outlives Close and keeps touching backends that are gone —
// the class of bug that shows up as "send on closed channel" panics and
// flaky -race shutdown failures, never in unit tests.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"rstore/internal/analysis/rvet"
	"rstore/internal/analysis/rvet/callgraph"
)

// Analyzer requires every go statement in the long-lived subsystems to be
// lifecycle-bound.
var Analyzer = &rvet.Analyzer{
	Name: "goroutinelife",
	Doc: `goroutines must be lifecycle-bound: observe a stop signal or join a WaitGroup

Every go statement in internal/{kvstore,engine,core,server} must spawn a
body that (directly or through package-local callees) observes a
cancellable context (ctx.Done/ctx.Err), receives from a stop-like channel,
ranges over a channel, or calls (*sync.WaitGroup).Done/Wait — so Close and
Shutdown can actually wait for it. Fire-and-forget goroutines are findings.`,
	Run: run,
}

// scope lists the subsystems whose goroutines must be joinable. Other
// packages (tools, analyzers, tests) spawn short-lived helpers freely.
var scope = []string{
	"rstore/internal/kvstore",
	"rstore/internal/engine",
	"rstore/internal/core",
	"rstore/internal/server",
}

// stopChanRe matches the names of channels whose receive conventionally
// means "shut down" — the signal a lifecycle-bound goroutine blocks on.
var stopChanRe = regexp.MustCompile(`(?i)stop|done|quit|clos|cancel|exit`)

func run(pass *rvet.Pass) error {
	if !pass.InScope(scope...) {
		return nil
	}
	g := callgraph.Build(pass.Pkg)

	// bound holds the functions whose bodies observe a lifecycle signal,
	// closed transitively over package-local calls. Both the direct scan
	// and the call edges skip nested go statements: a signal observed by a
	// goroutine the body spawns does not bind the body itself.
	bound := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	for fn, fd := range g.Decls {
		if observes(pass, fd.Body) {
			bound[fn] = true
		}
		outsideGo(fd.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := rvet.Callee(pass.TypesInfo(), call); callee != nil {
					if _, local := g.Decls[callee]; local {
						calls[fn] = append(calls[fn], callee)
					}
				}
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if bound[fn] {
				continue
			}
			for _, callee := range callees {
				if bound[callee] {
					bound[fn] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fd := range g.Decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			check(pass, g, bound, gs)
			return true
		})
	}
	return nil
}

// check classifies one go statement as bound or reports it.
func check(pass *rvet.Pass, g *callgraph.Graph, bound map[*types.Func]bool, gs *ast.GoStmt) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if !bodyBound(pass, bound, lit.Body) {
			pass.Reportf(gs.Pos(), "goroutine is not lifecycle-bound: its body observes no stop signal (ctx.Done/Err, stop channel, channel range) and joins no WaitGroup, so Close cannot wait for it")
		}
		return
	}
	callee := rvet.Callee(pass.TypesInfo(), gs.Call)
	if callee == nil {
		pass.Reportf(gs.Pos(), "goroutine target cannot be resolved to a declaration: spawn a function literal (or a named package function) whose lifecycle binding the analyzer can verify")
		return
	}
	if _, local := g.Decls[callee]; !local {
		pass.Reportf(gs.Pos(), "goroutine spawns %s from another package: wrap it in a function literal that binds its lifecycle (stop signal or WaitGroup join)", callee.Name())
		return
	}
	if !bound[callee] {
		pass.Reportf(gs.Pos(), "goroutine is not lifecycle-bound: %s observes no stop signal (ctx.Done/Err, stop channel, channel range) and joins no WaitGroup, so Close cannot wait for it", callee.Name())
	}
}

// bodyBound reports whether a spawned body observes a lifecycle signal,
// directly or through a package-local callee in the bound set.
func bodyBound(pass *rvet.Pass, bound map[*types.Func]bool, body *ast.BlockStmt) bool {
	if observes(pass, body) {
		return true
	}
	found := false
	outsideGo(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := rvet.Callee(pass.TypesInfo(), call); callee != nil && bound[callee] {
				found = true
			}
		}
	})
	return found
}

// observes reports whether body directly contains a lifecycle signal:
// a receive from a stop-like channel (ctx.Done() included by name), a
// range over a channel, a WaitGroup Done/Wait, or a context Done/Err call.
// Nested go statements are skipped — their signals bind them, not body.
func observes(pass *rvet.Pass, body *ast.BlockStmt) bool {
	info := pass.TypesInfo()
	found := false
	outsideGo(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && stopChanRe.MatchString(types.ExprString(n.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch {
			case rvet.IsMethodCall(info, n, "sync", "WaitGroup", "Done"),
				rvet.IsMethodCall(info, n, "sync", "WaitGroup", "Wait"):
				found = true
			case rvet.MethodOnPackageType(info, n, "context") == "Done",
				rvet.MethodOnPackageType(info, n, "context") == "Err":
				found = true
			}
		}
	})
	return found
}

// outsideGo walks body, invoking visit on every node except those inside
// nested go statements.
func outsideGo(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
