package fixture

import "os"

// Outside the engine tree the rename discipline does not apply (CLI tools,
// benches moving scratch files).
func moveScratch(tmp, dst string) error {
	return os.Rename(tmp, dst)
}
