package fixture

import "os"

func reasonless(tmp, dst string) error {
	//lint:rstore-vet fsyncrename:
	return os.Rename(tmp, dst)
}
