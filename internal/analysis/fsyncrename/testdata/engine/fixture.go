package fixture

import "os"

// syncDir is the package's designated directory-fsync helper, mirroring the
// real engines.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// seal syncs a file; callers reaching it transitively count as having
// synced.
func seal(f *os.File) error { return f.Sync() }

func commitGood(f *os.File, tmp, dst, dir string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncDir(dir)
}

func commitTransitive(f *os.File, tmp, dst, dir string) error {
	if err := seal(f); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncDir(dir)
}

func commitNoSync(tmp, dst string) error {
	return os.Rename(tmp, dst) // want "no preceding file Sync" "not followed by a directory fsync"
}

func commitNoDirSync(f *os.File, tmp, dst string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, dst) // want "not followed by a directory fsync"
}

func commitEscaped(tmp, dst string) error {
	//lint:rstore-vet fsyncrename: fixture replay of a file sealed by a previous phase
	return os.Rename(tmp, dst)
}
