// Package fsyncrename enforces the commit discipline of the storage
// engines (docs/FORMATS.md): an os.Rename that publishes durable state —
// sealing a compacted segment, installing an SSTable, committing a
// manifest — must be preceded, in the same function, by an fsync of the
// file being renamed (directly via (*os.File).Sync or through a
// package-local helper that transitively syncs, like sstWriter.finish),
// and must be followed by a directory fsync (syncDir or a helper reaching
// it) so the new directory entry itself is durable. Rename-before-sync is
// the torn-header bug class: after a crash the name points at data the
// disk never promised to keep.
//
// The analysis is intraprocedural over statement order with a
// package-local call-graph closure (rvet/callgraph) for the sync sets — it
// proves presence on the straight-line reading, not all-paths correctness.
// Functions that rename files synced by an earlier phase (crash-recovery
// replay, commit helpers fed a sealed temp file) carry a reasoned escape.
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"

	"rstore/internal/analysis/rvet"
	"rstore/internal/analysis/rvet/callgraph"
)

// Analyzer is the fsyncrename rule.
var Analyzer = &rvet.Analyzer{
	Name: "fsyncrename",
	Doc: "os.Rename committing durable engine state needs a file Sync before and a directory fsync after\n\n" +
		"Scope: rstore/internal/engine/..., non-test files. A call to a\n" +
		"package-local function that (transitively) calls (*os.File).Sync counts\n" +
		"as the file sync; a call reaching a function named syncDir counts as the\n" +
		"directory fsync.",
	Run: run,
}

func run(pass *rvet.Pass) error {
	if !pass.InScope("rstore/internal/engine") {
		return nil
	}
	info := pass.TypesInfo()

	// Pass 1: package-local call graph and the directly-syncing functions.
	g := callgraph.Build(pass.Pkg)
	fileSyncers := g.Closure(func(call *ast.CallExpr) bool {
		return rvet.IsMethodCall(info, call, "os", "File", "Sync")
	})
	dirSyncers := g.Closure(func(call *ast.CallExpr) bool {
		fn := rvet.Callee(info, call)
		return fn != nil && fn.Name() == "syncDir" && fn.Pkg() == pass.TypesPkg()
	})

	// Pass 2: per-function statement-order check around each os.Rename.
	for fn, fd := range g.Decls {
		var renames []*ast.CallExpr
		var fileSyncPos, dirSyncPos []token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case rvet.IsPkgCall(info, call, "os", "Rename"):
				renames = append(renames, call)
			case rvet.IsMethodCall(info, call, "os", "File", "Sync"):
				fileSyncPos = append(fileSyncPos, call.Pos())
			}
			if callee := rvet.Callee(info, call); callee != nil && callee != fn {
				if fileSyncers[callee] {
					fileSyncPos = append(fileSyncPos, call.Pos())
				}
				if dirSyncers[callee] || isSyncDir(pass, callee) {
					dirSyncPos = append(dirSyncPos, call.Pos())
				}
			}
			return true
		})
		for _, ren := range renames {
			if !anyBefore(fileSyncPos, ren.Pos()) {
				pass.Reportf(ren.Pos(), "os.Rename commits durable state with no preceding file Sync in this function: fsync the renamed file first (or escape with the phase that already sealed it)")
			}
			if !anyAfter(dirSyncPos, ren.Pos()) {
				pass.Reportf(ren.Pos(), "os.Rename is not followed by a directory fsync in this function: call syncDir so the new entry survives a crash")
			}
		}
	}
	return nil
}

// isSyncDir matches the designated directory-fsync helper itself.
func isSyncDir(pass *rvet.Pass, fn *types.Func) bool {
	return fn.Name() == "syncDir" && fn.Pkg() == pass.TypesPkg()
}

func anyBefore(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q < p {
			return true
		}
	}
	return false
}

func anyAfter(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q > p {
			return true
		}
	}
	return false
}
