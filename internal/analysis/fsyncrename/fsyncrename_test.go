package fsyncrename

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

func TestEngineScope(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/engine", "rstore/internal/engine/fixture")
}

func TestOutOfScope(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/unscoped", "rstore/internal/bench/fixture")
}

func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/engine/fixture")
	var reasonless bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	// The reason-less escape suppresses nothing: both halves of the rename
	// rule still fire on the unsynced rename.
	if findings != 2 {
		t.Errorf("a reason-less escape must not suppress: got %d findings, want 2 (diags: %v)", findings, diags)
	}
}
