package lockio

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

// TestNetworkRule applies everywhere; the fixture runs under an arbitrary
// non-engine path.
func TestNetworkRule(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/netpool", "rstore/internal/server")
}

// TestEngineReadLockRule covers the engine-scope supplement: file mutation
// under a read lock.
func TestEngineReadLockRule(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/engine", "rstore/internal/engine/fixture")
}

// TestReadLockRuleOutOfScope runs the engine fixture under a non-engine
// path: the RLock file-write supplement must not fire there.
func TestReadLockRuleOutOfScope(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/engine", "rstore/internal/server")
	for _, d := range diags {
		t.Errorf("out-of-scope package produced diagnostic: %s", d)
	}
}

func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/server")
	var reasonless bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	if findings != 1 {
		t.Errorf("a reason-less escape must not suppress: got %d findings, want 1 (diags: %v)", findings, diags)
	}
}
