package anyservice

import (
	"net"
	"sync"
)

type pool struct {
	mu sync.Mutex
	nc net.Conn
}

func (p *pool) reasonless(buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:rstore-vet lockio:
	_, err := p.nc.Read(buf)
	return err
}
