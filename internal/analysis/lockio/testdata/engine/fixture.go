package fixture

import (
	"os"
	"sync"
)

type backend struct {
	rw sync.RWMutex
}

func (b *backend) writeUnderRLock(f *os.File, data []byte) error {
	b.rw.RLock()
	defer b.rw.RUnlock()
	_, err := f.Write(data) // want "file write/sync under a read lock"
	return err
}

// Commit-under-the-write-lock is the engines' documented design; only the
// read side is restricted.
func (b *backend) writeUnderLockOK(f *os.File, data []byte) error {
	b.rw.Lock()
	defer b.rw.Unlock()
	_, err := f.Write(data)
	return err
}

func (b *backend) renameUnderRLock(tmp, dst string) error {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return os.Rename(tmp, dst) // want "os.Rename under a read lock"
}
