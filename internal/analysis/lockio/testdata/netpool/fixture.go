package anyservice

import (
	"net"
	"sync"
	"time"
)

type pool struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (p *pool) readUnderLock(buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, err := p.conns[0].Read(buf) // want "net Read call while holding a mutex"
	return err
}

func (p *pool) readOutsideLock(buf []byte) error {
	p.mu.Lock()
	nc := p.conns[0]
	p.mu.Unlock()
	_, err := nc.Read(buf)
	return err
}

func (p *pool) deadlineUnderLockOK(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns[0].SetReadDeadline(t) // deadline setters do not block
}

func (p *pool) dialUnderLock(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	net.Dial("tcp", addr) // want "net.Dial while holding a mutex"
}

// A goroutine launched under the lock runs on its own schedule; its body is
// analyzed with an empty held set.
func (p *pool) spawnOK() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.conns[0].Close()
	}()
}

func (p *pool) closeEscaped() {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:rstore-vet lockio: fixture exercising the reasoned escape hatch
	p.conns[0].Close()
}
