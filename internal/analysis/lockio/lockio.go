// Package lockio enforces the "mu held only at the edges" discipline
// documented for the storage and transport layers: blocking network I/O —
// conn reads/writes/closes, dials, accepts, wire frame exchanges — must
// not run while a sync.Mutex or sync.RWMutex is held. A network peer can
// stall indefinitely; a stalled peer holding a pool or connection-table
// lock wedges every other operation on the struct, which is precisely the
// failure mode the remote path's pool/breaker design avoids by doing all
// I/O outside its pool lock.
//
// In the engine packages the write side of the rule is supplemented: file
// mutation (Sync/Write/Rename/Remove/Create) under a read lock (RLock) is
// flagged too — readers sharing an RWMutex must never pay write-I/O
// latency, and a writer disguised as a reader defeats the lock's point.
//
// The analysis is intraprocedural and straight-line: a lock region opens
// at x.Lock()/x.RLock() and closes at the next matching x.Unlock()/
// x.RUnlock() on the same receiver expression; a deferred unlock holds the
// region open to the end of the function. Non-blocking conn bookkeeping
// (SetDeadline and friends, address getters) is exempt.
package lockio

import (
	"go/ast"
	"go/types"

	"rstore/internal/analysis/rvet"
)

// Analyzer is the lockio rule.
var Analyzer = &rvet.Analyzer{
	Name: "lockio",
	Doc: "no blocking network or wire I/O while holding a mutex; no file writes under a read lock\n\n" +
		"Scope: every non-test package for the network rule; the RLock file-write\n" +
		"rule applies under rstore/internal/engine. Deadline setters and address\n" +
		"getters on conns are exempt (they do not block).",
	Run: run,
}

// nonBlockingConnMethods are net methods that complete without touching
// the wire.
var nonBlockingConnMethods = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
	"LocalAddr":        true,
	"RemoteAddr":       true,
	"Addr":             true,
	"String":           true,
	"Network":          true,
}

func run(pass *rvet.Pass) error {
	engineScope := pass.InScope("rstore/internal/engine")
	for _, f := range pass.Files() {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body, engineScope)
		}
	}
	return nil
}

// lockState tracks, in statement order, which mutex expressions are held.
type lockState struct {
	held map[string]string // canonical mutex expr -> "lock" | "rlock"
}

// checkBody scans one function body in source order, maintaining the held
// set and flagging blocking calls inside lock regions.
func checkBody(pass *rvet.Pass, body *ast.BlockStmt, engineScope bool) {
	st := &lockState{held: make(map[string]string)}
	info := pass.TypesInfo()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested function's calls run on its own schedule (often a
			// goroutine); analyze it independently with an empty held set.
			checkBody(pass, n.Body, engineScope)
			return false
		case *ast.DeferStmt:
			if _, mode, ok := rvet.MutexOp(info, n.Call); ok && (mode == "unlock" || mode == "runlock") {
				// Deferred unlock: the region stays open for the rest of the
				// body; skip the call so it is not taken as closing the
				// region at the defer statement itself.
				return false
			}
		case *ast.CallExpr:
			if expr, mode, ok := rvet.MutexOp(info, n); ok {
				key := types.ExprString(expr)
				switch mode {
				case "lock":
					st.held[key] = "lock"
				case "rlock":
					st.held[key] = "rlock"
				case "unlock", "runlock":
					delete(st.held, key)
				}
				return true
			}
			if len(st.held) == 0 {
				return true
			}
			reportBlocking(pass, n, st, engineScope)
		}
		return true
	})
}

// reportBlocking flags call if it is blocking I/O forbidden under the
// currently held locks.
func reportBlocking(pass *rvet.Pass, call *ast.CallExpr, st *lockState, engineScope bool) {
	info := pass.TypesInfo()
	if m := rvet.MethodOnPackageType(info, call, "net"); m != "" && !nonBlockingConnMethods[m] {
		pass.Reportf(call.Pos(), "net %s call while holding a mutex: a stalled peer would wedge every operation contending for the lock", m)
		return
	}
	for _, name := range [3]string{"Dial", "DialTimeout", "Listen"} {
		if rvet.IsPkgCall(info, call, "net", name) {
			pass.Reportf(call.Pos(), "net.%s while holding a mutex: dials block for the full timeout", name)
			return
		}
	}
	for _, name := range [2]string{"ReadFrame", "WriteFrame"} {
		if rvet.IsPkgCall(info, call, "rstore/internal/engine/remote/wire", name) {
			pass.Reportf(call.Pos(), "wire.%s while holding a mutex: a frame exchange can stall on the peer", name)
			return
		}
	}
	if engineScope && st.anyReadHeld() {
		if rvet.IsMethodCall(info, call, "os", "File", "Sync") ||
			rvet.IsMethodCall(info, call, "os", "File", "Write") ||
			rvet.IsMethodCall(info, call, "os", "File", "WriteString") ||
			rvet.IsMethodCall(info, call, "os", "File", "WriteAt") {
			pass.Reportf(call.Pos(), "file write/sync under a read lock: readers sharing this RWMutex would pay write-I/O latency")
			return
		}
		for _, name := range [4]string{"Rename", "Remove", "Create", "OpenFile"} {
			if rvet.IsPkgCall(info, call, "os", name) {
				pass.Reportf(call.Pos(), "os.%s under a read lock: directory mutation belongs on the write side", name)
				return
			}
		}
	}
}

func (st *lockState) anyReadHeld() bool {
	for _, mode := range st.held {
		if mode == "rlock" {
			return true
		}
	}
	return false
}
