package errclass

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

// TestSentinels exercises the module-wide identity-comparison rule under an
// arbitrary package path.
func TestSentinels(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/sentinel", "rstore/internal/subchunk/fixture")
}

// TestTransport exercises the remote-package rule: raw transport errors
// must be classified before they are returned.
func TestTransport(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/remote", "rstore/internal/engine/remote")
}

// TestTransportOutOfScope runs the transport fixture under a non-remote
// path: only the (absent) sentinel comparisons could fire, so the raw
// returns must produce nothing.
func TestTransportOutOfScope(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/remote", "rstore/internal/server")
	for _, d := range diags {
		t.Errorf("out-of-scope package produced diagnostic: %s", d)
	}
}

func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/subchunk/fixture")
	var reasonless bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	if findings != 1 {
		t.Errorf("a reason-less escape must not suppress: got %d findings, want 1 (diags: %v)", findings, diags)
	}
}
