// Package errclass enforces the error-classification contract that the
// breaker, retry, and repair layers depend on.
//
// Rule 1 (module-wide): sentinel errors — package-level `var ErrXxx` of
// error type, like engine.ErrUnavailable, types.ErrClosed,
// engine.ErrNoCompaction — must be matched with errors.Is, never compared
// with == or !=, including as switch cases. Every layer wraps errors with
// %w (the remote client alone adds two wrapping levels), so an identity
// comparison silently stops matching the moment anyone adds context to the
// chain; that is how sentinel-dropping error paths regressed before.
//
// Rule 2 (rstore/internal/engine/remote only): a transport-level error —
// the error result of a net dial, a net.Conn operation, or a wire
// frame read/write — must not be returned raw. It must flow through the
// package's classifiers (transportErr for retry-then-classify, or
// Client.unavailable / an explicit engine.ErrUnavailable wrap), because a
// raw net error defeats errors.Is(err, engine.ErrUnavailable) and with it
// the circuit breaker's verdict counting and the cluster's route-around
// and hint-parking paths.
package errclass

import (
	"go/ast"
	"go/types"

	"rstore/internal/analysis/rvet"
)

// Analyzer is the errclass rule.
var Analyzer = &rvet.Analyzer{
	Name: "errclass",
	Doc: "sentinel errors use errors.Is (never ==); remote transport errors must be classified before returning\n\n" +
		"Sentinels are package-level `var ErrXxx` error variables. The transport\n" +
		"rule applies to package rstore/internal/engine/remote: errors produced by\n" +
		"net dials, net.Conn methods, or wire.ReadFrame/WriteFrame must pass\n" +
		"through transportErr / Client.unavailable / an ErrUnavailable wrap before\n" +
		"any return statement hands them to a caller.",
	Run: run,
}

func run(pass *rvet.Pass) error {
	info := pass.TypesInfo()
	checkTransport := pass.BasePath() == "rstore/internal/engine/remote"
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op.String() == "==" || n.Op.String() == "!=" {
					for _, operand := range [2]ast.Expr{n.X, n.Y} {
						if obj := rvet.ExprObject(info, operand); obj != nil && rvet.IsErrorSentinel(obj) {
							pass.Reportf(n.Pos(), "sentinel %s compared with %s: use errors.Is so wrapped chains still match", obj.Name(), n.Op)
						}
					}
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.FuncDecl:
				if checkTransport && !pass.IsTestFile(n.Pos()) && n.Body != nil {
					checkRawTransportReturns(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkSwitch flags `switch err { case ErrXxx: }` — the same identity
// comparison as ==, in clause clothing.
func checkSwitch(pass *rvet.Pass, sw *ast.SwitchStmt) {
	info := pass.TypesInfo()
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj := rvet.ExprObject(info, e); obj != nil && rvet.IsErrorSentinel(obj) {
				pass.Reportf(e.Pos(), "sentinel %s used as a switch case compares by identity: use errors.Is", obj.Name())
			}
		}
	}
}

// transportOrigin reports whether call produces a transport-level error:
// a net dial/listen, any method on a net package type (conns, listeners,
// dialers), or a wire frame operation.
func transportOrigin(pass *rvet.Pass, call *ast.CallExpr) bool {
	info := pass.TypesInfo()
	for _, name := range [3]string{"Dial", "DialTimeout", "Listen"} {
		if rvet.IsPkgCall(info, call, "net", name) {
			return true
		}
	}
	if m := rvet.MethodOnPackageType(info, call, "net"); m != "" && m != "Close" {
		// Close errors on teardown paths are discarded by convention, and a
		// failed Close does not witness node unavailability.
		return true
	}
	for _, name := range [2]string{"ReadFrame", "WriteFrame"} {
		if rvet.IsPkgCall(info, call, "rstore/internal/engine/remote/wire", name) {
			return true
		}
	}
	return false
}

// checkRawTransportReturns walks one function body tracking, per error
// variable, whether its latest assignment came from a transport origin, and
// flags return statements that hand such a variable (or a transport call's
// error result directly) to the caller unclassified. The tracking is
// straight-line per body — good enough to catch the real shapes (assign,
// test, return) without a full CFG.
func checkRawTransportReturns(pass *rvet.Pass, body *ast.BlockStmt) {
	transportVars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			origin := false
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					origin = transportOrigin(pass, call)
				}
			}
			for _, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := identObject(pass, id); obj != nil {
					transportVars[obj] = origin && isErrorType(obj.Type())
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				switch res := ast.Unparen(res).(type) {
				case *ast.Ident:
					if obj := identObject(pass, res); obj != nil && transportVars[obj] {
						pass.Reportf(res.Pos(), "transport error %s returned unclassified: wrap it with transportErr or engine.ErrUnavailable so the breaker and route-around paths can match it", res.Name)
					}
				case *ast.CallExpr:
					if transportOrigin(pass, res) {
						pass.Reportf(res.Pos(), "transport call's error returned unclassified: wrap it with transportErr or engine.ErrUnavailable")
					}
				}
			}
		}
		return true
	})
}

// identObject resolves id whether it is being defined (:=) or used.
func identObject(pass *rvet.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo().Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo().Uses[id]
}

// isErrorType reports whether t is the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}
