package fixture

import "errors"

var ErrGone = errors.New("gone")

func reasonless(err error) bool {
	//lint:rstore-vet errclass:
	return err == ErrGone
}
