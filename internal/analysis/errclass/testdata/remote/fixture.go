package remote

import (
	"errors"
	"fmt"
	"net"
)

var errNodeDown = errors.New("node down")

func dialRaw(addr string) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err // want "transport error err returned unclassified"
	}
	return nc, nil
}

func dialWrapped(addr string) (net.Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w: %w", addr, errNodeDown, err)
	}
	return nc, nil
}

func readDirect(nc net.Conn, buf []byte) (int, error) {
	return nc.Read(buf) // want "transport call's error returned unclassified"
}

// reassignment through a classifier clears the transport origin.
func reclassified(addr string) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		err = fmt.Errorf("%w: %w", errNodeDown, err)
		return err
	}
	return nc.Close() // Close errors are discarded-by-convention, not verdicts
}
