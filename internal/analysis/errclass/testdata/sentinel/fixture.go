package fixture

import "errors"

var ErrGone = errors.New("gone")

// notSentinel does not match the ErrXxx naming convention.
var gone = errors.New("also gone")

func compare(err error) bool {
	if err == ErrGone { // want "sentinel ErrGone compared with =="
		return true
	}
	if err != ErrGone { // want "sentinel ErrGone compared with !="
		return false
	}
	if err == gone { // unexported non-Err name: not a sentinel
		return true
	}
	if err == nil {
		return false
	}
	switch err {
	case ErrGone: // want "sentinel ErrGone used as a switch case"
		return true
	}
	return errors.Is(err, ErrGone)
}

func escaped(err error) bool {
	//lint:rstore-vet errclass: fixture exercising the reasoned escape hatch
	return err == ErrGone
}
