package lockorder

// An Edge declares one permitted lock-order pair: To may be acquired while
// From is held. Locks carry their canonical rank-table identity —
// "<pkg-path>.<TypeName>.<field>" for struct-field mutexes (one rank per
// type, covering every instance), "<pkg-path>.<var>" for package-level
// ones. Reason documents why the nesting is safe, in the spirit of the
// escape hatch: rankings stay auditable.
type Edge struct {
	From, To string
	Reason   string
}

// Table is the module's lock-rank order. lockorder requires every observed
// nesting to appear here and the relation to stay acyclic (verified by the
// analyzer on every run and by TestTableAcyclic). Adding a row is a claim
// that every holder of From may block on To and no holder of To ever
// blocks on From's holders — justify it in Reason.
var Table = []Edge{
	{
		From:   "rstore/internal/engine/disklog.Backend.compactMu",
		To:     "rstore/internal/engine/disklog.Backend.mu",
		Reason: "compaction serializes on compactMu for its whole run and takes mu only for short index/segment swaps; mu holders never touch compactMu",
	},
	{
		From:   "rstore/internal/engine/lsm.Backend.compactMu",
		To:     "rstore/internal/engine/lsm.Backend.mu",
		Reason: "flush/merge serialize on compactMu and take mu only to install results; mu holders only TryLock compactMu (maybeTierCompactLocked), which cannot block",
	},
	{
		From:   "rstore/internal/engine/lsm.Backend.mu",
		To:     "rstore/internal/engine/lsm.cacheShard.mu",
		Reason: "writes and reads under mu update the block cache; cache shards are leaf locks protecting only their own map",
	},
	{
		From:   "rstore/internal/engine/lsm.Backend.mu",
		To:     "rstore/internal/engine/lsm.rowShard.mu",
		Reason: "writes and reads under mu update the row cache; row shards are leaf locks protecting only their own map",
	},
	{
		From:   "rstore/internal/engine/lsm.Backend.compactMu",
		To:     "rstore/internal/engine/lsm.cacheShard.mu",
		Reason: "merges running under compactMu invalidate cache entries for retired tables; cache shards are leaf locks",
	},
	{
		From:   "rstore/internal/core.Store.mu",
		To:     "rstore/internal/core.chunkCache.mu",
		Reason: "commit paths under the document-store lock populate the chunk cache; the cache lock is a leaf protecting only its own map",
	},
	{
		From:   "rstore/internal/core.Store.mu",
		To:     "rstore/internal/kvstore.repairer.mu",
		Reason: "core commits under Store.mu write through kvstore, whose read-repair bookkeeping takes its own short-lived locks; kvstore never calls back into core",
	},
	{
		From:   "rstore/internal/core.Store.mu",
		To:     "rstore/internal/kvstore.repairer.hmu",
		Reason: "core commits under Store.mu can park hints in kvstore; the hint-queue lock is a leaf and kvstore never calls back into core",
	},
	{
		From:   "rstore/internal/core.Store.mu",
		To:     "rstore/internal/kvstore.repairer.tmu",
		Reason: "core commits under Store.mu can record repair targets in kvstore; the target-table lock is a leaf and kvstore never calls back into core",
	},
}
