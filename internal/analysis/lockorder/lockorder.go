// Package lockorder enforces a single global lock acquisition order. It
// builds the module's lock-acquisition graph — which mutex is taken while
// which other one is held, resolved through the package call graph
// (rvet/callgraph) and across package boundaries (rvet.Pass.Load) — and
// requires every observed edge to be declared in the checked-in lock-rank
// table (table.go), which the analyzer itself verifies is acyclic. An
// acyclic declared order over all real nesting is exactly the classic
// proof of deadlock freedom: two goroutines can only deadlock on mutexes
// by acquiring some pair in opposite orders, and opposite orders cannot
// both appear in an acyclic table.
//
// Locks are named by where they live, not by which instance is locked:
// "<pkg>.<Type>.<field>" for struct-field mutexes, "<pkg>.<var>" for
// package-level ones. Acquiring a lock whose name is already held —
// directly or through a callee — is reported unconditionally: same-name
// nesting is either recursive locking (self-deadlock with sync.Mutex, and
// writer-starvation-prone even for RLock) or unrankable instance-order
// nesting that needs restructuring, not a table row.
//
// Like lockio, the held-set tracking is straight-line per function;
// function-literal bodies and `go` statements run on their own schedule
// and are analyzed with an empty held set. Callee lock sets are the
// may-acquire closure of the callee's own goroutine (literals and spawned
// goroutines excluded), so an undeclared edge means "this call path can
// block on that lock while holding this one".
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rstore/internal/analysis/rvet"
	"rstore/internal/analysis/rvet/callgraph"
)

// Analyzer is the lockorder rule over the production lock-rank table.
var Analyzer = &rvet.Analyzer{
	Name: "lockorder",
	Doc: "mutex nesting must follow the acyclic lock-rank table (deadlock freedom by global lock order)\n\n" +
		"Scope: every non-test package. An acquisition of lock B while lock A is\n" +
		"held — in the same function or through any call path, across packages —\n" +
		"is an edge A -> B that must be declared in\n" +
		"internal/analysis/lockorder/table.go; the table itself must stay acyclic.",
	Run: func(pass *rvet.Pass) error { return run(pass, Table) },
}

// NewAnalyzer returns a lockorder analyzer checked against table. The
// production Analyzer uses Table; fixture tests substitute small tables to
// exercise the completeness and acyclicity rules.
func NewAnalyzer(table []Edge) *rvet.Analyzer {
	a := *Analyzer
	a.Run = func(pass *rvet.Pass) error { return run(pass, table) }
	return &a
}

// locks is a set of canonical lock names.
type locks map[string]bool

func run(pass *rvet.Pass, table []Edge) error {
	if len(pass.Files()) == 0 {
		return nil
	}
	if cyc := tableCycle(table); cyc != nil {
		pass.Reportf(pass.Files()[0].Pos(), "lock-rank table is cyclic (%s): a cyclic rank order proves nothing — remove an edge or restructure the locking", strings.Join(cyc, " -> "))
	}
	allowed := make(map[[2]string]bool, len(table))
	for _, e := range table {
		allowed[[2]string{e.From, e.To}] = true
	}
	s := &summarizer{pass: pass, memo: make(map[string]map[string]locks)}
	g := callgraph.Build(pass.Pkg)
	local := s.localSummaries(pass.Pkg, g)
	c := &checker{
		pass:     pass,
		g:        g,
		s:        s,
		local:    local,
		allowed:  allowed,
		reported: make(map[[2]string]bool),
	}
	decls := make([]*ast.FuncDecl, 0, len(g.Decls))
	for _, fd := range g.Decls {
		decls = append(decls, fd)
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].Pos() < decls[j].Pos() })
	for _, fd := range decls {
		c.checkBody(fd.Body, nil)
	}
	return nil
}

// checker walks one package's function bodies in statement order,
// maintaining the held-lock set and validating every acquisition edge.
type checker struct {
	pass     *rvet.Pass
	g        *callgraph.Graph
	s        *summarizer
	local    map[*types.Func]locks
	allowed  map[[2]string]bool
	reported map[[2]string]bool // one report per edge per package
}

// checkBody scans body with the given held locks (nil for a fresh
// function). heldOrder keeps acquisition order for deterministic reports.
func (c *checker) checkBody(body *ast.BlockStmt, heldOrder []string) {
	info := c.pass.TypesInfo()
	held := make(map[string]token.Pos, len(heldOrder))
	for _, h := range heldOrder {
		held[h] = token.NoPos
	}
	var visit func(ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal runs on its own schedule (callback, goroutine,
			// defer chain): empty held set, like lockio.
			c.checkBody(n.Body, nil)
			return false
		case *ast.GoStmt:
			// A spawned goroutine's acquisitions are concurrent with the
			// spawner's held locks, not ordered after them.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				c.checkBody(lit.Body, nil)
			}
			return false
		case *ast.IfStmt:
			// An early-exit branch (body ends in return/break/continue/
			// panic) is a dead end: its unlocks must not bleed into the
			// fallthrough path — the "if closed { unlock; return }" guard
			// idiom would otherwise erase the held set for the rest of the
			// function. Analyze the branch with a snapshot instead.
			if terminates(n.Body) {
				if n.Init != nil {
					ast.Inspect(n.Init, visit)
				}
				ast.Inspect(n.Cond, visit)
				c.checkBody(n.Body, append([]string(nil), heldOrder...))
				if n.Else != nil {
					ast.Inspect(n.Else, visit)
				}
				return false
			}
		case *ast.DeferStmt:
			if _, mode, ok := rvet.MutexOp(info, n.Call); ok && (mode == "unlock" || mode == "runlock") {
				// Deferred unlock: the region stays open to the end.
				return false
			}
		case *ast.CallExpr:
			if expr, mode, ok := rvet.MutexOp(info, n); ok {
				name := lockName(c.pass.Pkg, expr)
				switch mode {
				case "lock", "rlock":
					// TryLock never blocks, so it cannot close a deadlock
					// cycle: no edge, no recursion finding. It does hold
					// the lock on success, so it still extends the held
					// set for the acquisitions that follow.
					if !isTry(n) {
						if _, again := held[name]; again {
							c.pass.Reportf(n.Pos(), "%s is acquired while already held: recursive or instance-ordered locking cannot be ranked — restructure", name)
							return true
						}
						for _, h := range heldOrder {
							c.checkEdge(h, name, n.Pos(), "")
						}
					}
					if _, again := held[name]; !again {
						held[name] = n.Pos()
						heldOrder = append(heldOrder, name)
					}
				case "unlock", "runlock":
					if _, ok := held[name]; ok {
						delete(held, name)
						for i, h := range heldOrder {
							if h == name {
								heldOrder = append(heldOrder[:i], heldOrder[i+1:]...)
								break
							}
						}
					}
				}
				return true
			}
			if len(heldOrder) == 0 {
				return true
			}
			callee := rvet.Callee(info, n)
			if callee == nil {
				return true
			}
			var set locks
			if _, isLocal := c.g.Decls[callee]; isLocal {
				set = c.local[callee]
			} else {
				set = c.s.calleeLocks(callee)
			}
			for _, l := range sorted(set) {
				if _, again := held[l]; again {
					c.pass.Reportf(n.Pos(), "call to %s can re-acquire %s, which is already held here: self-deadlock", callee.Name(), l)
					continue
				}
				for _, h := range heldOrder {
					c.checkEdge(h, l, n.Pos(), callee.Name())
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// terminates reports whether a block's last statement leaves the enclosing
// function or loop: return, break/continue/goto, or a panic call — the
// shape of an early-exit guard branch.
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isTry reports whether a MutexOp-recognized acquisition is the
// non-blocking TryLock/TryRLock variant.
func isTry(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && strings.HasPrefix(sel.Sel.Name, "Try")
}

// checkEdge validates one observed acquisition edge against the table.
func (c *checker) checkEdge(from, to string, pos token.Pos, via string) {
	if from == to || c.allowed[[2]string{from, to}] {
		return
	}
	key := [2]string{from, to}
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	detail := ""
	if via != "" {
		detail = fmt.Sprintf(" (via the call to %s)", via)
	}
	c.pass.Reportf(pos, "lock-order edge %s -> %s%s is not in the lock-rank table: declare it in internal/analysis/lockorder/table.go or restructure the nesting", from, to, detail)
}

// summarizer computes, per package, the set of locks each function may
// acquire on its own goroutine, memoized across the cross-package loads a
// module-wide walk needs. The import graph is acyclic, so the recursion
// terminates; an unloadable package (or a driver without a loader)
// contributes nothing rather than failing the pass.
type summarizer struct {
	pass *rvet.Pass
	memo map[string]map[string]locks // pkg path -> func FullName -> lock set
}

// calleeLocks resolves the may-acquire set of a function from another
// package of this module.
func (s *summarizer) calleeLocks(fn *types.Func) locks {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	path := pkg.Path()
	if path == s.pass.BasePath() || (path != "rstore" && !strings.HasPrefix(path, "rstore/")) {
		return nil
	}
	m, ok := s.memo[path]
	if !ok {
		s.memo[path] = nil // in-progress or failed: no summaries
		if loaded, err := s.pass.Load(path); err == nil {
			m = s.localByName(loaded, callgraph.Build(loaded))
			s.memo[path] = m
		}
	}
	if m == nil {
		return nil
	}
	return m[fn.FullName()]
}

// localSummaries computes the may-acquire closure for every function of
// pkg: locks taken directly, through package-local calls, or through calls
// into other packages of the module.
func (s *summarizer) localSummaries(pkg *rvet.Package, g *callgraph.Graph) map[*types.Func]locks {
	direct := make(map[*types.Func]locks, len(g.Decls))
	syncCalls := make(map[*types.Func][]*types.Func)
	for fn, fd := range g.Decls {
		set := make(locks)
		syncNodes(fd.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if expr, mode, ok := rvet.MutexOp(pkg.Info, call); ok {
				// Summaries answer "can this callee block on that lock":
				// TryLock cannot, so it contributes nothing.
				if (mode == "lock" || mode == "rlock") && !isTry(call) {
					set[lockName(pkg, expr)] = true
				}
				return
			}
			callee := rvet.Callee(pkg.Info, call)
			if callee == nil {
				return
			}
			if _, isLocal := g.Decls[callee]; isLocal {
				syncCalls[fn] = append(syncCalls[fn], callee)
				return
			}
			for l := range s.calleeLocks(callee) {
				set[l] = true
			}
		})
		direct[fn] = set
	}
	// Fixed point: union callee sets up the package-local call graph.
	for changed := true; changed; {
		changed = false
		for fn, callees := range syncCalls {
			for _, callee := range callees {
				for l := range direct[callee] {
					if !direct[fn][l] {
						direct[fn][l] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// localByName is localSummaries keyed by FullName, the identity that
// survives the export-data/source object split across packages.
func (s *summarizer) localByName(pkg *rvet.Package, g *callgraph.Graph) map[string]locks {
	byFn := s.localSummaries(pkg, g)
	m := make(map[string]locks, len(byFn))
	for fn, set := range byFn {
		m[fn.FullName()] = set
	}
	return m
}

// syncNodes visits the nodes of body that execute on the caller's own
// goroutine with its locks held: `go` statements and function-literal
// bodies are skipped (they run on their own schedule and get their own
// empty-held analysis).
func syncNodes(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockName canonicalizes a mutex expression to its rank-table identity:
// the owning named type's field for struct fields ("pkg.Type.field",
// covering every instance of the type), the package-level variable
// otherwise ("pkg.var").
func lockName(pkg *rvet.Package, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			t := sel.Recv()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if obj := named.Obj(); obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name() + "." + e.Sel.Name
				}
			}
		}
		if obj := pkg.Info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return obj.Pkg().Path() + ".(local)." + obj.Name()
		}
	}
	return pkg.BasePath() + "." + types.ExprString(expr)
}

// tableCycle returns a lock cycle in the declared table, or nil if the
// table is acyclic.
func tableCycle(table []Edge) []string {
	next := make(map[string][]string)
	nodes := make([]string, 0, len(table))
	seenNode := make(map[string]bool)
	for _, e := range table {
		next[e.From] = append(next[e.From], e.To)
		for _, n := range []string{e.From, e.To} {
			if !seenNode[n] {
				seenNode[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int)
	var stack []string
	var dfs func(n string) []string
	dfs = func(n string) []string {
		state[n] = visiting
		stack = append(stack, n)
		sort.Strings(next[n])
		for _, m := range next[n] {
			switch state[m] {
			case visiting:
				for i, s := range stack {
					if s == m {
						return append(append([]string(nil), stack[i:]...), m)
					}
				}
			case 0:
				if cyc := dfs(m); cyc != nil {
					return cyc
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = done
		return nil
	}
	for _, n := range nodes {
		if state[n] == 0 {
			if cyc := dfs(n); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

func sorted(set locks) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
