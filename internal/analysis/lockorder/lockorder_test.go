package lockorder

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

// fixtureTable ranks a above b for the single-package fixture.
var fixtureTable = []Edge{
	{From: "rstore/internal/server.T.a", To: "rstore/internal/server.T.b", Reason: "fixture: a ranks above b"},
}

func TestEdgeRules(t *testing.T) {
	rvettest.Run(t, NewAnalyzer(fixtureTable), "testdata/src", "rstore/internal/server")
}

// TestCrossPackageEdge proves the lock graph resolves through imports: the
// edge's To lock lives in a different fixture package, reached via
// Pass.Load over the fixture tree.
func TestCrossPackageEdge(t *testing.T) {
	rvettest.RunTree(t, NewAnalyzer(nil), "testdata/xpkg", "a", map[string]string{
		"a": "rstore/internal/xfix/a",
		"b": "rstore/internal/xfix/b",
	})
}

// TestCyclicTableReported: a table that declares both directions of a pair
// proves nothing and must itself be a finding.
func TestCyclicTableReported(t *testing.T) {
	cyclic := []Edge{
		{From: "x", To: "y", Reason: "test"},
		{From: "y", To: "x", Reason: "test"},
	}
	diags := rvettest.Diagnostics(t, NewAnalyzer(cyclic), "testdata/clean", "rstore/internal/server")
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "lock-rank table is cyclic") {
			found = true
		}
	}
	if !found {
		t.Errorf("cyclic table was not reported (diags: %v)", diags)
	}
}

// TestTableAcyclic pins the production table's deadlock-freedom claim.
func TestTableAcyclic(t *testing.T) {
	if cyc := tableCycle(Table); cyc != nil {
		t.Errorf("production lock-rank table has a cycle: %s", strings.Join(cyc, " -> "))
	}
	for _, e := range Table {
		if e.Reason == "" {
			t.Errorf("table edge %s -> %s has no reason: rankings must stay auditable", e.From, e.To)
		}
	}
}

func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.Diagnostics(t, NewAnalyzer(nil), "testdata/escapes", "rstore/internal/server")
	var reasonless bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	if findings != 1 {
		t.Errorf("a reason-less escape must not suppress: got %d findings, want 1 (diags: %v)", findings, diags)
	}
}
