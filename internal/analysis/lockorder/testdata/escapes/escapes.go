package escapes

import "sync"

type T struct {
	a sync.Mutex
	b sync.Mutex
}

// The escape below carries no reason, so it must be reported and must not
// suppress the undeclared-edge finding.
func (t *T) Bad() {
	t.a.Lock()
	//lint:rstore-vet lockorder:
	t.b.Lock()
	t.b.Unlock()
	t.a.Unlock()
}
