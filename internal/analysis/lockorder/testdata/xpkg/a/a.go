package a

import (
	"sync"

	xb "rstore/internal/xfix/b"
)

type A struct {
	mu sync.Mutex
	b  *xb.B
}

// Do acquires b.B.mu (in the other fixture package) while a.A.mu is held:
// the edge crosses the package boundary through Pass.Load.
func (a *A) Do() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.Do() // want "lock-order edge rstore/internal/xfix/a\\.A\\.mu -> rstore/internal/xfix/b\\.B\\.mu \\(via the call to Do\\)"
}
