package b

import "sync"

type B struct{ mu sync.Mutex }

func (b *B) Do() {
	b.mu.Lock()
	defer b.mu.Unlock()
}
