package clean

import "sync"

type T struct{ mu sync.Mutex }

func (t *T) Touch() {
	t.mu.Lock()
	t.mu.Unlock()
}
