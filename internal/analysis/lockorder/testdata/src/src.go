package src

import "sync"

type T struct {
	a sync.Mutex
	b sync.Mutex
	c sync.RWMutex
}

// The fixture table declares a -> b, so this nesting is ranked.
func (t *T) Declared() {
	t.a.Lock()
	t.b.Lock()
	t.b.Unlock()
	t.a.Unlock()
}

// The reverse order is not declared.
func (t *T) Undeclared() {
	t.b.Lock()
	t.a.Lock() // want "lock-order edge rstore/internal/server\\.T\\.b -> rstore/internal/server\\.T\\.a is not in the lock-rank table"
	t.a.Unlock()
	t.b.Unlock()
}

// Same-name nesting is unrankable regardless of the table.
func (t *T) Recursive() {
	t.a.Lock()
	t.a.Lock() // want "rstore/internal/server\\.T\\.a is acquired while already held"
	t.a.Unlock()
	t.a.Unlock()
}

func (t *T) lockC() {
	t.c.RLock()
	defer t.c.RUnlock()
}

// The edge surfaces through the package-local call graph: lockC may take
// c, and it is called with a held.
func (t *T) Transitive() {
	t.a.Lock()
	defer t.a.Unlock()
	t.lockC() // want "lock-order edge rstore/internal/server\\.T\\.a -> rstore/internal/server\\.T\\.c \\(via the call to lockC\\)"
}

// An early-exit guard's unlock is a dead end: it must not erase the held
// set for the fallthrough path.
func (t *T) Guarded(cond bool) {
	t.c.Lock()
	if cond {
		t.c.Unlock()
		return
	}
	t.b.Lock() // want "lock-order edge rstore/internal/server\\.T\\.c -> rstore/internal/server\\.T\\.b is not in the lock-rank table"
	t.b.Unlock()
	t.c.Unlock()
}

// TryLock never blocks, so it closes no deadlock cycle: no edge for the
// undeclared c -> a nesting.
func (t *T) Opportunistic() {
	t.c.Lock()
	if t.a.TryLock() {
		t.a.Unlock()
	}
	t.c.Unlock()
}

// A goroutine spawned while a is held acquires on its own schedule: no
// edge. Sequential reacquisition after an unlock is no edge either.
func (t *T) Unordered() {
	t.a.Lock()
	go func() {
		t.c.Lock()
		t.c.Unlock()
	}()
	t.a.Unlock()
	t.c.Lock()
	t.c.Unlock()
}
