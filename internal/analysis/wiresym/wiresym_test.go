package wiresym

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

// treePaths lays each fixture tree out like the production packages: the
// wire package under the client's import path, the server beside it.
var treePaths = map[string]string{
	"wire":    "rstore/internal/xwire/wire",
	"client":  "rstore/internal/xwire",
	"engined": "rstore/internal/xwire/engined",
}

// TestSymmetric: a protocol with every op encoded, dispatched, and
// documented — and sentinels mapped both ways — is clean.
func TestSymmetric(t *testing.T) {
	rvettest.RunTree(t, Analyzer, "testdata/sym", "wire", treePaths)
}

// TestBroken proves the acceptance criterion: an op without a client
// method, dispatch arm, or FORMATS.md row fails, as do doc value
// mismatches, phantom doc rows, and one-sided sentinels.
func TestBroken(t *testing.T) {
	rvettest.RunTree(t, Analyzer, "testdata/broken", "wire", treePaths)
}

// TestOutOfScope: wiresym only runs on packages whose path ends in /wire.
func TestOutOfScope(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/sym/wire", "rstore/internal/notwire")
	if len(diags) != 0 {
		t.Errorf("non-wire package produced diagnostics: %v", diags)
	}
}

func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.TreeDiagnostics(t, Analyzer, "testdata/escapes", "wire", treePaths)
	var reasonless bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	if findings != 3 {
		t.Errorf("a reason-less escape must not suppress: got %d findings, want 3 (diags: %v)", findings, diags)
	}
}
