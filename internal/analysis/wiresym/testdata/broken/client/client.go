package remote

import wire "rstore/internal/xwire/wire"

type Client struct{}

func (c *Client) Echo(payload []byte) []byte {
	req := []byte{wire.OpEcho}
	return append(req, payload...)
}

func (c *Client) decodeErr(text string) error {
	switch text {
	case wire.ErrGone.Error():
		return wire.ErrGone
	case wire.ErrPhantom.Error():
		return wire.ErrPhantom
	}
	return nil
}
