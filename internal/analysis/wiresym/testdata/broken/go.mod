module fixture
