package wire // want "docs/FORMATS.md documents OpBogus, which is not declared in the wire package" "sentinel rstore/internal/xwire/wire\\.ErrLost is textualized by the server but never mapped back by the client" "sentinel rstore/internal/xwire/wire\\.ErrPhantom is mapped back by the client but never sent by the server"

import "errors"

const (
	OpEcho byte = iota + 1 // want "docs/FORMATS.md gives OpEcho value 9, but the constant is 1"
	OpGone                 // want "OpGone has no Client method" "OpGone has no dispatch arm" "OpGone \\(value 2\\) has no row in the docs/FORMATS.md op table"
)

var (
	ErrGone    = errors.New("fixture: gone")
	ErrLost    = errors.New("fixture: lost")
	ErrPhantom = errors.New("fixture: phantom")
)
