package engined

import wire "rstore/internal/xwire/wire"

func Serve(op byte, payload []byte) ([]byte, string) {
	switch op {
	case wire.OpEcho:
		return payload, wire.ErrGone.Error()
	}
	return nil, wire.ErrLost.Error()
}
