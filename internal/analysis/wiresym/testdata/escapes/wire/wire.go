package wire

const (
	OpEcho byte = iota + 1
	// The escape below carries no reason, so it must be reported and must
	// not suppress OpGone's findings.
	//lint:rstore-vet wiresym:
	OpGone
)
