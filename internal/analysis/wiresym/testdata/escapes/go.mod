module fixture
