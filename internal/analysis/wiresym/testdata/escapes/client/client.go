package remote

import wire "rstore/internal/xwire/wire"

type Client struct{}

func (c *Client) Echo(payload []byte) []byte {
	req := []byte{wire.OpEcho}
	return append(req, payload...)
}
