package engined

import wire "rstore/internal/xwire/wire"

func Serve(op byte, payload []byte) []byte {
	switch op {
	case wire.OpEcho:
		return payload
	}
	return nil
}
