package remote

import wire "rstore/internal/xwire/wire"

type Client struct{ last error }

func (c *Client) Echo(payload []byte) []byte {
	req := []byte{wire.OpEcho}
	return append(req, payload...)
}

func (c *Client) Halt() []byte {
	return []byte{wire.OpHalt}
}

func (c *Client) decodeErr(text string) error {
	switch text {
	case wire.ErrGone.Error():
		return wire.ErrGone
	}
	return nil
}
