package wire

import "errors"

// Request opcodes.
const (
	OpEcho byte = iota + 1
	OpHalt
)

// ErrGone crosses the wire as text: the server replies with its Error()
// string and the client maps the string back to this sentinel.
var ErrGone = errors.New("fixture: gone")
