module fixture
