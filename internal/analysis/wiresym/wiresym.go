// Package wiresym implements the rstore-vet analyzer that keeps the wire
// protocol symmetric across its three homes: the wire package that declares
// the opcodes, the client (internal/engine/remote) that encodes requests,
// and the server (internal/engine/remote/engined) that dispatches them —
// plus the op table documented in docs/FORMATS.md. An opcode with no client
// method is dead weight; one with no dispatch arm is a frame the server
// drops on the floor; a FORMATS.md row that disagrees on the numeric value
// documents a protocol that does not exist. The same symmetry governs error
// sentinels: an error that crosses the wire as text (Err*.Error() on the
// server) must be mapped back to the sentinel by the client, or errors.Is
// silently stops working across a network hop.
package wiresym

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"rstore/internal/analysis/rvet"
)

// Analyzer checks wire-protocol symmetry: opcodes against client, server
// dispatch, and docs; error sentinels against both wire directions.
var Analyzer = &rvet.Analyzer{
	Name: "wiresym",
	Doc: `every wire opcode needs a client encoder, a server dispatch arm, and a docs/FORMATS.md row

Runs on the wire package. Every Op* constant must be referenced by a Client
method in the parent package (the request encoder), appear as a case arm in
the server's dispatch switch (the decoder), and have a row in the
docs/FORMATS.md op table whose numeric value matches the constant. Error
sentinels textualized by the server (Err*.Error()) must be mapped back by
the client, and vice versa, so errors.Is survives the network hop.`,
	Run: run,
}

func run(pass *rvet.Pass) error {
	base := pass.BasePath()
	if !strings.HasSuffix(base, "/wire") {
		return nil
	}
	parent := strings.TrimSuffix(base, "/wire")
	client, err := pass.Load(parent)
	if err != nil {
		return fmt.Errorf("loading client package %s: %v", parent, err)
	}
	server, err := pass.Load(parent + "/engined")
	if err != nil {
		return fmt.Errorf("loading server package %s/engined: %v", parent, err)
	}

	ops := collectOps(pass.TypesPkg())
	clientOps := clientOpRefs(client, base)
	dispatchOps := dispatchArms(server, base)
	docOps, err := docTable(pass)
	if err != nil {
		return err
	}

	for _, op := range ops {
		if !clientOps[op.name] {
			pass.Reportf(op.pos, "%s has no Client method in %s referencing it: the op cannot be sent", op.name, parent)
		}
		if !dispatchOps[op.name] {
			pass.Reportf(op.pos, "%s has no dispatch arm in %s/engined: the server drops the frame", op.name, parent)
		}
		docVal, documented := docOps[op.name]
		switch {
		case !documented:
			pass.Reportf(op.pos, "%s (value %d) has no row in the docs/FORMATS.md op table", op.name, op.value)
		case docVal != op.value:
			pass.Reportf(op.pos, "docs/FORMATS.md gives %s value %d, but the constant is %d", op.name, docVal, op.value)
		}
	}
	pkgPos := pass.Files()[0].Name.Pos()
	known := make(map[string]bool, len(ops))
	for _, op := range ops {
		known[op.name] = true
	}
	for _, name := range sortedKeys(docOps) {
		if !known[name] {
			pass.Reportf(pkgPos, "docs/FORMATS.md documents %s, which is not declared in the wire package", name)
		}
	}

	serverErrs := sentinelTexts(server)
	clientErrs := sentinelTexts(client)
	for _, s := range sortedKeys(serverErrs) {
		if !clientErrs[s] {
			pass.Reportf(pkgPos, "sentinel %s is textualized by the server but never mapped back by the client: errors.Is breaks across the wire", s)
		}
	}
	for _, s := range sortedKeys(clientErrs) {
		if !serverErrs[s] {
			pass.Reportf(pkgPos, "sentinel %s is mapped back by the client but never sent by the server: dead decode arm or missing server reply", s)
		}
	}
	return nil
}

type opConst struct {
	name  string
	value int64
	pos   token.Pos
}

// collectOps gathers the Op* constants of the wire package with their
// numeric values and declaration positions.
func collectOps(pkg *types.Package) []opConst {
	var ops []opConst
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Op") || len(name) < 3 || name[2] < 'A' || name[2] > 'Z' {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if !exact {
			continue
		}
		ops = append(ops, opConst{name: name, value: v, pos: c.Pos()})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].value < ops[j].value })
	return ops
}

// clientOpRefs returns the names of wirePath's Op* constants referenced in
// pkg's non-test method bodies whose receiver type is named Client — the
// request encoders.
func clientOpRefs(pkg *rvet.Package, wirePath string) map[string]bool {
	used := make(map[string]bool)
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if receiverTypeName(fd) != "Client" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if c, ok := pkg.Info.Uses[id].(*types.Const); ok &&
						c.Pkg() != nil && c.Pkg().Path() == wirePath && strings.HasPrefix(c.Name(), "Op") {
						used[c.Name()] = true
					}
				}
				return true
			})
		}
	}
	return used
}

// receiverTypeName returns the name of fd's receiver type (pointer
// indirection stripped), or "" for plain functions.
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// dispatchArms returns the wirePath Op* constants that appear as switch
// case expressions in pkg's non-test files — the server's decoder arms.
func dispatchArms(pkg *rvet.Package, wirePath string) map[string]bool {
	arms := make(map[string]bool)
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, e := range cc.List {
				if obj := rvet.ExprObject(pkg.Info, e); obj != nil {
					if c, ok := obj.(*types.Const); ok &&
						c.Pkg() != nil && c.Pkg().Path() == wirePath && strings.HasPrefix(c.Name(), "Op") {
						arms[c.Name()] = true
					}
				}
			}
			return true
		})
	}
	return arms
}

// sentinelTexts returns the qualified names of the error sentinels pkg
// textualizes or matches by text: every Err*.Error() call site in non-test
// files (the server's replyErr strings and the client's decode cases).
func sentinelTexts(pkg *rvet.Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Error" {
				return true
			}
			if obj := rvet.ExprObject(pkg.Info, sel.X); obj != nil && rvet.IsErrorSentinel(obj) {
				out[obj.Pkg().Path()+"."+obj.Name()] = true
			}
			return true
		})
	}
	return out
}

// docRowRe matches one row of the FORMATS.md op table: | `OpName` | value |
var docRowRe = regexp.MustCompile("(?m)^\\|\\s*`(Op\\w+)`\\s*\\|\\s*(\\d+)\\s*\\|")

// docTable locates docs/FORMATS.md above the wire package (the directory
// holding go.mod is the module root) and parses its op table.
func docTable(pass *rvet.Pass) (map[string]int64, error) {
	start := pass.Fset().Position(pass.Files()[0].Pos()).Filename
	dir := filepath.Dir(start)
	for i := 0; i < 12; i++ {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			data, err := os.ReadFile(filepath.Join(dir, "docs", "FORMATS.md"))
			if err != nil {
				return nil, fmt.Errorf("reading docs/FORMATS.md under %s: %v", dir, err)
			}
			table := make(map[string]int64)
			for _, m := range docRowRe.FindAllStringSubmatch(string(data), -1) {
				var v int64
				fmt.Sscanf(m[2], "%d", &v)
				table[m[1]] = v
			}
			return table, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return nil, fmt.Errorf("cannot locate a go.mod above %s to find docs/FORMATS.md", start)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
