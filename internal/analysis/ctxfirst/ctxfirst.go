// Package ctxfirst enforces the ctx-first public-surface contract
// established in PR 3: a function that accepts a context.Context takes it
// as the first parameter, and the core storage layers do not mint root
// contexts with context.Background()/context.TODO() — they thread the
// caller's. A Background() deep in kvstore or core detaches that operation
// from every deadline and cancellation above it, which is exactly the bug
// class the streaming/cancellation work eliminated.
package ctxfirst

import (
	"go/ast"
	"go/types"
	"strings"

	"rstore/internal/analysis/rvet"
)

// Analyzer is the ctxfirst rule.
var Analyzer = &rvet.Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters come first; core layers must not mint context.Background()\n\n" +
		"The parameter-position rule applies to every function, method, and\n" +
		"interface method in the module. The Background()/TODO() ban applies to\n" +
		"rstore, rstore/internal/{core,kvstore,client} and rstore/internal/engine/...,\n" +
		"excluding package main, _test.go files, and test-helper packages (a\n" +
		"package name ending in \"test\"). Lifecycle roots that genuinely own a\n" +
		"fresh context (daemon serve loops, io.Closer shims) carry a reasoned\n" +
		"//lint:rstore-vet escape instead.",
	Run: run,
}

// backgroundScope lists the path prefixes whose non-test code must thread
// caller contexts instead of minting roots. The facade package itself
// (import path exactly "rstore") is included separately in
// inBackgroundScope, since as a prefix it would swallow the whole module.
var backgroundScope = []string{
	"rstore/internal/core",
	"rstore/internal/kvstore",
	"rstore/internal/engine",
	"rstore/internal/client",
}

func run(pass *rvet.Pass) error {
	info := pass.TypesInfo()
	banBackground := inBackgroundScope(pass)
	for _, f := range pass.Files() {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkParams(pass, info, n.Type)
			case *ast.FuncLit:
				checkParams(pass, info, n.Type)
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						checkParams(pass, info, ft)
					}
				}
			case *ast.CallExpr:
				if !banBackground {
					return true
				}
				for _, name := range [2]string{"Background", "TODO"} {
					if rvet.IsPkgCall(info, n, "context", name) {
						pass.Reportf(n.Pos(), "context.%s() mints a root context in a core layer: thread the caller's ctx (or carry a reasoned escape for a lifecycle root)", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkParams flags a context.Context parameter anywhere but position 0.
// Variadic or multi-name fields count each name as one position.
func checkParams(pass *rvet.Pass, info *types.Info, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if ok && rvet.IsContextType(tv.Type) && pos > 0 {
			pass.Reportf(field.Type.Pos(), "context.Context must be the first parameter")
		}
		pos += width
	}
}

// inBackgroundScope mirrors rvet.Pass.InScope but excludes package main and
// test-helper packages, which legitimately own root contexts.
func inBackgroundScope(pass *rvet.Pass) bool {
	if pass.BasePath() != "rstore" && !pass.InScope(backgroundScope...) {
		return false
	}
	name := pass.TypesPkg().Name()
	if name == "main" || strings.HasSuffix(name, "test") {
		return false
	}
	return true
}
