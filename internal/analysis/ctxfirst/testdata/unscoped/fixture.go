package fixture

import "context"

// Outside the core layers, minting a root context is allowed (benches,
// tools), but the parameter-position rule still holds module-wide.
func mintAllowed() context.Context {
	return context.Background()
}

func bad(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = n
	return ctx.Err()
}
