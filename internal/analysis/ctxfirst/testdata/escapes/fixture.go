package fixture

import "context"

func reasonless() context.Context {
	//lint:rstore-vet ctxfirst:
	return context.Background()
}
