package fixture

import "context"

func good(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

func bad(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = n
	return ctx.Err()
}

type api interface {
	Do(ctx context.Context, name string) error
	DoBad(name string, ctx context.Context) error // want "context.Context must be the first parameter"
}

func litBad() {
	f := func(n int, ctx context.Context) { // want "context.Context must be the first parameter"
		_ = ctx
	}
	f(1, context.TODO()) // want "context.TODO\\(\\) mints a root context"
}

func mint() context.Context {
	return context.Background() // want "context.Background\\(\\) mints a root context"
}

func lifecycleRoot() context.Context {
	//lint:rstore-vet ctxfirst: fixture lifecycle root owning a fresh context
	return context.Background()
}

var _ = api(nil)
