package ctxfirst

import (
	"strings"
	"testing"

	"rstore/internal/analysis/rvet/rvettest"
)

func TestCoreScope(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/core", "rstore/internal/core/fixture")
}

// TestUnscoped checks the split rule: parameter position applies
// module-wide, the Background ban only inside the core layers.
func TestUnscoped(t *testing.T) {
	rvettest.Run(t, Analyzer, "testdata/unscoped", "rstore/internal/bench/fixture")
}

func TestEscapeRequiresReason(t *testing.T) {
	diags := rvettest.Diagnostics(t, Analyzer, "testdata/escapes", "rstore/internal/core/fixture")
	var reasonless bool
	findings := 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			reasonless = true
		case d.Analyzer == Analyzer.Name:
			findings++
		}
	}
	if !reasonless {
		t.Error("reason-less escape was not reported")
	}
	if findings != 1 {
		t.Errorf("a reason-less escape must not suppress: got %d findings, want 1 (diags: %v)", findings, diags)
	}
}
