// Package analysis registers the rstore-vet analyzer suite: the project's
// crash-safety, error-classification, context, locking, lifecycle,
// wire-protocol, and clock invariants as mechanical checks
// (docs/ANALYZERS.md). cmd/rstore-vet is the driver;
// internal/analysis/rvet is the framework.
package analysis

import (
	"rstore/internal/analysis/clockseam"
	"rstore/internal/analysis/ctxfirst"
	"rstore/internal/analysis/errclass"
	"rstore/internal/analysis/fsyncrename"
	"rstore/internal/analysis/goroutinelife"
	"rstore/internal/analysis/lockio"
	"rstore/internal/analysis/lockorder"
	"rstore/internal/analysis/rvet"
	"rstore/internal/analysis/wiresym"
)

// All returns the full suite in reporting order.
func All() []*rvet.Analyzer {
	return []*rvet.Analyzer{
		clockseam.Analyzer,
		ctxfirst.Analyzer,
		errclass.Analyzer,
		fsyncrename.Analyzer,
		goroutinelife.Analyzer,
		lockio.Analyzer,
		lockorder.Analyzer,
		wiresym.Analyzer,
	}
}
