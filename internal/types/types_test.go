package types

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompositeKeyLess(t *testing.T) {
	cases := []struct {
		a, b CompositeKey
		want bool
	}{
		{CompositeKey{"a", 0}, CompositeKey{"b", 0}, true},
		{CompositeKey{"b", 0}, CompositeKey{"a", 0}, false},
		{CompositeKey{"a", 1}, CompositeKey{"a", 2}, true},
		{CompositeKey{"a", 2}, CompositeKey{"a", 1}, false},
		{CompositeKey{"a", 1}, CompositeKey{"a", 1}, false},
		{CompositeKey{"a", 9}, CompositeKey{"b", 1}, true}, // key dominates
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCompositeKeyLessIsStrictWeakOrder property-checks antisymmetry and
// totality of the ordering.
func TestCompositeKeyLessIsStrictWeakOrder(t *testing.T) {
	f := func(k1, k2 string, v1, v2 uint32) bool {
		a := CompositeKey{Key(k1), VersionID(v1)}
		b := CompositeKey{Key(k2), VersionID(v2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaIsConsistent(t *testing.T) {
	ck := CompositeKey{"k", 1}
	good := &Delta{
		Adds: []Record{{CK: CompositeKey{"k", 2}}},
		Dels: []CompositeKey{ck},
	}
	if !good.IsConsistent() {
		t.Error("disjoint delta reported inconsistent")
	}
	bad := &Delta{
		Adds: []Record{{CK: ck}},
		Dels: []CompositeKey{ck},
	}
	if bad.IsConsistent() {
		t.Error("overlapping delta reported consistent")
	}
	empty := &Delta{}
	if !empty.IsConsistent() {
		t.Error("empty delta reported inconsistent")
	}
}

func TestDeltaAccessors(t *testing.T) {
	d := &Delta{
		Adds: []Record{
			{CK: CompositeKey{"a", 1}, Value: []byte("xy")},
			{CK: CompositeKey{"b", 1}, Value: []byte("z")},
		},
		Dels: []CompositeKey{{"a", 0}},
	}
	keys := d.AddKeys()
	if len(keys) != 2 || keys[0] != (CompositeKey{"a", 1}) || keys[1] != (CompositeKey{"b", 1}) {
		t.Errorf("AddKeys = %v", keys)
	}
	wantBytes := (2 + RecordOverhead) + (1 + RecordOverhead)
	if got := d.Bytes(); got != wantBytes {
		t.Errorf("Bytes = %d, want %d", got, wantBytes)
	}
}

func TestRecordSize(t *testing.T) {
	r := Record{CK: CompositeKey{"k", 0}, Value: make([]byte, 100)}
	if r.Size() != 100+RecordOverhead {
		t.Errorf("Size = %d", r.Size())
	}
}

func TestSortHelpers(t *testing.T) {
	recs := []Record{
		{CK: CompositeKey{"b", 0}},
		{CK: CompositeKey{"a", 2}},
		{CK: CompositeKey{"a", 1}},
	}
	SortRecords(recs)
	if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].CK.Less(recs[j].CK) }) {
		t.Errorf("SortRecords failed: %v", recs)
	}
	cks := []CompositeKey{{"z", 0}, {"a", 5}, {"a", 3}}
	SortCompositeKeys(cks)
	if cks[0] != (CompositeKey{"a", 3}) || cks[2] != (CompositeKey{"z", 0}) {
		t.Errorf("SortCompositeKeys = %v", cks)
	}
}

func TestErrorWrapping(t *testing.T) {
	var err error = &KeyNotFoundError{Key: "k", Version: 3}
	if !errors.Is(err, ErrNotFound) {
		t.Error("KeyNotFoundError does not unwrap to ErrNotFound")
	}
	if err.Error() == "" {
		t.Error("empty error message")
	}
	err = &VersionUnknownError{Version: 9}
	if !errors.Is(err, ErrVersionUnknown) {
		t.Error("VersionUnknownError does not unwrap to ErrVersionUnknown")
	}
}
