// Package types defines the fundamental data model of RStore: primary keys,
// version identifiers, composite keys, records, and deltas between versions.
//
// The unit of storage and retrieval is a Record. A record is immutable: any
// change to a record produces a new record that is identified by a composite
// key ⟨primary key, origin version⟩, where the origin version is the version
// in which that record first appeared (paper §2.1).
package types

import (
	"fmt"
	"sort"
)

// Key is the primary key of a record within the collection. RStore makes no
// assumption about key structure beyond uniqueness within a version.
type Key string

// VersionID identifies a version (snapshot) of the collection. Version
// identifiers are assigned by the system at commit time and are unique even
// for identical contents committed twice (paper §2.4, Data Ingest Module).
// The root version of a dataset always has VersionID 0.
type VersionID uint32

// InvalidVersion is a sentinel for "no version". The root version is 0, so
// the sentinel uses the maximum value.
const InvalidVersion = VersionID(^uint32(0))

// CompositeKey uniquely identifies a record in the global address space:
// the primary key plus the version in which the record originated. Note that
// the version component is NOT the version being queried — a record that is
// unchanged across versions keeps the composite key of its origin.
type CompositeKey struct {
	Key     Key
	Version VersionID
}

func (ck CompositeKey) String() string {
	return fmt.Sprintf("⟨%s,V%d⟩", string(ck.Key), ck.Version)
}

// Less orders composite keys by primary key then origin version, the order
// used for range scans and for the sub-chunk construction sort (§3.4).
func (ck CompositeKey) Less(other CompositeKey) bool {
	if ck.Key != other.Key {
		return ck.Key < other.Key
	}
	return ck.Version < other.Version
}

// Record is the primary unit of storage and retrieval: an immutable value
// identified by a composite key. The payload is opaque to RStore — JSON
// documents, text, or binary are all handled identically.
type Record struct {
	CK    CompositeKey
	Value []byte
}

// Size returns the billable size of the record inside a chunk: payload bytes
// plus a fixed per-record overhead approximating the serialized key/version
// framing.
func (r Record) Size() int { return len(r.Value) + RecordOverhead }

// RecordOverhead is the per-record serialization overhead, in bytes, charged
// when packing records into fixed-capacity chunks.
const RecordOverhead = 16

// Delta is the set of changes from a parent version to a child version
// (paper §2.1). Adds holds records newly created in the child — brand-new
// primary keys as well as new versions of modified keys (their composite keys
// carry the child version). Dels holds composite keys of parent records that
// are no longer visible in the child — deletions as well as the old versions
// of modified keys.
//
// A delta is symmetric: applied forward it derives the child from the parent,
// applied backward (swapping Adds/Dels roles) it derives the parent from the
// child.
type Delta struct {
	Adds []Record
	Dels []CompositeKey
}

// AddKeys returns the composite keys of the added records.
func (d *Delta) AddKeys() []CompositeKey {
	cks := make([]CompositeKey, len(d.Adds))
	for i, r := range d.Adds {
		cks[i] = r.CK
	}
	return cks
}

// IsConsistent reports whether the delta satisfies the consistency condition
// of §3.2: the positive and negative sets are disjoint.
func (d *Delta) IsConsistent() bool {
	if len(d.Adds) == 0 || len(d.Dels) == 0 {
		return true
	}
	dels := make(map[CompositeKey]struct{}, len(d.Dels))
	for _, ck := range d.Dels {
		dels[ck] = struct{}{}
	}
	for _, r := range d.Adds {
		if _, ok := dels[r.CK]; ok {
			return false
		}
	}
	return true
}

// Bytes returns the total payload volume carried by the delta (adds only;
// deletions carry keys, not payloads).
func (d *Delta) Bytes() int {
	total := 0
	for _, r := range d.Adds {
		total += r.Size()
	}
	return total
}

// SortRecords orders records by composite key (primary key, then origin
// version) in place.
func SortRecords(rs []Record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].CK.Less(rs[j].CK) })
}

// SortCompositeKeys orders composite keys in place.
func SortCompositeKeys(cks []CompositeKey) {
	sort.Slice(cks, func(i, j int) bool { return cks[i].Less(cks[j]) })
}
