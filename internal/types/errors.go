package types

import (
	"errors"
	"fmt"
)

// Sentinel errors shared across the RStore layers. Callers should match them
// with errors.Is; wrapped forms carry the offending key/version for context.
var (
	// ErrNotFound reports that a requested record, version, chunk, or KVS
	// key does not exist.
	ErrNotFound = errors.New("rstore: not found")

	// ErrVersionUnknown reports that a version id is not present in the
	// version graph.
	ErrVersionUnknown = errors.New("rstore: unknown version")

	// ErrInconsistentDelta reports a delta whose positive and negative
	// sets intersect (§3.2 requires ∆⁺ ∩ ∆⁻ = ∅).
	ErrInconsistentDelta = errors.New("rstore: inconsistent delta")

	// ErrCorrupt reports a malformed serialized structure.
	ErrCorrupt = errors.New("rstore: corrupt encoding")

	// ErrClosed reports use of a store after Close.
	ErrClosed = errors.New("rstore: store closed")

	// ErrReadOnly reports a mutation on a read-only store (a read-replica
	// application server).
	ErrReadOnly = errors.New("rstore: store is read-only")
)

// KeyNotFoundError wraps ErrNotFound with the missing composite key and the
// version queried.
type KeyNotFoundError struct {
	Key     Key
	Version VersionID
}

func (e *KeyNotFoundError) Error() string {
	return fmt.Sprintf("rstore: key %q not found in version %d", string(e.Key), e.Version)
}

// Unwrap makes errors.Is(err, ErrNotFound) succeed.
func (e *KeyNotFoundError) Unwrap() error { return ErrNotFound }

// VersionUnknownError wraps ErrVersionUnknown with the offending id.
type VersionUnknownError struct {
	Version VersionID
}

func (e *VersionUnknownError) Error() string {
	return fmt.Sprintf("rstore: unknown version %d", e.Version)
}

// Unwrap makes errors.Is(err, ErrVersionUnknown) succeed.
func (e *VersionUnknownError) Unwrap() error { return ErrVersionUnknown }
