package bdiff

import (
	"bytes"
	"testing"
)

// FuzzApply hardens the patch interpreter: arbitrary deltas against
// arbitrary sources must error out cleanly, never panic or over-allocate.
func FuzzApply(f *testing.F) {
	src := []byte("the quick brown fox jumps over the lazy dog, twice over")
	f.Add(src, Encode(nil, src, []byte("the quick brown cat naps")))
	f.Add([]byte{}, []byte{})
	f.Add(src, []byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, source, delta []byte) {
		out, err := Apply(nil, source, delta)
		if err == nil {
			_ = out
		}
	})
}

// FuzzEncodeApplyRoundTrip asserts the core invariant under fuzzing: any
// (src, dst) pair encodes to a delta that applies back to dst exactly.
func FuzzEncodeApplyRoundTrip(f *testing.F) {
	f.Add([]byte("abcdefgh"), []byte("abXdefgh"))
	f.Add([]byte{}, []byte("fresh"))
	f.Add(bytes.Repeat([]byte("block"), 50), bytes.Repeat([]byte("block"), 49))
	f.Fuzz(func(t *testing.T, src, dst []byte) {
		delta := Encode(nil, src, dst)
		got, err := Apply(nil, src, delta)
		if err != nil {
			t.Fatalf("own delta rejected: %v", err)
		}
		if !bytes.Equal(got, dst) {
			t.Fatalf("round trip mismatch: %d bytes vs %d", len(got), len(dst))
		}
	})
}
