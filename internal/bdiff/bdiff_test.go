package bdiff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src, dst []byte) []byte {
	t.Helper()
	delta := Encode(nil, src, dst)
	got, err := Apply(nil, src, delta)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bytes.Equal(got, dst) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(dst))
	}
	return delta
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil, nil)
	roundTrip(t, nil, []byte("fresh content"))
	roundTrip(t, []byte("some source"), nil)
	roundTrip(t, []byte("identical"), []byte("identical"))
	roundTrip(t, []byte("short"), []byte("completely different and longer text"))
}

func TestSmallEditCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 4096)
	rng.Read(src)
	dst := append([]byte(nil), src...)
	// Flip 16 bytes in the middle.
	for i := 2000; i < 2016; i++ {
		dst[i] ^= 0xff
	}
	delta := roundTrip(t, src, dst)
	if len(delta) > len(dst)/8 {
		t.Fatalf("delta of a 16-byte edit is %d bytes (target %d)", len(delta), len(dst))
	}
}

func TestInsertionAndDeletion(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefghij"), 100)
	ins := append(append(append([]byte{}, src[:500]...), []byte("INSERTED CONTENT HERE")...), src[500:]...)
	delta := roundTrip(t, src, ins)
	if len(delta) > 120 {
		t.Fatalf("insertion delta is %d bytes", len(delta))
	}
	del := append(append([]byte{}, src[:300]...), src[600:]...)
	delta = roundTrip(t, src, del)
	if len(delta) > 64 {
		t.Fatalf("deletion delta is %d bytes", len(delta))
	}
}

func TestRepeatedBlocks(t *testing.T) {
	// dst reuses one src block many times: copies must all resolve.
	src := []byte("0123456789abcdef-THE-BLOCK-fedcba9876543210")
	var dst []byte
	for i := 0; i < 20; i++ {
		dst = append(dst, []byte("-THE-BLOCK-")...)
	}
	roundTrip(t, src, dst)
}

func TestApplyCorrupt(t *testing.T) {
	src := []byte("source material")
	if _, err := Apply(nil, src, nil); err == nil {
		t.Error("empty delta accepted")
	}
	// Truncated delta.
	delta := Encode(nil, src, []byte("target text that differs"))
	if _, err := Apply(nil, src, delta[:len(delta)-3]); err == nil {
		t.Error("truncated delta accepted")
	}
	// Copy out of range: craft target len 8, COPY off=100 n=8.
	bad := []byte{8, opCopy, 100, 8}
	if _, err := Apply(nil, src, bad); err == nil {
		t.Error("out-of-range copy accepted")
	}
	// Unknown op.
	bad = []byte{8, 99}
	if _, err := Apply(nil, src, bad); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestAppendSemantics(t *testing.T) {
	src := []byte("abc")
	dst := []byte("abcdef")
	delta := Encode(nil, src, dst)
	prefix := []byte("PREFIX")
	out, err := Apply(prefix, src, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, append([]byte("PREFIX"), dst...)) {
		t.Fatalf("append semantics broken: %q", out)
	}
}

// TestPropertyRoundTrip: Encode/Apply round-trips arbitrary byte pairs.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(src, dst []byte) bool {
		got, err := Apply(nil, src, Encode(nil, src, dst))
		return err == nil && bytes.Equal(got, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMutatedRoundTrip: the interesting case — dst is a mutation of
// src (the sub-chunk workload).
func TestPropertyMutatedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 64 + rng.Intn(4096)
		src := make([]byte, n)
		rng.Read(src)
		dst := append([]byte(nil), src...)
		edits := 1 + rng.Intn(8)
		for e := 0; e < edits; e++ {
			pos := rng.Intn(len(dst))
			dst[pos] = byte(rng.Intn(256))
		}
		delta := roundTrip(t, src, dst)
		if len(delta) >= len(dst) {
			t.Fatalf("trial %d: delta (%d) not smaller than dst (%d) for %d edits",
				trial, len(delta), len(dst), edits)
		}
	}
}
