// Package bdiff implements binary delta encoding between record payloads:
// a greedy copy/insert compressor in the style of xdelta/rsync. Sub-chunks
// (paper §3.4) store sibling records delta-encoded against their common
// parent record, exploiting the observation that an updated document differs
// from its parent in only a bounded fraction (P_d) of its bytes.
//
// The format is a sequence of ops:
//
//	COPY  — uvarint(offset into source), uvarint(length)
//	ADD   — length-prefixed literal bytes
//
// prefixed by a uvarint of the target length, so patches are self-describing
// and verifiable.
package bdiff

import (
	"fmt"

	"rstore/internal/codec"
	"rstore/internal/types"
)

const (
	opCopy = 0
	opAdd  = 1

	// blockSize is the rolling-hash block granularity. Smaller blocks find
	// finer matches at the cost of a bigger source index.
	blockSize = 16
	// minCopy is the shortest copy worth emitting; shorter matches cost more
	// in framing than the literal bytes they save.
	minCopy = 8
)

// Encode computes a delta that transforms src into dst. The result is
// appended to buf. If src is too small to index, the delta degenerates to a
// single ADD of dst.
func Encode(buf, src, dst []byte) []byte {
	buf = codec.PutUvarint(buf, uint64(len(dst)))
	if len(dst) == 0 {
		return buf
	}
	if len(src) < blockSize {
		buf = append(buf, opAdd)
		return codec.PutBytes(buf, dst)
	}

	// Index src by block hash → block start offsets.
	idx := make(map[uint64][]int, len(src)/blockSize+1)
	for off := 0; off+blockSize <= len(src); off += blockSize {
		h := hashBlock(src[off : off+blockSize])
		idx[h] = append(idx[h], off)
	}

	pendingAdd := 0 // start of the current unmatched literal run in dst
	flushAdd := func(end int) {
		if end > pendingAdd {
			buf = append(buf, opAdd)
			buf = codec.PutBytes(buf, dst[pendingAdd:end])
		}
	}

	i := 0
	for i+blockSize <= len(dst) {
		h := hashBlock(dst[i : i+blockSize])
		candidates, ok := idx[h]
		if !ok {
			i++
			continue
		}
		// Pick the candidate with the longest total match, extending both
		// forward and backward (into the pending literal run).
		bestOff, bestStart, bestLen := -1, 0, 0
		for _, off := range candidates {
			o, s := off, i
			for o > 0 && s > pendingAdd && src[o-1] == dst[s-1] {
				o--
				s--
			}
			l := matchLen(src[o:], dst[s:])
			if l > bestLen {
				bestOff, bestStart, bestLen = o, s, l
			}
		}
		if bestLen < minCopy {
			i++
			continue
		}
		flushAdd(bestStart)
		buf = append(buf, opCopy)
		buf = codec.PutUvarint(buf, uint64(bestOff))
		buf = codec.PutUvarint(buf, uint64(bestLen))
		i = bestStart + bestLen
		pendingAdd = i
	}
	flushAdd(len(dst))
	return buf
}

// Apply reconstructs the target from src and a delta produced by Encode,
// appending it to out.
func Apply(out, src, delta []byte) ([]byte, error) {
	want, rest, err := codec.Uvarint(delta)
	if err != nil {
		return nil, err
	}
	base := len(out)
	for uint64(len(out)-base) < want {
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: truncated bdiff", types.ErrCorrupt)
		}
		op := rest[0]
		rest = rest[1:]
		switch op {
		case opCopy:
			var off, n uint64
			off, rest, err = codec.Uvarint(rest)
			if err != nil {
				return nil, err
			}
			n, rest, err = codec.Uvarint(rest)
			if err != nil {
				return nil, err
			}
			if off+n > uint64(len(src)) {
				return nil, fmt.Errorf("%w: bdiff copy out of range", types.ErrCorrupt)
			}
			out = append(out, src[off:off+n]...)
		case opAdd:
			var lit []byte
			lit, rest, err = codec.Bytes(rest)
			if err != nil {
				return nil, err
			}
			out = append(out, lit...)
		default:
			return nil, fmt.Errorf("%w: unknown bdiff op %d", types.ErrCorrupt, op)
		}
	}
	if uint64(len(out)-base) != want {
		return nil, fmt.Errorf("%w: bdiff length mismatch (want %d, got %d)", types.ErrCorrupt, want, len(out)-base)
	}
	return out, nil
}

func matchLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// hashBlock is FNV-1a over a fixed-size block.
func hashBlock(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
