package bdiff

import (
	"fmt"
	"math/rand"
	"testing"
)

func editedPair(size, edits int, seed int64) (src, dst []byte) {
	rng := rand.New(rand.NewSource(seed))
	src = make([]byte, size)
	rng.Read(src)
	dst = append([]byte(nil), src...)
	for i := 0; i < edits; i++ {
		dst[rng.Intn(size)] = byte(rng.Intn(256))
	}
	return src, dst
}

func BenchmarkEncode(b *testing.B) {
	for _, size := range []int{1 << 10, 16 << 10} {
		src, dst := editedPair(size, 8, 1)
		b.Run(byteSize(size), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				Encode(nil, src, dst)
			}
		})
	}
}

func BenchmarkApply(b *testing.B) {
	for _, size := range []int{1 << 10, 16 << 10} {
		src, dst := editedPair(size, 8, 2)
		delta := Encode(nil, src, dst)
		b.Run(byteSize(size), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := Apply(nil, src, delta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteSize(n int) string {
	return fmt.Sprintf("%dKiB", n>>10)
}
