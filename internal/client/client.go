// Package client is a Go client for the RStore HTTP application server
// (internal/server): typed wrappers over the JSON API so remote callers get
// the same surface as the embedded engine.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"rstore/internal/server"
	"rstore/internal/types"
)

// Client talks to one application server.
type Client struct {
	base string
	http *http.Client
}

// New creates a client for the server at baseURL (e.g. "http://host:8080").
// httpClient may be nil (http.DefaultClient).
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rstore client: HTTP %d: %s", e.Status, e.Message)
}

// Is maps 404 responses onto the store's sentinel so errors.Is works across
// the wire.
func (e *APIError) Is(target error) bool {
	switch target {
	case types.ErrNotFound, types.ErrVersionUnknown:
		return e.Status == http.StatusNotFound
	}
	return false
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: apiErr.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: string(msg)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Commit creates a version from a parent (-1 for the root) and optionally
// advances a branch.
func (c *Client) Commit(parent int64, puts map[string][]byte, deletes []string, branch string) (types.VersionID, error) {
	var out server.CommitResponse
	err := c.do(http.MethodPost, "/commit", server.CommitRequest{
		Parent: parent, Puts: puts, Deletes: deletes, Branch: branch,
	}, &out)
	if err != nil {
		return types.InvalidVersion, err
	}
	return types.VersionID(out.Version), nil
}

// CommitMerge creates a merge commit; parents[0] is primary.
func (c *Client) CommitMerge(parents []int64, puts map[string][]byte, deletes []string) (types.VersionID, error) {
	if len(parents) == 0 {
		return types.InvalidVersion, fmt.Errorf("rstore client: merge needs parents")
	}
	var out server.CommitResponse
	err := c.do(http.MethodPost, "/commit", server.CommitRequest{
		Parent: parents[0], Parents: parents[1:], Puts: puts, Deletes: deletes,
	}, &out)
	if err != nil {
		return types.InvalidVersion, err
	}
	return types.VersionID(out.Version), nil
}

func decodeRecords(qr *server.QueryResponse) []types.Record {
	recs := make([]types.Record, len(qr.Records))
	for i, r := range qr.Records {
		recs[i] = types.Record{
			CK:    types.CompositeKey{Key: types.Key(r.Key), Version: types.VersionID(r.OriginVersion)},
			Value: r.Value,
		}
	}
	return recs
}

// GetVersion retrieves every record of a version (by id or branch name).
func (c *Client) GetVersion(ref string) ([]types.Record, server.StatsJSON, error) {
	var qr server.QueryResponse
	if err := c.do(http.MethodGet, "/version/"+url.PathEscape(ref), nil, &qr); err != nil {
		return nil, server.StatsJSON{}, err
	}
	return decodeRecords(&qr), qr.Stats, nil
}

// GetRecord retrieves one key within a version.
func (c *Client) GetRecord(ref string, key types.Key) (types.Record, server.StatsJSON, error) {
	var qr server.QueryResponse
	path := "/version/" + url.PathEscape(ref) + "/record/" + url.PathEscape(string(key))
	if err := c.do(http.MethodGet, path, nil, &qr); err != nil {
		return types.Record{}, server.StatsJSON{}, err
	}
	recs := decodeRecords(&qr)
	if len(recs) == 0 {
		return types.Record{}, qr.Stats, &APIError{Status: http.StatusNotFound, Message: "no record"}
	}
	return recs[0], qr.Stats, nil
}

// GetRange retrieves a version's records with keys in [lo, hi).
func (c *Client) GetRange(ref string, lo, hi types.Key) ([]types.Record, server.StatsJSON, error) {
	var qr server.QueryResponse
	path := fmt.Sprintf("/version/%s/range?lo=%s&hi=%s",
		url.PathEscape(ref), url.QueryEscape(string(lo)), url.QueryEscape(string(hi)))
	if err := c.do(http.MethodGet, path, nil, &qr); err != nil {
		return nil, server.StatsJSON{}, err
	}
	return decodeRecords(&qr), qr.Stats, nil
}

// GetHistory retrieves every revision of a key.
func (c *Client) GetHistory(key types.Key) ([]types.Record, server.StatsJSON, error) {
	var qr server.QueryResponse
	if err := c.do(http.MethodGet, "/history/"+url.PathEscape(string(key)), nil, &qr); err != nil {
		return nil, server.StatsJSON{}, err
	}
	return decodeRecords(&qr), qr.Stats, nil
}

// Diff reports the record-level difference between two versions.
func (c *Client) Diff(a, b types.VersionID) (*server.DiffJSON, error) {
	var out server.DiffJSON
	path := fmt.Sprintf("/diff?a=%d&b=%d", a, b)
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Branches lists branch tips (-1 = unset).
func (c *Client) Branches() (map[string]int64, error) {
	var out map[string]int64
	if err := c.do(http.MethodGet, "/branches", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// SetBranch points a branch at a version.
func (c *Client) SetBranch(name string, v types.VersionID) error {
	return c.do(http.MethodPut, "/branch/"+url.PathEscape(name),
		map[string]int64{"version": int64(v)}, nil)
}

// Flush forces online partitioning of pending versions.
func (c *Client) Flush() error {
	return c.do(http.MethodPost, "/flush", struct{}{}, nil)
}

// Stats returns server statistics.
func (c *Client) Stats() (map[string]any, error) {
	var out map[string]any
	if err := c.do(http.MethodGet, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
