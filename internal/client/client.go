// Package client is a Go client for the RStore HTTP application server
// (internal/server): typed wrappers over the JSON API so remote callers get
// the same surface as the embedded engine — context-aware calls and, for
// the set-returning queries, the same cursor shape as core.Store, decoding
// the server's NDJSON stream incrementally instead of materializing the
// response.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"sort"
	"strings"

	"rstore/internal/server"
	"rstore/internal/types"
)

// Client talks to one application server.
type Client struct {
	base string
	http *http.Client
}

// New creates a client for the server at baseURL (e.g. "http://host:8080").
// httpClient may be nil (http.DefaultClient).
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// APIError is a non-2xx response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rstore client: HTTP %d: %s", e.Status, e.Message)
}

// Is maps 404 responses onto the store's sentinel so errors.Is works across
// the wire.
func (e *APIError) Is(target error) bool {
	switch target {
	//lint:rstore-vet errclass: Is(target) implements the errors.Is protocol itself — identity against the target sentinel is the contract here
	case types.ErrNotFound, types.ErrVersionUnknown:
		return e.Status == http.StatusNotFound
	}
	return false
}

// send issues one request and returns the successful response; a non-2xx
// status is drained into an APIError.
func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			return nil, &APIError{Status: resp.StatusCode, Message: apiErr.Error}
		}
		return nil, &APIError{Status: resp.StatusCode, Message: string(msg)}
	}
	return resp, nil
}

// do runs one buffered JSON exchange.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Commit creates a version from a parent (-1 for the root) and optionally
// advances a branch.
func (c *Client) Commit(ctx context.Context, parent int64, puts map[string][]byte, deletes []string, branch string) (types.VersionID, error) {
	var out server.CommitResponse
	err := c.do(ctx, http.MethodPost, "/commit", server.CommitRequest{
		Parent: parent, Puts: puts, Deletes: deletes, Branch: branch,
	}, &out)
	if err != nil {
		return types.InvalidVersion, err
	}
	return types.VersionID(out.Version), nil
}

// CommitMerge creates a merge commit; parents[0] is primary.
func (c *Client) CommitMerge(ctx context.Context, parents []int64, puts map[string][]byte, deletes []string) (types.VersionID, error) {
	if len(parents) == 0 {
		return types.InvalidVersion, fmt.Errorf("rstore client: merge needs parents")
	}
	var out server.CommitResponse
	err := c.do(ctx, http.MethodPost, "/commit", server.CommitRequest{
		Parent: parents[0], Parents: parents[1:], Puts: puts, Deletes: deletes,
	}, &out)
	if err != nil {
		return types.InvalidVersion, err
	}
	return types.VersionID(out.Version), nil
}

func decodeRecord(r *server.RecordJSON) types.Record {
	return types.Record{
		CK:    types.CompositeKey{Key: types.Key(r.Key), Version: types.VersionID(r.OriginVersion)},
		Value: r.Value,
	}
}

// Cursor streams one query's records, decoding the server's NDJSON
// response incrementally: the first record is usable while the server is
// still fetching later chunks, and abandoning the cursor (or cancelling
// the request's context) tears the connection down, which stops the
// server- and node-side work.
//
// Iterate with Records (usable once); the response body closes itself when
// the sequence ends, but an abandoned cursor must be Closed (Records'
// defer-friendly twin All does both). Stats is valid once the sequence
// ended cleanly.
type Cursor struct {
	body  io.ReadCloser
	dec   *json.Decoder
	stats server.StatsJSON
	spent bool
}

func newCursor(body io.ReadCloser) *Cursor {
	return &Cursor{body: body, dec: json.NewDecoder(body)}
}

// Records returns the record sequence. It may be ranged over once; a
// second iteration yields only an error. Mid-stream server failures and
// transport errors terminate the sequence as the final pair's error.
func (cur *Cursor) Records() iter.Seq2[types.Record, error] {
	return func(yield func(types.Record, error) bool) {
		if cur.spent {
			yield(types.Record{}, errors.New("rstore client: cursor already iterated"))
			return
		}
		cur.spent = true
		defer cur.body.Close()
		for {
			var line server.StreamLine
			if err := cur.dec.Decode(&line); err != nil {
				if err == io.EOF {
					err = fmt.Errorf("rstore client: stream truncated (no stats trailer): %w", io.ErrUnexpectedEOF)
				}
				yield(types.Record{}, err)
				return
			}
			switch {
			case line.Record != nil:
				if !yield(decodeRecord(line.Record), nil) {
					return
				}
			case line.Stats != nil:
				cur.stats = *line.Stats
				return
			case line.Error != "":
				yield(types.Record{}, fmt.Errorf("rstore client: server: %s", line.Error))
				return
			default:
				yield(types.Record{}, fmt.Errorf("rstore client: empty stream line"))
				return
			}
		}
	}
}

// Stats reports the query's retrieval statistics; it is the zero value
// until the record sequence has ended with its stats trailer.
func (cur *Cursor) Stats() server.StatsJSON { return cur.stats }

// All drains the cursor into a slice and closes it. On error the records
// delivered before it are returned alongside.
func (cur *Cursor) All() ([]types.Record, server.StatsJSON, error) {
	var out []types.Record
	for r, err := range cur.Records() {
		if err != nil {
			return out, cur.stats, err
		}
		out = append(out, r)
	}
	return out, cur.stats, nil
}

// Close releases the cursor's connection without draining it; safe to call
// at any point (including after exhaustion).
func (cur *Cursor) Close() error {
	cur.spent = true
	return cur.body.Close()
}

// query opens one streaming query cursor.
func (c *Client) query(ctx context.Context, path string) (*Cursor, error) {
	resp, err := c.send(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	return newCursor(resp.Body), nil
}

// GetVersion streams every record of a version (by id or branch name).
func (c *Client) GetVersion(ctx context.Context, ref string) (*Cursor, error) {
	return c.query(ctx, "/version/"+url.PathEscape(ref))
}

// GetVersionAll retrieves every record of a version as one slice, sorted
// by composite key like core's same-named wrapper — the buffered
// convenience form of GetVersion.
func (c *Client) GetVersionAll(ctx context.Context, ref string) ([]types.Record, server.StatsJSON, error) {
	cur, err := c.GetVersion(ctx, ref)
	if err != nil {
		return nil, server.StatsJSON{}, err
	}
	recs, stats, err := cur.All()
	types.SortRecords(recs)
	return recs, stats, err
}

// GetRecord retrieves one key within a version.
func (c *Client) GetRecord(ctx context.Context, ref string, key types.Key) (types.Record, server.StatsJSON, error) {
	var qr server.QueryResponse
	path := "/version/" + url.PathEscape(ref) + "/record/" + url.PathEscape(string(key))
	if err := c.do(ctx, http.MethodGet, path, nil, &qr); err != nil {
		return types.Record{}, server.StatsJSON{}, err
	}
	if len(qr.Records) == 0 {
		return types.Record{}, qr.Stats, &APIError{Status: http.StatusNotFound, Message: "no record"}
	}
	return decodeRecord(&qr.Records[0]), qr.Stats, nil
}

// GetRange streams a version's records with keys in [lo, hi).
func (c *Client) GetRange(ctx context.Context, ref string, lo, hi types.Key) (*Cursor, error) {
	path := fmt.Sprintf("/version/%s/range?lo=%s&hi=%s",
		url.PathEscape(ref), url.QueryEscape(string(lo)), url.QueryEscape(string(hi)))
	return c.query(ctx, path)
}

// GetRangeFrom streams a version's records with keys at or above lo — the
// explicit unbounded-high range (no sentinel key involved).
func (c *Client) GetRangeFrom(ctx context.Context, ref string, lo types.Key) (*Cursor, error) {
	path := fmt.Sprintf("/version/%s/range?lo=%s", url.PathEscape(ref), url.QueryEscape(string(lo)))
	return c.query(ctx, path)
}

// GetRangeAll retrieves a version's records with keys in [lo, hi) as one
// slice, sorted by composite key — the buffered convenience form of
// GetRange.
func (c *Client) GetRangeAll(ctx context.Context, ref string, lo, hi types.Key) ([]types.Record, server.StatsJSON, error) {
	cur, err := c.GetRange(ctx, ref, lo, hi)
	if err != nil {
		return nil, server.StatsJSON{}, err
	}
	recs, stats, err := cur.All()
	types.SortRecords(recs)
	return recs, stats, err
}

// GetHistory streams every revision of a key.
func (c *Client) GetHistory(ctx context.Context, key types.Key) (*Cursor, error) {
	return c.query(ctx, "/history/"+url.PathEscape(string(key)))
}

// GetHistoryAll retrieves every revision of a key as one slice ordered by
// origin version — the buffered convenience form of GetHistory.
func (c *Client) GetHistoryAll(ctx context.Context, key types.Key) ([]types.Record, server.StatsJSON, error) {
	cur, err := c.GetHistory(ctx, key)
	if err != nil {
		return nil, server.StatsJSON{}, err
	}
	recs, stats, err := cur.All()
	sort.Slice(recs, func(i, j int) bool { return recs[i].CK.Version < recs[j].CK.Version })
	return recs, stats, err
}

// Diff reports the record-level difference between two versions.
func (c *Client) Diff(ctx context.Context, a, b types.VersionID) (*server.DiffJSON, error) {
	var out server.DiffJSON
	path := fmt.Sprintf("/diff?a=%d&b=%d", a, b)
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Branches lists branch tips (-1 = unset). Branches whose tip lookup
// failed server-side are reported in the second result instead of being
// silently dropped.
func (c *Client) Branches(ctx context.Context) (map[string]int64, map[string]string, error) {
	var out server.BranchesResponse
	if err := c.do(ctx, http.MethodGet, "/branches", nil, &out); err != nil {
		return nil, nil, err
	}
	return out.Branches, out.Errors, nil
}

// SetBranch points a branch at a version.
func (c *Client) SetBranch(ctx context.Context, name string, v types.VersionID) error {
	return c.do(ctx, http.MethodPut, "/branch/"+url.PathEscape(name),
		map[string]int64{"version": int64(v)}, nil)
}

// Flush forces online partitioning of pending versions.
func (c *Client) Flush(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/flush", struct{}{}, nil)
}

// Stats returns server statistics.
func (c *Client) Stats(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
