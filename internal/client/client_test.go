package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"rstore/internal/client"
	"rstore/internal/core"
	"rstore/internal/server"
	"rstore/internal/types"
)

func startServer(t *testing.T) *client.Client {
	t.Helper()
	st, err := core.Open(context.Background(), core.Config{ChunkCapacity: 4096, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(st))
	t.Cleanup(ts.Close)
	return client.New(ts.URL, ts.Client())
}

func TestClientEndToEnd(t *testing.T) {
	c := startServer(t)

	v0, err := c.Commit(context.Background(), -1, map[string][]byte{
		"a": []byte(`{"rev":0}`), "b": []byte(`{"rev":0}`),
	}, nil, "main")
	if err != nil || v0 != 0 {
		t.Fatalf("root commit: %v %v", v0, err)
	}
	v1, err := c.Commit(context.Background(), int64(v0), map[string][]byte{
		"a": []byte(`{"rev":1}`),
	}, []string{"b"}, "main")
	if err != nil {
		t.Fatal(err)
	}

	// GetVersion by branch name.
	recs, stats, err := c.GetVersionAll(context.Background(), "main")
	if err != nil || len(recs) != 1 {
		t.Fatalf("GetVersion: %d records, %v", len(recs), err)
	}
	if recs[0].CK.Key != "a" || string(recs[0].Value) != `{"rev":1}` {
		t.Fatalf("record: %+v", recs[0])
	}
	if stats.Span == 0 {
		t.Fatal("no span reported")
	}

	// GetRecord at the old version.
	rec, _, err := c.GetRecord(context.Background(), "0", "b")
	if err != nil || string(rec.Value) != `{"rev":0}` {
		t.Fatalf("old b: %q %v", rec.Value, err)
	}

	// Missing record maps onto ErrNotFound through the wire.
	if _, _, err := c.GetRecord(context.Background(), "1", "b"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("deleted record: %v", err)
	}

	// Range.
	recs, _, err = c.GetRangeAll(context.Background(), "0", "a", "b")
	if err != nil || len(recs) != 1 || recs[0].CK.Key != "a" {
		t.Fatalf("range: %v %v", recs, err)
	}

	// History.
	hist, _, err := c.GetHistoryAll(context.Background(), "a")
	if err != nil || len(hist) != 2 {
		t.Fatalf("history: %d %v", len(hist), err)
	}

	// Diff.
	d, err := c.Diff(context.Background(), 0, types.VersionID(v1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || len(d.Removed) != 2 || len(d.Modified) != 1 {
		t.Fatalf("diff: %+v", d)
	}
	if d.Modified[0] != "a" {
		t.Fatalf("modified: %v", d.Modified)
	}

	// Branch management.
	if err := c.SetBranch(context.Background(), "rel", 0); err != nil {
		t.Fatal(err)
	}
	branches, branchErrs, err := c.Branches(context.Background())
	if err != nil || len(branchErrs) != 0 || branches["rel"] != 0 || branches["main"] != int64(v1) {
		t.Fatalf("branches: %v %v %v", branches, branchErrs, err)
	}

	// Flush + stats.
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats2, err := c.Stats(context.Background())
	if err != nil || stats2["pending"].(float64) != 0 {
		t.Fatalf("stats: %v %v", stats2, err)
	}
}

func TestClientMerge(t *testing.T) {
	c := startServer(t)
	v0, _ := c.Commit(context.Background(), -1, map[string][]byte{"x": []byte("0")}, nil, "")
	v1, _ := c.Commit(context.Background(), int64(v0), map[string][]byte{"x": []byte("1")}, nil, "")
	v2, _ := c.Commit(context.Background(), int64(v0), map[string][]byte{"y": []byte("2")}, nil, "")
	vm, err := c.CommitMerge(context.Background(), []int64{int64(v1), int64(v2)},
		map[string][]byte{"y": []byte("2")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := c.GetVersionAll(context.Background(), itoa(vm))
	if err != nil || len(recs) != 2 {
		t.Fatalf("merge contents: %d %v", len(recs), err)
	}
	if _, err := c.CommitMerge(context.Background(), nil, nil, nil); err == nil {
		t.Fatal("empty parents accepted")
	}
}

func TestClientTransportErrors(t *testing.T) {
	c := client.New("http://127.0.0.1:1", nil) // nothing listening
	if _, _, err := c.GetVersionAll(context.Background(), "0"); err == nil {
		t.Fatal("dead server produced no error")
	}
	var apiErr *client.APIError
	live := startServer(t)
	_, _, err := live.GetVersionAll(context.Background(), "99")
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown version: %v", err)
	}
}

func itoa(v types.VersionID) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n := uint32(v); n > 0; n /= 10 {
		i--
		buf[i] = byte('0' + n%10)
	}
	return string(buf[i:])
}
