package core

import (
	"runtime"
	"sync"

	"rstore/internal/chunk"
	"rstore/internal/types"
)

// decodeEntries decodes fetched chunk payloads into records, in parallel
// across chunks. The paper notes RStore "currently processes the retrieved
// chunks sequentially while constructing the query result and cannot benefit
// from the increased parallelism; we are working on parallelizing the entire
// end-to-end process" (§5.5) — this implements that extension: decompression
// (binary-delta application) is the CPU-heavy step and parallelizes cleanly
// per chunk. Results are positionally aligned with entries; decoding errors
// surface as one error.
func decodeEntries(entries []*chunkEntry) ([][]types.Record, error) {
	out := make([][]types.Record, len(entries))
	if len(entries) == 0 {
		return out, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers <= 1 {
		for i, e := range entries {
			if e == nil {
				continue
			}
			recs, err := chunk.DecodeChunk(e.payload)
			if err != nil {
				return nil, err
			}
			out[i] = recs
		}
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				e := entries[i]
				if e == nil {
					continue
				}
				recs, err := chunk.DecodeChunk(e.payload)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				out[i] = recs
			}
		}()
	}
	for i := range entries {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// extractSlots streams the records of version v from a decoded chunk; fn
// returning false stops the walk (a consumer that has seen enough).
func extractSlots(e *chunkEntry, decoded []types.Record, v types.VersionID, fn func(types.Record) bool) (bool, error) {
	slots := e.m.SlotsOf(v)
	if slots == nil || slots.Empty() {
		return false, nil
	}
	matched := false
	var fail error
	slots.ForEach(func(slot uint32) bool {
		if int(slot) >= len(decoded) {
			fail = corruptSlotError(e.id, slot)
			return false
		}
		matched = true
		return fn(decoded[slot])
	})
	return matched, fail
}
