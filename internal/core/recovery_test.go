package core

import (
	"context"
	"errors"
	"testing"

	"rstore/internal/chunk"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// openDiskStore opens a store on a fresh disklog cluster rooted at dir.
func openDiskStore(t *testing.T, dir string, cfg Config) (*kvstore.Store, *Store) {
	t.Helper()
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 1, Engine: kvstore.EngineDisklog, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg.KV = kv
	st, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return kv, st
}

// TestLoadReplaysUnmanifestedCommits: a commit is acknowledged once its
// delta entry is durable, even if the process dies before the next manifest
// save. Load must replay it from the delta store.
func TestLoadReplaysUnmanifestedCommits(t *testing.T) {
	dir := t.TempDir()
	kv, st := openDiskStore(t, dir, Config{})
	v0, err := st.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("a0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(context.Background()); err != nil { // manifest now covers v0
		t.Fatal(err)
	}
	v1, err := st.Commit(context.Background(), v0, Change{Puts: map[types.Key][]byte{"b": []byte("b1")}})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := st.Commit(context.Background(), v1, Change{
		Puts:    map[types.Key][]byte{"a": []byte("a2")},
		Deletes: []types.Key{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Simulated crash: the cluster's backends close (fsynced), but the
	// store never flushes, so the manifest still only knows v0.
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 1, Engine: kvstore.EngineDisklog, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Load(context.Background(), Config{KV: kv2})
	if err != nil {
		t.Fatalf("load after crash: %v", err)
	}
	if n := re.NumVersions(); n != 3 {
		t.Fatalf("replayed %d versions, want 3", n)
	}
	if p := re.PendingVersions(); p != 2 {
		t.Fatalf("%d pending after replay, want 2", p)
	}
	rec, _, err := re.GetRecord(context.Background(), "a", v2)
	if err != nil || string(rec.Value) != "a2" {
		t.Fatalf("a@v2 = %v, %v", rec, err)
	}
	if _, _, err := re.GetRecord(context.Background(), "b", v2); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("deleted b@v2: %v", err)
	}
	rec, _, err = re.GetRecord(context.Background(), "b", v1)
	if err != nil || string(rec.Value) != "b1" {
		t.Fatalf("b@v1 = %v, %v", rec, err)
	}
	// The replayed commits flush and survive a clean reopen.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if err := kv2.Close(); err != nil {
		t.Fatal(err)
	}
	kv3, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 1, Engine: kvstore.EngineDisklog, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer kv3.Close()
	re2, err := Load(context.Background(), Config{KV: kv3})
	if err != nil {
		t.Fatal(err)
	}
	if re2.PendingVersions() != 0 {
		t.Fatalf("%d pending after clean close", re2.PendingVersions())
	}
	rec, _, err = re2.GetRecord(context.Background(), "a", v2)
	if err != nil || string(rec.Value) != "a2" {
		t.Fatalf("a@v2 after clean reopen = %v, %v", rec, err)
	}
}

// TestCheckpointEnablesRootReplay: a fresh durable store that checkpointed
// (as the server does on boot) can crash before its first flush without
// losing acknowledged commits — even the root.
func TestCheckpointEnablesRootReplay(t *testing.T) {
	dir := t.TempDir()
	kv, st := openDiskStore(t, dir, Config{})
	if err := st.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	v0, err := st.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("a0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil { // crash before any flush
		t.Fatal(err)
	}

	kv2, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 1, Engine: kvstore.EngineDisklog, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	re, err := Load(context.Background(), Config{KV: kv2})
	if err != nil {
		t.Fatalf("load after pre-flush crash: %v", err)
	}
	if re.NumVersions() != 1 || re.PendingVersions() != 1 {
		t.Fatalf("replay: %d versions, %d pending", re.NumVersions(), re.PendingVersions())
	}
	rec, _, err := re.GetRecord(context.Background(), "a", v0)
	if err != nil || string(rec.Value) != "a0" {
		t.Fatalf("a@v0 = %v, %v", rec, err)
	}
}

// TestLoadToleratesInterruptedFlush simulates a flush that crashed after
// writing chunk entries and projections but before the manifest: Load must
// skip the orphan chunk, prune the stale projection references, repair the
// KVS, and leave the store fully usable.
func TestLoadToleratesInterruptedFlush(t *testing.T) {
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(context.Background(), Config{KV: kv})
	if err != nil {
		t.Fatal(err)
	}
	v0, err := st.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("a0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	numChunks := uint32(st.NumChunks())

	// Hand-craft the crash debris: an orphan chunk entry past the manifest
	// count holding a record of a never-manifested version, and a stale key
	// projection row referencing it.
	orphanCID := chunk.ID(numChunks)
	item, err := chunk.SingleRecordItem(st.corpus, 0) // reuse record 0's bytes
	if err != nil {
		t.Fatal(err)
	}
	payload := encodeChunkPayload([]chunk.Item{item})
	if err := kv.Put(context.Background(), TableChunks, chunk.KVKey(st.gen, orphanCID), encodeChunkEntry(payload, chunk.NewMap(1))); err != nil {
		t.Fatal(err)
	}
	// A crashed flush saves the full projection — existing refs plus the
	// ones pointing at the never-manifested chunk.
	st.proj.AddKeyChunk("a", orphanCID)
	st.proj.ObserveVersionChunk(v0, orphanCID)
	st.proj.Normalize()
	if err := st.proj.Save(context.Background(), kv); err != nil {
		t.Fatal(err)
	}

	re, err := Load(context.Background(), Config{KV: kv})
	if err != nil {
		t.Fatalf("load with orphan chunk: %v", err)
	}
	rec, _, err := re.GetRecord(context.Background(), "a", v0)
	if err != nil || string(rec.Value) != "a0" {
		t.Fatalf("a@v0 = %v, %v", rec, err)
	}
	// The repair removed the orphan entry.
	if _, err := kv.Get(context.Background(), TableChunks, chunk.KVKey(st.gen, orphanCID)); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("orphan chunk entry survived repair: %v", err)
	}
	// And the store keeps committing/flushing cleanly — the next flush
	// reuses the orphan's chunk id without collision.
	v1, err := re.Commit(context.Background(), v0, Change{Puts: map[types.Key][]byte{"b": []byte("b1")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, _, err = re.GetRecord(context.Background(), "b", v1)
	if err != nil || string(rec.Value) != "b1" {
		t.Fatalf("b@v1 = %v, %v", rec, err)
	}
}

// TestLoadCleansStaleDeltas: delta entries for versions the manifest already
// placed (a crash between the manifest save and the write-store drain) are
// ignored and garbage-collected by a writable Load.
func TestLoadCleansStaleDeltas(t *testing.T) {
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(context.Background(), Config{KV: kv})
	if err != nil {
		t.Fatal(err)
	}
	v0, err := st.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("a0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Re-create the already-drained delta entry, as a crash mid-drain would
	// leave it.
	d := &types.Delta{Adds: []types.Record{{CK: types.CompositeKey{Key: "a", Version: v0}, Value: []byte("a0")}}}
	if err := kv.Put(context.Background(), TableDeltaStore, deltaKey(v0), encodeDeltaEntry([]types.VersionID{types.InvalidVersion}, d)); err != nil {
		t.Fatal(err)
	}

	re, err := Load(context.Background(), Config{KV: kv})
	if err != nil {
		t.Fatalf("load with stale delta: %v", err)
	}
	if re.PendingVersions() != 0 {
		t.Fatalf("stale delta resurrected as pending")
	}
	if _, err := kv.Get(context.Background(), TableDeltaStore, deltaKey(v0)); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("stale delta survived repair: %v", err)
	}
	rec, _, err := re.GetRecord(context.Background(), "a", v0)
	if err != nil || string(rec.Value) != "a0" {
		t.Fatalf("a@v0 = %v, %v", rec, err)
	}
}

// TestCloseIdempotent: double Close is a no-op, not an ErrClosed failure.
func TestCloseIdempotent(t *testing.T) {
	st, err := Open(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("x"),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
