package core

import (
	"rstore/internal/intset"
	"rstore/internal/types"
)

// VersionDiff reports the record-level difference between two versions
// (in the paper's delta terms: ∆⁺ = records in b but not a, ∆⁻ = records in
// a but not b). The versions may lie on different branches; the diff is
// computed over the in-memory corpus without touching the KVS, mirroring how
// the application server's VCS commands present change sets.
type VersionDiff struct {
	// Added holds composite keys present in b but not a.
	Added []types.CompositeKey
	// Removed holds composite keys present in a but not b.
	Removed []types.CompositeKey
	// Modified holds the primary keys that appear on both sides with
	// different origins (an Added/Removed pair of the same key).
	Modified []types.Key
}

// Diff computes the symmetric difference between versions a and b.
func (s *Store) Diff(a, b types.VersionID) (*VersionDiff, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.validVersion(a) {
		return nil, &types.VersionUnknownError{Version: a}
	}
	if !s.validVersion(b) {
		return nil, &types.VersionUnknownError{Version: b}
	}
	ma, err := s.corpus.Members(a)
	if err != nil {
		return nil, err
	}
	mb, err := s.corpus.Members(b)
	if err != nil {
		return nil, err
	}
	added := intset.Diff(mb, ma)
	removed := intset.Diff(ma, mb)

	d := &VersionDiff{}
	removedKeys := make(map[types.Key]bool, len(removed))
	for _, id := range removed {
		ck := s.corpus.Record(id).CK
		d.Removed = append(d.Removed, ck)
		removedKeys[ck.Key] = true
	}
	for _, id := range added {
		ck := s.corpus.Record(id).CK
		d.Added = append(d.Added, ck)
		if removedKeys[ck.Key] {
			d.Modified = append(d.Modified, ck.Key)
		}
	}
	types.SortCompositeKeys(d.Added)
	types.SortCompositeKeys(d.Removed)
	return d, nil
}

// LCA returns the lowest common ancestor of two versions in the version
// tree — the natural merge base for three-way merges built on top of the
// store.
func (s *Store) LCA(a, b types.VersionID) (types.VersionID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.validVersion(a) {
		return types.InvalidVersion, &types.VersionUnknownError{Version: a}
	}
	if !s.validVersion(b) {
		return types.InvalidVersion, &types.VersionUnknownError{Version: b}
	}
	g := s.graph
	for g.Depth(a) > g.Depth(b) {
		a = g.Parent(a)
	}
	for g.Depth(b) > g.Depth(a) {
		b = g.Parent(b)
	}
	for a != b {
		a, b = g.Parent(a), g.Parent(b)
	}
	return a, nil
}
