package core

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// Range selects primary keys for range retrieval: the half-open interval
// [Lo, Hi), or — with Unbounded set — every key at or above Lo. The
// explicit unbounded form replaces the old practice of passing a "large"
// sentinel key, which silently excluded keys sorting above the sentinel.
type Range struct {
	Lo types.Key
	Hi types.Key
	// Unbounded extends the range to the top of the keyspace; Hi is
	// ignored.
	Unbounded bool
}

// KeyRange is the bounded range [lo, hi).
func KeyRange(lo, hi types.Key) Range { return Range{Lo: lo, Hi: hi} }

// KeyRangeFrom is the unbounded range [lo, ∞).
func KeyRangeFrom(lo types.Key) Range { return Range{Lo: lo, Unbounded: true} }

func (r Range) contains(k types.Key) bool {
	return k >= r.Lo && (r.Unbounded || k < r.Hi)
}

// Cursor is the streaming result of a query (GetVersion, GetRange,
// GetHistory): records are produced incrementally — chunks are fetched from
// the KVS a batch at a time (Config.QueryFetchBatch) — so the first record
// is available before the last chunk is fetched, and abandoning the cursor
// (or cancelling the query's context) stops further fetches.
//
// Iterate with Records (usable once); Stats reports the retrieval costs
// accumulated so far and is complete once the sequence ends. An error —
// including the context's, when it ends mid-query — terminates the sequence
// as the final pair's second value.
//
// The cursor holds the store's read lock while being iterated, so a
// consumer that stalls between records delays concurrent commits; drain
// promptly or use the ...All convenience wrappers.
type Cursor struct {
	stats QueryStats
	run   func(c *Cursor, yield func(types.Record, error) bool)
	spent bool
}

func newCursor(run func(c *Cursor, yield func(types.Record, error) bool)) *Cursor {
	return &Cursor{run: run}
}

// Records returns the record sequence. It may be ranged over once; a
// second iteration yields only an error.
func (c *Cursor) Records() iter.Seq2[types.Record, error] {
	return func(yield func(types.Record, error) bool) {
		if c.spent {
			yield(types.Record{}, errors.New("rstore: cursor already iterated"))
			return
		}
		c.spent = true
		c.run(c, yield)
	}
}

// Stats reports the retrieval costs accumulated so far; it is complete
// once the record sequence has ended.
func (c *Cursor) Stats() QueryStats { return c.stats }

// All drains the cursor into a slice, in stream order. On error the
// records delivered before it are returned alongside.
func (c *Cursor) All() ([]types.Record, QueryStats, error) {
	var out []types.Record
	for r, err := range c.Records() {
		if err != nil {
			return out, c.stats, err
		}
		out = append(out, r)
	}
	return out, c.stats, nil
}

// GetVersion streams every record of version v (the paper's full version
// retrieval, Q1): the version→chunk projection picks chunks, batched
// parallel MultiGets fetch them incrementally, and chunk maps extract the
// member records as each batch lands. Versions still pending in the write
// store are served by overlaying their deltas on the nearest placed
// ancestor. Record order is unspecified (chunk order); GetVersionAll sorts.
func (s *Store) GetVersion(ctx context.Context, v types.VersionID) *Cursor {
	return newCursor(func(c *Cursor, yield func(types.Record, error) bool) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if !s.validVersion(v) {
			yield(types.Record{}, &types.VersionUnknownError{Version: v})
			return
		}
		anchor, overlayPath := s.anchorOf(v)
		ov, err := s.overlayEffect(ctx, overlayPath, &c.stats)
		if err != nil {
			yield(types.Record{}, err)
			return
		}
		if anchor != types.InvalidVersion {
			if !s.streamVersionChunks(ctx, c, anchor, s.proj.VersionChunks(anchor), ov, nil, yield) {
				return
			}
		}
		emitOverlayAdds(c, ov, nil, yield)
	})
}

// GetVersionAll retrieves every record of version v as one sorted slice —
// the buffered convenience form of GetVersion.
func (s *Store) GetVersionAll(ctx context.Context, v types.VersionID) ([]types.Record, QueryStats, error) {
	recs, stats, err := s.GetVersion(ctx, v).All()
	types.SortRecords(recs)
	return recs, stats, err
}

// GetRange streams the records of version v whose keys fall in r (partial
// version retrieval, Q2). Record order is unspecified; GetRangeAll sorts.
func (s *Store) GetRange(ctx context.Context, r Range, v types.VersionID) *Cursor {
	return newCursor(func(c *Cursor, yield func(types.Record, error) bool) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if !s.validVersion(v) {
			yield(types.Record{}, &types.VersionUnknownError{Version: v})
			return
		}
		anchor, overlayPath := s.anchorOf(v)
		ov, err := s.overlayEffect(ctx, overlayPath, &c.stats)
		if err != nil {
			yield(types.Record{}, err)
			return
		}
		filter := func(k types.Key) bool { return r.contains(k) }
		if anchor != types.InvalidVersion {
			// Union of key-projection entries over the range, intersected
			// with the version projection.
			inVersion := make(map[chunk.ID]bool)
			for _, cid := range s.proj.VersionChunks(anchor) {
				inVersion[cid] = true
			}
			cidSet := make(map[chunk.ID]bool)
			for _, k := range s.keysInRange(r) {
				for _, cid := range s.proj.KeyChunks(k) {
					if inVersion[cid] {
						cidSet[cid] = true
					}
				}
			}
			cids := make([]chunk.ID, 0, len(cidSet))
			for cid := range cidSet {
				cids = append(cids, cid)
			}
			sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
			if !s.streamVersionChunks(ctx, c, anchor, cids, ov, filter, yield) {
				return
			}
		}
		emitOverlayAdds(c, ov, filter, yield)
	})
}

// GetRangeAll retrieves version v's records with keys in r as one sorted
// slice — the buffered convenience form of GetRange.
func (s *Store) GetRangeAll(ctx context.Context, r Range, v types.VersionID) ([]types.Record, QueryStats, error) {
	recs, stats, err := s.GetRange(ctx, r, v).All()
	types.SortRecords(recs)
	return recs, stats, err
}

// GetHistory streams every record carrying the given primary key across all
// versions (record evolution, Q3). Order is unspecified (chunk order);
// GetHistoryAll sorts by origin version. A key with no records anywhere
// ends the sequence with a KeyNotFoundError.
func (s *Store) GetHistory(ctx context.Context, key types.Key) *Cursor {
	return newCursor(func(c *Cursor, yield func(types.Record, error) bool) {
		s.mu.RLock()
		defer s.mu.RUnlock()

		seen := make(map[types.CompositeKey]bool)
		stopped, err := s.streamChunks(ctx, s.proj.KeyChunks(key), &c.stats, func(e *chunkEntry, decoded []types.Record) (bool, error) {
			s.chargeScan(e, &c.stats)
			matched := false
			for _, r := range decoded {
				if r.CK.Key != key {
					continue
				}
				matched = true
				if seen[r.CK] {
					continue
				}
				seen[r.CK] = true
				c.stats.Records++
				if !yield(r, nil) {
					return false, nil
				}
			}
			if !matched {
				c.stats.WastedChunks++
			}
			return true, nil
		})
		if err != nil {
			yield(types.Record{}, err)
			return
		}
		if stopped {
			return
		}

		// Pending records of this key live in the write store.
		var pendingVersions []types.VersionID
		for _, id := range s.corpus.KeyRecords(key) {
			if int(id) < len(s.locs) && s.locs[id].Chunk == chunk.NoChunk {
				pendingVersions = append(pendingVersions, s.corpus.Record(id).CK.Version)
			}
		}
		if len(pendingVersions) > 0 {
			deltas, err := s.fetchDeltas(ctx, pendingVersions, &c.stats)
			if err != nil {
				yield(types.Record{}, err)
				return
			}
			for _, d := range deltas {
				for _, r := range d.Adds {
					if r.CK.Key != key || seen[r.CK] {
						continue
					}
					seen[r.CK] = true
					c.stats.Records++
					if !yield(r, nil) {
						return
					}
				}
			}
		}
		if len(seen) == 0 {
			yield(types.Record{}, &types.KeyNotFoundError{Key: key, Version: types.InvalidVersion})
		}
	})
}

// GetHistoryAll retrieves every record of a key as one slice ordered by
// origin version — the buffered convenience form of GetHistory.
func (s *Store) GetHistoryAll(ctx context.Context, key types.Key) ([]types.Record, QueryStats, error) {
	recs, stats, err := s.GetHistory(ctx, key).All()
	sort.Slice(recs, func(i, j int) bool { return recs[i].CK.Version < recs[j].CK.Version })
	return recs, stats, err
}

// GetRecord retrieves the record with the given primary key visible in
// version v (point query): both projections are intersected ("index-ANDing",
// §2.4) to pick candidate chunks. A point query returns one record, so it
// keeps the buffered shape rather than a cursor.
func (s *Store) GetRecord(ctx context.Context, key types.Key, v types.VersionID) (types.Record, QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var stats QueryStats
	if !s.validVersion(v) {
		return types.Record{}, stats, &types.VersionUnknownError{Version: v}
	}
	anchor, overlayPath := s.anchorOf(v)

	// Newest-first through the pending deltas: the first touch of the key
	// decides.
	if len(overlayPath) > 0 {
		deltas, err := s.fetchDeltas(ctx, overlayPath, &stats)
		if err != nil {
			return types.Record{}, stats, err
		}
		for i := len(deltas) - 1; i >= 0; i-- {
			d := deltas[i]
			for _, r := range d.Adds {
				if r.CK.Key == key {
					stats.Records = 1
					return r, stats, nil
				}
			}
			for _, ck := range d.Dels {
				if ck.Key == key {
					return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
				}
			}
		}
	}
	if anchor == types.InvalidVersion {
		return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
	}

	cids := s.proj.Intersect(key, anchor)
	if len(cids) == 0 {
		return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
	}
	entries, err := s.fetchChunks(ctx, cids, &stats)
	if err != nil {
		return types.Record{}, stats, err
	}
	for i, e := range entries {
		if e == nil {
			continue
		}
		found, rec, err := extractKeyAtVersion(e, anchor, key)
		if err != nil {
			return types.Record{}, stats, err
		}
		s.chargeScan(e, &stats)
		if found {
			stats.Records = 1
			// Remaining fetched chunks were wasted (lossy projection).
			stats.WastedChunks += len(entries) - i - 1
			return rec, stats, nil
		}
		stats.WastedChunks++
	}
	return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
}

// --- shared plumbing ---

func (s *Store) validVersion(v types.VersionID) bool {
	return v != types.InvalidVersion && s.graph.Valid(v) && int(v) < s.corpus.NumVersions()
}

// anchorOf walks up from v to the nearest placed (non-pending) version and
// returns it plus the pending path (anchor-exclusive, ordered root→v).
// Anchor is InvalidVersion when the whole path is pending.
func (s *Store) anchorOf(v types.VersionID) (types.VersionID, []types.VersionID) {
	var overlay []types.VersionID
	cur := v
	for cur != types.InvalidVersion && s.pendingSet[cur] {
		overlay = append(overlay, cur)
		cur = s.graph.Parent(cur)
	}
	// Reverse to root→v order.
	for i, j := 0, len(overlay)-1; i < j; i, j = i+1, j-1 {
		overlay[i], overlay[j] = overlay[j], overlay[i]
	}
	return cur, overlay
}

// overlayView is the net effect of the pending deltas between a queried
// version and its placed anchor: which anchor records are hidden (deleted,
// or superseded by a pending re-add) and which records the overlay itself
// contributes. Pending deltas are small (they are the unflushed write
// batch), so resolving them up front keeps the chunk stream single-pass.
type overlayView struct {
	masked map[types.CompositeKey]bool
	adds   []types.Record // sorted by composite key
}

func (ov *overlayView) masks(ck types.CompositeKey) bool { return ov.masked[ck] }

// overlayEffect fetches the pending deltas of path (root→v order) and folds
// them into an overlayView.
func (s *Store) overlayEffect(ctx context.Context, path []types.VersionID, stats *QueryStats) (*overlayView, error) {
	ov := &overlayView{}
	if len(path) == 0 {
		return ov, nil
	}
	deltas, err := s.fetchDeltas(ctx, path, stats)
	if err != nil {
		return nil, err
	}
	addSet := make(map[types.CompositeKey]types.Record)
	ov.masked = make(map[types.CompositeKey]bool)
	for _, d := range deltas {
		for _, ck := range d.Dels {
			delete(addSet, ck)
			ov.masked[ck] = true
		}
		for _, r := range d.Adds {
			addSet[r.CK] = r
			ov.masked[r.CK] = true // a re-add of a placed record is served from the overlay
		}
	}
	ov.adds = make([]types.Record, 0, len(addSet))
	for _, r := range addSet {
		ov.adds = append(ov.adds, r)
	}
	types.SortRecords(ov.adds)
	return ov, nil
}

// streamVersionChunks streams version v's member records out of cids
// through yield, skipping overlay-masked records and keys failing filter
// (nil = all). It reports whether the consumer wants more (false = stopped
// early); errors are delivered to yield here.
func (s *Store) streamVersionChunks(ctx context.Context, c *Cursor, v types.VersionID, cids []chunk.ID, ov *overlayView, filter func(types.Key) bool, yield func(types.Record, error) bool) bool {
	stopped, err := s.streamChunks(ctx, cids, &c.stats, func(e *chunkEntry, decoded []types.Record) (bool, error) {
		cont := true
		matched, err := extractSlots(e, decoded, v, func(r types.Record) bool {
			if ov.masks(r.CK) || (filter != nil && !filter(r.CK.Key)) {
				return true
			}
			c.stats.Records++
			cont = yield(r, nil)
			return cont
		})
		s.chargeScan(e, &c.stats)
		if !matched {
			c.stats.WastedChunks++
		}
		return cont, err
	})
	if err != nil {
		yield(types.Record{}, err)
		return false
	}
	return !stopped
}

// emitOverlayAdds yields the overlay's own records (after the anchor's so
// chunk streaming stays single-pass), filtered when filter is non-nil.
func emitOverlayAdds(c *Cursor, ov *overlayView, filter func(types.Key) bool, yield func(types.Record, error) bool) {
	for _, r := range ov.adds {
		if filter != nil && !filter(r.CK.Key) {
			continue
		}
		c.stats.Records++
		if !yield(r, nil) {
			return
		}
	}
}

// chunkEntry is a fetched chunk: payload + map.
type chunkEntry struct {
	id      chunk.ID
	payload []byte
	m       *chunk.Map
}

// streamChunks feeds each chunk of cids (fetched in batches of
// Config.QueryFetchBatch, decoded in parallel within a batch) to emit, in
// cid order. This is what makes query results streams rather than
// materialized slices: server memory per query is O(batch), the first
// records surface before later chunks are fetched, and a context that ends
// — or an emit that returns false — stops before the next batch fetch.
func (s *Store) streamChunks(ctx context.Context, cids []chunk.ID, stats *QueryStats, emit func(e *chunkEntry, decoded []types.Record) (bool, error)) (stopped bool, err error) {
	batch := s.cfg.QueryFetchBatch
	for start := 0; start < len(cids); start += batch {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		end := min(start+batch, len(cids))
		entries, err := s.fetchChunks(ctx, cids[start:end], stats)
		if err != nil {
			return false, err
		}
		decoded, err := decodeEntries(entries)
		if err != nil {
			return false, err
		}
		for i, e := range entries {
			if e == nil {
				continue
			}
			cont, err := emit(e, decoded[i])
			if err != nil {
				return false, err
			}
			if !cont {
				return true, nil
			}
		}
	}
	return false, nil
}

// fetchChunks resolves chunk entries through the AS cache, multigetting
// only the misses. Span counts every chunk consulted; Requests/BytesRead
// reflect actual backend traffic. Missing chunks indicate corruption
// (projections are authoritative) and surface as errors.
func (s *Store) fetchChunks(ctx context.Context, cids []chunk.ID, stats *QueryStats) ([]*chunkEntry, error) {
	if len(cids) == 0 {
		return nil, nil
	}
	stats.Span += len(cids)
	out := make([]*chunkEntry, len(cids))

	var missIdx []int
	var keys []string
	for i, cid := range cids {
		if e, ok := s.cache.get(cid); ok {
			out[i] = e
			continue
		}
		missIdx = append(missIdx, i)
		keys = append(keys, chunk.KVKey(s.gen, cid))
	}
	if len(keys) == 0 {
		return out, nil
	}

	res, err := s.kv.MultiGet(ctx, TableChunks, keys)
	if err != nil {
		return nil, err
	}
	if len(res.Missing) > 0 {
		return nil, fmt.Errorf("%w: chunk %s missing", types.ErrCorrupt, keys[res.Missing[0]])
	}
	s.bookMultiGet(res, stats)
	for j, val := range res.Values {
		i := missIdx[j]
		payload, m, err := decodeChunkEntry(val)
		if err != nil {
			return nil, err
		}
		out[i] = &chunkEntry{id: cids[i], payload: payload, m: m}
		s.cache.put(cids[i], payload, m)
	}
	return out, nil
}

// corruptSlotError reports a chunk-map slot outside the decoded payload.
func corruptSlotError(id chunk.ID, slot uint32) error {
	return fmt.Errorf("%w: chunk %d slot %d out of range", types.ErrCorrupt, id, slot)
}

// extractKeyAtVersion finds the record with the given key among version v's
// slots of one chunk.
func extractKeyAtVersion(e *chunkEntry, v types.VersionID, key types.Key) (bool, types.Record, error) {
	slots := e.m.SlotsOf(v)
	if slots == nil {
		return false, types.Record{}, nil
	}
	recs, err := chunk.DecodeChunk(e.payload)
	if err != nil {
		return false, types.Record{}, err
	}
	var out types.Record
	found := false
	slots.ForEach(func(slot uint32) bool {
		if int(slot) < len(recs) && recs[slot].CK.Key == key {
			out = recs[slot]
			found = true
			return false
		}
		return true
	})
	return found, out, nil
}

// fetchDeltas multigets pending deltas from the write store.
func (s *Store) fetchDeltas(ctx context.Context, versions []types.VersionID, stats *QueryStats) ([]*types.Delta, error) {
	keys := make([]string, len(versions))
	for i, v := range versions {
		keys[i] = deltaKey(v)
	}
	res, err := s.kv.MultiGet(ctx, TableDeltaStore, keys)
	if err != nil {
		return nil, err
	}
	if len(res.Missing) > 0 {
		return nil, fmt.Errorf("%w: pending delta %s missing", types.ErrCorrupt, keys[res.Missing[0]])
	}
	s.bookMultiGet(res, stats)
	stats.Span += len(versions)
	out := make([]*types.Delta, len(versions))
	for i, val := range res.Values {
		_, d, err := decodeDeltaEntry(val)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

func (s *Store) bookMultiGet(res *kvstore.MultiGetResult, stats *QueryStats) {
	stats.Requests += res.Requests
	stats.BytesRead += res.BytesRead
	stats.SimElapsed += res.Elapsed
}

func (s *Store) chargeScan(e *chunkEntry, stats *QueryStats) {
	stats.SimElapsed += s.kv.ChargeScan(len(e.payload))
}

// keysInRange returns the known primary keys selected by r.
func (s *Store) keysInRange(r Range) []types.Key {
	i := sort.Search(len(s.sortedKeys), func(i int) bool { return s.sortedKeys[i] >= r.Lo })
	j := len(s.sortedKeys)
	if !r.Unbounded {
		j = sort.Search(len(s.sortedKeys), func(i int) bool { return s.sortedKeys[i] >= r.Hi })
		if j < i {
			j = i
		}
	}
	return s.sortedKeys[i:j]
}

// VersionSpan exposes the placed span of a version (for experiments).
func (s *Store) VersionSpan(v types.VersionID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proj.VersionSpan(v)
}

// KeySpan exposes the key span (for experiments).
func (s *Store) KeySpan(key types.Key) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proj.KeySpan(key)
}

// TotalVersionSpan sums spans across versions (for experiments).
func (s *Store) TotalVersionSpan() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proj.TotalVersionSpan()
}
