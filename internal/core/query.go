package core

import (
	"fmt"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// GetVersion retrieves every record of version v (the paper's full version
// retrieval, Q1): the version→chunk projection picks chunks, a parallel
// MultiGet fetches them, and chunk maps extract the member records. Versions
// still pending in the write store are served by overlaying their deltas on
// the nearest placed ancestor.
func (s *Store) GetVersion(v types.VersionID) ([]types.Record, QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var stats QueryStats
	if !s.validVersion(v) {
		return nil, stats, &types.VersionUnknownError{Version: v}
	}
	anchor, overlayPath := s.anchorOf(v)

	recs := make(map[types.CompositeKey]types.Record)
	if anchor != types.InvalidVersion {
		if err := s.fetchVersionChunks(anchor, &stats, func(r types.Record) {
			recs[r.CK] = r
		}); err != nil {
			return nil, stats, err
		}
	}
	if err := s.applyOverlay(overlayPath, &stats, recs); err != nil {
		return nil, stats, err
	}

	out := make([]types.Record, 0, len(recs))
	for _, r := range recs {
		out = append(out, r)
	}
	types.SortRecords(out)
	stats.Records = len(out)
	return out, stats, nil
}

// GetRecord retrieves the record with the given primary key visible in
// version v (point query): both projections are intersected ("index-ANDing",
// §2.4) to pick candidate chunks.
func (s *Store) GetRecord(key types.Key, v types.VersionID) (types.Record, QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var stats QueryStats
	if !s.validVersion(v) {
		return types.Record{}, stats, &types.VersionUnknownError{Version: v}
	}
	anchor, overlayPath := s.anchorOf(v)

	// Newest-first through the pending deltas: the first touch of the key
	// decides.
	if len(overlayPath) > 0 {
		deltas, err := s.fetchDeltas(overlayPath, &stats)
		if err != nil {
			return types.Record{}, stats, err
		}
		for i := len(deltas) - 1; i >= 0; i-- {
			d := deltas[i]
			for _, r := range d.Adds {
				if r.CK.Key == key {
					stats.Records = 1
					return r, stats, nil
				}
			}
			for _, ck := range d.Dels {
				if ck.Key == key {
					return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
				}
			}
		}
	}
	if anchor == types.InvalidVersion {
		return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
	}

	cids := s.proj.Intersect(key, anchor)
	if len(cids) == 0 {
		return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
	}
	entries, err := s.fetchChunks(cids, &stats)
	if err != nil {
		return types.Record{}, stats, err
	}
	for i, e := range entries {
		if e == nil {
			continue
		}
		found, rec, err := extractKeyAtVersion(e, anchor, key)
		if err != nil {
			return types.Record{}, stats, err
		}
		s.chargeScan(e, &stats)
		if found {
			stats.Records = 1
			// Remaining fetched chunks were wasted (lossy projection).
			stats.WastedChunks += len(entries) - i - 1
			return rec, stats, nil
		}
		stats.WastedChunks++
	}
	return types.Record{}, stats, &types.KeyNotFoundError{Key: key, Version: v}
}

// GetRange retrieves the records of version v whose keys fall in [lo, hi)
// (partial version retrieval, Q2).
func (s *Store) GetRange(lo, hi types.Key, v types.VersionID) ([]types.Record, QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var stats QueryStats
	if !s.validVersion(v) {
		return nil, stats, &types.VersionUnknownError{Version: v}
	}
	anchor, overlayPath := s.anchorOf(v)

	recs := make(map[types.CompositeKey]types.Record)
	if anchor != types.InvalidVersion {
		// Union of key-projection entries over the range, intersected with
		// the version projection.
		inVersion := make(map[chunk.ID]bool)
		for _, cid := range s.proj.VersionChunks(anchor) {
			inVersion[cid] = true
		}
		cidSet := make(map[chunk.ID]bool)
		for _, k := range s.keysInRange(lo, hi) {
			for _, cid := range s.proj.KeyChunks(k) {
				if inVersion[cid] {
					cidSet[cid] = true
				}
			}
		}
		cids := make([]chunk.ID, 0, len(cidSet))
		for cid := range cidSet {
			cids = append(cids, cid)
		}
		sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })

		entries, err := s.fetchChunks(cids, &stats)
		if err != nil {
			return nil, stats, err
		}
		decoded, err := decodeEntries(entries)
		if err != nil {
			return nil, stats, err
		}
		for i, e := range entries {
			if e == nil {
				continue
			}
			matched, err := extractSlots(e, decoded[i], anchor, func(r types.Record) {
				if r.CK.Key >= lo && r.CK.Key < hi {
					recs[r.CK] = r
				}
			})
			if err != nil {
				return nil, stats, err
			}
			s.chargeScan(e, &stats)
			if !matched {
				stats.WastedChunks++
			}
		}
	}
	if err := s.applyOverlay(overlayPath, &stats, recs); err != nil {
		return nil, stats, err
	}
	out := make([]types.Record, 0, len(recs))
	for _, r := range recs {
		if r.CK.Key >= lo && r.CK.Key < hi {
			out = append(out, r)
		}
	}
	types.SortRecords(out)
	stats.Records = len(out)
	return out, stats, nil
}

// GetHistory retrieves every record carrying the given primary key across
// all versions (record evolution, Q3), ordered by origin version.
func (s *Store) GetHistory(key types.Key) ([]types.Record, QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var stats QueryStats

	seen := make(map[types.CompositeKey]types.Record)
	cids := s.proj.KeyChunks(key)
	entries, err := s.fetchChunks(cids, &stats)
	if err != nil {
		return nil, stats, err
	}
	decoded, err := decodeEntries(entries)
	if err != nil {
		return nil, stats, err
	}
	for i, e := range entries {
		if e == nil {
			continue
		}
		s.chargeScan(e, &stats)
		matched := false
		for _, r := range decoded[i] {
			if r.CK.Key == key {
				seen[r.CK] = r
				matched = true
			}
		}
		if !matched {
			stats.WastedChunks++
		}
	}

	// Pending records of this key live in the write store.
	var pendingVersions []types.VersionID
	for _, id := range s.corpus.KeyRecords(key) {
		if int(id) < len(s.locs) && s.locs[id].Chunk == chunk.NoChunk {
			pendingVersions = append(pendingVersions, s.corpus.Record(id).CK.Version)
		}
	}
	if len(pendingVersions) > 0 {
		deltas, err := s.fetchDeltas(pendingVersions, &stats)
		if err != nil {
			return nil, stats, err
		}
		for _, d := range deltas {
			for _, r := range d.Adds {
				if r.CK.Key == key {
					seen[r.CK] = r
				}
			}
		}
	}
	if len(seen) == 0 {
		return nil, stats, &types.KeyNotFoundError{Key: key, Version: types.InvalidVersion}
	}

	out := make([]types.Record, 0, len(seen))
	for _, r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CK.Version < out[j].CK.Version })
	stats.Records = len(out)
	return out, stats, nil
}

// --- shared plumbing ---

func (s *Store) validVersion(v types.VersionID) bool {
	return v != types.InvalidVersion && s.graph.Valid(v) && int(v) < s.corpus.NumVersions()
}

// anchorOf walks up from v to the nearest placed (non-pending) version and
// returns it plus the pending path (anchor-exclusive, ordered root→v).
// Anchor is InvalidVersion when the whole path is pending.
func (s *Store) anchorOf(v types.VersionID) (types.VersionID, []types.VersionID) {
	var overlay []types.VersionID
	cur := v
	for cur != types.InvalidVersion && s.pendingSet[cur] {
		overlay = append(overlay, cur)
		cur = s.graph.Parent(cur)
	}
	// Reverse to root→v order.
	for i, j := 0, len(overlay)-1; i < j; i, j = i+1, j-1 {
		overlay[i], overlay[j] = overlay[j], overlay[i]
	}
	return cur, overlay
}

// chunkEntry is a fetched chunk: payload + map.
type chunkEntry struct {
	id      chunk.ID
	payload []byte
	m       *chunk.Map
}

// fetchChunks resolves chunk entries through the AS cache, multigetting
// only the misses. Span counts every chunk consulted; Requests/BytesRead
// reflect actual backend traffic. Missing chunks indicate corruption
// (projections are authoritative) and surface as errors.
func (s *Store) fetchChunks(cids []chunk.ID, stats *QueryStats) ([]*chunkEntry, error) {
	if len(cids) == 0 {
		return nil, nil
	}
	stats.Span += len(cids)
	out := make([]*chunkEntry, len(cids))

	var missIdx []int
	var keys []string
	for i, cid := range cids {
		if e, ok := s.cache.get(cid); ok {
			out[i] = e
			continue
		}
		missIdx = append(missIdx, i)
		keys = append(keys, chunk.KVKey(cid))
	}
	if len(keys) == 0 {
		return out, nil
	}

	res, err := s.kv.MultiGet(TableChunks, keys)
	if err != nil {
		return nil, err
	}
	if len(res.Missing) > 0 {
		return nil, fmt.Errorf("%w: chunk %s missing", types.ErrCorrupt, keys[res.Missing[0]])
	}
	s.bookMultiGet(res, stats)
	for j, val := range res.Values {
		i := missIdx[j]
		payload, m, err := decodeChunkEntry(val)
		if err != nil {
			return nil, err
		}
		out[i] = &chunkEntry{id: cids[i], payload: payload, m: m}
		s.cache.put(cids[i], payload, m)
	}
	return out, nil
}

// fetchVersionChunks fetches version v's chunks, decodes them in parallel,
// and streams its member records to fn.
func (s *Store) fetchVersionChunks(v types.VersionID, stats *QueryStats, fn func(types.Record)) error {
	entries, err := s.fetchChunks(s.proj.VersionChunks(v), stats)
	if err != nil {
		return err
	}
	decoded, err := decodeEntries(entries)
	if err != nil {
		return err
	}
	for i, e := range entries {
		matched, err := extractSlots(e, decoded[i], v, fn)
		if err != nil {
			return err
		}
		s.chargeScan(e, stats)
		if !matched {
			stats.WastedChunks++
		}
	}
	return nil
}

// corruptSlotError reports a chunk-map slot outside the decoded payload.
func corruptSlotError(id chunk.ID, slot uint32) error {
	return fmt.Errorf("%w: chunk %d slot %d out of range", types.ErrCorrupt, id, slot)
}

// extractKeyAtVersion finds the record with the given key among version v's
// slots of one chunk.
func extractKeyAtVersion(e *chunkEntry, v types.VersionID, key types.Key) (bool, types.Record, error) {
	slots := e.m.SlotsOf(v)
	if slots == nil {
		return false, types.Record{}, nil
	}
	recs, err := chunk.DecodeChunk(e.payload)
	if err != nil {
		return false, types.Record{}, err
	}
	var out types.Record
	found := false
	slots.ForEach(func(slot uint32) bool {
		if int(slot) < len(recs) && recs[slot].CK.Key == key {
			out = recs[slot]
			found = true
			return false
		}
		return true
	})
	return found, out, nil
}

// fetchDeltas multigets pending deltas from the write store.
func (s *Store) fetchDeltas(versions []types.VersionID, stats *QueryStats) ([]*types.Delta, error) {
	keys := make([]string, len(versions))
	for i, v := range versions {
		keys[i] = deltaKey(v)
	}
	res, err := s.kv.MultiGet(TableDeltaStore, keys)
	if err != nil {
		return nil, err
	}
	if len(res.Missing) > 0 {
		return nil, fmt.Errorf("%w: pending delta %s missing", types.ErrCorrupt, keys[res.Missing[0]])
	}
	s.bookMultiGet(res, stats)
	stats.Span += len(versions)
	out := make([]*types.Delta, len(versions))
	for i, val := range res.Values {
		_, d, err := decodeDeltaEntry(val)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// applyOverlay fetches and applies pending deltas (root→v order) over recs.
func (s *Store) applyOverlay(path []types.VersionID, stats *QueryStats, recs map[types.CompositeKey]types.Record) error {
	if len(path) == 0 {
		return nil
	}
	deltas, err := s.fetchDeltas(path, stats)
	if err != nil {
		return err
	}
	for _, d := range deltas {
		for _, ck := range d.Dels {
			delete(recs, ck)
		}
		for _, r := range d.Adds {
			recs[r.CK] = r
		}
	}
	return nil
}

func (s *Store) bookMultiGet(res *kvstore.MultiGetResult, stats *QueryStats) {
	stats.Requests += res.Requests
	stats.BytesRead += res.BytesRead
	stats.SimElapsed += res.Elapsed
}

func (s *Store) chargeScan(e *chunkEntry, stats *QueryStats) {
	stats.SimElapsed += s.kv.ChargeScan(len(e.payload))
}

// keysInRange returns the known primary keys in [lo, hi).
func (s *Store) keysInRange(lo, hi types.Key) []types.Key {
	i := sort.Search(len(s.sortedKeys), func(i int) bool { return s.sortedKeys[i] >= lo })
	j := sort.Search(len(s.sortedKeys), func(i int) bool { return s.sortedKeys[i] >= hi })
	return s.sortedKeys[i:j]
}

// VersionSpan exposes the placed span of a version (for experiments).
func (s *Store) VersionSpan(v types.VersionID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proj.VersionSpan(v)
}

// KeySpan exposes the key span (for experiments).
func (s *Store) KeySpan(key types.Key) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proj.KeySpan(key)
}

// TotalVersionSpan sums spans across versions (for experiments).
func (s *Store) TotalVersionSpan() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.proj.TotalVersionSpan()
}
