package core

import (
	"container/list"
	"sync"

	"rstore/internal/chunk"
)

// chunkCache is a byte-bounded LRU over fetched chunk entries. The
// application server sits between clients and the KVS (§2.4); caching hot
// chunks there cuts the per-request round trips that dominate retrieval
// cost (§2.3) for skewed query workloads. Entries are immutable between
// placement changes; Flush and Materialize invalidate what they rewrite.
//
// Queries run under the store's read lock, so the cache carries its own
// mutex: concurrent readers mutate LRU order.
type chunkCache struct {
	mu       sync.Mutex
	capacity int64 // max payload bytes; 0 = disabled
	size     int64
	ll       *list.List // front = most recent; values are *cacheEntry
	byID     map[chunk.ID]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	id      chunk.ID
	payload []byte
	m       *chunk.Map
}

func newChunkCache(capacity int64) *chunkCache {
	return &chunkCache{
		capacity: capacity,
		ll:       list.New(),
		byID:     make(map[chunk.ID]*list.Element),
	}
}

// get returns the cached entry and promotes it.
func (c *chunkCache) get(id chunk.ID) (*chunkEntry, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return &chunkEntry{id: e.id, payload: e.payload, m: e.m}, true
}

// put inserts or refreshes an entry, evicting LRU entries over capacity.
func (c *chunkCache) put(id chunk.ID, payload []byte, m *chunk.Map) {
	if c.capacity <= 0 || int64(len(payload)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		old := el.Value.(*cacheEntry)
		c.size += int64(len(payload)) - int64(len(old.payload))
		old.payload, old.m = payload, m
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{id: id, payload: payload, m: m})
		c.byID[id] = el
		c.size += int64(len(payload))
	}
	for c.size > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.byID, e.id)
		c.size -= int64(len(e.payload))
	}
}

// invalidate drops one chunk (its placement or map changed).
func (c *chunkCache) invalidate(id chunk.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.byID, id)
		c.size -= int64(len(e.payload))
	}
}

// reset drops everything (full repartition).
func (c *chunkCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.byID = make(map[chunk.ID]*list.Element)
	c.size = 0
}

// CacheStats reports chunk-cache effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Bytes        int64
	Entries      int
}

// CacheStats returns a snapshot of the chunk cache counters.
func (s *Store) CacheStats() CacheStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cache == nil {
		return CacheStats{}
	}
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return CacheStats{
		Hits:    s.cache.hits,
		Misses:  s.cache.misses,
		Bytes:   s.cache.size,
		Entries: len(s.cache.byID),
	}
}
