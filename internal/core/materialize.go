package core

import (
	"fmt"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/index"
	"rstore/internal/subchunk"
	"rstore/internal/types"
)

// Materialize runs the configured partitioning algorithm offline over the
// entire corpus — sub-chunk construction (if k>1), chunking, chunk-map and
// projection construction — and persists everything to the KVS. It is the
// bulk-load path and doubles as the periodic full repartitioning that §4
// recommends combining with online batching.
func (s *Store) Materialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutable(); err != nil {
		return err
	}
	return s.materializeLocked()
}

func (s *Store) materializeLocked() error {
	if s.graph.NumVersions() == 0 {
		return nil
	}
	res, err := subchunk.Build(s.corpus, s.cfg.SubChunkK, s.cfg.ChunkCapacity)
	if err != nil {
		return fmt.Errorf("rstore: materialize: %w", err)
	}
	res.In.Slack = s.cfg.Slack

	assign, err := s.cfg.Partitioner.Partition(res.In)
	if err != nil {
		return fmt.Errorf("rstore: materialize: %s: %w", s.cfg.Partitioner.Name(), err)
	}

	proj := index.New()
	built, err := chunk.Build(s.corpus, res.In.Items, assign.Chunks, proj)
	if err != nil {
		return fmt.Errorf("rstore: materialize: %w", err)
	}
	for id := 0; id < s.corpus.NumRecords(); id++ {
		loc := built.Locs[id]
		if loc.Chunk != chunk.NoChunk {
			proj.AddKeyChunk(s.corpus.Record(uint32(id)).CK.Key, loc.Chunk)
		}
	}
	proj.Normalize()

	// A full repartition supersedes every previously written chunk and
	// index entry; stale ones (e.g. chunks created by earlier online
	// flushes beyond the new chunk count) must not survive, or a reload
	// would resurrect them.
	if err := s.clearTable(TableChunks); err != nil {
		return err
	}
	if err := s.clearTable(index.TableVersionIndex); err != nil {
		return err
	}
	if err := s.clearTable(index.TableKeyIndex); err != nil {
		return err
	}

	// Persist chunk entries (payload + map in one value) and projections.
	for cid := range built.Payloads {
		entry := encodeChunkEntry(built.Payloads[cid], built.Maps[cid])
		if err := s.kv.Put(TableChunks, chunk.KVKey(chunk.ID(cid)), entry); err != nil {
			return err
		}
	}
	if err := proj.Save(s.kv); err != nil {
		return err
	}
	// Every version is now placed; drain the write store.
	for _, v := range s.pending {
		if err := s.kv.Delete(TableDeltaStore, deltaKey(v)); err != nil {
			return err
		}
	}

	s.locs = built.Locs
	s.maps = built.Maps
	s.proj = proj
	s.numChunks = uint32(len(built.Payloads))
	s.pending = nil
	s.pendingSet = make(map[types.VersionID]bool)
	s.cache.reset() // every chunk id was reassigned
	return s.saveManifest()
}

// clearTable removes every entry of a KVS table.
func (s *Store) clearTable(table string) error {
	var keys []string
	s.kv.Scan(table, func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	for _, k := range keys {
		if err := s.kv.Delete(table, k); err != nil {
			return err
		}
	}
	return nil
}

// encodeChunkEntry packs a chunk payload and its chunk map into the single
// KVS value stored under the chunk id.
func encodeChunkEntry(payload []byte, m *chunk.Map) []byte {
	var buf []byte
	buf = codec.PutBytes(buf, payload)
	return m.AppendBinary(buf)
}

// decodeChunkEntry splits a stored chunk entry.
func decodeChunkEntry(entry []byte) (payload []byte, m *chunk.Map, err error) {
	payload, rest, err := codec.Bytes(entry)
	if err != nil {
		return nil, nil, err
	}
	m, err = chunk.DecodeMap(rest)
	if err != nil {
		return nil, nil, err
	}
	return payload, m, nil
}
