package core

import (
	"context"
	"fmt"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/index"
	"rstore/internal/kvstore"
	"rstore/internal/subchunk"
	"rstore/internal/types"
)

// Materialize runs the configured partitioning algorithm offline over the
// entire corpus — sub-chunk construction (if k>1), chunking, chunk-map and
// projection construction — and persists everything to the KVS. It is the
// bulk-load path and doubles as the periodic full repartitioning that §4
// recommends combining with online batching.
func (s *Store) Materialize(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutable(); err != nil {
		return err
	}
	return s.materializeLocked(ctx)
}

func (s *Store) materializeLocked(ctx context.Context) error {
	if s.graph.NumVersions() == 0 {
		return nil
	}
	res, err := subchunk.Build(s.corpus, s.cfg.SubChunkK, s.cfg.ChunkCapacity)
	if err != nil {
		return fmt.Errorf("rstore: materialize: %w", err)
	}
	res.In.Slack = s.cfg.Slack

	assign, err := s.cfg.Partitioner.Partition(res.In)
	if err != nil {
		return fmt.Errorf("rstore: materialize: %s: %w", s.cfg.Partitioner.Name(), err)
	}

	proj := index.New()
	built, err := chunk.Build(s.corpus, res.In.Items, assign.Chunks, proj)
	if err != nil {
		return fmt.Errorf("rstore: materialize: %w", err)
	}
	for id := 0; id < s.corpus.NumRecords(); id++ {
		loc := built.Locs[id]
		if loc.Chunk != chunk.NoChunk {
			proj.AddKeyChunk(s.corpus.Record(uint32(id)).CK.Key, loc.Chunk)
		}
	}
	proj.Normalize()

	// A full repartition supersedes every previously written chunk and
	// index entry. Chunk ids restart at 0, but the new entries land under
	// the NEXT generation's keys (chunk.KVKey), so nothing is overwritten
	// in place: until the manifest — which records the generation — commits
	// below, the old manifest still pairs with the old generation's intact
	// entries, and a crash anywhere in between leaves only superseded- or
	// uncommitted-generation debris that Load garbage-collects. Stale
	// leftovers (the whole previous generation, plus index entries the new
	// projections did not rewrite) are deleted only after the commit point.
	staleChunks, err := s.tableKeys(ctx, TableChunks)
	if err != nil {
		return err
	}
	staleVIdx, err := s.tableKeys(ctx, index.TableVersionIndex)
	if err != nil {
		return err
	}
	staleKIdx, err := s.tableKeys(ctx, index.TableKeyIndex)
	if err != nil {
		return err
	}

	// Persist chunk entries (payload + map in one value) as one batched
	// write under the next generation's keys, then projections, then the
	// manifest (the commit point, which adopts the new generation).
	newGen := s.gen + 1
	entries := make([]kvstore.Entry, 0, len(built.Payloads))
	newChunkKeys := make(map[string]bool, len(built.Payloads))
	for cid := range built.Payloads {
		key := chunk.KVKey(newGen, chunk.ID(cid))
		newChunkKeys[key] = true
		entries = append(entries, kvstore.Entry{
			Key:   key,
			Value: encodeChunkEntry(built.Payloads[cid], built.Maps[cid]),
		})
	}
	if err := s.kv.BatchPut(ctx, TableChunks, entries); err != nil {
		return err
	}
	if err := proj.Save(ctx, s.kv); err != nil {
		return err
	}

	flushed := s.pending
	s.locs = built.Locs
	s.maps = built.Maps
	s.proj = proj
	s.numChunks = uint32(len(built.Payloads))
	s.gen = newGen
	s.pending = nil
	s.pendingSet = make(map[types.VersionID]bool)
	s.cache.reset() // every chunk id was reassigned
	if err := s.saveManifest(ctx); err != nil {
		return err
	}

	// Cleanup after the commit point: superseded chunk/index entries and
	// the drained write store.
	vKeys, kKeys := proj.EntryKeys()
	if err := s.deleteStale(ctx, TableChunks, staleChunks, newChunkKeys); err != nil {
		return err
	}
	if err := s.deleteStale(ctx, index.TableVersionIndex, staleVIdx, stringSet(vKeys)); err != nil {
		return err
	}
	if err := s.deleteStale(ctx, index.TableKeyIndex, staleKIdx, stringSet(kKeys)); err != nil {
		return err
	}
	for _, v := range flushed {
		if err := s.kv.Delete(ctx, TableDeltaStore, deltaKey(v)); err != nil {
			return err
		}
	}
	return nil
}

// tableKeys lists every key of a KVS table.
func (s *Store) tableKeys(ctx context.Context, table string) ([]string, error) {
	var keys []string
	if err := s.kv.Scan(ctx, table, func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		return nil, err
	}
	return keys, nil
}

// deleteStale removes the keys of a table that the new generation did not
// overwrite.
func (s *Store) deleteStale(ctx context.Context, table string, old []string, live map[string]bool) error {
	for _, k := range old {
		if live[k] {
			continue
		}
		if err := s.kv.Delete(ctx, table, k); err != nil {
			return err
		}
	}
	return nil
}

func stringSet(keys []string) map[string]bool {
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// encodeChunkEntry packs a chunk payload and its chunk map into the single
// KVS value stored under the chunk id.
func encodeChunkEntry(payload []byte, m *chunk.Map) []byte {
	var buf []byte
	buf = codec.PutBytes(buf, payload)
	return m.AppendBinary(buf)
}

// decodeChunkEntry splits a stored chunk entry.
func decodeChunkEntry(entry []byte) (payload []byte, m *chunk.Map, err error) {
	payload, rest, err := codec.Bytes(entry)
	if err != nil {
		return nil, nil, err
	}
	m, err = chunk.DecodeMap(rest)
	if err != nil {
		return nil, nil, err
	}
	return payload, m, nil
}
