package core

import (
	"context"
	"errors"
	"testing"

	"rstore/internal/types"
)

func diffStore(t *testing.T) (*Store, types.VersionID, types.VersionID, types.VersionID) {
	t.Helper()
	s, err := Open(context.Background(), Config{ChunkCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	v0, err := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("a0"), "b": []byte("b0"), "c": []byte("c0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Branch 1: modify a, add d.
	v1, err := s.Commit(context.Background(), v0, Change{Puts: map[types.Key][]byte{
		"a": []byte("a1"), "d": []byte("d1"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Branch 2 (from v0): delete b, modify c.
	v2, err := s.Commit(context.Background(), v0, Change{
		Puts:    map[types.Key][]byte{"c": []byte("c2")},
		Deletes: []types.Key{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, v0, v1, v2
}

func TestDiffLinear(t *testing.T) {
	s, v0, v1, _ := diffStore(t)
	d, err := s.Diff(v0, v1)
	if err != nil {
		t.Fatal(err)
	}
	// v0→v1: +⟨a,1⟩ +⟨d,1⟩ −⟨a,0⟩; modified = {a}.
	if len(d.Added) != 2 || len(d.Removed) != 1 {
		t.Fatalf("diff: +%v -%v", d.Added, d.Removed)
	}
	if d.Added[0] != (types.CompositeKey{Key: "a", Version: v1}) {
		t.Fatalf("added[0] = %v", d.Added[0])
	}
	if d.Removed[0] != (types.CompositeKey{Key: "a", Version: v0}) {
		t.Fatalf("removed[0] = %v", d.Removed[0])
	}
	if len(d.Modified) != 1 || d.Modified[0] != "a" {
		t.Fatalf("modified = %v", d.Modified)
	}
	// Reverse direction swaps the sets.
	rd, err := s.Diff(v1, v0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Added) != len(d.Removed) || len(rd.Removed) != len(d.Added) {
		t.Fatal("reverse diff not symmetric")
	}
}

func TestDiffAcrossBranches(t *testing.T) {
	s, _, v1, v2 := diffStore(t)
	d, err := s.Diff(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	// v1 = {a@1, b@0, c@0, d@1}; v2 = {a@0, c@2}.
	// Added (in v2 not v1): a@0, c@2. Removed: a@1, b@0, c@0, d@1.
	if len(d.Added) != 2 || len(d.Removed) != 4 {
		t.Fatalf("cross-branch diff: +%v -%v", d.Added, d.Removed)
	}
	// a and c changed origin across the branches.
	if len(d.Modified) != 2 {
		t.Fatalf("modified = %v", d.Modified)
	}
}

func TestDiffIdentity(t *testing.T) {
	s, v0, _, _ := diffStore(t)
	d, err := s.Diff(v0, v0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added)+len(d.Removed)+len(d.Modified) != 0 {
		t.Fatalf("self-diff not empty: %+v", d)
	}
	if _, err := s.Diff(v0, 99); !errors.Is(err, types.ErrVersionUnknown) {
		t.Fatalf("unknown version: %v", err)
	}
}

func TestLCA(t *testing.T) {
	s, v0, v1, v2 := diffStore(t)
	// Extend branch 1 once more.
	v3, err := s.Commit(context.Background(), v1, Change{Puts: map[types.Key][]byte{"e": []byte("e3")}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b, want types.VersionID
	}{
		{v1, v2, v0},
		{v3, v2, v0},
		{v3, v1, v1},
		{v0, v3, v0},
		{v2, v2, v2},
	}
	for _, c := range cases {
		got, err := s.LCA(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("LCA(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := s.LCA(0, 99); !errors.Is(err, types.ErrVersionUnknown) {
		t.Fatalf("unknown version: %v", err)
	}
}
