package core

import (
	"context"
	"errors"
	"testing"

	"rstore/internal/types"
	"rstore/internal/workload"
)

func TestBulkLoadAndQueries(t *testing.T) {
	c, err := workload.Generate(workload.Spec{
		Name: "bulk", Versions: 20, AvgDepth: 6, RecordsPerVersion: 40,
		UpdatePct: 0.2, Update: workload.RandomUpdate, RecordSize: 96, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(context.Background(), Config{ChunkCapacity: 2048, SubChunkK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BulkLoad(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if s.PendingVersions() != 0 {
		t.Fatalf("%d pending after bulk load", s.PendingVersions())
	}
	if s.ChunkStorageBytes(context.Background()) <= 0 {
		t.Fatal("no chunk storage")
	}
	for v := 0; v < c.NumVersions(); v++ {
		vv := types.VersionID(v)
		want, err := c.Members(vv)
		if err != nil {
			t.Fatal(err)
		}
		recs, _, err := s.GetVersionAll(context.Background(), vv)
		if err != nil {
			t.Fatalf("GetVersion(%d): %v", v, err)
		}
		if len(recs) != len(want) {
			t.Fatalf("v%d: %d records, want %d", v, len(recs), len(want))
		}
		if s.VersionSpan(vv) == 0 {
			t.Fatalf("v%d: zero span", v)
		}
	}
	// Span accessors line up with the projection totals.
	if s.TotalVersionSpan() <= 0 || s.KeySpan(c.Keys()[0]) == 0 {
		t.Fatal("span accessors")
	}
	// Bulk load twice is rejected.
	if err := s.BulkLoad(context.Background(), c); err == nil {
		t.Fatal("second bulk load accepted")
	}
}

func TestCommitDeltaValidation(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Root via delta.
	root := &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "a", Version: 0}, Value: []byte("a0")},
	}}
	v0, err := s.CommitDelta(context.Background(), []types.VersionID{types.InvalidVersion}, root)
	if err != nil || v0 != 0 {
		t.Fatalf("root: %v %v", v0, err)
	}
	// Fresh add with wrong origin version is rejected.
	bad := &types.Delta{Adds: []types.Record{
		{CK: types.CompositeKey{Key: "b", Version: 99}, Value: []byte("b")},
	}}
	if _, err := s.CommitDelta(context.Background(), []types.VersionID{v0}, bad); err == nil {
		t.Fatal("wrong-origin add accepted")
	}
	// Proper child delta.
	good := &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "a", Version: 1}, Value: []byte("a1")}},
		Dels: []types.CompositeKey{{Key: "a", Version: 0}},
	}
	v1, err := s.CommitDelta(context.Background(), []types.VersionID{v0}, good)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, _, err := s.GetRecord(context.Background(), "a", v1)
	if err != nil || string(rec.Value) != "a1" {
		t.Fatalf("after delta commit: %q %v", rec.Value, err)
	}
	// Empty parents rejected.
	if _, err := s.CommitDelta(context.Background(), nil, &types.Delta{}); err == nil {
		t.Fatal("no-parent delta accepted")
	}
	// KV accessor exposed for stats.
	if s.KV() == nil {
		t.Fatal("KV() nil")
	}
	if len(s.Branches()) == 0 {
		t.Fatal("no branches")
	}
	// Query stats accumulate across a mixed path.
	var qs QueryStats
	qs.add(QueryStats{Span: 1, Requests: 2, BytesRead: 3, Records: 4, WastedChunks: 5})
	qs.add(QueryStats{Span: 1})
	if qs.Span != 2 || qs.Requests != 2 || qs.BytesRead != 3 || qs.Records != 4 || qs.WastedChunks != 5 {
		t.Fatalf("stats add: %+v", qs)
	}
	_ = errors.Is
}

// TestFailedCommitLeavesNoTrace: a rejected commit must not grow the graph
// or desynchronize it from the corpus (regression for the pre-validation
// ordering bug).
func TestFailedCommitLeavesNoTrace(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	v0, err := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{"a": []byte("0")}})
	if err != nil {
		t.Fatal(err)
	}
	before := s.NumVersions()

	// Three distinct rejection paths.
	if _, err := s.Commit(context.Background(), v0, Change{Deletes: []types.Key{"missing"}}); err == nil {
		t.Fatal("delete of missing key accepted")
	}
	if _, err := s.Commit(context.Background(), v0, Change{
		Puts: map[types.Key][]byte{"a": []byte("1")}, Deletes: []types.Key{"a"},
	}); err == nil {
		t.Fatal("put+delete accepted")
	}
	if _, err := s.CommitDelta(context.Background(), []types.VersionID{v0}, &types.Delta{
		Adds: []types.Record{{CK: types.CompositeKey{Key: "x", Version: 77}}},
	}); err == nil {
		t.Fatal("wrong-origin delta accepted")
	}

	if s.NumVersions() != before {
		t.Fatalf("failed commits grew the graph: %d → %d", before, s.NumVersions())
	}
	// The store remains fully functional: the next id is consecutive.
	v1, err := s.Commit(context.Background(), v0, Change{Puts: map[types.Key][]byte{"a": []byte("1")}})
	if err != nil {
		t.Fatal(err)
	}
	if int(v1) != before {
		t.Fatalf("version id after failures: %d, want %d", v1, before)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec, _, err := s.GetRecord(context.Background(), "a", v1)
	if err != nil || string(rec.Value) != "1" {
		t.Fatalf("store unusable after failed commits: %q %v", rec.Value, err)
	}
}
