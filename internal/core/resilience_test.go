package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// TestConcurrentQueries hammers all query paths from many goroutines while
// the store is static — the read paths must be race-free (run with -race).
func TestConcurrentQueries(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 1024, BatchSize: 6}, 20, 30, 11)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := types.VersionID((w + i) % len(m.versions))
				recs, _, err := s.GetVersionAll(context.Background(), v)
				if err != nil {
					t.Errorf("GetVersion(%d): %v", v, err)
					return
				}
				if len(recs) != len(m.versions[v]) {
					t.Errorf("GetVersion(%d): %d records, want %d", v, len(recs), len(m.versions[v]))
					return
				}
				if _, _, err := s.GetHistoryAll(context.Background(), key(w%10)); err != nil {
					t.Errorf("GetHistory: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentCommitsAndQueries interleaves writers (serialized by the
// engine lock) with readers on stable old versions.
func TestConcurrentCommitsAndQueries(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 2048, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := Change{Puts: map[types.Key][]byte{}}
	for i := 0; i < 20; i++ {
		root.Puts[key(i)] = []byte(fmt.Sprintf("base-%d", i))
	}
	v0, err := s.Commit(context.Background(), types.InvalidVersion, root)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		parent := v0
		for i := 0; i < 40; i++ {
			v, err := s.Commit(context.Background(), parent, Change{Puts: map[types.Key][]byte{
				key(i % 20): []byte(fmt.Sprintf("rev-%d", i)),
			}})
			if err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
			parent = v
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			recs, _, err := s.GetVersionAll(context.Background(), v0)
			if err != nil || len(recs) != 20 {
				t.Errorf("read during writes: %d records, %v", len(recs), err)
				return
			}
		}
	}()
	wg.Wait()
	if s.NumVersions() != 41 {
		t.Fatalf("versions = %d", s.NumVersions())
	}
}

// TestQueriesSurviveNodeFailure verifies the engine keeps answering when a
// replica node dies under ReplicationFactor 2.
func TestQueriesSurviveNodeFailure(t *testing.T) {
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 4, ReplicationFactor: 2, Cost: kvstore.DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	s, m := buildStore(t, Config{KV: kv, ChunkCapacity: 1024, BatchSize: 5}, 18, 25, 12)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkAllVersions(t, s, m)
	// Kill each node in turn; all data must stay reachable.
	for n := 0; n < 4; n++ {
		if err := kv.SetNodeUp(n, false); err != nil {
			t.Fatal(err)
		}
		checkAllVersions(t, s, m)
		if err := kv.SetNodeUp(n, true); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnreplicatedFailureSurfacesError: with rf=1 a dead node must produce
// an error, not silent data loss.
func TestUnreplicatedFailureSurfacesError(t *testing.T) {
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 3, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := buildStore(t, Config{KV: kv, ChunkCapacity: 512, BatchSize: 4}, 12, 30, 13)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		kv.SetNodeUp(n, false)
	}
	if _, _, err := s.GetVersionAll(context.Background(), 0); err == nil {
		t.Fatal("query against fully-dead cluster succeeded")
	}
}

// TestFlushIdempotent: flushing with nothing pending is a no-op.
func TestFlushIdempotent(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 1024}, 10, 20, 14)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	chunks := s.NumChunks()
	for i := 0; i < 3; i++ {
		if err := s.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumChunks() != chunks {
		t.Fatalf("idempotent flush grew chunks: %d → %d", chunks, s.NumChunks())
	}
	checkAllVersions(t, s, m)
}

// TestMaterializeAfterOnlineFlushes: a full repartition after online batches
// (the §4 "pragmatic approach") must preserve answers and may only improve
// the span.
func TestMaterializeAfterOnlineFlushes(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 1024, BatchSize: 3}, 21, 30, 15)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	onlineSpan := s.TotalVersionSpan()
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Neither placement dominates on arbitrary commit streams (Fig 13's
	// quality ratios hover around 1 at small scale); the repartition must
	// stay in the same band and, critically, preserve every answer.
	offlineSpan := s.TotalVersionSpan()
	if offlineSpan > onlineSpan*1000/75 {
		t.Fatalf("full repartition exploded span: %d → %d", onlineSpan, offlineSpan)
	}
	checkAllVersions(t, s, m)
}

// TestOnlineEqualsOfflineAnswers cross-checks the two placement paths
// produce identical query answers on the same commit stream.
func TestOnlineEqualsOfflineAnswers(t *testing.T) {
	online, m1 := buildStore(t, Config{ChunkCapacity: 768, BatchSize: 2}, 15, 25, 16)
	offline, m2 := buildStore(t, Config{ChunkCapacity: 768}, 15, 25, 16)
	if err := online.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := offline.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 15; v++ {
		a, _, err := online.GetVersionAll(context.Background(), types.VersionID(v))
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := offline.GetVersionAll(context.Background(), types.VersionID(v))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("v%d: online %d records, offline %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i].CK != b[i].CK || string(a[i].Value) != string(b[i].Value) {
				t.Fatalf("v%d record %d differs", v, i)
			}
		}
	}
	_ = m1
	_ = m2
}

// TestAutoRepartition verifies Config.RepartitionEvery triggers a full
// Materialize after the configured number of online batches, preserving
// answers.
func TestAutoRepartition(t *testing.T) {
	s, m := buildStore(t, Config{
		ChunkCapacity: 1024, BatchSize: 3, RepartitionEvery: 2, SubChunkK: 2,
	}, 20, 25, 41)
	// With batch=3 over 20 commits ≥ 6 flushes happened, so ≥ 3 automatic
	// repartitions ran; compression (k=2) only applies through Materialize,
	// so chunk storage must reflect it and all answers must hold.
	checkAllVersions(t, s, m)
	if s.NumChunks() == 0 {
		t.Fatal("no chunks after auto repartition")
	}
	// After a final flush everything is placed and still correct.
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkAllVersions(t, s, m)
}
