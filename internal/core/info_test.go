package core

import (
	"context"
	"testing"

	"rstore/internal/types"
)

func TestInfo(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 1024, BatchSize: 4}, 12, 20, 21)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.Versions != len(m.versions) {
		t.Fatalf("Versions = %d, want %d", info.Versions, len(m.versions))
	}
	if info.PendingVersions != 0 {
		t.Fatalf("PendingVersions = %d after flush", info.PendingVersions)
	}
	if info.Chunks == 0 || info.Records == 0 || info.Keys == 0 {
		t.Fatalf("zero counts: %+v", info)
	}
	if info.TotalVersionSpan != s.TotalVersionSpan() {
		t.Fatal("span mismatch")
	}
	if info.VersionIndexBytes == 0 || info.KeyIndexBytes == 0 {
		t.Fatalf("index sizes: %+v", info)
	}
	if info.Branches == 0 {
		t.Fatal("no branches reported (main exists)")
	}

	vs := s.Versions()
	if len(vs) != info.Versions || vs[0] != 0 || vs[len(vs)-1] != types.VersionID(info.Versions-1) {
		t.Fatalf("Versions() = %v", vs)
	}
}

func TestInfoEmptyStore(t *testing.T) {
	s, err := Open(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.Versions != 0 || info.Records != 0 || info.Chunks != 0 {
		t.Fatalf("empty store info: %+v", info)
	}
	if len(s.Versions()) != 0 {
		t.Fatal("empty store has versions")
	}
}
