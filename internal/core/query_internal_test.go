package core

import (
	"context"
	"testing"

	"rstore/internal/types"
)

// TestAnchorOf exercises the pending-overlay path resolution directly.
func TestAnchorOf(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{"a": []byte("0")}})
	v1, _ := s.Commit(context.Background(), v0, Change{Puts: map[types.Key][]byte{"a": []byte("1")}})
	v2, _ := s.Commit(context.Background(), v1, Change{Puts: map[types.Key][]byte{"a": []byte("2")}})

	// Everything pending: anchor invalid, overlay = full path.
	anchor, overlay := s.anchorOf(v2)
	if anchor != types.InvalidVersion || len(overlay) != 3 {
		t.Fatalf("all-pending: anchor %v overlay %v", anchor, overlay)
	}
	if overlay[0] != v0 || overlay[2] != v2 {
		t.Fatalf("overlay order: %v", overlay)
	}

	// Flush v0..v2, commit one more: anchor = v2, overlay = [v3].
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	v3, _ := s.Commit(context.Background(), v2, Change{Puts: map[types.Key][]byte{"a": []byte("3")}})
	anchor, overlay = s.anchorOf(v3)
	if anchor != v2 || len(overlay) != 1 || overlay[0] != v3 {
		t.Fatalf("partial: anchor %v overlay %v", anchor, overlay)
	}
	// A placed version anchors at itself with no overlay.
	anchor, overlay = s.anchorOf(v1)
	if anchor != v1 || len(overlay) != 0 {
		t.Fatalf("placed: anchor %v overlay %v", anchor, overlay)
	}
}

// TestKeysInRange exercises the sorted-key range resolution.
func TestKeysInRange(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	puts := map[types.Key][]byte{}
	for _, k := range []types.Key{"m", "a", "z", "c", "q"} {
		puts[k] = []byte("v")
	}
	if _, err := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: puts}); err != nil {
		t.Fatal(err)
	}
	got := s.keysInRange(KeyRange("b", "r"))
	if len(got) != 3 || got[0] != "c" || got[1] != "m" || got[2] != "q" {
		t.Fatalf("keysInRange = %v", got)
	}
	if len(s.keysInRange(KeyRange("zz", "zzz"))) != 0 {
		t.Fatal("empty range not empty")
	}
	// Full range covers everything.
	if len(s.keysInRange(KeyRange("", "\xff"))) != 5 {
		t.Fatal("full range")
	}
	// The unbounded form reaches keys above any sentinel.
	if len(s.keysInRange(KeyRangeFrom(""))) != 5 {
		t.Fatal("unbounded full range")
	}
	if got := s.keysInRange(KeyRangeFrom("q")); len(got) != 2 || got[0] != "q" || got[1] != "z" {
		t.Fatalf("unbounded from q = %v", got)
	}
}

// TestWastedChunksCounted forces a lossy-projection miss: a key+version
// intersection that selects a chunk holding the key only in other versions.
func TestWastedChunksCounted(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 1 << 20}) // one big chunk
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("a0"), "b": []byte("b0"),
	}})
	v1, _ := s.Commit(context.Background(), v0, Change{Deletes: []types.Key{"b"}})
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// "b" is indexed to the chunk (it holds ⟨b,0⟩), and v1 is indexed to the
	// chunk too (it holds ⟨a,0⟩) — but b has no record in v1: the fetch is
	// wasted, and the error is ErrNotFound.
	_, stats, err := s.GetRecord(context.Background(), "b", v1)
	if err == nil {
		t.Fatal("deleted key found")
	}
	if stats.Span == 0 {
		t.Fatal("no chunk fetched — expected a lossy-projection fetch")
	}
	if stats.WastedChunks == 0 {
		t.Fatalf("wasted fetch not counted: %+v", stats)
	}
}

// TestEmptyVersionQueries: a version whose records were all deleted.
func TestEmptyVersionQueries(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{"only": []byte("1")}})
	v1, _ := s.Commit(context.Background(), v0, Change{Deletes: []types.Key{"only"}})
	for _, flush := range []bool{false, true} {
		if flush {
			if err := s.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		recs, _, err := s.GetVersionAll(context.Background(), v1)
		if err != nil {
			t.Fatalf("flush=%v: %v", flush, err)
		}
		if len(recs) != 0 {
			t.Fatalf("flush=%v: empty version returned %d records", flush, len(recs))
		}
	}
}
