package core

import (
	"context"
	"fmt"
	"sort"

	"rstore/internal/bitset"
	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// Flush runs online partitioning (paper §4) over all pending versions: new
// records are chunked with the configured algorithm restricted to the batch
// subtree, existing records keep their chunks (no re-partitioning), chunk
// maps touched by the batch are rebuilt from in-memory state and written
// back once, and the projections gain the new versions.
//
// Flush honors ctx for its KVS writes. An error mid-flush — including a
// cancellation — never corrupts the persisted state (the chunks →
// projections → manifest → delta-drain crash ordering means Load repairs
// it), but it can leave this process's in-memory placement ahead of what
// was persisted; treat a failed Flush like a crash and reopen with Load
// rather than continuing to serve from the same Store. Prefer a
// non-cancellable context here unless abandoning the store on interruption
// is acceptable.
func (s *Store) Flush(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutable(); err != nil {
		return err
	}
	return s.flushLocked(ctx)
}

func (s *Store) flushLocked(ctx context.Context) error {
	if len(s.pending) == 0 {
		return nil
	}

	// New records: committed but not yet placed.
	var newIDs []uint32
	for id, loc := range s.locs {
		if loc.Chunk == chunk.NoChunk {
			newIDs = append(newIDs, uint32(id))
		}
	}

	var batchChunks [][]uint32 // per new chunk: record ids
	if len(newIDs) > 0 {
		in, err := s.batchInstance(newIDs)
		if err != nil {
			return err
		}
		assign, err := s.cfg.Partitioner.Partition(in)
		if err != nil {
			return fmt.Errorf("rstore: flush: %s: %w", s.cfg.Partitioner.Name(), err)
		}
		// Translate item indexes back to record ids.
		batchChunks = make([][]uint32, len(assign.Chunks))
		for ci, itemIdxs := range assign.Chunks {
			recs := make([]uint32, len(itemIdxs))
			for j, ii := range itemIdxs {
				recs[j] = newIDs[ii]
			}
			batchChunks[ci] = recs
		}
	}

	touched := make(map[chunk.ID]bool)

	// Materialize the new chunks: payloads, locations, empty maps.
	for _, recs := range batchChunks {
		cid := chunk.ID(s.numChunks)
		s.numChunks++
		items := make([]chunk.Item, len(recs))
		for j, rec := range recs {
			it, err := chunk.SingleRecordItem(s.corpus, rec)
			if err != nil {
				return err
			}
			items[j] = it
			s.locs[rec] = chunk.Loc{Chunk: cid, Slot: uint32(j)}
		}
		payload := encodeChunkPayload(items)
		s.chunkPayloadCache(cid, payload)
		s.maps = append(s.maps, chunk.NewMap(len(recs)))
		touched[cid] = true
	}

	// Update chunk maps and the version projection for each pending
	// version, in id order so parents are handled before children.
	for _, v := range s.pending {
		span, err := s.extendMaps(v, touched)
		if err != nil {
			return err
		}
		for _, cid := range span {
			s.proj.ObserveVersionChunk(v, cid)
		}
		// Key projection entries for records newly placed at this version.
		for _, rec := range s.corpus.Adds(v) {
			loc := s.locs[rec]
			s.proj.AddKeyChunk(s.corpus.Record(rec).CK.Key, loc.Chunk)
		}
	}
	s.proj.Normalize()

	// Persist: every touched chunk entry is rewritten once per batch (the
	// paper's rebuild-instead-of-fetch optimization) in one batched write —
	// grouped per replica node, one durability sync per node — then
	// projections for the affected versions/keys, then the write store
	// drains.
	entries := make([]kvstore.Entry, 0, len(touched))
	for cid := range touched {
		payload, err := s.payloadOf(ctx, cid)
		if err != nil {
			return err
		}
		entries = append(entries, kvstore.Entry{
			Key:   chunk.KVKey(s.gen, cid),
			Value: encodeChunkEntry(payload, s.maps[cid]),
		})
	}
	if err := s.kv.BatchPut(ctx, TableChunks, entries); err != nil {
		return err
	}
	if err := s.proj.Save(ctx, s.kv); err != nil {
		return err
	}
	// Commit point: the manifest must land BEFORE the write store drains.
	// Crash-ordering contract with Load: chunks → projections → manifest →
	// delta deletes. A crash before the manifest leaves orphan chunks and
	// stale projection rows that Load skips/prunes (the versions are still
	// pending and re-flush); a crash after it leaves only stale delta
	// entries that Load garbage-collects.
	flushed := s.pending
	s.pending = nil
	s.pendingSet = make(map[types.VersionID]bool)
	if err := s.saveManifest(ctx); err != nil {
		return err
	}
	for _, v := range flushed {
		if err := s.kv.Delete(ctx, TableDeltaStore, deltaKey(v)); err != nil {
			return err
		}
	}
	// Rewritten chunk entries must not be served from cache.
	for cid := range touched {
		s.cache.invalidate(cid)
	}

	// Periodic full repartitioning (§4's pragmatic combination).
	s.batchesSinceRepartition++
	if s.cfg.RepartitionEvery > 0 && s.batchesSinceRepartition >= s.cfg.RepartitionEvery {
		s.batchesSinceRepartition = 0
		return s.materializeLocked(ctx)
	}
	return nil
}

// batchInstance builds the partitioning instance for the pending subtrees:
// a virtual empty root stands in for the already-partitioned store, with the
// pending versions hanging off it in commit order.
func (s *Store) batchInstance(newIDs []uint32) (*partition.Input, error) {
	itemIdx := make(map[uint32]uint32, len(newIDs))
	items := make([]chunk.Item, len(newIDs))
	for i, rec := range newIDs {
		it, err := chunk.SingleRecordItem(s.corpus, rec)
		if err != nil {
			return nil, err
		}
		items[i] = it
		itemIdx[rec] = uint32(i)
	}

	g := vgraph.New()
	if _, err := g.AddRoot(); err != nil {
		return nil, err
	}
	mapped := make(map[types.VersionID]types.VersionID, len(s.pending))
	adds := [][]uint32{nil} // virtual root: nothing
	dels := [][]uint32{nil}
	for _, v := range s.pending {
		parent := s.graph.Parent(v)
		tp := types.VersionID(0)
		if mp, ok := mapped[parent]; ok {
			tp = mp
		}
		nv, err := g.AddVersion(tp)
		if err != nil {
			return nil, err
		}
		mapped[v] = nv
		adds = append(adds, filterMapIDs(s.corpus.Adds(v), itemIdx))
		dels = append(dels, filterMapIDs(s.corpus.Dels(v), itemIdx))
	}
	return &partition.Input{
		Graph:    g,
		Items:    items,
		Adds:     adds,
		Dels:     dels,
		Capacity: s.cfg.ChunkCapacity,
		Slack:    s.cfg.Slack,
	}, nil
}

// filterMapIDs projects record ids into batch item space, dropping records
// that already have a placement (old records re-appearing through merges).
func filterMapIDs(ids []uint32, itemIdx map[uint32]uint32) []uint32 {
	var out []uint32
	for _, id := range ids {
		if ii, ok := itemIdx[id]; ok {
			out = append(out, ii)
		}
	}
	return out
}

// extendMaps computes version v's slot bitmaps across chunks from its
// parent's, applies v's delta, installs them in the in-memory chunk maps,
// and returns v's chunk span (sorted). Chunks whose maps change are added to
// touched.
func (s *Store) extendMaps(v types.VersionID, touched map[chunk.ID]bool) ([]chunk.ID, error) {
	perChunk := make(map[chunk.ID]*bitset.BitSet)
	parent := s.graph.Parent(v)
	if parent != types.InvalidVersion {
		for _, cid := range s.proj.VersionChunks(parent) {
			if bm := s.maps[cid].SlotsOf(parent); bm != nil {
				perChunk[cid] = bm.Clone()
			}
		}
	}
	for _, rec := range s.corpus.Dels(v) {
		loc := s.locs[rec]
		if loc.Chunk == chunk.NoChunk {
			return nil, fmt.Errorf("rstore: flush: deleted record %d unplaced", rec)
		}
		if bm := perChunk[loc.Chunk]; bm != nil {
			bm.Clear(loc.Slot)
		}
	}
	for _, rec := range s.corpus.Adds(v) {
		loc := s.locs[rec]
		if loc.Chunk == chunk.NoChunk {
			return nil, fmt.Errorf("rstore: flush: added record %d unplaced", rec)
		}
		bm := perChunk[loc.Chunk]
		if bm == nil {
			bm = bitset.New(s.maps[loc.Chunk].NumSlots)
			perChunk[loc.Chunk] = bm
		}
		bm.Set(loc.Slot)
	}

	span := make([]chunk.ID, 0, len(perChunk))
	for cid, bm := range perChunk {
		if bm.Empty() {
			continue
		}
		s.maps[cid].Versions[v] = bm
		touched[cid] = true
		span = append(span, cid)
	}
	sort.Slice(span, func(i, j int) bool { return span[i] < span[j] })
	return span, nil
}

// encodeChunkPayload lays out a chunk payload from items (online path; the
// offline path goes through chunk.Build).
func encodeChunkPayload(items []chunk.Item) []byte {
	var buf []byte
	buf = codec.PutUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = append(buf, it.Encoded...)
	}
	return buf
}

// chunkPayloadCache stages freshly built payloads until the batch write; the
// engine otherwise keeps chunk payloads only in the KVS.
func (s *Store) chunkPayloadCache(cid chunk.ID, payload []byte) {
	if s.stagedPayloads == nil {
		s.stagedPayloads = make(map[chunk.ID][]byte)
	}
	s.stagedPayloads[cid] = payload
}

// payloadOf returns a chunk's payload: staged (new this batch) or fetched
// from the KVS (old chunk whose map is being rewritten).
func (s *Store) payloadOf(ctx context.Context, cid chunk.ID) ([]byte, error) {
	if p, ok := s.stagedPayloads[cid]; ok {
		delete(s.stagedPayloads, cid)
		return p, nil
	}
	entry, err := s.kv.Get(ctx, TableChunks, chunk.KVKey(s.gen, cid))
	if err != nil {
		return nil, fmt.Errorf("rstore: flush: chunk %d payload: %w", cid, err)
	}
	payload, _, err := decodeChunkEntry(entry)
	if err != nil {
		return nil, err
	}
	return payload, nil
}
