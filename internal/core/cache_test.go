package core

import (
	"context"
	"testing"

	"rstore/internal/types"
)

// TestCacheCutsBackendRequests: repeated queries over a cached store issue
// no further KVS requests; answers stay identical.
func TestCacheCutsBackendRequests(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 1024, CacheBytes: 16 << 20}, 15, 30, 51)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	v := types.VersionID(s.NumVersions() - 1)

	_, cold, err := s.GetVersionAll(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Requests == 0 {
		t.Fatal("cold query issued no requests")
	}
	recs, warm, err := s.GetVersionAll(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Requests != 0 {
		t.Fatalf("warm query issued %d requests", warm.Requests)
	}
	if warm.Span != cold.Span {
		t.Fatalf("span changed: %d vs %d", warm.Span, cold.Span)
	}
	if len(recs) != len(m.versions[int(v)]) {
		t.Fatalf("warm answer wrong: %d records", len(recs))
	}
	cs := s.CacheStats()
	if cs.Hits == 0 || cs.Entries == 0 || cs.Bytes == 0 {
		t.Fatalf("cache stats: %+v", cs)
	}
}

// TestCacheInvalidationOnFlush: a flush that rewrites a chunk's map must not
// serve the stale cached entry.
func TestCacheInvalidationOnFlush(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 1 << 20, CacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	v0, err := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{
		"a": []byte("a0"), "b": []byte("b0"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Warm the cache.
	if _, _, err := s.GetVersionAll(context.Background(), v0); err != nil {
		t.Fatal(err)
	}
	// New version deletes a record and flushes: the old chunk's map gains
	// v1 (minus the deleted slot) and is rewritten.
	v1, err := s.Commit(context.Background(), v0, Change{Deletes: []types.Key{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs, _, err := s.GetVersionAll(context.Background(), v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].CK.Key != "a" {
		t.Fatalf("stale cache served: %v", recs)
	}
}

// TestCacheInvalidationOnMaterialize: a full repartition reassigns every
// chunk id; stale entries must vanish.
func TestCacheInvalidationOnMaterialize(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 512, BatchSize: 4, CacheBytes: 16 << 20}, 12, 20, 52)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < s.NumVersions(); v++ {
		if _, _, err := s.GetVersionAll(context.Background(), types.VersionID(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Entries != 0 {
		t.Fatalf("cache survived materialize: %+v", cs)
	}
	checkAllVersions(t, s, m)
}

// TestCacheEviction: a tiny cache evicts under pressure and never exceeds
// its byte budget.
func TestCacheEviction(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 512, CacheBytes: 2048}, 12, 30, 53)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		checkAllVersions(t, s, m)
	}
	cs := s.CacheStats()
	if cs.Bytes > 2048 {
		t.Fatalf("cache over budget: %+v", cs)
	}
	if cs.Misses == 0 {
		t.Fatal("tiny cache produced no misses")
	}
}

// TestCacheDisabledByDefault: zero config keeps behavior identical with no
// cache state.
func TestCacheDisabledByDefault(t *testing.T) {
	s, _ := buildStore(t, Config{ChunkCapacity: 1024}, 8, 15, 54)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetVersionAll(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetVersionAll(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Hits != 0 || cs.Entries != 0 {
		t.Fatalf("disabled cache accumulated state: %+v", cs)
	}
}
