package core

import (
	"context"
	"errors"
	"testing"

	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// TestReadReplica opens a second, read-only application server over the
// same cluster (the paper's multi-AS deployment, §2.4): it serves every
// query but rejects all mutations.
func TestReadReplica(t *testing.T) {
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 3, ReplicationFactor: 2, Cost: kvstore.DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	primary, m := buildStore(t, Config{KV: kv, ChunkCapacity: 1024, BatchSize: 5}, 14, 25, 31)
	if err := primary.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	replica, err := Load(context.Background(), Config{KV: kv, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAllVersions(t, replica, m)

	// Every mutation is rejected with ErrReadOnly.
	if _, err := replica.Commit(context.Background(), 0, Change{Puts: map[types.Key][]byte{"x": []byte("1")}}); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("Commit: %v", err)
	}
	if _, err := replica.CommitDelta(context.Background(), []types.VersionID{0}, &types.Delta{}); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("CommitDelta: %v", err)
	}
	if err := replica.Flush(context.Background()); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("Flush: %v", err)
	}
	if err := replica.Materialize(context.Background()); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("Materialize: %v", err)
	}
	if err := replica.SetBranch(context.Background(), "x", 0); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("SetBranch: %v", err)
	}
	// Close works without attempting a flush.
	if err := replica.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The primary keeps writing; a freshly loaded replica sees the update.
	v, err := primary.Commit(context.Background(), 0, Change{Puts: map[types.Key][]byte{key(0): []byte("newer")}})
	if err != nil {
		t.Fatal(err)
	}
	m.commit(0, Change{Puts: map[types.Key][]byte{key(0): []byte("newer")}}, v)
	if err := primary.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	replica2, err := Load(context.Background(), Config{KV: kv, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAllVersions(t, replica2, m)
}
