// Package core implements the RStore engine (paper §2.4): the application-
// server layer that sits on the distributed key-value store and provides
// versioned commits, full/partial version retrieval, record retrieval, and
// record-evolution queries over chunked, deduplicated, optionally compressed
// record storage.
//
// Architecture mirrors the paper's three modules:
//
//   - Data Ingest: Commit assigns version ids, derives composite-key deltas,
//     and parks them in the delta store (a KVS table) for batching.
//   - Data Placement: Materialize runs an offline partitioning algorithm
//     over everything; the online path (§4) partitions each batch of new
//     versions as it closes, updating chunk maps and projections
//     incrementally and rewriting each touched chunk map once per batch.
//   - Query Processing: the two lossy projections (version→chunks,
//     key→chunks) pick chunks, MultiGet fetches them in parallel, and chunk
//     maps extract the requested records; pending (not yet partitioned)
//     versions are served by overlaying delta-store contents on the nearest
//     partitioned ancestor.
//
// A Store is safe for concurrent use, but it must be the only writer of its
// underlying cluster: commits, flushes, and Materialize coordinate through
// the Store's own locks, not through the storage layer, which offers no
// cross-client atomicity (see the internal/engine and internal/kvstore
// package comments on the one-logical-writer contract). Queries return
// streaming cursors whose records are private copies — callers may retain
// them freely.
//
// The layer diagram lives in docs/ARCHITECTURE.md; every on-disk format the
// engine persists through the cluster (manifest v2, delta store, chunk
// generations) is specified in docs/FORMATS.md.
package core

import (
	"context"
	"time"

	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/types"
)

// Config configures a Store.
type Config struct {
	// KV is the backing cluster. Nil creates a private single-node store
	// whose backend Engine and DataDir select; the Store then owns that
	// cluster and closes it on Close.
	KV *kvstore.Store
	// Engine selects the storage backend of the private cluster created
	// when KV is nil: kvstore.EngineMemory (default), kvstore.EngineDisklog,
	// or kvstore.EngineRemote. Ignored when KV is set.
	Engine string
	// DataDir is the data directory for disk-backed engines of the private
	// cluster. Required when Engine is kvstore.EngineDisklog.
	DataDir string
	// NodeAddrs lists the storage daemon addresses of the private cluster
	// (one node per address, in ring order). Required when Engine is
	// kvstore.EngineRemote.
	NodeAddrs []string
	// ReplicationFactor is the number of replicas per key in the private
	// cluster (default 1; capped at the node count). With more than one
	// replica the cluster self-heals divergence via replication repair —
	// see Repair. Ignored when KV is set.
	ReplicationFactor int
	// Repair tunes the private cluster's replication repair (read repair,
	// hinted handoff, tombstone GC); the zero value gives defaults.
	// Ignored when KV is set.
	Repair kvstore.RepairOptions
	// Partitioner is the chunking algorithm; nil means BottomUp.
	Partitioner partition.Algorithm
	// ChunkCapacity is the nominal chunk size C in bytes (default 1 MiB,
	// the paper's operating point).
	ChunkCapacity int
	// SubChunkK is the max records compressed together per sub-chunk
	// (paper's k); ≤1 disables record-level compression. Applied by
	// Materialize; the online path places records uncompressed (§4 notes
	// online re-compression is future work).
	SubChunkK int
	// BatchSize is the number of pending versions that triggers online
	// partitioning (§4's user-configurable batch size). ≤0 disables
	// automatic flushing; call Flush explicitly.
	BatchSize int
	// RepartitionEvery triggers a full offline repartition (Materialize)
	// after every N online batches — automating the "online partitioning
	// ... combined with a full repartitioning periodically" strategy §4
	// calls pragmatic. ≤0 disables automatic repartitioning.
	RepartitionEvery int
	// Slack is the chunk overfill allowance (default 0.25 per §2.5).
	Slack float64
	// ReadOnly rejects all mutations (Commit/Flush/Materialize/SetBranch).
	// The paper notes multiple application servers may front one cluster
	// with the caveat that shared mutable state is unsupported (§2.4);
	// read-only replicas opened with Load are the safe multi-AS deployment.
	ReadOnly bool
	// CacheBytes bounds an LRU cache of chunk entries in the application
	// server: cache hits skip the KVS round trip entirely (the §2.3
	// per-request cost). 0 disables caching. Placement changes invalidate
	// affected entries.
	CacheBytes int64
	// QueryFetchBatch is the number of chunks a streaming query fetches
	// from the KVS per round (default 8). Smaller batches surface the
	// first records sooner and bound per-query server memory tighter;
	// larger batches recover more of the fetch parallelism of the old
	// materialize-everything path.
	QueryFetchBatch int
}

// withDefaults fills in defaults; ownsKV reports that a private cluster was
// created for this store and should be closed with it. ctx bounds the
// private cluster's open (remote geometry probe, hint recovery).
func (c Config) withDefaults(ctx context.Context) (Config, bool, error) {
	ownsKV := false
	if c.KV == nil {
		nodes := 1
		if c.Engine == kvstore.EngineRemote {
			nodes = len(c.NodeAddrs) // the address list is the cluster shape
		}
		kv, err := kvstore.Open(ctx, kvstore.Config{
			Nodes:             nodes,
			ReplicationFactor: c.ReplicationFactor,
			Cost:              kvstore.DefaultCostModel(),
			Engine:            c.Engine,
			Dir:               c.DataDir,
			NodeAddrs:         c.NodeAddrs,
			Repair:            c.Repair,
		})
		if err != nil {
			return c, false, err
		}
		c.KV = kv
		ownsKV = true
	}
	if c.Partitioner == nil {
		c.Partitioner = partition.BottomUp{}
	}
	if c.ChunkCapacity <= 0 {
		c.ChunkCapacity = 1 << 20
	}
	if c.SubChunkK < 1 {
		c.SubChunkK = 1
	}
	if c.Slack <= 0 {
		c.Slack = partition.DefaultSlack
	}
	if c.QueryFetchBatch <= 0 {
		c.QueryFetchBatch = 8
	}
	return c, ownsKV, nil
}

// KVS table names used by the engine.
const (
	// TableChunks holds chunk payloads concatenated with their chunk maps,
	// keyed by chunk id — one fetch returns both, matching the paper's
	// placement of M_Ci alongside each chunk.
	TableChunks = "chunks"
	// TableDeltaStore holds pending version deltas awaiting batch
	// placement (§4's write store).
	TableDeltaStore = "deltastore"
	// TableMeta holds the manifest (graph structure, branches, counters).
	TableMeta = "meta"
)

// QueryStats reports the cost of one retrieval operation.
type QueryStats struct {
	// Span is the number of chunks (or delta-store entries) fetched.
	Span int
	// Requests is the number of point requests issued to the KVS.
	Requests int
	// BytesRead is the response volume.
	BytesRead int64
	// SimElapsed is the simulated retrieval time under the cluster's cost
	// model (request overhead + transfer + client-side scan).
	SimElapsed time.Duration
	// Records is the number of records returned.
	Records int
	// WastedChunks counts fetched chunks that contained no requested
	// record — the lossy-projection artifact of §2.4.
	WastedChunks int
}

func (q *QueryStats) add(other QueryStats) {
	q.Span += other.Span
	q.Requests += other.Requests
	q.BytesRead += other.BytesRead
	q.SimElapsed += other.SimElapsed
	q.Records += other.Records
	q.WastedChunks += other.WastedChunks
}

// Change is the user-facing commit payload: new values for inserted or
// modified keys, and deleted keys. The engine derives the composite-key
// delta (old-version deletions) itself, so clients need not track origin
// versions.
type Change struct {
	Puts    map[types.Key][]byte
	Deletes []types.Key
}
