package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/types"
)

// model is an in-test oracle: full version contents tracked naively.
type model struct {
	versions []map[types.Key]types.Record // per version: visible record per key
	parents  []types.VersionID
}

func newModel() *model { return &model{} }

func (m *model) commit(parent types.VersionID, ch Change, v types.VersionID) {
	var base map[types.Key]types.Record
	if parent == types.InvalidVersion {
		base = map[types.Key]types.Record{}
	} else {
		base = m.versions[parent]
	}
	next := make(map[types.Key]types.Record, len(base))
	for k, r := range base {
		next[k] = r
	}
	for k, val := range ch.Puts {
		next[k] = types.Record{CK: types.CompositeKey{Key: k, Version: v}, Value: val}
	}
	for _, k := range ch.Deletes {
		delete(next, k)
	}
	m.versions = append(m.versions, next)
	m.parents = append(m.parents, parent)
}

func (m *model) history(key types.Key) map[types.CompositeKey][]byte {
	out := make(map[types.CompositeKey][]byte)
	for _, ver := range m.versions {
		if r, ok := ver[key]; ok {
			out[r.CK] = r.Value
		}
	}
	return out
}

// buildStore commits a randomized branched history and returns store+oracle.
func buildStore(t *testing.T, cfg Config, versions, baseRecords int, seed int64) (*Store, *model) {
	t.Helper()
	s, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	m := newModel()

	root := Change{Puts: map[types.Key][]byte{}}
	for i := 0; i < baseRecords; i++ {
		root.Puts[key(i)] = payload(rng, i, 0)
	}
	v, err := s.Commit(context.Background(), types.InvalidVersion, root)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(types.InvalidVersion, root, v)
	nextKey := baseRecords

	for i := 1; i < versions; i++ {
		parent := types.VersionID(rng.Intn(s.NumVersions()))
		ch := Change{Puts: map[types.Key][]byte{}}
		live := m.versions[parent]
		// Deterministic iteration (map range order would desynchronize
		// repeated builds with equal seeds).
		liveKeys := make([]types.Key, 0, len(live))
		for k := range live {
			liveKeys = append(liveKeys, k)
		}
		sort.Slice(liveKeys, func(a, b int) bool { return liveKeys[a] < liveKeys[b] })
		// A few modifications of live keys.
		for _, k := range liveKeys {
			if rng.Float64() < 0.15 {
				ch.Puts[k] = payload(rng, int(parent), i)
			}
			if len(ch.Puts) > baseRecords/4 {
				break
			}
		}
		// Occasionally delete a live key not being modified.
		for _, k := range liveKeys {
			if _, mod := ch.Puts[k]; !mod && rng.Float64() < 0.05 {
				ch.Deletes = append(ch.Deletes, k)
				break
			}
		}
		// Occasionally insert.
		if rng.Float64() < 0.5 {
			ch.Puts[key(nextKey)] = payload(rng, nextKey, i)
			nextKey++
		}
		v, err := s.Commit(context.Background(), parent, ch)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		m.commit(parent, ch, v)
	}
	return s, m
}

func key(i int) types.Key { return types.Key(fmt.Sprintf("k%05d", i)) }

func payload(rng *rand.Rand, a, b int) []byte {
	return []byte(fmt.Sprintf(`{"a":%d,"b":%d,"r":%d}`, a, b, rng.Int63()))
}

// checkAllVersions compares GetVersion against the oracle for every version.
func checkAllVersions(t *testing.T, s *Store, m *model) {
	t.Helper()
	for v := range m.versions {
		recs, _, err := s.GetVersionAll(context.Background(), types.VersionID(v))
		if err != nil {
			t.Fatalf("GetVersion(%d): %v", v, err)
		}
		want := m.versions[v]
		if len(recs) != len(want) {
			t.Fatalf("GetVersion(%d): %d records, want %d", v, len(recs), len(want))
		}
		for _, r := range recs {
			w, ok := want[r.CK.Key]
			if !ok {
				t.Fatalf("GetVersion(%d): unexpected key %s", v, r.CK.Key)
			}
			if w.CK != r.CK || string(w.Value) != string(r.Value) {
				t.Fatalf("GetVersion(%d): key %s mismatch: got %v want %v", v, r.CK.Key, r.CK, w.CK)
			}
		}
	}
}

func TestEngineMaterializeAndQueries(t *testing.T) {
	for _, k := range []int{1, 3} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			s, m := buildStore(t, Config{ChunkCapacity: 1024, SubChunkK: k}, 25, 40, 1)
			if err := s.Materialize(context.Background()); err != nil {
				t.Fatal(err)
			}
			checkAllVersions(t, s, m)
		})
	}
}

func TestEngineOnlineFlushQueries(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 1024, BatchSize: 5}, 23, 30, 2)
	// Some versions remain pending (23 % 5 != 0) — queries must still be
	// exact via the delta-store overlay.
	if s.PendingVersions() == 0 {
		t.Fatal("expected pending versions for overlay coverage")
	}
	checkAllVersions(t, s, m)
	// Flush the rest and re-verify.
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.PendingVersions() != 0 {
		t.Fatalf("still %d pending after flush", s.PendingVersions())
	}
	checkAllVersions(t, s, m)
}

func TestEnginePendingOnlyQueries(t *testing.T) {
	// No flush at all: everything served from the write store.
	s, m := buildStore(t, Config{ChunkCapacity: 1024}, 10, 20, 3)
	if s.PendingVersions() != 10 {
		t.Fatalf("want 10 pending, got %d", s.PendingVersions())
	}
	checkAllVersions(t, s, m)
}

func TestEngineGetRecord(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 512, BatchSize: 4}, 20, 25, 4)
	for v := range m.versions {
		for k, want := range m.versions[v] {
			got, _, err := s.GetRecord(context.Background(), k, types.VersionID(v))
			if err != nil {
				t.Fatalf("GetRecord(%s, %d): %v", k, v, err)
			}
			if got.CK != want.CK || string(got.Value) != string(want.Value) {
				t.Fatalf("GetRecord(%s, %d): got %v want %v", k, v, got.CK, want.CK)
			}
		}
		// A key absent from this version must return ErrNotFound.
		probe := key(99999)
		if _, _, err := s.GetRecord(context.Background(), probe, types.VersionID(v)); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("GetRecord(absent, %d): err = %v, want ErrNotFound", v, err)
		}
	}
}

func TestEngineGetRange(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 512, BatchSize: 6}, 18, 30, 5)
	lo, hi := key(5), key(15)
	for v := range m.versions {
		recs, _, err := s.GetRangeAll(context.Background(), KeyRange(lo, hi), types.VersionID(v))
		if err != nil {
			t.Fatalf("GetRange v%d: %v", v, err)
		}
		want := 0
		for k := range m.versions[v] {
			if k >= lo && k < hi {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("GetRange v%d: %d records, want %d", v, len(recs), want)
		}
		for _, r := range recs {
			if r.CK.Key < lo || r.CK.Key >= hi {
				t.Fatalf("GetRange v%d: key %s outside range", v, r.CK.Key)
			}
			w := m.versions[v][r.CK.Key]
			if w.CK != r.CK {
				t.Fatalf("GetRange v%d: key %s got %v want %v", v, r.CK.Key, r.CK, w.CK)
			}
		}
	}
}

func TestEngineGetHistory(t *testing.T) {
	s, m := buildStore(t, Config{ChunkCapacity: 512, BatchSize: 7}, 20, 20, 6)
	for i := 0; i < 20; i++ {
		k := key(i)
		want := m.history(k)
		recs, _, err := s.GetHistoryAll(context.Background(), k)
		if len(want) == 0 {
			if !errors.Is(err, types.ErrNotFound) {
				t.Fatalf("GetHistory(%s): err = %v, want ErrNotFound", k, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("GetHistory(%s): %v", k, err)
		}
		if len(recs) != len(want) {
			t.Fatalf("GetHistory(%s): %d records, want %d", k, len(recs), len(want))
		}
		for _, r := range recs {
			if string(want[r.CK]) != string(r.Value) {
				t.Fatalf("GetHistory(%s): %v mismatch", k, r.CK)
			}
		}
	}
}

func TestEngineReload(t *testing.T) {
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 3, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{KV: kv, ChunkCapacity: 1024, BatchSize: 5}
	s, m := buildStore(t, cfg, 17, 25, 7)
	if err := s.SetBranch(context.Background(), "dev", 3); err != nil {
		t.Fatal(err)
	}
	// Persist current state (Commit/Flush already saved manifests on
	// flush; force one more for the pending tail).
	s.mu.Lock()
	if err := s.saveManifest(context.Background()); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.mu.Unlock()

	re, err := Load(context.Background(), Config{KV: kv, ChunkCapacity: 1024, BatchSize: 5})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	checkAllVersions(t, re, m)
	if tip, err := re.Tip("dev"); err != nil || tip != 3 {
		t.Fatalf("reloaded branch dev = %v, %v", tip, err)
	}
	// The reloaded store must accept new commits and flushes.
	v, err := re.Commit(context.Background(), types.VersionID(0), Change{Puts: map[types.Key][]byte{key(0): []byte("post-reload")}})
	if err != nil {
		t.Fatal(err)
	}
	m.commit(0, Change{Puts: map[types.Key][]byte{key(0): []byte("post-reload")}}, v)
	if err := re.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkAllVersions(t, re, m)
}

func TestEngineCommitValidation(t *testing.T) {
	s, err := Open(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// First commit must target InvalidVersion.
	if _, err := s.Commit(context.Background(), 0, Change{}); err == nil {
		t.Fatal("commit to version 0 of empty store should fail")
	}
	v0, err := s.Commit(context.Background(), types.InvalidVersion, Change{Puts: map[types.Key][]byte{"a": []byte("1")}})
	if err != nil {
		t.Fatal(err)
	}
	// Second root forbidden.
	if _, err := s.Commit(context.Background(), types.InvalidVersion, Change{}); err == nil {
		t.Fatal("second root commit should fail")
	}
	// Deleting a missing key fails.
	if _, err := s.Commit(context.Background(), v0, Change{Deletes: []types.Key{"nope"}}); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("delete of missing key: %v", err)
	}
	// Put+Delete of the same key fails.
	if _, err := s.Commit(context.Background(), v0, Change{
		Puts:    map[types.Key][]byte{"a": []byte("2")},
		Deletes: []types.Key{"a"},
	}); err == nil {
		t.Fatal("put+delete same key should fail")
	}
	// Unknown version queries fail cleanly.
	if _, _, err := s.GetVersionAll(context.Background(), 99); !errors.Is(err, types.ErrVersionUnknown) {
		t.Fatalf("GetVersion(99): %v", err)
	}
}

func TestEnginePartitionerChoices(t *testing.T) {
	for _, algo := range []partition.Algorithm{
		partition.BottomUp{}, partition.Shingle{Seed: 3}, partition.DepthFirst{},
	} {
		s, m := buildStore(t, Config{ChunkCapacity: 768, Partitioner: algo}, 15, 25, 8)
		if err := s.Materialize(context.Background()); err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		checkAllVersions(t, s, m)
	}
}

func TestEngineMergeCommit(t *testing.T) {
	s, err := Open(context.Background(), Config{ChunkCapacity: 512})
	if err != nil {
		t.Fatal(err)
	}
	m := newModel()
	root := Change{Puts: map[types.Key][]byte{"a": []byte("a0"), "b": []byte("b0")}}
	v0, _ := s.Commit(context.Background(), types.InvalidVersion, root)
	m.commit(types.InvalidVersion, root, v0)

	chA := Change{Puts: map[types.Key][]byte{"a": []byte("a1")}}
	v1, err := s.Commit(context.Background(), v0, chA)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(v0, chA, v1)

	chB := Change{Puts: map[types.Key][]byte{"b": []byte("b1")}}
	v2, err := s.Commit(context.Background(), v0, chB)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(v0, chB, v2)

	// Merge: primary parent v1, bring in v2's b. The client resolves the
	// merge contents (the engine records provenance only).
	chM := Change{Puts: map[types.Key][]byte{"b": []byte("b1")}}
	v3, err := s.CommitMerge(context.Background(), []types.VersionID{v1, v2}, chM)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(v1, chM, v3)

	if got := s.Graph().Parents(v3); len(got) != 2 || got[0] != v1 || got[1] != v2 {
		t.Fatalf("merge parents = %v", got)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkAllVersions(t, s, m)
}

func TestEngineQueryStatsSanity(t *testing.T) {
	s, _ := buildStore(t, Config{ChunkCapacity: 1024, BatchSize: 5}, 20, 40, 9)
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.GetVersionAll(context.Background(), types.VersionID(s.NumVersions()-1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Span == 0 || stats.Requests == 0 || stats.BytesRead == 0 {
		t.Fatalf("implausible stats: %+v", stats)
	}
	if stats.SimElapsed <= 0 {
		t.Fatalf("no simulated time accrued: %+v", stats)
	}
}

// A commit rejected by the version graph (duplicate parents) must leave no
// trace — neither in memory nor, critically, in the delta store: a durably
// written delta for a rejected commit would sit at exactly the next version
// id, where Load's replay would hit the same rejection and refuse to open
// the store forever.
func TestCommitDuplicateParentsLeavesNoTrace(t *testing.T) {
	ctx := context.Background()
	kv, err := kvstore.Open(context.Background(), kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(context.Background(), Config{KV: kv, ChunkCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	v0, err := s.Commit(ctx, types.InvalidVersion, Change{Puts: map[types.Key][]byte{"a": []byte("0")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := s.CommitMerge(ctx, []types.VersionID{v0, v0}, Change{Puts: map[types.Key][]byte{"a": []byte("1")}}); err == nil {
		t.Fatal("duplicate parents accepted")
	}
	if _, err := s.CommitDelta(ctx, []types.VersionID{v0, v0}, &types.Delta{}); err == nil {
		t.Fatal("CommitDelta duplicate parents accepted")
	}
	// No stranded delta entry at the would-be version id.
	if _, err := kv.Get(ctx, TableDeltaStore, deltaKey(v0+1)); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("rejected commit left a delta entry: %v", err)
	}

	// The store keeps working, and — the real regression — reopens.
	v1, err := s.Commit(ctx, v0, Change{Puts: map[types.Key][]byte{"a": []byte("1")}})
	if err != nil {
		t.Fatalf("store wedged after rejected commit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Load(ctx, Config{KV: kv})
	if err != nil {
		t.Fatalf("Load after rejected commit: %v", err)
	}
	if rec, _, err := re.GetRecord(ctx, "a", v1); err != nil || string(rec.Value) != "1" {
		t.Fatalf("reopened store: %q %v", rec.Value, err)
	}
}
