package core

import "rstore/internal/types"

// Info is a snapshot of store-level statistics, the numbers the paper
// reports when sizing indexes and storage (§2.4).
type Info struct {
	// Versions is the number of committed versions.
	Versions int
	// PendingVersions is the number awaiting placement.
	PendingVersions int
	// Records is the number of distinct records (composite keys).
	Records int
	// Keys is the number of distinct primary keys.
	Keys int
	// Chunks is the number of materialized chunks.
	Chunks int
	// TotalVersionSpan is Σ_v |chunks(v)| — the partitioning-quality
	// metric.
	TotalVersionSpan int
	// VersionIndexBytes / KeyIndexBytes are the in-memory projection
	// footprints (the paper: "these indexes can easily fit in ... main
	// memory").
	VersionIndexBytes int64
	KeyIndexBytes     int64
	// Branches is the number of named branches.
	Branches int
}

// Info returns current statistics.
func (s *Store) Info() Info {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vb, kb := s.proj.SizeBytes()
	return Info{
		Versions:          s.graph.NumVersions(),
		PendingVersions:   len(s.pending),
		Records:           s.corpus.NumRecords(),
		Keys:              s.corpus.NumKeys(),
		Chunks:            int(s.numChunks),
		TotalVersionSpan:  s.proj.TotalVersionSpan(),
		VersionIndexBytes: vb,
		KeyIndexBytes:     kb,
		Branches:          len(s.branches),
	}
}

// Versions lists all committed version ids in commit order.
func (s *Store) Versions() []types.VersionID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]types.VersionID, s.graph.NumVersions())
	for i := range out {
		out[i] = types.VersionID(i)
	}
	return out
}
