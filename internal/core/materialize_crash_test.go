package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"rstore/internal/chunk"
	"rstore/internal/engine"
	"rstore/internal/engine/memory"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// faultBackend wraps a memory backend and fails writes on demand — the
// crash-injection seam for repartition tests. A BatchPut that fails leaves
// nothing behind (the batch contract), so partial table state is produced
// by failing SOME nodes' batches, and "crash between stages" by failing a
// later stage's table.
type faultBackend struct {
	*memory.Backend
	mu   sync.Mutex
	fail func(table string) bool // nil = healthy
}

var errInjected = errors.New("injected crash")

func (b *faultBackend) arm(fail func(table string) bool) {
	b.mu.Lock()
	b.fail = fail
	b.mu.Unlock()
}

func (b *faultBackend) failing(table string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fail != nil && b.fail(table)
}

func (b *faultBackend) Put(ctx context.Context, table, key string, value []byte) error {
	if b.failing(table) {
		return errInjected
	}
	return b.Backend.Put(ctx, table, key, value)
}

func (b *faultBackend) BatchPut(ctx context.Context, table string, entries []engine.Entry) error {
	if b.failing(table) {
		return errInjected
	}
	return b.Backend.BatchPut(ctx, table, entries)
}

// openFaulty builds a store over fault-injectable backends.
func openFaulty(t *testing.T, nodes int) (*Store, *kvstore.Store, []*faultBackend) {
	t.Helper()
	backends := make([]*faultBackend, nodes)
	kv, err := kvstore.Open(context.Background(), kvstore.Config{
		Nodes: nodes,
		NewBackend: func(id int) (engine.Backend, error) {
			backends[id] = &faultBackend{Backend: memory.New()}
			return backends[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(context.Background(), Config{KV: kv, ChunkCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	return st, kv, backends
}

// seedStore commits versions with a flush after EVERY commit, so the
// online placement produces many small per-batch chunks — a layout a full
// repartition will consolidate into genuinely different chunks. The crash
// tests depend on that divergence: debris of an uncommitted repartition
// must not be mistakable for the live layout. Returns the expected
// per-version contents.
func seedStore(t *testing.T, st *Store) (map[types.VersionID]map[string]string, []types.VersionID) {
	t.Helper()
	ctx := context.Background()
	want := map[types.VersionID]map[string]string{}
	var versions []types.VersionID
	parent := types.InvalidVersion
	state := map[string]string{}
	for rev := 0; rev < 8; rev++ {
		puts := map[types.Key][]byte{}
		for d := 0; d < 5; d++ {
			if (rev+d)%2 == 0 {
				v := fmt.Sprintf("doc-%d rev-%d content", d, rev)
				puts[types.Key(fmt.Sprintf("doc-%d", d))] = []byte(v)
				state[fmt.Sprintf("doc-%d", d)] = v
			}
		}
		v, err := st.Commit(ctx, parent, Change{Puts: puts})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		cp := map[string]string{}
		for k, s := range state {
			cp[k] = s
		}
		want[v] = cp
		versions = append(versions, v)
		parent = v
	}
	return want, versions
}

func checkVersions(t *testing.T, st *Store, want map[types.VersionID]map[string]string) {
	t.Helper()
	for v, contents := range want {
		recs, _, err := st.GetVersionAll(context.Background(), v)
		if err != nil {
			t.Fatalf("GetVersion(%d): %v", v, err)
		}
		got := map[string]string{}
		for _, r := range recs {
			got[string(r.CK.Key)] = string(r.Value)
		}
		if len(got) != len(contents) {
			t.Fatalf("version %d: %d records, want %d", v, len(got), len(contents))
		}
		for k, val := range contents {
			if got[k] != val {
				t.Fatalf("version %d key %s = %q, want %q", v, k, got[k], val)
			}
		}
	}
}

// scanChunkGens returns the set of generations present in the chunks table.
func scanChunkGens(t *testing.T, kv *kvstore.Store) map[uint32]int {
	t.Helper()
	gens := map[uint32]int{}
	if err := kv.Scan(context.Background(), TableChunks, func(key string, _ []byte) bool {
		g, _, ok := chunk.ParseKVKey(key)
		if !ok {
			t.Fatalf("unparseable chunk key %q", key)
		}
		gens[g]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return gens
}

// TestMaterializeCrashBeforeManifest is the regression test for the
// in-place repartition hazard: a crash after the new chunk entries are
// written but before the manifest commits must leave the old manifest
// paired with the old, INTACT chunk generation. Load then serves the
// pre-repartition state exactly and clears the uncommitted generation's
// debris.
func TestMaterializeCrashBeforeManifest(t *testing.T) {
	st, kv, backends := openFaulty(t, 1)
	want, _ := seedStore(t, st)
	ctx := context.Background()

	// Crash at the commit point: chunks (gen 1) and projections land, the
	// manifest write dies.
	backends[0].arm(func(table string) bool { return table == TableMeta })
	if err := st.Materialize(ctx); !errors.Is(err, errInjected) {
		t.Fatalf("materialize under meta fault: %v", err)
	}
	backends[0].arm(nil)
	if gens := scanChunkGens(t, kv); gens[1] == 0 {
		t.Fatalf("precondition: uncommitted generation debris expected, got %v", gens)
	}

	re, err := Load(ctx, Config{KV: kv})
	if err != nil {
		t.Fatalf("load after interrupted materialize: %v", err)
	}
	checkVersions(t, re, want)
	// Debris of the uncommitted generation is gone; gen 0 survives.
	gens := scanChunkGens(t, kv)
	if gens[1] != 0 {
		t.Fatalf("uncommitted generation survived load: %v", gens)
	}
	if gens[0] == 0 {
		t.Fatalf("live generation collected: %v", gens)
	}

	// The reopened store repartitions cleanly; afterwards only the new
	// generation remains.
	if err := re.Materialize(ctx); err != nil {
		t.Fatal(err)
	}
	checkVersions(t, re, want)
	gens = scanChunkGens(t, kv)
	if len(gens) != 1 || gens[1] == 0 {
		t.Fatalf("after clean materialize: generations %v, want only gen 1", gens)
	}
	re2, err := Load(ctx, Config{KV: kv})
	if err != nil {
		t.Fatal(err)
	}
	checkVersions(t, re2, want)
}

// TestMaterializeCrashMidChunkWrite crashes while the new generation's
// chunk entries themselves are being written (some nodes' batches land,
// others fail). Under in-place keys this was the unrecoverable window —
// the old manifest's chunk contents were partially overwritten; under
// epoch keys the old generation is untouched.
func TestMaterializeCrashMidChunkWrite(t *testing.T) {
	st, kv, backends := openFaulty(t, 3)
	want, _ := seedStore(t, st)
	ctx := context.Background()

	// Nodes 1 and 2 die for chunk-table batches: the repartition writes a
	// partial new generation and aborts.
	for _, b := range backends[1:] {
		b.arm(func(table string) bool { return table == TableChunks })
	}
	if err := st.Materialize(ctx); !errors.Is(err, errInjected) {
		t.Fatalf("materialize under chunk fault: %v", err)
	}
	for _, b := range backends[1:] {
		b.arm(nil)
	}

	re, err := Load(ctx, Config{KV: kv})
	if err != nil {
		t.Fatalf("load after mid-write crash: %v", err)
	}
	checkVersions(t, re, want)
	if gens := scanChunkGens(t, kv); gens[1] != 0 {
		t.Fatalf("partial generation survived load: %v", gens)
	}
	// And a rerun completes.
	if err := re.Materialize(ctx); err != nil {
		t.Fatal(err)
	}
	checkVersions(t, re, want)
}
