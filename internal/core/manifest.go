package core

import (
	"fmt"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/corpus"
	"rstore/internal/index"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// manifestKey is the single meta-table entry holding the manifest.
const manifestKey = "manifest"

// manifestVersion guards the on-disk format.
const manifestVersion = 1

// saveManifest persists everything needed to reopen the store against the
// same KVS: the version graph with per-version composite-key deltas (values
// live in chunks / the delta store), branches, chunk count, and the pending
// set. Called under s.mu.
func (s *Store) saveManifest() error {
	var buf []byte
	buf = codec.PutUvarint(buf, manifestVersion)
	n := s.graph.NumVersions()
	buf = codec.PutUvarint(buf, uint64(n))
	for v := 0; v < n; v++ {
		vv := types.VersionID(v)
		parents := s.graph.Parents(vv)
		buf = codec.PutUvarint(buf, uint64(len(parents)))
		for _, p := range parents {
			buf = codec.PutUvarint(buf, uint64(p))
		}
		adds := s.corpus.Adds(vv)
		buf = codec.PutUvarint(buf, uint64(len(adds)))
		for _, id := range adds {
			buf = codec.PutCompositeKey(buf, s.corpus.Record(id).CK)
		}
		dels := s.corpus.Dels(vv)
		buf = codec.PutUvarint(buf, uint64(len(dels)))
		for _, id := range dels {
			buf = codec.PutCompositeKey(buf, s.corpus.Record(id).CK)
		}
	}
	buf = codec.PutUvarint(buf, uint64(s.numChunks))
	buf = codec.PutUvarint(buf, uint64(len(s.pending)))
	for _, v := range s.pending {
		buf = codec.PutUvarint(buf, uint64(v))
	}
	names := make([]string, 0, len(s.branches))
	for name := range s.branches {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = codec.PutUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = codec.PutString(buf, name)
		buf = codec.PutUvarint(buf, uint64(s.branches[name]))
	}
	return s.kv.Put(TableMeta, manifestKey, buf)
}

// Load reopens a store previously persisted to kv: the manifest restores the
// graph and delta structure, record payloads are recovered from chunk
// entries and the delta store, and the in-memory placement state (locations,
// chunk maps, projections) is rebuilt.
func Load(cfg Config) (*Store, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	kv := cfg.KV
	raw, err := kv.Get(TableMeta, manifestKey)
	if err != nil {
		return nil, fmt.Errorf("rstore: load: %w", err)
	}

	// Recover record payloads: every placed record from chunk entries,
	// every pending record from the delta store.
	values := make(map[types.CompositeKey][]byte)
	type slotLoc struct {
		cid  chunk.ID
		slot uint32
	}
	locOf := make(map[types.CompositeKey]slotLoc)
	maps := make(map[chunk.ID]*chunk.Map)
	var loadErr error
	kv.Scan(TableChunks, func(key string, value []byte) bool {
		var cid chunk.ID
		if _, err := fmt.Sscanf(key, "c%08x", &cid); err != nil {
			loadErr = fmt.Errorf("%w: bad chunk key %q", types.ErrCorrupt, key)
			return false
		}
		payload, m, err := decodeChunkEntry(value)
		if err != nil {
			loadErr = err
			return false
		}
		recs, err := chunk.DecodeChunk(payload)
		if err != nil {
			loadErr = err
			return false
		}
		for slot, r := range recs {
			values[r.CK] = r.Value
			locOf[r.CK] = slotLoc{cid: cid, slot: uint32(slot)}
		}
		maps[cid] = m
		return true
	})
	if loadErr != nil {
		return nil, loadErr
	}
	kv.Scan(TableDeltaStore, func(key string, value []byte) bool {
		d, err := decodeDelta(value)
		if err != nil {
			loadErr = err
			return false
		}
		for _, r := range d.Adds {
			values[r.CK] = r.Value
		}
		return true
	})
	if loadErr != nil {
		return nil, loadErr
	}

	s, err := decodeManifest(raw, cfg, values)
	if err != nil {
		return nil, err
	}

	// Rebuild placement state.
	s.locs = make([]chunk.Loc, s.corpus.NumRecords())
	for i := range s.locs {
		s.locs[i] = chunk.Loc{Chunk: chunk.NoChunk}
	}
	for ck, sl := range locOf {
		id, ok := s.corpus.IDForCK(ck)
		if !ok {
			return nil, fmt.Errorf("%w: chunked record %v not in manifest", types.ErrCorrupt, ck)
		}
		s.locs[id] = chunk.Loc{Chunk: sl.cid, Slot: sl.slot}
	}
	s.maps = make([]*chunk.Map, s.numChunks)
	for cid, m := range maps {
		if int(cid) >= len(s.maps) {
			return nil, fmt.Errorf("%w: chunk %d beyond manifest count %d", types.ErrCorrupt, cid, s.numChunks)
		}
		s.maps[cid] = m
	}
	proj, err := index.Load(kv)
	if err != nil {
		return nil, err
	}
	s.proj = proj
	return s, nil
}

// decodeManifest parses the manifest and replays the graph + corpus.
func decodeManifest(buf []byte, cfg Config, values map[types.CompositeKey][]byte) (*Store, error) {
	ver, rest, err := codec.Uvarint(buf)
	if err != nil {
		return nil, err
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d (want %d)", types.ErrCorrupt, ver, manifestVersion)
	}
	n, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}

	g := vgraph.New()
	c := corpus.New(g)
	s := &Store{
		cfg:        cfg,
		kv:         cfg.KV,
		graph:      g,
		corpus:     c,
		pendingSet: make(map[types.VersionID]bool),
		keyStates:  newKeyStateCache(4),
		branches:   make(map[string]types.VersionID),
		cache:      newChunkCache(cfg.CacheBytes),
	}

	for v := uint64(0); v < n; v++ {
		var np uint64
		np, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		parents := make([]types.VersionID, np)
		for i := range parents {
			var p uint64
			p, rest, err = codec.Uvarint(rest)
			if err != nil {
				return nil, err
			}
			parents[i] = types.VersionID(p)
		}
		var id types.VersionID
		if np == 0 {
			id, err = g.AddRoot()
		} else {
			id, err = g.AddVersion(parents...)
		}
		if err != nil {
			return nil, err
		}
		if id != types.VersionID(v) {
			return nil, fmt.Errorf("%w: manifest version %d decoded as %d", types.ErrCorrupt, v, id)
		}

		delta := &types.Delta{}
		var na uint64
		na, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < na; i++ {
			var ck types.CompositeKey
			ck, rest, err = codec.CompositeKey(rest)
			if err != nil {
				return nil, err
			}
			val, ok := values[ck]
			if !ok {
				return nil, fmt.Errorf("%w: no payload recovered for %v", types.ErrCorrupt, ck)
			}
			delta.Adds = append(delta.Adds, types.Record{CK: ck, Value: val})
		}
		var nd uint64
		nd, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nd; i++ {
			var ck types.CompositeKey
			ck, rest, err = codec.CompositeKey(rest)
			if err != nil {
				return nil, err
			}
			delta.Dels = append(delta.Dels, ck)
		}
		if err := c.AddVersionDelta(id, delta); err != nil {
			return nil, err
		}
		s.noteNewKeys(delta)
	}

	nc, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	s.numChunks = uint32(nc)
	np, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < np; i++ {
		var v uint64
		v, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		s.pending = append(s.pending, types.VersionID(v))
		s.pendingSet[types.VersionID(v)] = true
	}
	nb, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nb; i++ {
		var name string
		name, rest, err = codec.String(rest)
		if err != nil {
			return nil, err
		}
		var v uint64
		v, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		s.branches[name] = types.VersionID(v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", types.ErrCorrupt, len(rest))
	}
	return s, nil
}
