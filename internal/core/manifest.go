package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/corpus"
	"rstore/internal/index"
	"rstore/internal/kvstore"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// manifestKey is the single meta-table entry holding the manifest.
const manifestKey = "manifest"

// manifestVersion guards the on-disk format. Version 2 added the placement
// generation (epoch-prefixed chunk keys); version-1 stores used unprefixed
// chunk keys and must be re-initialized, not misread.
const manifestVersion = 2

// saveManifest persists everything needed to reopen the store against the
// same KVS: the placement generation, the version graph with per-version
// composite-key deltas (values live in chunks / the delta store), branches,
// chunk count, and the pending set. Called under s.mu.
func (s *Store) saveManifest(ctx context.Context) error {
	var buf []byte
	buf = codec.PutUvarint(buf, manifestVersion)
	buf = codec.PutUvarint(buf, uint64(s.gen))
	n := s.graph.NumVersions()
	buf = codec.PutUvarint(buf, uint64(n))
	for v := 0; v < n; v++ {
		vv := types.VersionID(v)
		parents := s.graph.Parents(vv)
		buf = codec.PutUvarint(buf, uint64(len(parents)))
		for _, p := range parents {
			buf = codec.PutUvarint(buf, uint64(p))
		}
		adds := s.corpus.Adds(vv)
		buf = codec.PutUvarint(buf, uint64(len(adds)))
		for _, id := range adds {
			buf = codec.PutCompositeKey(buf, s.corpus.Record(id).CK)
		}
		dels := s.corpus.Dels(vv)
		buf = codec.PutUvarint(buf, uint64(len(dels)))
		for _, id := range dels {
			buf = codec.PutCompositeKey(buf, s.corpus.Record(id).CK)
		}
	}
	buf = codec.PutUvarint(buf, uint64(s.numChunks))
	buf = codec.PutUvarint(buf, uint64(len(s.pending)))
	for _, v := range s.pending {
		buf = codec.PutUvarint(buf, uint64(v))
	}
	names := make([]string, 0, len(s.branches))
	for name := range s.branches {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = codec.PutUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = codec.PutString(buf, name)
		buf = codec.PutUvarint(buf, uint64(s.branches[name]))
	}
	// BatchPut rather than Put: the manifest is the recovery root, and the
	// batch path is the one durable backends fsync before acknowledging.
	return s.kv.BatchPut(ctx, TableMeta, []kvstore.Entry{{Key: manifestKey, Value: buf}})
}

// Exists reports whether kv holds a persisted store (a manifest entry),
// without the cost — or the repair side effects — of a full Load.
func Exists(ctx context.Context, kv *kvstore.Store) (bool, error) {
	_, err := kv.Get(ctx, TableMeta, manifestKey)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, types.ErrNotFound) {
		return false, nil
	}
	return false, err
}

// Checkpoint persists the manifest without running placement. Open writes
// nothing, so a durable deployment must checkpoint once after creating a
// fresh store: the manifest is the recovery root that Load replays
// later-acknowledged commits against (flush and SetBranch refresh it as a
// side effect).
func (s *Store) Checkpoint(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutable(); err != nil {
		return err
	}
	return s.saveManifest(ctx)
}

// Load reopens a store previously persisted to kv: the manifest restores the
// graph and delta structure, record payloads are recovered from chunk
// entries and the delta store, and the in-memory placement state (locations,
// chunk maps, projections) is rebuilt.
//
// Load also finishes what a crash interrupted. Flush persists in the order
// chunks → projections → manifest → delta-store drain, so a crash leaves at
// most (a) orphan chunk entries past the manifest's chunk count and stale
// projection references to them — skipped, pruned, and (on writable stores)
// deleted here, after which the still-pending versions simply re-flush — and
// (b) leftover delta entries for versions the manifest already placed —
// ignored and cleaned up. Commits acknowledged after the last manifest save
// are replayed from their self-describing delta entries.
func Load(ctx context.Context, cfg Config) (*Store, error) {
	cfg, ownsKV, err := cfg.withDefaults(ctx)
	if err != nil {
		return nil, err
	}
	kv := cfg.KV
	fail := func(err error) (*Store, error) {
		if ownsKV {
			kv.Close()
		}
		return nil, err
	}
	raw, err := kv.Get(ctx, TableMeta, manifestKey)
	if err != nil {
		return fail(fmt.Errorf("rstore: load: %w", err))
	}
	// The manifest's placement generation decides which chunk entries are
	// live before the full decode (which needs the chunk contents).
	gen, err := manifestGen(raw)
	if err != nil {
		return fail(err)
	}

	// Recover record payloads and per-chunk state. Which chunks are live is
	// only known once the manifest decodes, so collect everything first.
	// Entries of other generations are debris of an interrupted full
	// repartition — a newer generation whose manifest never committed, or
	// an older one whose cleanup was cut short — and are skipped here and
	// garbage-collected below.
	values := make(map[types.CompositeKey][]byte)
	type chunkState struct {
		recs []types.CompositeKey // slot → composite key
		m    *chunk.Map
	}
	chunks := make(map[chunk.ID]*chunkState)
	var staleGenKeys []string
	var loadErr error
	scanErr := kv.Scan(ctx, TableChunks, func(key string, value []byte) bool {
		g, cid, ok := chunk.ParseKVKey(key)
		if !ok {
			loadErr = fmt.Errorf("%w: bad chunk key %q", types.ErrCorrupt, key)
			return false
		}
		if g != gen {
			staleGenKeys = append(staleGenKeys, key)
			return true
		}
		payload, m, err := decodeChunkEntry(value)
		if err != nil {
			loadErr = err
			return false
		}
		recs, err := chunk.DecodeChunk(payload)
		if err != nil {
			loadErr = err
			return false
		}
		cs := &chunkState{m: m, recs: make([]types.CompositeKey, len(recs))}
		for slot, r := range recs {
			values[r.CK] = r.Value
			cs.recs[slot] = r.CK
		}
		chunks[cid] = cs
		return true
	})
	if scanErr != nil {
		return fail(scanErr)
	}
	if loadErr != nil {
		return fail(loadErr)
	}

	// Delta store: record payloads for pending versions, plus whole entries
	// keyed by version for the replay of unmanifested commits below.
	type deltaEntry struct {
		parents []types.VersionID
		delta   *types.Delta
	}
	deltas := make(map[types.VersionID]deltaEntry)
	scanErr = kv.Scan(ctx, TableDeltaStore, func(key string, value []byte) bool {
		var v uint32
		if _, err := fmt.Sscanf(key, "d%08x", &v); err != nil {
			loadErr = fmt.Errorf("%w: bad delta key %q", types.ErrCorrupt, key)
			return false
		}
		parents, d, err := decodeDeltaEntry(value)
		if err != nil {
			loadErr = err
			return false
		}
		for _, r := range d.Adds {
			values[r.CK] = r.Value
		}
		deltas[types.VersionID(v)] = deltaEntry{parents: parents, delta: d}
		return true
	})
	if scanErr != nil {
		return fail(scanErr)
	}
	if loadErr != nil {
		return fail(loadErr)
	}

	s, err := decodeManifest(raw, cfg, values)
	if err != nil {
		return fail(err)
	}
	s.ownsKV = ownsKV

	// Replay commits acknowledged after the last manifest save: contiguous
	// delta entries starting at the manifest's version count. They rejoin
	// the pending set and place on the next flush.
	manifestVersions := types.VersionID(s.graph.NumVersions())
	for v := manifestVersions; ; v++ {
		e, ok := deltas[v]
		if !ok {
			break
		}
		var got types.VersionID
		if len(e.parents) > 0 && e.parents[0] == types.InvalidVersion {
			got, err = s.graph.AddRoot()
		} else {
			got, err = s.graph.AddVersion(e.parents...)
		}
		if err != nil {
			return fail(fmt.Errorf("%w: replaying commit %d: %v", types.ErrCorrupt, v, err))
		}
		if got != v {
			return fail(fmt.Errorf("%w: replayed commit %d got id %d", types.ErrCorrupt, v, got))
		}
		if err := s.corpus.AddVersionDelta(v, e.delta); err != nil {
			return fail(fmt.Errorf("%w: replaying commit %d: %v", types.ErrCorrupt, v, err))
		}
		s.noteNewKeys(e.delta)
		s.pending = append(s.pending, v)
		s.pendingSet[v] = true
	}

	// Rebuild placement state from the live chunks; entries at or past the
	// manifest's chunk count are orphans of an interrupted flush (their
	// versions are still pending, so nothing is lost by dropping them).
	s.locs = make([]chunk.Loc, s.corpus.NumRecords())
	for i := range s.locs {
		s.locs[i] = chunk.Loc{Chunk: chunk.NoChunk}
	}
	s.maps = make([]*chunk.Map, s.numChunks)
	var orphanChunks []chunk.ID
	for cid, cs := range chunks {
		if uint32(cid) >= s.numChunks {
			orphanChunks = append(orphanChunks, cid)
			continue
		}
		for slot, ck := range cs.recs {
			id, ok := s.corpus.IDForCK(ck)
			if !ok {
				return fail(fmt.Errorf("%w: chunked record %v not in manifest", types.ErrCorrupt, ck))
			}
			s.locs[id] = chunk.Loc{Chunk: cid, Slot: uint32(slot)}
		}
		s.maps[cid] = cs.m
	}
	// Projections are REBUILT from the live chunks' maps and records, not
	// read back from their persisted tables: the persisted rows are
	// overwritten in place by flush and repartition, so a crash between
	// the projection save and the manifest save would pair this manifest's
	// chunks with the next layout's projections — whose references point
	// at chunk ids holding different records, silently shrinking query
	// results (the projections are lossy, so nothing would error). The
	// chunk state decoded above is exactly what flush and Materialize
	// derived the projections from, so the rebuild is both exact and free
	// of that window; the persisted tables remain the paper's
	// architectural artifact (§2.4) and feed nothing during recovery.
	proj := index.New()
	for cid, cs := range chunks {
		if uint32(cid) >= s.numChunks {
			continue // interrupted-flush orphan, dropped above
		}
		for v, bm := range cs.m.Versions {
			if !bm.Empty() {
				proj.ObserveVersionChunk(v, cid)
			}
		}
		for _, ck := range cs.recs {
			proj.AddKeyChunk(ck.Key, cid)
		}
	}
	proj.Normalize()
	s.proj = proj

	// Repair: writable stores drop the crash leftovers so they cannot
	// collide with the chunk ids the next flush assigns — current-gen
	// orphans past the manifest's chunk count, and whole superseded
	// generations. Read-only replicas only pruned in memory, which queries
	// never look past.
	if !cfg.ReadOnly {
		for _, cid := range orphanChunks {
			if err := kv.Delete(ctx, TableChunks, chunk.KVKey(gen, cid)); err != nil {
				return fail(err)
			}
		}
		for _, key := range staleGenKeys {
			if err := kv.Delete(ctx, TableChunks, key); err != nil {
				return fail(err)
			}
		}
		for v := range deltas {
			if v < manifestVersions && !s.pendingSet[v] {
				if err := kv.Delete(ctx, TableDeltaStore, deltaKey(v)); err != nil {
					return fail(err)
				}
			}
		}
	}
	return s, nil
}

// manifestGen parses just the manifest header — format version and
// placement generation — so Load can classify chunk entries before the
// full decode.
func manifestGen(buf []byte) (uint32, error) {
	ver, rest, err := codec.Uvarint(buf)
	if err != nil {
		return 0, err
	}
	if ver != manifestVersion {
		return 0, fmt.Errorf("%w: manifest version %d (this build reads %d; re-initialize the store)",
			types.ErrCorrupt, ver, manifestVersion)
	}
	gen, _, err := codec.Uvarint(rest)
	if err != nil {
		return 0, err
	}
	return uint32(gen), nil
}

// decodeManifest parses the manifest and replays the graph + corpus.
func decodeManifest(buf []byte, cfg Config, values map[types.CompositeKey][]byte) (*Store, error) {
	ver, rest, err := codec.Uvarint(buf)
	if err != nil {
		return nil, err
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("%w: manifest version %d (want %d)", types.ErrCorrupt, ver, manifestVersion)
	}
	gen, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	n, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}

	g := vgraph.New()
	c := corpus.New(g)
	s := &Store{
		cfg:        cfg,
		kv:         cfg.KV,
		graph:      g,
		corpus:     c,
		gen:        uint32(gen),
		pendingSet: make(map[types.VersionID]bool),
		keyStates:  newKeyStateCache(4),
		branches:   make(map[string]types.VersionID),
		cache:      newChunkCache(cfg.CacheBytes),
	}

	for v := uint64(0); v < n; v++ {
		var np uint64
		np, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		parents := make([]types.VersionID, np)
		for i := range parents {
			var p uint64
			p, rest, err = codec.Uvarint(rest)
			if err != nil {
				return nil, err
			}
			parents[i] = types.VersionID(p)
		}
		var id types.VersionID
		if np == 0 {
			id, err = g.AddRoot()
		} else {
			id, err = g.AddVersion(parents...)
		}
		if err != nil {
			return nil, err
		}
		if id != types.VersionID(v) {
			return nil, fmt.Errorf("%w: manifest version %d decoded as %d", types.ErrCorrupt, v, id)
		}

		delta := &types.Delta{}
		var na uint64
		na, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < na; i++ {
			var ck types.CompositeKey
			ck, rest, err = codec.CompositeKey(rest)
			if err != nil {
				return nil, err
			}
			val, ok := values[ck]
			if !ok {
				return nil, fmt.Errorf("%w: no payload recovered for %v", types.ErrCorrupt, ck)
			}
			delta.Adds = append(delta.Adds, types.Record{CK: ck, Value: val})
		}
		var nd uint64
		nd, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nd; i++ {
			var ck types.CompositeKey
			ck, rest, err = codec.CompositeKey(rest)
			if err != nil {
				return nil, err
			}
			delta.Dels = append(delta.Dels, ck)
		}
		if err := c.AddVersionDelta(id, delta); err != nil {
			return nil, err
		}
		s.noteNewKeys(delta)
	}

	nc, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	s.numChunks = uint32(nc)
	np, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < np; i++ {
		var v uint64
		v, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		s.pending = append(s.pending, types.VersionID(v))
		s.pendingSet[types.VersionID(v)] = true
	}
	nb, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nb; i++ {
		var name string
		name, rest, err = codec.String(rest)
		if err != nil {
			return nil, err
		}
		var v uint64
		v, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, err
		}
		s.branches[name] = types.VersionID(v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", types.ErrCorrupt, len(rest))
	}
	return s, nil
}
