package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rstore/internal/kvstore"
	"rstore/internal/partition"
	"rstore/internal/types"
)

// TestTortureSoak drives the full system through a long randomized session —
// branched commits, merges, flushes at random points, periodic full
// repartitioning, node failures with replication, and a reload — verifying
// every query kind against the oracle after each phase.
func TestTortureSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(271828))
	kv, err := kvstore.Open(context.Background(), kvstore.Config{
		Nodes: 5, ReplicationFactor: 2, ReadBalance: true,
		Cost: kvstore.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		KV: kv, ChunkCapacity: 2048, BatchSize: 7,
		SubChunkK: 3, Partitioner: partition.BottomUp{Beta: 16},
	}
	s, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := newModel()

	// Root.
	root := Change{Puts: map[types.Key][]byte{}}
	for i := 0; i < 60; i++ {
		root.Puts[key(i)] = payload(rng, i, 0)
	}
	v0, err := s.Commit(context.Background(), types.InvalidVersion, root)
	if err != nil {
		t.Fatal(err)
	}
	m.commit(types.InvalidVersion, root, v0)
	nextKey := 60

	checkpoint := func(phase string) {
		t.Helper()
		// Spot-check a random sample of versions (full check is O(n²)).
		for trial := 0; trial < 12; trial++ {
			v := types.VersionID(rng.Intn(len(m.versions)))
			recs, _, err := s.GetVersionAll(context.Background(), v)
			if err != nil {
				t.Fatalf("%s: GetVersion(%d): %v", phase, v, err)
			}
			want := m.versions[v]
			if len(recs) != len(want) {
				t.Fatalf("%s: GetVersion(%d): %d records, want %d", phase, v, len(recs), len(want))
			}
			for _, r := range recs {
				w := want[r.CK.Key]
				if w.CK != r.CK || string(w.Value) != string(r.Value) {
					t.Fatalf("%s: v%d key %s mismatch", phase, v, r.CK.Key)
				}
			}
		}
		// Point + range + history probes.
		v := types.VersionID(rng.Intn(len(m.versions)))
		liveKeys := make([]types.Key, 0, len(m.versions[v]))
		for k := range m.versions[v] {
			liveKeys = append(liveKeys, k)
		}
		sort.Slice(liveKeys, func(i, j int) bool { return liveKeys[i] < liveKeys[j] })
		if len(liveKeys) > 0 {
			k := liveKeys[rng.Intn(len(liveKeys))]
			got, _, err := s.GetRecord(context.Background(), k, v)
			if err != nil || got.CK != m.versions[v][k].CK {
				t.Fatalf("%s: GetRecord(%s, %d): %v %v", phase, k, v, got.CK, err)
			}
			lo, hi := key(10), key(40)
			recs, _, err := s.GetRangeAll(context.Background(), KeyRange(lo, hi), v)
			if err != nil {
				t.Fatalf("%s: GetRange: %v", phase, err)
			}
			want := 0
			for _, lk := range liveKeys {
				if lk >= lo && lk < hi {
					want++
				}
			}
			if len(recs) != want {
				t.Fatalf("%s: GetRange v%d: %d records, want %d", phase, v, len(recs), want)
			}
			hist, _, err := s.GetHistoryAll(context.Background(), k)
			if err != nil || len(hist) != len(m.history(k)) {
				t.Fatalf("%s: GetHistory(%s): %d, want %d (%v)",
					phase, k, len(hist), len(m.history(k)), err)
			}
		}
	}

	// Phase 1: 120 randomized commits with occasional merges and flushes.
	for i := 1; i <= 120; i++ {
		parent := types.VersionID(rng.Intn(len(m.versions)))
		ch := Change{Puts: map[types.Key][]byte{}}
		live := m.versions[parent]
		liveKeys := make([]types.Key, 0, len(live))
		for k := range live {
			liveKeys = append(liveKeys, k)
		}
		sort.Slice(liveKeys, func(a, b int) bool { return liveKeys[a] < liveKeys[b] })
		nMod := 1 + rng.Intn(6)
		for j := 0; j < nMod && len(liveKeys) > 0; j++ {
			k := liveKeys[rng.Intn(len(liveKeys))]
			ch.Puts[k] = payload(rng, i, j)
		}
		if rng.Float64() < 0.3 && len(liveKeys) > 5 {
			for {
				k := liveKeys[rng.Intn(len(liveKeys))]
				if _, mod := ch.Puts[k]; !mod {
					ch.Deletes = append(ch.Deletes, k)
					break
				}
			}
		}
		if rng.Float64() < 0.4 {
			ch.Puts[key(nextKey)] = payload(rng, nextKey, i)
			nextKey++
		}
		v, err := s.Commit(context.Background(), parent, ch)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		m.commit(parent, ch, v)

		if rng.Float64() < 0.1 {
			if err := s.Flush(context.Background()); err != nil {
				t.Fatalf("flush at %d: %v", i, err)
			}
		}
	}
	checkpoint("after-commits")

	// Phase 2: full repartition with compression.
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkpoint("after-materialize")

	// Phase 3: node failures (replicated, so everything must keep working).
	for n := 0; n < 5; n++ {
		if err := kv.SetNodeUp(n, false); err != nil {
			t.Fatal(err)
		}
		checkpoint(fmt.Sprintf("node-%d-down", n))
		if err := kv.SetNodeUp(n, true); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 4: more commits on top of the materialized state, then reload
	// from the cluster and re-verify.
	for i := 0; i < 30; i++ {
		parent := types.VersionID(rng.Intn(len(m.versions)))
		ch := Change{Puts: map[types.Key][]byte{key(rng.Intn(nextKey)): payload(rng, i, 99)}}
		// The random key may not be live at parent — that is fine for Puts
		// (insert-or-modify semantics).
		v, err := s.Commit(context.Background(), parent, ch)
		if err != nil {
			t.Fatalf("post-materialize commit %d: %v", i, err)
		}
		m.commit(parent, ch, v)
	}
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	checkpoint("after-more-commits")

	re, err := Load(context.Background(), Config{KV: kv, ChunkCapacity: 2048, BatchSize: 7})
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	s = re
	checkpoint("after-reload")

	// Phase 5: diff/LCA consistency against the oracle on random pairs.
	for trial := 0; trial < 20; trial++ {
		a := types.VersionID(rng.Intn(len(m.versions)))
		b := types.VersionID(rng.Intn(len(m.versions)))
		d, err := s.Diff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		wantAdded := 0
		for k, r := range m.versions[b] {
			if w, ok := m.versions[a][k]; !ok || w.CK != r.CK {
				wantAdded++
			}
		}
		if len(d.Added) != wantAdded {
			t.Fatalf("diff(%d,%d): %d added, want %d", a, b, len(d.Added), wantAdded)
		}
	}
}
