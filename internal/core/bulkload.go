package core

import (
	"context"
	"fmt"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/corpus"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// BulkLoad adopts a pre-built corpus (e.g. a generated dataset or an export
// from another system) into an empty store and materializes it offline with
// the configured partitioner. The store takes ownership of the corpus.
func (s *Store) BulkLoad(ctx context.Context, c *corpus.Corpus) error {
	s.mu.Lock()
	if err := s.mutable(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.graph.NumVersions() != 0 {
		s.mu.Unlock()
		return fmt.Errorf("rstore: bulk load requires an empty store (have %d versions)", s.graph.NumVersions())
	}
	if err := c.Graph().Validate(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.graph = c.Graph()
	s.corpus = c
	s.locs = make([]chunk.Loc, c.NumRecords())
	for i := range s.locs {
		s.locs[i] = chunk.Loc{Chunk: chunk.NoChunk}
	}
	s.sortedKeys = append([]types.Key(nil), c.Keys()...)
	sort.Slice(s.sortedKeys, func(i, j int) bool { return s.sortedKeys[i] < s.sortedKeys[j] })
	s.mu.Unlock()
	return s.Materialize(ctx)
}

// CommitDelta ingests a version whose delta the client computed itself —
// the paper's native ingest path ("the system requests only those records
// from the client that have changed, which in essence is the delta", §2.4).
// Added records must carry the new version id in their composite keys unless
// they re-introduce an existing record (merge traffic). The first commit
// (parents = [InvalidVersion]) creates the root.
func (s *Store) CommitDelta(ctx context.Context, parents []types.VersionID, delta *types.Delta) (types.VersionID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutable(); err != nil {
		return types.InvalidVersion, err
	}
	if len(parents) == 0 {
		return types.InvalidVersion, fmt.Errorf("rstore: commit needs a parent")
	}
	// Validate against the predicted id before mutating the graph (failed
	// commits must leave no trace).
	v := types.VersionID(s.graph.NumVersions())
	if parents[0] == types.InvalidVersion {
		if s.graph.NumVersions() != 0 {
			return types.InvalidVersion, fmt.Errorf("rstore: root version already exists")
		}
	} else if err := validParents(s.graph, parents); err != nil {
		return types.InvalidVersion, err
	}
	if !delta.IsConsistent() {
		return types.InvalidVersion, fmt.Errorf("%w: version %d", types.ErrInconsistentDelta, v)
	}
	// Fresh adds must originate here; re-adds must already exist.
	for _, r := range delta.Adds {
		if r.CK.Version != v {
			if _, ok := s.corpus.IDForCK(r.CK); !ok {
				return types.InvalidVersion, fmt.Errorf("rstore: delta add %v neither originates at %d nor exists", r.CK, v)
			}
		}
	}
	for _, ck := range delta.Dels {
		if _, ok := s.corpus.IDForCK(ck); !ok {
			return types.InvalidVersion, fmt.Errorf("%w: delta deletes unknown record %v", types.ErrNotFound, ck)
		}
	}

	// Durable write first (see CommitMerge): a failure or cancellation here
	// leaves no in-memory trace.
	if err := s.kv.BatchPut(ctx, TableDeltaStore, []kvstore.Entry{{Key: deltaKey(v), Value: encodeDeltaEntry(parents, delta)}}); err != nil {
		return types.InvalidVersion, err
	}

	var got types.VersionID
	var err error
	if parents[0] == types.InvalidVersion {
		got, err = s.graph.AddRoot()
	} else {
		got, err = s.graph.AddVersion(parents...)
	}
	if err != nil {
		return types.InvalidVersion, err
	}
	if got != v {
		return types.InvalidVersion, fmt.Errorf("rstore: internal: version id drift (%d vs %d)", got, v)
	}
	if err := s.corpus.AddVersionDelta(v, delta); err != nil {
		return types.InvalidVersion, fmt.Errorf("rstore: internal: graph/corpus desync at version %d: %w", v, err)
	}
	s.noteNewKeys(delta)
	for i := len(s.locs); i < s.corpus.NumRecords(); i++ {
		s.locs = append(s.locs, chunk.Loc{Chunk: chunk.NoChunk})
	}
	s.pending = append(s.pending, v)
	s.pendingSet[v] = true
	if s.cfg.BatchSize > 0 && len(s.pending) >= s.cfg.BatchSize {
		// Detached from the caller's cancellation (see CommitMerge): the
		// commit stands; the batch flush must not be wedgeable by a
		// per-request ctx.
		if err := s.flushLocked(context.WithoutCancel(ctx)); err != nil {
			return types.InvalidVersion, err
		}
	}
	return v, nil
}

// ChunkStorageBytes sums the persisted chunk entry sizes (payloads + maps).
// A backend scan failure reports zero; it is a stats helper, not a source of
// truth.
func (s *Store) ChunkStorageBytes(ctx context.Context) int64 {
	var total int64
	if err := s.kv.Scan(ctx, TableChunks, func(_ string, value []byte) bool {
		total += int64(len(value))
		return true
	}); err != nil {
		return 0
	}
	return total
}
