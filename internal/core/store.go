package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/corpus"
	"rstore/internal/index"
	"rstore/internal/kvstore"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// Store is the RStore engine instance.
type Store struct {
	mu  sync.RWMutex
	cfg Config
	kv  *kvstore.Store

	graph  *vgraph.Graph
	corpus *corpus.Corpus
	proj   *index.Projections

	// Physical placement state.
	locs      []chunk.Loc  // record id → chunk/slot (NoChunk while pending)
	maps      []*chunk.Map // in-memory chunk maps, index = chunk id
	numChunks uint32
	// gen is the placement generation chunk KVS keys are prefixed with.
	// The online path appends chunks within the current generation; a full
	// repartition (Materialize) writes the next generation's keys and
	// commits it atomically through the manifest, so a crash mid-rewrite
	// can never pair an old manifest with new chunk contents (see
	// chunk.KVKey).
	gen uint32

	// Pending versions (committed, not yet partitioned).
	pending    []types.VersionID
	pendingSet map[types.VersionID]bool

	// stagedPayloads holds chunk payloads built by the current flush until
	// they are written.
	stagedPayloads map[chunk.ID][]byte

	// batchesSinceRepartition counts online flushes toward
	// Config.RepartitionEvery.
	batchesSinceRepartition int

	// cache holds hot chunk entries (nil when disabled).
	cache *chunkCache

	// keyStates caches resolved key→record maps for recent commit parents.
	keyStates *keyStateCache

	// sortedKeys supports range retrieval.
	sortedKeys []types.Key

	branches map[string]types.VersionID
	closed   bool

	// ownsKV marks a private cluster created by withDefaults; Close closes
	// it along with the store.
	ownsKV bool
}

// Open creates an empty store. ctx bounds the open itself (a private
// cluster's geometry probe and hint recovery), not the Store's lifetime.
func Open(ctx context.Context, cfg Config) (*Store, error) {
	cfg, ownsKV, err := cfg.withDefaults(ctx)
	if err != nil {
		return nil, err
	}
	g := vgraph.New()
	return &Store{
		cfg:        cfg,
		kv:         cfg.KV,
		graph:      g,
		corpus:     corpus.New(g),
		proj:       index.New(),
		pendingSet: make(map[types.VersionID]bool),
		keyStates:  newKeyStateCache(4),
		branches:   map[string]types.VersionID{"main": types.InvalidVersion},
		cache:      newChunkCache(cfg.CacheBytes),
		ownsKV:     ownsKV,
	}, nil
}

// KV exposes the backing cluster (stats, cost model).
func (s *Store) KV() *kvstore.Store { return s.kv }

// Graph exposes the version graph for provenance queries.
func (s *Store) Graph() *vgraph.Graph { return s.graph }

// NumVersions returns the number of committed versions.
func (s *Store) NumVersions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.NumVersions()
}

// NumChunks returns the number of chunks materialized so far.
func (s *Store) NumChunks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int(s.numChunks)
}

// PendingVersions returns how many committed versions await placement.
func (s *Store) PendingVersions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pending)
}

// Close flushes pending versions (writable stores only), marks the store
// closed, and — when the store created its own private cluster — closes the
// cluster's backends too. The final flush runs under the background
// context: Close is a durability point, not a cancellable query. Closing
// twice is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if !s.cfg.ReadOnly {
		//lint:rstore-vet ctxfirst: Close is a durability point — the final flush must not inherit a cancelled request context
		if err := s.flushLocked(context.Background()); err != nil {
			return err
		}
	}
	s.closed = true
	if s.ownsKV {
		return s.kv.Close()
	}
	return nil
}

// Commit ingests a new version derived from parent. For the first commit
// parent must be types.InvalidVersion (creating the root). The generated
// version id is returned once the delta is durably in the delta store;
// placement happens in batches (§4). Commit never reuses version ids, even
// for identical contents. A context that ends before the delta is durable
// aborts with no trace; afterwards the commit stands.
func (s *Store) Commit(ctx context.Context, parent types.VersionID, ch Change) (types.VersionID, error) {
	return s.CommitMerge(ctx, []types.VersionID{parent}, ch)
}

// CommitMerge ingests a version with multiple parents; parents[0] is the
// primary parent the change is expressed against (the version-tree edge of
// §2.5). Secondary parents record provenance and are not consulted for
// contents.
func (s *Store) CommitMerge(ctx context.Context, parents []types.VersionID, ch Change) (types.VersionID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutable(); err != nil {
		return types.InvalidVersion, err
	}
	if len(parents) == 0 {
		return types.InvalidVersion, fmt.Errorf("rstore: commit needs a parent")
	}

	// Validate everything against the PREDICTED version id before touching
	// the graph: a failed commit must leave no trace (the graph has no
	// rollback, and a graph/corpus mismatch would corrupt the store).
	v := types.VersionID(s.graph.NumVersions())
	if parents[0] == types.InvalidVersion {
		if s.graph.NumVersions() != 0 {
			return types.InvalidVersion, fmt.Errorf("rstore: root version already exists")
		}
		if len(ch.Deletes) != 0 {
			return types.InvalidVersion, fmt.Errorf("rstore: root commit cannot delete keys")
		}
	} else if err := validParents(s.graph, parents); err != nil {
		return types.InvalidVersion, err
	}
	delta, state, err := s.deriveDelta(parents, v, ch)
	if err != nil {
		return types.InvalidVersion, fmt.Errorf("rstore: commit: %w", err)
	}

	// Persist the delta BEFORE touching in-memory state: a commit that
	// fails here — including a context cancelled mid-write — leaves no
	// trace, whereas mutating the graph first would strand a version whose
	// delta never became durable (the graph has no rollback, and the next
	// flush would find the delta missing). The entry is self-describing
	// (it carries its parents), so a crash after this write replays it on
	// Load, honoring Commit's durability promise. This goes through the
	// batch path — the one durable backends fsync before acknowledging.
	if err := s.kv.BatchPut(ctx, TableDeltaStore, []kvstore.Entry{{Key: deltaKey(v), Value: encodeDeltaEntry(parents, delta)}}); err != nil {
		return types.InvalidVersion, err
	}

	var got types.VersionID
	if parents[0] == types.InvalidVersion {
		got, err = s.graph.AddRoot()
	} else {
		got, err = s.graph.AddVersion(parents...)
	}
	if err != nil {
		return types.InvalidVersion, err
	}
	if got != v {
		return types.InvalidVersion, fmt.Errorf("rstore: internal: version id drift (%d vs %d)", got, v)
	}
	if err := s.corpus.AddVersionDelta(v, delta); err != nil {
		// Unreachable for deltas derived above; a failure here means a
		// corrupted store and must surface loudly.
		return types.InvalidVersion, fmt.Errorf("rstore: internal: graph/corpus desync at version %d: %w", v, err)
	}
	s.keyStates.put(v, state)
	s.noteNewKeys(delta)
	for i := len(s.locs); i < s.corpus.NumRecords(); i++ {
		s.locs = append(s.locs, chunk.Loc{Chunk: chunk.NoChunk})
	}
	s.pending = append(s.pending, v)
	s.pendingSet[v] = true

	if s.cfg.BatchSize > 0 && len(s.pending) >= s.cfg.BatchSize {
		// Detached from the caller's cancellation: the commit already
		// stands (its delta is durable), and an interrupted flush leaves
		// the in-memory placement ahead of the persisted state — a
		// per-request ctx must not be able to wedge the store as a side
		// effect of the commit that happened to close the batch.
		if err := s.flushLocked(context.WithoutCancel(ctx)); err != nil {
			return types.InvalidVersion, err
		}
	}
	return v, nil
}

// validParents enforces every graph.AddVersion precondition — existing,
// distinct parents — BEFORE the commit's durable delta write. The check
// must be exhaustive: a delta entry written for a commit the graph then
// rejects would sit at exactly the next version id, where Load's replay
// would hit the same rejection and refuse to open the store.
func validParents(g *vgraph.Graph, parents []types.VersionID) error {
	for i, p := range parents {
		if !g.Valid(p) {
			return &types.VersionUnknownError{Version: p}
		}
		for _, q := range parents[:i] {
			if p == q {
				return fmt.Errorf("rstore: commit: duplicate parent %d", p)
			}
		}
	}
	return nil
}

// deriveDelta turns a user Change into a composite-key delta against the
// primary parent, resolving the old record of every touched key.
func (s *Store) deriveDelta(parents []types.VersionID, v types.VersionID, ch Change) (*types.Delta, map[types.Key]types.CompositeKey, error) {
	delta := &types.Delta{}
	var state map[types.Key]types.CompositeKey
	if parents[0] == types.InvalidVersion {
		state = make(map[types.Key]types.CompositeKey, len(ch.Puts))
	} else {
		parentState, err := s.resolveKeyState(parents[0])
		if err != nil {
			return nil, nil, err
		}
		state = cloneKeyState(parentState)
	}

	// Deterministic ordering: sorted keys.
	putKeys := make([]types.Key, 0, len(ch.Puts))
	for k := range ch.Puts {
		putKeys = append(putKeys, k)
	}
	sort.Slice(putKeys, func(i, j int) bool { return putKeys[i] < putKeys[j] })

	for _, k := range putKeys {
		if old, ok := state[k]; ok {
			delta.Dels = append(delta.Dels, old)
		}
		ck := types.CompositeKey{Key: k, Version: v}
		delta.Adds = append(delta.Adds, types.Record{CK: ck, Value: ch.Puts[k]})
		state[k] = ck
	}
	for _, k := range ch.Deletes {
		if _, doubled := ch.Puts[k]; doubled {
			return nil, nil, fmt.Errorf("rstore: key %q both put and deleted", string(k))
		}
		old, ok := state[k]
		if !ok {
			return nil, nil, &types.KeyNotFoundError{Key: k, Version: parents[0]}
		}
		delta.Dels = append(delta.Dels, old)
		delete(state, k)
	}
	return delta, state, nil
}

// resolveKeyState returns the key→composite-key map of a version, from the
// commit cache or by materializing through the corpus.
func (s *Store) resolveKeyState(v types.VersionID) (map[types.Key]types.CompositeKey, error) {
	if st, ok := s.keyStates.get(v); ok {
		return st, nil
	}
	members, err := s.corpus.Members(v)
	if err != nil {
		return nil, err
	}
	st := make(map[types.Key]types.CompositeKey, len(members))
	for _, id := range members {
		r := s.corpus.Record(id)
		st[r.CK.Key] = r.CK
	}
	s.keyStates.put(v, st)
	return st, nil
}

// noteNewKeys maintains the sorted key list for range queries.
func (s *Store) noteNewKeys(delta *types.Delta) {
	for _, r := range delta.Adds {
		k := r.CK.Key
		i := sort.Search(len(s.sortedKeys), func(i int) bool { return s.sortedKeys[i] >= k })
		if i < len(s.sortedKeys) && s.sortedKeys[i] == k {
			continue
		}
		s.sortedKeys = append(s.sortedKeys, "")
		copy(s.sortedKeys[i+1:], s.sortedKeys[i:])
		s.sortedKeys[i] = k
	}
}

// Branch management: lightweight named pointers, VCS-style (§2.4 AS
// commands).

// SetBranch points a branch name at a version and persists the manifest.
func (s *Store) SetBranch(ctx context.Context, name string, v types.VersionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mutable(); err != nil {
		return err
	}
	if v != types.InvalidVersion && !s.graph.Valid(v) {
		return &types.VersionUnknownError{Version: v}
	}
	s.branches[name] = v
	return s.saveManifest(ctx)
}

// mutable reports whether writes are currently allowed. Callers hold s.mu.
func (s *Store) mutable() error {
	if s.closed {
		return types.ErrClosed
	}
	if s.cfg.ReadOnly {
		return types.ErrReadOnly
	}
	return nil
}

// Tip returns the version a branch points at.
func (s *Store) Tip(name string) (types.VersionID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.branches[name]
	if !ok {
		return types.InvalidVersion, fmt.Errorf("rstore: no branch %q", name)
	}
	return v, nil
}

// Branches lists branch names.
func (s *Store) Branches() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.branches))
	for n := range s.branches {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// keyStateCache is a tiny LRU of version → key state used by commit chains.
type keyStateCache struct {
	cap   int
	order []types.VersionID
	m     map[types.VersionID]map[types.Key]types.CompositeKey
}

func newKeyStateCache(cap int) *keyStateCache {
	return &keyStateCache{cap: cap, m: make(map[types.VersionID]map[types.Key]types.CompositeKey)}
}

func (c *keyStateCache) get(v types.VersionID) (map[types.Key]types.CompositeKey, bool) {
	st, ok := c.m[v]
	return st, ok
}

func (c *keyStateCache) put(v types.VersionID, st map[types.Key]types.CompositeKey) {
	if _, ok := c.m[v]; !ok {
		c.order = append(c.order, v)
		if len(c.order) > c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.m, evict)
		}
	}
	c.m[v] = st
}

func cloneKeyState(st map[types.Key]types.CompositeKey) map[types.Key]types.CompositeKey {
	out := make(map[types.Key]types.CompositeKey, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// deltaKey renders the delta-store key of a version.
func deltaKey(v types.VersionID) string { return fmt.Sprintf("d%08x", uint32(v)) }

// encodeDeltaEntry / decodeDeltaEntry persist a version's parents and delta
// in the write store. Carrying the parents makes each entry self-describing:
// a commit acknowledged after the last manifest save is replayed on Load
// from its delta entry alone, honoring Commit's durability promise.
func encodeDeltaEntry(parents []types.VersionID, d *types.Delta) []byte {
	buf := codec.PutUvarint(nil, uint64(len(parents)))
	for _, p := range parents {
		buf = codec.PutUvarint(buf, uint64(uint32(p)))
	}
	return codec.PutDelta(buf, d)
}

func decodeDeltaEntry(buf []byte) ([]types.VersionID, *types.Delta, error) {
	np, rest, err := codec.Uvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	parents := make([]types.VersionID, np)
	for i := range parents {
		var p uint64
		p, rest, err = codec.Uvarint(rest)
		if err != nil {
			return nil, nil, err
		}
		parents[i] = types.VersionID(uint32(p))
	}
	d, err := codec.DecodeDelta(rest)
	if err != nil {
		return nil, nil, err
	}
	return parents, d, nil
}
