package vgraph

import (
	"testing"

	"rstore/internal/types"
)

// buildFig1 constructs the paper's Fig 1 graph: V0 root; V1, V2 children of
// V0; V3 child of V1; V4 child of V2.
func buildFig1(t *testing.T) *Graph {
	t.Helper()
	g := New()
	v0, err := g.AddRoot()
	if err != nil || v0 != 0 {
		t.Fatalf("AddRoot: %v %v", v0, err)
	}
	mustAdd := func(parents ...types.VersionID) types.VersionID {
		v, err := g.AddVersion(parents...)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1 := mustAdd(v0)
	v2 := mustAdd(v0)
	mustAdd(v1) // v3
	mustAdd(v2) // v4
	return g
}

func TestStructure(t *testing.T) {
	g := buildFig1(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVersions() != 5 {
		t.Fatalf("NumVersions = %d", g.NumVersions())
	}
	if g.Parent(0) != types.InvalidVersion {
		t.Fatal("root has a parent")
	}
	if g.Parent(3) != 1 || g.Parent(4) != 2 {
		t.Fatal("parents wrong")
	}
	if kids := g.Children(0); len(kids) != 2 || kids[0] != 1 || kids[1] != 2 {
		t.Fatalf("Children(0) = %v", kids)
	}
	if !g.IsLeaf(3) || !g.IsLeaf(4) || g.IsLeaf(0) {
		t.Fatal("leaf detection")
	}
	if g.Depth(0) != 1 || g.Depth(3) != 3 {
		t.Fatal("depths")
	}
	if g.IsChain() {
		t.Fatal("branched graph reported as chain")
	}
	leaves := g.Leaves()
	if len(leaves) != 2 || leaves[0] != 3 || leaves[1] != 4 {
		t.Fatalf("Leaves = %v", leaves)
	}
	if got := g.AvgLeafDepth(); got != 3 {
		t.Fatalf("AvgLeafDepth = %v", got)
	}
	if g.SubtreeSize(0) != 5 || g.SubtreeSize(1) != 2 || g.SubtreeSize(3) != 1 {
		t.Fatal("subtree sizes")
	}
}

func TestPathFromRoot(t *testing.T) {
	g := buildFig1(t)
	path := g.PathFromRoot(3)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 3 {
		t.Fatalf("PathFromRoot(3) = %v", path)
	}
	if p := g.PathFromRoot(0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("PathFromRoot(0) = %v", p)
	}
}

func TestTraversalProperties(t *testing.T) {
	g, err := Generate(GenerateOptions{Versions: 200, BranchProb: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := g.NumVersions()

	checkPermutation := func(name string, order []types.VersionID) []int {
		pos := make([]int, n)
		for i := range pos {
			pos[i] = -1
		}
		for i, v := range order {
			if pos[v] != -1 {
				t.Fatalf("%s: version %d visited twice", name, v)
			}
			pos[v] = i
		}
		for v, p := range pos {
			if p == -1 {
				t.Fatalf("%s: version %d missing", name, v)
			}
		}
		return pos
	}

	pre := checkPermutation("PreOrder", g.PreOrder())
	post := checkPermutation("PostOrder", g.PostOrder())
	bfs := checkPermutation("BFSOrder", g.BFSOrder())

	for v := 1; v < n; v++ {
		p := g.Parent(types.VersionID(v))
		if pre[v] <= pre[p] {
			t.Fatalf("PreOrder: child %d before parent %d", v, p)
		}
		if post[v] >= post[p] {
			t.Fatalf("PostOrder: parent %d before child %d", p, v)
		}
		if bfs[v] <= bfs[p] {
			t.Fatalf("BFSOrder: child %d before parent %d", v, p)
		}
		if g.Depth(types.VersionID(v)) != g.Depth(p)+1 {
			t.Fatalf("depth(%d) != depth(parent)+1", v)
		}
	}
	// BFS visits by non-decreasing depth.
	order := g.BFSOrder()
	for i := 1; i < len(order); i++ {
		if g.Depth(order[i]) < g.Depth(order[i-1]) {
			t.Fatal("BFS depth not monotone")
		}
	}
}

func TestMerges(t *testing.T) {
	g := New()
	v0, _ := g.AddRoot()
	v1, _ := g.AddVersion(v0)
	v2, _ := g.AddVersion(v0)
	m, err := g.AddVersion(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsMerge(m) || g.IsMerge(v1) {
		t.Fatal("merge detection")
	}
	if g.Parent(m) != v1 {
		t.Fatal("primary parent")
	}
	if mk := g.MergeChildren(v2); len(mk) != 1 || mk[0] != m {
		t.Fatalf("MergeChildren(v2) = %v", mk)
	}
	// The tree (primary edges) must not see m under v2.
	for _, c := range g.Children(v2) {
		if c == m {
			t.Fatal("merge in tree children of secondary parent")
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddVersionErrors(t *testing.T) {
	g := New()
	if _, err := g.AddVersion(); err == nil {
		t.Error("no-parent version accepted")
	}
	if _, err := g.AddRoot(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddRoot(); err == nil {
		t.Error("second root accepted")
	}
	if _, err := g.AddVersion(99); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := g.AddVersion(0, 0); err == nil {
		t.Error("duplicate parents accepted")
	}
}

func TestGenerateChain(t *testing.T) {
	g, err := Generate(GenerateOptions{Versions: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsChain() {
		t.Fatal("BranchProb=0 must generate a chain")
	}
	if g.MaxDepth() != 50 {
		t.Fatalf("chain depth = %d", g.MaxDepth())
	}
}

func TestGenerateTargetsDepth(t *testing.T) {
	for _, target := range []float64{50, 120, 300} {
		opts := OptionsForDepth(600, target, 2)
		g, err := Generate(opts)
		if err != nil {
			t.Fatal(err)
		}
		got := g.AvgLeafDepth()
		if got < target*0.6 || got > target*1.7 {
			t.Errorf("target depth %.0f: got %.1f", target, got)
		}
	}
}

func TestGenerateWithMerges(t *testing.T) {
	g, err := Generate(GenerateOptions{Versions: 300, BranchProb: 0.15, MergeProb: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	merges := 0
	for v := 0; v < g.NumVersions(); v++ {
		if g.IsMerge(types.VersionID(v)) {
			merges++
		}
	}
	if merges == 0 {
		t.Error("MergeProb produced no merges")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, _ := Generate(GenerateOptions{Versions: 100, BranchProb: 0.2, Seed: 9})
	b, _ := Generate(GenerateOptions{Versions: 100, BranchProb: 0.2, Seed: 9})
	for v := 0; v < 100; v++ {
		pa, pb := a.Parents(types.VersionID(v)), b.Parents(types.VersionID(v))
		if len(pa) != len(pb) {
			t.Fatalf("version %d parent count differs", v)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("version %d parent %d differs", v, i)
			}
		}
	}
}
