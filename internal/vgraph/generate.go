package vgraph

import (
	"fmt"
	"math/rand"

	"rstore/internal/types"
)

// GenerateOptions controls synthetic version-graph growth, following the
// process of [4] (Bhattacherjee et al., PVLDB'15) referenced by paper §5.1:
// versions are committed one at a time; most commits extend the tip of an
// existing branch, and with probability BranchProb a commit forks a new
// branch from a uniformly random existing version. With probability
// MergeProb a commit merges two random branch tips instead.
type GenerateOptions struct {
	// Versions is the total number of versions to generate (including the
	// root). Must be ≥ 1.
	Versions int
	// BranchProb is the per-commit probability of starting a new branch.
	// 0 yields a linear chain.
	BranchProb float64
	// MergeProb is the per-commit probability of creating a merge commit
	// joining two branch tips. The paper's partitioning experiments use
	// merge-free trees; merges exercise the DAG→tree conversion.
	MergeProb float64
	// Seed makes generation deterministic.
	Seed int64
}

// OptionsForDepth derives a BranchProb that targets the given average leaf
// depth for n versions. Because forks start at the depth of their fork
// point, the depth/branch-probability relationship is nonlinear; since graph
// generation is O(n), the options are calibrated by a short binary search of
// pilot generations under the same seed (so the calibrated statistics are
// exactly what the caller will get).
func OptionsForDepth(n int, avgDepth float64, seed int64) GenerateOptions {
	if avgDepth <= 0 || float64(n) <= avgDepth {
		return GenerateOptions{Versions: n, Seed: seed}
	}
	lo, hi := 0.0, 0.5
	best := GenerateOptions{Versions: n, Seed: seed}
	bestErr := -1.0
	for iter := 0; iter < 14; iter++ {
		mid := (lo + hi) / 2
		opts := GenerateOptions{Versions: n, BranchProb: mid, Seed: seed}
		g, err := Generate(opts)
		if err != nil {
			break
		}
		got := g.AvgLeafDepth()
		relErr := got/avgDepth - 1
		if relErr < 0 {
			relErr = -relErr
		}
		if bestErr < 0 || relErr < bestErr {
			bestErr = relErr
			best = opts
		}
		if relErr < 0.05 {
			break
		}
		// Higher branch probability → shallower trees.
		if got > avgDepth {
			lo = mid
		} else {
			hi = mid
		}
	}
	return best
}

// Generate grows a version graph.
func Generate(opts GenerateOptions) (*Graph, error) {
	if opts.Versions < 1 {
		return nil, fmt.Errorf("vgraph: Versions must be ≥ 1, got %d", opts.Versions)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	g := New()
	root, err := g.AddRoot()
	if err != nil {
		return nil, err
	}
	tips := []types.VersionID{root}
	for i := 1; i < opts.Versions; i++ {
		r := rng.Float64()
		switch {
		case r < opts.MergeProb && len(tips) >= 2:
			// Merge two distinct random tips; the merge becomes the tip of
			// the primary parent's branch and retires the other tip.
			a := rng.Intn(len(tips))
			b := rng.Intn(len(tips) - 1)
			if b >= a {
				b++
			}
			id, err := g.AddVersion(tips[a], tips[b])
			if err != nil {
				return nil, err
			}
			tips[a] = id
			tips[b] = tips[len(tips)-1]
			tips = tips[:len(tips)-1]
		case r < opts.MergeProb+opts.BranchProb:
			// Fork a new branch from a uniformly random existing version.
			parent := types.VersionID(rng.Intn(g.NumVersions()))
			id, err := g.AddVersion(parent)
			if err != nil {
				return nil, err
			}
			tips = append(tips, id)
		default:
			// Extend a uniformly random branch tip.
			ti := rng.Intn(len(tips))
			id, err := g.AddVersion(tips[ti])
			if err != nil {
				return nil, err
			}
			tips[ti] = id
		}
	}
	return g, nil
}
