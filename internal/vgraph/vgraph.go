// Package vgraph implements the version graph of paper §2.1: a rooted DAG
// whose nodes are versions and whose edges record derivation. Each version is
// derived from a primary parent via a delta; merge versions carry additional
// (secondary) parents.
//
// Because deltas are always expressed against the primary parent, the
// DAG→tree conversion of §2.5 (Fig 4) is implicit: dropping every secondary
// edge yields the version tree used by the partitioning algorithms, and
// records that arrived exclusively through a secondary parent appear in the
// tree-edge delta as fresh inserts ("renamed" in the paper's terms). The
// original DAG remains available for provenance queries.
package vgraph

import (
	"fmt"

	"rstore/internal/types"
)

// Graph is a version graph. Version ids are dense: the i-th committed
// version has id i, the root is always 0. The zero value is an empty graph;
// add the root with AddRoot.
type Graph struct {
	parents   [][]types.VersionID // parents[v][0] is the primary (tree) parent
	children  [][]types.VersionID // primary-edge children (tree children)
	mergeKids [][]types.VersionID // children reachable via secondary edges
	depth     []int32             // root has depth 1
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// NumVersions returns the number of versions (0 for an empty graph).
func (g *Graph) NumVersions() int { return len(g.parents) }

// AddRoot creates the root version (id 0). It fails if the graph is
// non-empty.
func (g *Graph) AddRoot() (types.VersionID, error) {
	if len(g.parents) != 0 {
		return types.InvalidVersion, fmt.Errorf("vgraph: root already exists")
	}
	g.parents = append(g.parents, nil)
	g.children = append(g.children, nil)
	g.mergeKids = append(g.mergeKids, nil)
	g.depth = append(g.depth, 1)
	return 0, nil
}

// AddVersion creates a new version derived from the given parents. The first
// parent is the primary parent: the version's delta is expressed against it
// and it defines the version-tree edge. Additional parents mark a merge.
func (g *Graph) AddVersion(parents ...types.VersionID) (types.VersionID, error) {
	if len(parents) == 0 {
		return types.InvalidVersion, fmt.Errorf("vgraph: version needs at least one parent")
	}
	seen := make(map[types.VersionID]struct{}, len(parents))
	for _, p := range parents {
		if !g.Valid(p) {
			return types.InvalidVersion, &types.VersionUnknownError{Version: p}
		}
		if _, dup := seen[p]; dup {
			return types.InvalidVersion, fmt.Errorf("vgraph: duplicate parent %d", p)
		}
		seen[p] = struct{}{}
	}
	id := types.VersionID(len(g.parents))
	ps := make([]types.VersionID, len(parents))
	copy(ps, parents)
	g.parents = append(g.parents, ps)
	g.children = append(g.children, nil)
	g.mergeKids = append(g.mergeKids, nil)
	g.depth = append(g.depth, g.depth[parents[0]]+1)
	g.children[parents[0]] = append(g.children[parents[0]], id)
	for _, p := range parents[1:] {
		g.mergeKids[p] = append(g.mergeKids[p], id)
	}
	return id, nil
}

// Valid reports whether v names an existing version.
func (g *Graph) Valid(v types.VersionID) bool { return int(v) < len(g.parents) }

// Parent returns the primary (tree) parent of v, or InvalidVersion for the
// root.
func (g *Graph) Parent(v types.VersionID) types.VersionID {
	if len(g.parents[v]) == 0 {
		return types.InvalidVersion
	}
	return g.parents[v][0]
}

// Parents returns all parents of v (primary first). The slice is shared;
// callers must not mutate it.
func (g *Graph) Parents(v types.VersionID) []types.VersionID { return g.parents[v] }

// Children returns the tree children of v (primary-edge derivations only).
// The slice is shared; callers must not mutate it.
func (g *Graph) Children(v types.VersionID) []types.VersionID { return g.children[v] }

// MergeChildren returns versions that merged v through a secondary edge.
func (g *Graph) MergeChildren(v types.VersionID) []types.VersionID { return g.mergeKids[v] }

// IsMerge reports whether v has more than one parent.
func (g *Graph) IsMerge(v types.VersionID) bool { return len(g.parents[v]) > 1 }

// IsLeaf reports whether v has no tree children.
func (g *Graph) IsLeaf(v types.VersionID) bool { return len(g.children[v]) == 0 }

// Depth returns the tree depth of v; the root has depth 1 (matching the
// paper's dataset statistics, where a 300-version chain has depth 300).
func (g *Graph) Depth(v types.VersionID) int { return int(g.depth[v]) }

// Leaves returns all leaf versions in id order.
func (g *Graph) Leaves() []types.VersionID {
	var out []types.VersionID
	for v := range g.parents {
		if len(g.children[v]) == 0 {
			out = append(out, types.VersionID(v))
		}
	}
	return out
}

// AvgLeafDepth returns the average depth over leaves — the "average version
// graph depth" statistic of Table 2.
func (g *Graph) AvgLeafDepth() float64 {
	leaves := g.Leaves()
	if len(leaves) == 0 {
		return 0
	}
	total := 0
	for _, l := range leaves {
		total += g.Depth(l)
	}
	return float64(total) / float64(len(leaves))
}

// MaxDepth returns the maximum tree depth.
func (g *Graph) MaxDepth() int {
	best := 0
	for v := range g.parents {
		if int(g.depth[v]) > best {
			best = int(g.depth[v])
		}
	}
	return best
}

// IsChain reports whether the tree is a linear chain.
func (g *Graph) IsChain() bool {
	for v := range g.parents {
		if len(g.children[v]) > 1 {
			return false
		}
	}
	return true
}

// PathFromRoot returns the tree path root…v inclusive.
func (g *Graph) PathFromRoot(v types.VersionID) []types.VersionID {
	depth := g.Depth(v)
	path := make([]types.VersionID, depth)
	cur := v
	for i := depth - 1; i >= 0; i-- {
		path[i] = cur
		cur = g.Parent(cur)
	}
	return path
}

// PreOrder returns a depth-first pre-order of the tree starting at the root.
// Children are visited in creation order. This is the traversal order of the
// DepthFirst partitioner (Algorithm 4).
func (g *Graph) PreOrder() []types.VersionID {
	if len(g.parents) == 0 {
		return nil
	}
	out := make([]types.VersionID, 0, len(g.parents))
	stack := []types.VersionID{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		kids := g.children[v]
		// Push in reverse so the first child is visited first.
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return out
}

// PostOrder returns a depth-first post-order of the tree (every version
// after all of its descendants) — the processing order of the Bottom-Up
// partitioner (Algorithm 3).
func (g *Graph) PostOrder() []types.VersionID {
	if len(g.parents) == 0 {
		return nil
	}
	out := make([]types.VersionID, 0, len(g.parents))
	type frame struct {
		v    types.VersionID
		next int
	}
	stack := []frame{{v: 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := g.children[f.v]
		if f.next < len(kids) {
			child := kids[f.next]
			f.next++
			stack = append(stack, frame{v: child})
			continue
		}
		out = append(out, f.v)
		stack = stack[:len(stack)-1]
	}
	return out
}

// BFSOrder returns a breadth-first order of the tree from the root — the
// traversal order of the BreadthFirst partitioner.
func (g *Graph) BFSOrder() []types.VersionID {
	if len(g.parents) == 0 {
		return nil
	}
	out := make([]types.VersionID, 0, len(g.parents))
	queue := []types.VersionID{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		queue = append(queue, g.children[v]...)
	}
	return out
}

// SubtreeSize returns the number of versions in the tree subtree rooted at v
// (including v).
func (g *Graph) SubtreeSize(v types.VersionID) int {
	size := 0
	stack := []types.VersionID{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		size++
		stack = append(stack, g.children[u]...)
	}
	return size
}

// Validate checks structural invariants: dense ids, acyclic parent links,
// consistent child lists, correct depths. It is used by tests and by loaders
// of persisted graphs.
func (g *Graph) Validate() error {
	n := len(g.parents)
	if n == 0 {
		return nil
	}
	if len(g.parents[0]) != 0 {
		return fmt.Errorf("vgraph: version 0 must be the root")
	}
	for v := 1; v < n; v++ {
		ps := g.parents[v]
		if len(ps) == 0 {
			return fmt.Errorf("vgraph: non-root version %d has no parent", v)
		}
		for _, p := range ps {
			if int(p) >= v {
				return fmt.Errorf("vgraph: version %d has forward parent %d", v, p)
			}
		}
		if g.depth[v] != g.depth[ps[0]]+1 {
			return fmt.Errorf("vgraph: version %d has depth %d, parent depth %d", v, g.depth[v], g.depth[ps[0]])
		}
	}
	// Every version must appear exactly once as a tree child of its primary
	// parent.
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		for _, c := range g.children[v] {
			if g.Parent(c) != types.VersionID(v) {
				return fmt.Errorf("vgraph: child list of %d contains %d whose parent is %d", v, c, g.Parent(c))
			}
			if seen[c] {
				return fmt.Errorf("vgraph: version %d appears in multiple child lists", c)
			}
			seen[c] = true
		}
	}
	for v := 1; v < n; v++ {
		if !seen[v] {
			return fmt.Errorf("vgraph: version %d missing from its parent's child list", v)
		}
	}
	return nil
}
