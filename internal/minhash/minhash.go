// Package minhash implements the min-hash shingle computation of paper
// Algorithm 1: for each record's set of containing versions, l pairwise-
// independent hash functions are applied and the minimum hash under each
// function forms the record's shingle vector. Records with similar version
// sets receive lexicographically close shingle vectors, so sorting by
// shingles places co-occurring records next to each other (Algorithm 2).
package minhash

import "math/rand"

// Family is a set of l pairwise-independent hash functions over uint32
// version ids. Each function is h_i(v) = (a_i*v + b_i) mod p for a large
// prime p, the classic universal hashing construction.
type Family struct {
	a, b []uint64
}

// prime is a Mersenne prime > 2^32, allowing (a*v+b) mod p without overflow
// in uint64 arithmetic for 32-bit v.
const prime = (1 << 61) - 1

// NewFamily creates l hash functions seeded deterministically.
func NewFamily(l int, seed int64) *Family {
	rng := rand.New(rand.NewSource(seed))
	f := &Family{a: make([]uint64, l), b: make([]uint64, l)}
	for i := 0; i < l; i++ {
		f.a[i] = rng.Uint64()%(prime-1) + 1 // a ∈ [1, p-1]
		f.b[i] = rng.Uint64() % prime       // b ∈ [0, p-1]
	}
	return f
}

// Size returns the number of hash functions l.
func (f *Family) Size() int { return len(f.a) }

// Hash applies function i to version id v.
func (f *Family) Hash(i int, v uint32) uint64 {
	// (a*v + b) mod p. a < 2^61 times v < 2^32 would overflow uint64, so
	// the product is reduced by splitting a (see mulmod). Both operands of
	// the final sum are < p < 2^61, so the addition cannot overflow.
	return (mulmod(f.a[i], uint64(v)) + f.b[i]) % prime
}

// mulmod computes (a*b) mod prime without 128-bit multiply by splitting a
// into 30-bit halves (b fits in 32 bits).
func mulmod(a, b uint64) uint64 {
	const mask30 = (1 << 30) - 1
	lo := a & mask30
	hi := a >> 30
	// a*b = hi*2^30*b + lo*b. hi < 2^31, b < 2^32 ⇒ hi*b < 2^63: safe.
	t := (hi * b) % prime
	t = (t << 30) % prime
	return (t + lo*b) % prime
}

// Signature is a record's shingle vector: the i-th entry is the minimum of
// h_i over the record's version set.
type Signature []uint64

// NewSignature returns a signature initialized to +∞ in every slot, ready
// for incremental Observe calls.
func NewSignature(l int) Signature {
	s := make(Signature, l)
	for i := range s {
		s[i] = ^uint64(0)
	}
	return s
}

// Observe folds version v into the signature: s[i] = min(s[i], h_i(v)).
// Observing versions one at a time lets the partitioner build all record
// signatures in a single pass over the version graph instead of
// materializing the record→versions map.
func (s Signature) Observe(f *Family, v uint32) {
	for i := range s {
		if h := f.Hash(i, v); h < s[i] {
			s[i] = h
		}
	}
}

// Compare orders signatures lexicographically: -1, 0, or 1.
func Compare(a, b Signature) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Similarity estimates the Jaccard similarity of the underlying version sets
// as the fraction of agreeing min-hash slots.
func Similarity(a, b Signature) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}
