package minhash

import (
	"math/rand"
	"testing"
)

func TestDeterminism(t *testing.T) {
	f1 := NewFamily(4, 7)
	f2 := NewFamily(4, 7)
	for i := 0; i < 4; i++ {
		for v := uint32(0); v < 100; v++ {
			if f1.Hash(i, v) != f2.Hash(i, v) {
				t.Fatalf("hash %d of %d differs across equal seeds", i, v)
			}
		}
	}
	f3 := NewFamily(4, 8)
	same := 0
	for v := uint32(0); v < 100; v++ {
		if f1.Hash(0, v) == f3.Hash(0, v) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds collide on %d/100 inputs", same)
	}
}

func TestHashRange(t *testing.T) {
	f := NewFamily(8, 3)
	for i := 0; i < f.Size(); i++ {
		for v := uint32(0); v < 1000; v++ {
			h := f.Hash(i, v)
			if h >= prime {
				t.Fatalf("hash %d out of field: %d", i, h)
			}
		}
	}
}

func TestSignatureObserve(t *testing.T) {
	f := NewFamily(4, 1)
	s := NewSignature(4)
	for i := range s {
		if s[i] != ^uint64(0) {
			t.Fatal("fresh signature not +inf")
		}
	}
	s.Observe(f, 10)
	s.Observe(f, 20)
	// Observing incrementally equals observing the set at once.
	s2 := NewSignature(4)
	s2.Observe(f, 20)
	s2.Observe(f, 10)
	if Compare(s, s2) != 0 {
		t.Fatal("observation order changed signature")
	}
	// Signature slot i is min over versions of h_i.
	for i := 0; i < 4; i++ {
		want := f.Hash(i, 10)
		if h := f.Hash(i, 20); h < want {
			want = h
		}
		if s[i] != want {
			t.Fatalf("slot %d = %d, want %d", i, s[i], want)
		}
	}
}

func TestCompare(t *testing.T) {
	a := Signature{1, 2, 3}
	b := Signature{1, 2, 4}
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Fatal("compare ordering")
	}
	if Compare(Signature{1}, Signature{1, 0}) != -1 {
		t.Fatal("prefix ordering")
	}
}

// TestSimilarityEstimatesJaccard verifies the min-hash property: the
// fraction of agreeing slots estimates the Jaccard similarity of the
// underlying version sets.
func TestSimilarityEstimatesJaccard(t *testing.T) {
	const l = 256 // many hashes for a tight estimate
	f := NewFamily(l, 42)
	rng := rand.New(rand.NewSource(9))

	for trial := 0; trial < 5; trial++ {
		setA := map[uint32]bool{}
		setB := map[uint32]bool{}
		// Shared core plus disjoint tails.
		for i := 0; i < 50; i++ {
			v := uint32(rng.Intn(10000))
			setA[v] = true
			setB[v] = true
		}
		for i := 0; i < 25; i++ {
			setA[uint32(10000+rng.Intn(10000))] = true
			setB[uint32(20000+rng.Intn(10000))] = true
		}
		sigA, sigB := NewSignature(l), NewSignature(l)
		inter, union := 0, 0
		all := map[uint32]bool{}
		for v := range setA {
			sigA.Observe(f, v)
			all[v] = true
		}
		for v := range setB {
			sigB.Observe(f, v)
			all[v] = true
		}
		for v := range all {
			union++
			if setA[v] && setB[v] {
				inter++
			}
		}
		want := float64(inter) / float64(union)
		got := Similarity(sigA, sigB)
		if got < want-0.15 || got > want+0.15 {
			t.Fatalf("trial %d: similarity estimate %.3f, true Jaccard %.3f", trial, got, want)
		}
	}
}

func TestSimilarityDegenerate(t *testing.T) {
	if Similarity(nil, nil) != 0 {
		t.Fatal("nil similarity")
	}
	if Similarity(Signature{1}, Signature{1, 2}) != 0 {
		t.Fatal("length mismatch similarity")
	}
}
