package index

import (
	"fmt"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/types"
)

// Compressed is a frozen, memory-compact form of the projections: every
// adjacency list is held delta-gap varint encoded and decoded on access.
// Paper §2.4 sizes the in-memory indexes at tens of MB and notes "standard
// techniques from inverted indexes literature can be used to compress the
// adjacency lists without compromising performance" — this implements that
// representation for read-mostly deployments (e.g. read-replica application
// servers).
type Compressed struct {
	versionChunks map[types.VersionID][]byte
	keyChunks     map[types.Key][]byte
}

// Compress freezes projections into the compact form.
func Compress(p *Projections) *Compressed {
	c := &Compressed{
		versionChunks: make(map[types.VersionID][]byte, len(p.versionChunks)),
		keyChunks:     make(map[types.Key][]byte, len(p.keyChunks)),
	}
	for v, l := range p.versionChunks {
		c.versionChunks[v] = codec.PutPostingList(nil, l)
	}
	for k, l := range p.keyChunks {
		c.keyChunks[k] = codec.PutPostingList(nil, l)
	}
	return c
}

// VersionChunks decodes the chunk list of a version (nil if absent).
func (c *Compressed) VersionChunks(v types.VersionID) []chunk.ID {
	return decodeList(c.versionChunks[v])
}

// KeyChunks decodes the chunk list of a key (nil if absent).
func (c *Compressed) KeyChunks(k types.Key) []chunk.ID {
	return decodeList(c.keyChunks[k])
}

func decodeList(enc []byte) []chunk.ID {
	if enc == nil {
		return nil
	}
	ids, _, err := codec.PostingList(enc)
	if err != nil {
		// Lists are produced by Compress from valid projections; decoding
		// can only fail on memory corruption.
		panic(fmt.Sprintf("index: corrupt compressed adjacency: %v", err))
	}
	return ids
}

// Intersect mirrors Projections.Intersect on the compressed form.
func (c *Compressed) Intersect(k types.Key, v types.VersionID) []chunk.ID {
	a, b := c.KeyChunks(k), c.VersionChunks(v)
	var out []chunk.ID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SizeBytes reports the compressed in-memory footprint, comparable with
// Projections.SizeBytes.
func (c *Compressed) SizeBytes() (versionIdx, keyIdx int64) {
	for _, enc := range c.versionChunks {
		versionIdx += int64(len(enc))
	}
	for k, enc := range c.keyChunks {
		keyIdx += int64(len(k)) + int64(len(enc))
	}
	return versionIdx, keyIdx
}

// Decompress rebuilds mutable projections (e.g. to resume ingest on a
// promoted replica).
func (c *Compressed) Decompress() *Projections {
	p := New()
	for v, enc := range c.versionChunks {
		p.versionChunks[v] = decodeList(enc)
	}
	for k, enc := range c.keyChunks {
		p.keyChunks[k] = decodeList(enc)
	}
	return p
}

// Versions lists versions with entries, sorted (test/debug helper).
func (c *Compressed) Versions() []types.VersionID {
	out := make([]types.VersionID, 0, len(c.versionChunks))
	for v := range c.versionChunks {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
