// Package index implements the two lossy projections of paper §2.4 (Fig 3b):
// the version→chunks mapping (which chunks contain records of a given
// version) and the key→chunks mapping (which chunks contain records of a
// given primary key). Query processing intersects/consults these to decide
// what to fetch; they are lossy in that a retrieved chunk may turn out to
// contain no records of interest for key-and-version queries.
//
// The projections are held as in-memory hash maps (the paper measures tens
// of MB even for its biggest datasets) and persisted to the KVS with
// delta-gap posting-list compression, the standard inverted-index technique
// the paper points to.
package index

import (
	"context"
	"fmt"
	"sort"

	"rstore/internal/chunk"
	"rstore/internal/codec"
	"rstore/internal/kvstore"
	"rstore/internal/types"
)

// Projections is the pair of lossy indexes.
type Projections struct {
	versionChunks map[types.VersionID][]chunk.ID
	keyChunks     map[types.Key][]chunk.ID
}

// New returns empty projections.
func New() *Projections {
	return &Projections{
		versionChunks: make(map[types.VersionID][]chunk.ID),
		keyChunks:     make(map[types.Key][]chunk.ID),
	}
}

// ObserveVersionChunk records that version v has records in chunk c. It
// implements chunk.MembershipObserver so the projection fills during chunk
// map construction. Duplicate observations are tolerated.
func (p *Projections) ObserveVersionChunk(v types.VersionID, c chunk.ID) {
	l := p.versionChunks[v]
	if n := len(l); n > 0 && l[n-1] == c {
		return
	}
	p.versionChunks[v] = append(l, c)
}

// AddKeyChunk records that primary key k has records in chunk c.
func (p *Projections) AddKeyChunk(k types.Key, c chunk.ID) {
	l := p.keyChunks[k]
	if n := len(l); n > 0 && l[n-1] == c {
		return
	}
	p.keyChunks[k] = append(l, c)
}

// Normalize sorts and deduplicates every adjacency list. Call once after
// bulk construction.
func (p *Projections) Normalize() {
	for v, l := range p.versionChunks {
		p.versionChunks[v] = sortDedup(l)
	}
	for k, l := range p.keyChunks {
		p.keyChunks[k] = sortDedup(l)
	}
}

func sortDedup(l []chunk.ID) []chunk.ID {
	if len(l) < 2 {
		return l
	}
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	out := l[:1]
	for _, c := range l[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// VersionChunks returns the chunks containing records of version v (sorted).
// The slice is shared; callers must not mutate.
func (p *Projections) VersionChunks(v types.VersionID) []chunk.ID {
	return p.versionChunks[v]
}

// KeyChunks returns the chunks containing records of primary key k (sorted).
func (p *Projections) KeyChunks(k types.Key) []chunk.ID {
	return p.keyChunks[k]
}

// Intersect returns the chunks appearing in both projections for (k, v) —
// the "index-ANDing" of §2.4 used by record and range retrieval.
func (p *Projections) Intersect(k types.Key, v types.VersionID) []chunk.ID {
	a, b := p.keyChunks[k], p.versionChunks[v]
	var out []chunk.ID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// VersionSpan returns |chunks(v)| — the span of a full version retrieval.
func (p *Projections) VersionSpan(v types.VersionID) int { return len(p.versionChunks[v]) }

// KeySpan returns |chunks(k)| — the span of a record-evolution query.
func (p *Projections) KeySpan(k types.Key) int { return len(p.keyChunks[k]) }

// TotalVersionSpan sums the span over all versions — the headline
// partitioning-quality metric of the paper's Figs 8–10.
func (p *Projections) TotalVersionSpan() int {
	total := 0
	for _, l := range p.versionChunks {
		total += len(l)
	}
	return total
}

// TotalKeySpan sums the key span over all keys.
func (p *Projections) TotalKeySpan() int {
	total := 0
	for _, l := range p.keyChunks {
		total += len(l)
	}
	return total
}

// NumVersions returns how many versions have at least one chunk.
func (p *Projections) NumVersions() int { return len(p.versionChunks) }

// NumKeys returns how many keys have at least one chunk.
func (p *Projections) NumKeys() int { return len(p.keyChunks) }

// SizeBytes estimates the in-memory footprint of both projections as the
// paper reports it: the adjacency lists stored as 4-byte ids.
func (p *Projections) SizeBytes() (versionIdx, keyIdx int64) {
	for _, l := range p.versionChunks {
		versionIdx += int64(4 * len(l))
	}
	for k, l := range p.keyChunks {
		keyIdx += int64(len(k)) + int64(4*len(l))
	}
	return versionIdx, keyIdx
}

// KVS persistence: both projections live in dedicated tables, one entry per
// version / key, posting-list compressed.

// TableVersionIndex and TableKeyIndex are the KVS table names.
const (
	TableVersionIndex = "idx_version"
	TableKeyIndex     = "idx_key"
)

// Save persists both projections, each table committed as one batched write
// (one durability sync per table instead of one per version/key).
func (p *Projections) Save(ctx context.Context, kv *kvstore.Store) error {
	vEntries := make([]kvstore.Entry, 0, len(p.versionChunks))
	for v, l := range p.versionChunks {
		vEntries = append(vEntries, kvstore.Entry{
			Key:   fmt.Sprintf("v%08x", uint32(v)),
			Value: codec.PutPostingList(nil, l),
		})
	}
	if err := kv.BatchPut(ctx, TableVersionIndex, vEntries); err != nil {
		return err
	}
	kEntries := make([]kvstore.Entry, 0, len(p.keyChunks))
	for k, l := range p.keyChunks {
		kEntries = append(kEntries, kvstore.Entry{
			Key:   string(k),
			Value: codec.PutPostingList(nil, l),
		})
	}
	return kv.BatchPut(ctx, TableKeyIndex, kEntries)
}

// EntryKeys returns the KVS keys Save writes for each projection table, so
// a full repartition can delete the superseded rows afterwards.
func (p *Projections) EntryKeys() (version []string, key []string) {
	version = make([]string, 0, len(p.versionChunks))
	for v := range p.versionChunks {
		version = append(version, fmt.Sprintf("v%08x", uint32(v)))
	}
	key = make([]string, 0, len(p.keyChunks))
	for k := range p.keyChunks {
		key = append(key, string(k))
	}
	return version, key
}

// PruneChunks drops references to chunk ids at or past n from both
// projections. Core uses it on load to discard references a crashed flush
// saved for chunks that never made it into the manifest.
func (p *Projections) PruneChunks(n chunk.ID) {
	for v, l := range p.versionChunks {
		p.versionChunks[v] = pruneList(l, n)
	}
	for k, l := range p.keyChunks {
		p.keyChunks[k] = pruneList(l, n)
	}
}

// pruneList filters ids >= n in place.
func pruneList(l []chunk.ID, n chunk.ID) []chunk.ID {
	out := l[:0]
	for _, id := range l {
		if id < n {
			out = append(out, id)
		}
	}
	return out
}

// Load rebuilds projections from the KVS tables.
func Load(ctx context.Context, kv *kvstore.Store) (*Projections, error) {
	p := New()
	var firstErr error
	err := kv.Scan(ctx, TableVersionIndex, func(key string, value []byte) bool {
		var v uint32
		if _, err := fmt.Sscanf(key, "v%08x", &v); err != nil {
			firstErr = fmt.Errorf("%w: bad version index key %q", types.ErrCorrupt, key)
			return false
		}
		l, _, err := codec.PostingList(value)
		if err != nil {
			firstErr = err
			return false
		}
		p.versionChunks[types.VersionID(v)] = l
		return true
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	err = kv.Scan(ctx, TableKeyIndex, func(key string, value []byte) bool {
		l, _, err := codec.PostingList(value)
		if err != nil {
			firstErr = err
			return false
		}
		p.keyChunks[types.Key(key)] = l
		return true
	})
	if err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return p, nil
}
