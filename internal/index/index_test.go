package index

import (
	"context"
	"testing"

	"rstore/internal/kvstore"
	"rstore/internal/types"
)

func TestProjectionsBasics(t *testing.T) {
	p := New()
	p.ObserveVersionChunk(1, 5)
	p.ObserveVersionChunk(1, 5) // consecutive duplicate suppressed
	p.ObserveVersionChunk(1, 2)
	p.ObserveVersionChunk(2, 7)
	p.AddKeyChunk("a", 5)
	p.AddKeyChunk("a", 2)
	p.AddKeyChunk("b", 7)
	p.Normalize()

	if got := p.VersionChunks(1); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("VersionChunks(1) = %v", got)
	}
	if got := p.KeyChunks("a"); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("KeyChunks(a) = %v", got)
	}
	if p.VersionChunks(9) != nil || p.KeyChunks("zz") != nil {
		t.Fatal("unknown entries non-nil")
	}
	if p.VersionSpan(1) != 2 || p.KeySpan("b") != 1 {
		t.Fatal("span accessors")
	}
	if p.TotalVersionSpan() != 3 || p.TotalKeySpan() != 3 {
		t.Fatalf("totals: %d %d", p.TotalVersionSpan(), p.TotalKeySpan())
	}
	if p.NumVersions() != 2 || p.NumKeys() != 2 {
		t.Fatal("counts")
	}
	vb, kb := p.SizeBytes()
	if vb != 12 || kb != 4*3+2 {
		t.Fatalf("SizeBytes = %d, %d", vb, kb)
	}
}

func TestNormalizeDedupes(t *testing.T) {
	p := New()
	// Non-consecutive duplicates survive until Normalize.
	p.ObserveVersionChunk(1, 5)
	p.ObserveVersionChunk(1, 2)
	p.ObserveVersionChunk(1, 5)
	p.Normalize()
	if got := p.VersionChunks(1); len(got) != 2 {
		t.Fatalf("normalize left %v", got)
	}
}

func TestIntersect(t *testing.T) {
	p := New()
	for _, c := range []uint32{1, 3, 5, 9} {
		p.ObserveVersionChunk(4, c)
	}
	for _, c := range []uint32{2, 3, 9, 12} {
		p.AddKeyChunk("k", c)
	}
	p.Normalize()
	got := p.Intersect("k", 4)
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("Intersect = %v", got)
	}
	if p.Intersect("zz", 4) != nil {
		t.Fatal("intersect with unknown key")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	kv, err := kvstore.Open(context.Background(), kvstore.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	for v := types.VersionID(0); v < 50; v++ {
		for c := uint32(0); c < uint32(v%7)+1; c++ {
			p.ObserveVersionChunk(v, c*3)
		}
	}
	for i := 0; i < 30; i++ {
		k := types.Key([]byte{byte('a' + i%26), byte('0' + i/26)})
		p.AddKeyChunk(k, uint32(i))
		p.AddKeyChunk(k, uint32(i+5))
	}
	p.Normalize()
	if err := p.Save(context.Background(), kv); err != nil {
		t.Fatal(err)
	}
	got, err := Load(context.Background(), kv)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalVersionSpan() != p.TotalVersionSpan() || got.TotalKeySpan() != p.TotalKeySpan() {
		t.Fatalf("spans differ after reload: %d/%d vs %d/%d",
			got.TotalVersionSpan(), got.TotalKeySpan(), p.TotalVersionSpan(), p.TotalKeySpan())
	}
	for v := types.VersionID(0); v < 50; v++ {
		a, b := p.VersionChunks(v), got.VersionChunks(v)
		if len(a) != len(b) {
			t.Fatalf("v%d: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("v%d: %v vs %v", v, a, b)
			}
		}
	}
}
