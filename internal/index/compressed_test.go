package index

import (
	"fmt"
	"testing"

	"rstore/internal/types"
)

func populated(n int) *Projections {
	p := New()
	for v := types.VersionID(0); int(v) < n; v++ {
		// Overlapping runs of chunk ids: realistic adjacency (consecutive
		// versions share most chunks).
		base := uint32(v) / 4
		for c := base; c < base+12; c++ {
			p.ObserveVersionChunk(v, c)
		}
	}
	for i := 0; i < n; i++ {
		k := types.Key(fmt.Sprintf("key-%04d", i))
		p.AddKeyChunk(k, uint32(i/4))
		p.AddKeyChunk(k, uint32(i/4+7))
	}
	p.Normalize()
	return p
}

func TestCompressedRoundTrip(t *testing.T) {
	p := populated(200)
	c := Compress(p)
	for v := types.VersionID(0); v < 200; v++ {
		a, b := p.VersionChunks(v), c.VersionChunks(v)
		if len(a) != len(b) {
			t.Fatalf("v%d: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("v%d: %v vs %v", v, a, b)
			}
		}
	}
	k := types.Key("key-0042")
	if got := c.KeyChunks(k); len(got) != len(p.KeyChunks(k)) {
		t.Fatalf("key chunks: %v", got)
	}
	if c.VersionChunks(9999) != nil || c.KeyChunks("missing") != nil {
		t.Fatal("absent entries non-nil")
	}
	// Intersect parity.
	for v := types.VersionID(0); v < 200; v += 17 {
		a := p.Intersect(k, v)
		b := c.Intersect(k, v)
		if len(a) != len(b) {
			t.Fatalf("intersect at v%d: %v vs %v", v, a, b)
		}
	}
	// Decompress restores everything.
	back := Compress(c.Decompress())
	if len(back.Versions()) != len(c.Versions()) {
		t.Fatal("decompress lost versions")
	}
}

func TestCompressedIsSmaller(t *testing.T) {
	p := populated(500)
	c := Compress(p)
	pv, pk := p.SizeBytes()
	cv, ck := c.SizeBytes()
	if cv >= pv {
		t.Fatalf("version index grew: %d → %d", pv, cv)
	}
	if ck >= pk {
		t.Fatalf("key index grew: %d → %d", pk, ck)
	}
	// Gap-encoded consecutive runs should shrink substantially.
	if float64(cv) > 0.5*float64(pv) {
		t.Fatalf("version index compression only %d/%d", cv, pv)
	}
}
