package lsm

// The engine.HashRanger implementation: anti-entropy digests over the
// merged (memtable + SSTables) view, incremental where cheap. A full
// HashTree sweep costs one merged scan of the table — the same work as
// Scan — so the result is memoized per (table, fanout) at the
// logical-content generation it was computed (Backend.gen, bumped by every
// applied put/delete/reset and by nothing else; flush and merge preserve
// logical content, so a digest survives them). Repeated anti-entropy
// rounds over an unchanged table therefore cost a map lookup, and the
// memoized reply reports Bytes = 0: nothing was hashed.

import (
	"bytes"
	"context"
	"errors"

	"rstore/internal/engine"
	"rstore/internal/types"
)

type hashMemoKey struct {
	table  string
	fanout int
}

type hashMemoEntry struct {
	gen    int64
	digest engine.TreeDigest
}

// HashTree digests a table into a fanout-bucket hash tree
// (engine.HashRanger), serving repeats from the generation-keyed memo.
func (b *Backend) HashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	if err := engine.CheckHashFanout(fanout); err != nil {
		return engine.TreeDigest{}, err
	}
	if err := ctx.Err(); err != nil {
		return engine.TreeDigest{}, err
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return engine.TreeDigest{}, types.ErrClosed
	}
	gen := b.gen
	if e, ok := b.hashMemo[hashMemoKey{table, fanout}]; ok && e.gen == gen {
		out := engine.TreeDigest{
			Root:   e.digest.Root,
			Leaves: append([]engine.LeafDigest(nil), e.digest.Leaves...),
			// A memo hit hashed nothing.
		}
		b.mu.RUnlock()
		return out, nil
	}
	d, err := b.hashTreeLocked(ctx, table, fanout)
	b.mu.RUnlock()
	if err != nil {
		return engine.TreeDigest{}, err
	}
	// Install under the write lock only if no mutation landed meanwhile;
	// gen is immutable while any read lock is held, so the captured value
	// identifies exactly the state that was scanned.
	b.mu.Lock()
	if !b.closed && b.gen == gen {
		if b.hashMemo == nil {
			b.hashMemo = map[hashMemoKey]hashMemoEntry{}
		}
		b.hashMemo[hashMemoKey{table, fanout}] = hashMemoEntry{gen: gen, digest: d}
	}
	b.mu.Unlock()
	// The memo keeps the original leaf slice; hand the caller its own.
	out := d
	out.Leaves = append([]engine.LeafDigest(nil), d.Leaves...)
	return out, nil
}

// hashTreeLocked sweeps the merged view of table; callers hold b.mu (any
// mode).
func (b *Backend) hashTreeLocked(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	th := engine.NewTreeHasher(fanout)
	err := b.scanMergedLocked(ctx, table, func(userKey string, value []byte) {
		th.Add(userKey, value)
	})
	if err != nil {
		return engine.TreeDigest{}, err
	}
	return th.Digest(), nil
}

// HashRange lists one bucket's keys with their entry hashes
// (engine.HashRanger); the merged scan is key-ordered, so the result is
// already ascending.
func (b *Backend) HashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error) {
	if err := engine.CheckHashBucket(fanout, bucket); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, types.ErrClosed
	}
	var out []engine.KeyHash
	err := b.scanMergedLocked(ctx, table, func(userKey string, value []byte) {
		if engine.BucketOf(userKey, fanout) == bucket {
			out = append(out, engine.KeyHash{Key: userKey, Hash: engine.EntryHash(userKey, value)})
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scanMergedLocked visits every live (userKey, value) of table through the
// merged sources, newest version winning, tombstones skipped; callers hold
// b.mu (any mode).
func (b *Backend) scanMergedLocked(ctx context.Context, table string, visit func(userKey string, value []byte)) error {
	prefix := tablePrefix(table)
	end := prefixSuccessor(prefix)
	sources := make([]source, 0, len(b.tables)+1)
	for _, t := range b.tables {
		it, err := t.iterGE(prefix, b.cache)
		if err != nil {
			return err
		}
		sources = append(sources, it)
	}
	sources = append(sources, b.mem.iter(prefix)) // newest last
	err := mergeSources(sources, func(key, value []byte, tomb bool, _ int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if end != nil && bytes.Compare(key, end) >= 0 {
			return errStopScan
		}
		if tomb {
			return nil
		}
		_, userKey, err := splitIKey(key)
		if err != nil {
			return err
		}
		visit(userKey, value)
		return nil
	}, nil)
	if errors.Is(err, errStopScan) {
		return nil
	}
	return err
}
