package lsm

import "bytes"

// The memtable is a skiplist over internal keys (see ikey in lsm.go),
// holding every write since the last flush in sorted order: point lookups
// and ordered iteration are both O(log n), and a flush walks level 0
// sequentially to emit an already-sorted SSTable. Entries are either values
// or tombstones; a tombstone must be kept as a real entry (not a map
// deletion) because it shadows older versions living in the SSTables below.
//
// The memtable is not safe for concurrent use on its own; the Backend's
// mutex serializes access.

// memMaxHeight bounds skiplist towers; 2^16 entries per level-16 node is
// far beyond any memtable that respects MemtableBytes.
const memMaxHeight = 16

type memNode struct {
	key   []byte // internal key (table-prefixed)
	value []byte
	tomb  bool
	next  []*memNode
}

type memtable struct {
	head   *memNode
	height int
	rnd    uint64
	count  int
	// bytes approximates resident size (keys + values + tower overhead) for
	// the flush trigger; exact live-payload accounting lives on the Backend.
	bytes int64
}

func newMemtable() *memtable {
	return &memtable{
		head:   &memNode{next: make([]*memNode, memMaxHeight)},
		height: 1,
		rnd:    0x9e3779b97f4a7c15, // fixed seed: determinism beats entropy here
	}
}

// randHeight draws a tower height with P(h+1 | h) = 1/4.
func (m *memtable) randHeight() int {
	h := 1
	for h < memMaxHeight {
		m.rnd ^= m.rnd << 13
		m.rnd ^= m.rnd >> 7
		m.rnd ^= m.rnd << 17
		if m.rnd&3 != 0 {
			break
		}
		h++
	}
	return h
}

// findGE returns the first node with key >= target, filling prev (when
// non-nil) with the rightmost node before target at every level — the
// splice points for an insert.
func (m *memtable) findGE(target []byte, prev *[memMaxHeight]*memNode) *memNode {
	x := m.head
	for h := m.height - 1; h >= 0; h-- {
		for x.next[h] != nil && bytes.Compare(x.next[h].key, target) < 0 {
			x = x.next[h]
		}
		if prev != nil {
			prev[h] = x
		}
	}
	return x.next[0]
}

// get returns the entry under key: (value, isTombstone, present).
func (m *memtable) get(key []byte) ([]byte, bool, bool) {
	n := m.findGE(key, nil)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false, false
	}
	return n.value, n.tomb, true
}

// set installs value (or a tombstone) under key, replacing any existing
// entry in place, and reports what it replaced: the previous value length,
// whether the previous entry was a tombstone, and whether one existed.
// Both key and value must already be safe to retain (copied by the caller).
func (m *memtable) set(key, value []byte, tomb bool) (prevLen int, prevTomb, existed bool) {
	var prev [memMaxHeight]*memNode
	n := m.findGE(key, &prev)
	if n != nil && bytes.Equal(n.key, key) {
		prevLen, prevTomb = len(n.value), n.tomb
		m.bytes += int64(len(value) - len(n.value))
		n.value, n.tomb = value, tomb
		return prevLen, prevTomb, true
	}
	h := m.randHeight()
	if h > m.height {
		for i := m.height; i < h; i++ {
			prev[i] = m.head
		}
		m.height = h
	}
	nn := &memNode{key: key, value: value, tomb: tomb, next: make([]*memNode, h)}
	for i := 0; i < h; i++ {
		nn.next[i] = prev[i].next[i]
		prev[i].next[i] = nn
	}
	m.count++
	m.bytes += int64(len(key) + len(value) + 48) // 48 ~ node + tower overhead
	return 0, false, false
}

// memIter walks the memtable in key order; it implements the source
// interface merged iterators consume.
type memIter struct {
	n *memNode
}

// iter positions at the first entry with key >= start (all entries when
// start is nil).
func (m *memtable) iter(start []byte) *memIter {
	if start == nil {
		return &memIter{n: m.head.next[0]}
	}
	return &memIter{n: m.findGE(start, nil)}
}

func (it *memIter) valid() bool   { return it.n != nil }
func (it *memIter) key() []byte   { return it.n.key }
func (it *memIter) value() []byte { return it.n.value }
func (it *memIter) tomb() bool    { return it.n.tomb }
func (it *memIter) next() error   { it.n = it.n.next[0]; return nil }
