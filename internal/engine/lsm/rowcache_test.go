package lsm

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestRowCacheCoherence drives the exact sequences that would expose a
// stale row cache: read-then-overwrite-then-read, read-then-delete,
// compaction between reads, and Reset. A tiny memtable keeps data flowing
// through SSTables so cache fills come from the full read path, and a tiny
// row-cache budget exercises eviction.
func TestRowCacheCoherence(t *testing.T) {
	ctx := context.Background()
	b := openT(t, t.TempDir(), Options{MemtableBytes: 1 << 10, RowCacheBytes: 1 << 10})
	defer b.Close()

	get := func(key string) (string, bool) {
		t.Helper()
		v, ok, err := b.Get(ctx, "t", key)
		if err != nil {
			t.Fatal(err)
		}
		return string(v), ok
	}

	// Fill enough keys that the cache budget evicts, each read twice so the
	// second Get is served by the row cache.
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := b.Put(ctx, "t", k, []byte(k+" v0")); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 32; i++ {
			k := fmt.Sprintf("k%02d", i)
			if v, ok := get(k); !ok || v != k+" v0" {
				t.Fatalf("pass %d: %s = %q (ok=%v)", pass, k, v, ok)
			}
		}
	}

	// Overwrite a cached key: the very next read must see the new value.
	if err := b.Put(ctx, "t", "k00", []byte("k00 v1")); err != nil {
		t.Fatal(err)
	}
	if v, _ := get("k00"); v != "k00 v1" {
		t.Fatalf("after overwrite: %q", v)
	}

	// Compaction moves every row into a single table; cached entries stay
	// valid because logical content is unchanged.
	if _, err := b.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := get("k00"); v != "k00 v1" {
		t.Fatalf("after compact: %q", v)
	}

	// Delete a cached key: the tombstone must win over the cache.
	if v, ok := get("k01"); !ok || v != "k01 v0" { // ensure it is cached
		t.Fatalf("precondition: %q ok=%v", v, ok)
	}
	if err := b.Delete(ctx, "t", "k01"); err != nil {
		t.Fatal(err)
	}
	if v, ok := get("k01"); ok {
		t.Fatalf("after delete: got %q, want miss", v)
	}

	// Reset wipes the cache with the store.
	if err := b.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	if v, ok := get("k02"); ok {
		t.Fatalf("after reset: got %q, want miss", v)
	}
}

// TestRowCacheConcurrent hammers one hot key set with parallel readers and
// a writer; under -race this proves the fill/invalidate protocol and under
// any mode it proves readers never observe a torn or stale-beyond-reorder
// value (every observed value must be one the writer actually wrote).
func TestRowCacheConcurrent(t *testing.T) {
	ctx := context.Background()
	b := openT(t, t.TempDir(), Options{MemtableBytes: 2 << 10})
	defer b.Close()

	const keys = 8
	for i := 0; i < keys; i++ {
		if err := b.Put(ctx, "t", fmt.Sprintf("h%d", i), []byte(fmt.Sprintf("h%d rev 0", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("h%d", i%keys)
				v, ok, err := b.Get(ctx, "t", k)
				if err != nil || !ok {
					t.Errorf("get %s: ok=%v err=%v", k, ok, err)
					return
				}
				var kk string
				var rev int
				if _, err := fmt.Sscanf(string(v), "%s rev %d", &kk, &rev); err != nil || kk != k {
					t.Errorf("get %s: torn value %q", k, v)
					return
				}
			}
		}()
	}
	for rev := 1; rev <= 200; rev++ {
		for i := 0; i < keys; i++ {
			if err := b.Put(ctx, "t", fmt.Sprintf("h%d", i), []byte(fmt.Sprintf("h%d rev %d", i, rev))); err != nil {
				t.Fatal(err)
			}
		}
		if rev%50 == 0 {
			if _, err := b.Compact(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
