package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync/atomic"

	"rstore/internal/codec"
	"rstore/internal/types"
)

// SSTables are the immutable sorted runs of the LSM tree. The file layout
// follows the LevelDB shape:
//
//	[data block]* [index block] [bloom filter] [footer]
//
// Each data block holds prefix-compressed entries with restart points every
// sstRestartInterval entries, then a restart-offset array, the restart
// count, and a crc32 of everything before it. The index block maps each
// data block's last key to its (offset, length) handle; the bloom filter
// covers every key in the file; the fixed-size footer locates both and
// carries a magic number plus its own checksum. Blocks are the unit of both
// I/O and caching: a read loads (or finds cached) exactly one verified
// block and binary-searches its restart points.

const (
	// sstRestartInterval is the number of entries between full-key restart
	// points inside a data block.
	sstRestartInterval = 16

	// sstBlockBytes is the target uncompressed data-block size; a block is
	// cut once it crosses this threshold, so blocks slightly exceed it.
	sstBlockBytes = 4096

	// sstBloomBitsPerKey sizes the per-table bloom filter (~1% false
	// positives at 10 bits with 6 hash probes).
	sstBloomBitsPerKey = 10
	sstBloomHashes     = 6

	// sstFooterSize is the fixed footer: index handle (off,len u64 LE),
	// bloom handle (off,len u64 LE), crc32 of those 32 bytes, magic u32.
	sstFooterSize = 40

	// sstMagic identifies an lsm SSTable ("lsm1" LE).
	sstMagic = 0x316d736c

	// sstEntryKinds distinguish live values from tombstones in blocks.
	sstKindVal  byte = 1
	sstKindTomb byte = 2
)

// entryOverhead is the charge, beyond key and value bytes, that accounting
// attributes to one logical entry; dead-byte arithmetic on both WAL and
// SSTable entries uses the same constant so live ratios stay comparable.
const entryOverhead = 8

// logicalSize is the accounting weight of one entry.
func logicalSize(keyLen, valLen int) int64 {
	return int64(entryOverhead + keyLen + valLen)
}

// tableID hands out process-unique SSTable identities for block-cache keys:
// file sequence numbers alone would collide when several backends (one per
// cluster node) share a cache.
var tableID atomic.Uint64

// bloomHash is FNV-1a 64; it must be stable across processes because the
// filter is persisted inside the SSTable.
func bloomHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// bloomMayContain probes filter (layout: k(1 byte) bitmap) with
// double hashing: g_i = h1 + i*h2.
func bloomMayContain(filter []byte, key []byte) bool {
	if len(filter) < 2 {
		return true // degenerate filter: never exclude
	}
	k := int(filter[0])
	bits := filter[1:]
	nBits := uint64(len(bits)) * 8
	h := bloomHash(key)
	h1, h2 := h, h>>33|h<<31
	for i := 0; i < k; i++ {
		pos := (h1 + uint64(i)*h2) % nBits
		if bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// buildBloom constructs a filter over hashes with sstBloomBitsPerKey bits
// per key, in the layout bloomMayContain reads.
func buildBloom(hashes []uint64) []byte {
	nBits := len(hashes) * sstBloomBitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	out := make([]byte, 1+nBytes)
	out[0] = sstBloomHashes
	bits := out[1:]
	for _, h := range hashes {
		h1, h2 := h, h>>33|h<<31
		for i := 0; i < sstBloomHashes; i++ {
			pos := (h1 + uint64(i)*h2) % uint64(nBits)
			bits[pos/8] |= 1 << (pos % 8)
		}
	}
	return out
}

// sstWriter streams sorted entries into an SSTable file. add must be called
// in strictly increasing key order; finish seals the file (data flushed and
// fsynced) but does not rename or register it — that is the caller's commit
// protocol.
type sstWriter struct {
	f   *os.File
	w   *bufio.Writer
	off int64

	block    []byte
	restarts []uint32
	nRestart int // entries since the last restart point
	lastKey  []byte

	index  []byte
	hashes []uint64

	// failBeforeFooter makes finish abort after the data blocks but before
	// the footer (crash injection): the file is left partial, exactly as a
	// power failure mid-flush would.
	failBeforeFooter bool

	// logicalAll/logicalTomb feed accounting: total logical size of every
	// entry written, and of the tombstones among them.
	logicalAll  int64
	logicalTomb int64
	entries     int64
}

func newSSTWriter(path string) (*sstWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	return &sstWriter{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (sw *sstWriter) add(key, value []byte, tomb bool) error {
	// The first entry of every block is a restart point (a block must be
	// decodable standalone), as is every sstRestartInterval-th entry after.
	shared := 0
	if len(sw.block) > 0 && sw.nRestart < sstRestartInterval {
		max := len(sw.lastKey)
		if len(key) < max {
			max = len(key)
		}
		for shared < max && sw.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		sw.restarts = append(sw.restarts, uint32(len(sw.block)))
		sw.nRestart = 0
	}
	kind := sstKindVal
	if tomb {
		kind = sstKindTomb
	}
	sw.block = codec.PutUvarint(sw.block, uint64(shared))
	sw.block = codec.PutUvarint(sw.block, uint64(len(key)-shared))
	sw.block = codec.PutUvarint(sw.block, uint64(len(value)))
	sw.block = append(sw.block, kind)
	sw.block = append(sw.block, key[shared:]...)
	sw.block = append(sw.block, value...)
	sw.nRestart++
	sw.lastKey = append(sw.lastKey[:0], key...)
	sw.hashes = append(sw.hashes, bloomHash(key))
	ls := logicalSize(len(key), len(value))
	sw.logicalAll += ls
	if tomb {
		sw.logicalTomb += ls
	}
	sw.entries++
	if len(sw.block) >= sstBlockBytes {
		return sw.finishBlock()
	}
	return nil
}

// finishBlock seals the current data block (restart array, count, crc),
// writes it, and records its index entry.
func (sw *sstWriter) finishBlock() error {
	if len(sw.block) == 0 {
		return nil
	}
	for _, r := range sw.restarts {
		sw.block = binary.LittleEndian.AppendUint32(sw.block, r)
	}
	sw.block = binary.LittleEndian.AppendUint32(sw.block, uint32(len(sw.restarts)))
	sw.block = binary.LittleEndian.AppendUint32(sw.block, crc32.ChecksumIEEE(sw.block))
	if _, err := sw.w.Write(sw.block); err != nil {
		return fmt.Errorf("lsm: sstable write: %w", err)
	}
	sw.index = codec.PutBytes(sw.index, sw.lastKey)
	sw.index = codec.PutUvarint(sw.index, uint64(sw.off))
	sw.index = codec.PutUvarint(sw.index, uint64(len(sw.block)))
	sw.off += int64(len(sw.block))
	sw.block = sw.block[:0]
	sw.restarts = sw.restarts[:0]
	sw.nRestart = 0
	return nil
}

// finish writes the index, bloom filter, and footer, then flushes and
// fsyncs. The file is complete but still under its temporary name.
func (sw *sstWriter) finish() error {
	if err := sw.finishBlock(); err != nil {
		return err
	}
	if sw.failBeforeFooter {
		sw.w.Flush() // data blocks on disk, no footer: a torn flush
		return ErrCrashed
	}
	indexOff := sw.off
	sw.index = binary.LittleEndian.AppendUint32(sw.index, crc32.ChecksumIEEE(sw.index))
	if _, err := sw.w.Write(sw.index); err != nil {
		return fmt.Errorf("lsm: sstable write: %w", err)
	}
	indexLen := int64(len(sw.index))
	bloomOff := indexOff + indexLen
	bloom := buildBloom(sw.hashes)
	bloom = binary.LittleEndian.AppendUint32(bloom, crc32.ChecksumIEEE(bloom))
	if _, err := sw.w.Write(bloom); err != nil {
		return fmt.Errorf("lsm: sstable write: %w", err)
	}
	var footer [sstFooterSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(indexLen))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[24:32], uint64(len(bloom)))
	binary.LittleEndian.PutUint32(footer[32:36], crc32.ChecksumIEEE(footer[0:32]))
	binary.LittleEndian.PutUint32(footer[36:40], sstMagic)
	if _, err := sw.w.Write(footer[:]); err != nil {
		return fmt.Errorf("lsm: sstable write: %w", err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("lsm: sstable flush: %w", err)
	}
	if err := sw.f.Sync(); err != nil {
		return fmt.Errorf("lsm: sstable sync: %w", err)
	}
	return sw.f.Close()
}

// abort closes the partial file. An injected crash leaves it on disk (the
// process "died" with the file half-written; recovery must delete it as
// debris); any other failure cleans up immediately.
func (sw *sstWriter) abort(path string, cause error) {
	sw.f.Close()
	if !errors.Is(cause, ErrCrashed) {
		os.Remove(path)
	}
}

// indexEntry locates one data block: the largest key it contains and its
// file handle.
type indexEntry struct {
	lastKey []byte
	off     int64
	length  int64
}

// sstable is an open, immutable table: file handle, decoded index, bloom
// filter, and the live-byte counter accounting maintains under the
// backend's mutex.
type sstable struct {
	id    uint64 // block-cache identity, unique per open table per process
	seq   int64  // file sequence (naming, MANIFEST)
	path  string
	f     *os.File
	size  int64
	index []indexEntry
	bloom []byte

	// live is the logical payload not shadowed by newer entries; dead =
	// size - live drives compaction victim selection. Guarded by the
	// owning Backend's mu.
	live int64
}

// openSSTable maps and verifies a table file: footer magic and checksum,
// then the index and bloom blocks (each crc-checked in full).
func openSSTable(path string, seq int64) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	size := st.Size()
	if size < sstFooterSize {
		f.Close()
		return nil, fmt.Errorf("%w: lsm sstable %s truncated (%d bytes)", types.ErrCorrupt, path, size)
	}
	var footer [sstFooterSize]byte
	if _, err := f.ReadAt(footer[:], size-sstFooterSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if binary.LittleEndian.Uint32(footer[36:40]) != sstMagic {
		f.Close()
		return nil, fmt.Errorf("%w: lsm sstable %s bad magic", types.ErrCorrupt, path)
	}
	if binary.LittleEndian.Uint32(footer[32:36]) != crc32.ChecksumIEEE(footer[0:32]) {
		f.Close()
		return nil, fmt.Errorf("%w: lsm sstable %s footer checksum", types.ErrCorrupt, path)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:16]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[16:24]))
	bloomLen := int64(binary.LittleEndian.Uint64(footer[24:32]))
	if indexOff < 0 || indexLen < 4 || bloomOff < 0 || bloomLen < 4 ||
		indexOff+indexLen > size || bloomOff+bloomLen > size {
		f.Close()
		return nil, fmt.Errorf("%w: lsm sstable %s footer handles out of range", types.ErrCorrupt, path)
	}
	readChecked := func(off, n int64, what string) ([]byte, error) {
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, fmt.Errorf("lsm: %w", err)
		}
		body, sum := buf[:n-4], binary.LittleEndian.Uint32(buf[n-4:])
		if crc32.ChecksumIEEE(body) != sum {
			return nil, fmt.Errorf("%w: lsm sstable %s %s checksum", types.ErrCorrupt, path, what)
		}
		return body, nil
	}
	rawIndex, err := readChecked(indexOff, indexLen, "index")
	if err != nil {
		f.Close()
		return nil, err
	}
	bloom, err := readChecked(bloomOff, bloomLen, "bloom")
	if err != nil {
		f.Close()
		return nil, err
	}
	var index []indexEntry
	for len(rawIndex) > 0 {
		key, rest, err := codec.Bytes(rawIndex)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: lsm sstable %s index entry", types.ErrCorrupt, path)
		}
		off, rest, err := codec.Uvarint(rest)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: lsm sstable %s index entry", types.ErrCorrupt, path)
		}
		length, rest2, err := codec.Uvarint(rest)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: lsm sstable %s index entry", types.ErrCorrupt, path)
		}
		if int64(off)+int64(length) > indexOff {
			f.Close()
			return nil, fmt.Errorf("%w: lsm sstable %s index handle out of range", types.ErrCorrupt, path)
		}
		index = append(index, indexEntry{lastKey: append([]byte(nil), key...), off: int64(off), length: int64(length)})
		rawIndex = rest2
	}
	return &sstable{
		id: tableID.Add(1), seq: seq, path: path, f: f, size: size,
		index: index, bloom: bloom,
	}, nil
}

func (t *sstable) close() error { return t.f.Close() }

// loadBlock returns data block i, serving from cache when possible. The
// returned slice is the block body without its trailing crc (restart array
// and count still attached) and must be treated as read-only.
func (t *sstable) loadBlock(i int, cache *BlockCache) ([]byte, error) {
	h := t.index[i]
	if cache != nil {
		if b, ok := cache.get(t.id, h.off); ok {
			return b, nil
		}
	}
	buf := make([]byte, h.length)
	if _, err := t.f.ReadAt(buf, h.off); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if h.length < 12 {
		return nil, fmt.Errorf("%w: lsm sstable %s block %d too short", types.ErrCorrupt, t.path, i)
	}
	body, sum := buf[:h.length-4], binary.LittleEndian.Uint32(buf[h.length-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: lsm sstable %s block %d checksum", types.ErrCorrupt, t.path, i)
	}
	if cache != nil {
		cache.put(t.id, h.off, body)
	}
	return body, nil
}

// blockEntries splits a verified block body into its entry region and
// restart-offset array.
func blockEntries(body []byte) (entries []byte, restarts []byte, n int, err error) {
	if len(body) < 4 {
		return nil, nil, 0, fmt.Errorf("%w: lsm block trailer", types.ErrCorrupt)
	}
	n = int(binary.LittleEndian.Uint32(body[len(body)-4:]))
	rLen := n * 4
	if n < 1 || rLen+4 > len(body) {
		return nil, nil, 0, fmt.Errorf("%w: lsm block restart count %d", types.ErrCorrupt, n)
	}
	return body[:len(body)-4-rLen], body[len(body)-4-rLen : len(body)-4], n, nil
}

// decodeEntry reads one entry at pos, appending the unshared suffix onto
// key[:shared]. It returns the rebuilt key, value, kind, and next position.
func decodeEntry(entries []byte, pos int, key []byte) ([]byte, []byte, byte, int, error) {
	rest := entries[pos:]
	shared, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("%w: lsm block entry", types.ErrCorrupt)
	}
	unshared, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("%w: lsm block entry", types.ErrCorrupt)
	}
	vlen, rest, err := codec.Uvarint(rest)
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("%w: lsm block entry", types.ErrCorrupt)
	}
	if len(rest) < 1 || int(shared) > len(key) || uint64(len(rest)-1) < unshared+vlen {
		return nil, nil, 0, 0, fmt.Errorf("%w: lsm block entry bounds", types.ErrCorrupt)
	}
	kind := rest[0]
	rest = rest[1:]
	key = append(key[:shared], rest[:unshared]...)
	val := rest[unshared : unshared+vlen]
	next := len(entries) - len(rest) + int(unshared+vlen)
	return key, val, kind, next, nil
}

// get point-looks-up key in the table: bloom probe, index binary search,
// block load, restart binary search, linear scan. The returned value
// aliases the cached block.
func (t *sstable) get(key []byte, cache *BlockCache) (val []byte, tomb, ok bool, err error) {
	if !bloomMayContain(t.bloom, key) {
		return nil, false, false, nil
	}
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].lastKey, key) >= 0
	})
	if i == len(t.index) {
		return nil, false, false, nil
	}
	body, err := t.loadBlock(i, cache)
	if err != nil {
		return nil, false, false, err
	}
	entries, restarts, n, err := blockEntries(body)
	if err != nil {
		return nil, false, false, err
	}
	// Binary search restart points for the last restart with key <= target.
	// Restart entries have shared == 0, so their keys decode standalone.
	restartKey := func(j int) ([]byte, error) {
		pos := int(binary.LittleEndian.Uint32(restarts[j*4:]))
		k, _, _, _, err := decodeEntry(entries, pos, nil)
		return k, err
	}
	var serr error
	idx := sort.Search(n, func(j int) bool {
		if serr != nil {
			return true
		}
		k, err := restartKey(j)
		if err != nil {
			serr = err
			return true
		}
		return bytes.Compare(k, key) > 0
	})
	if serr != nil {
		return nil, false, false, serr
	}
	start := 0
	if idx > 0 {
		start = int(binary.LittleEndian.Uint32(restarts[(idx-1)*4:]))
	}
	var kbuf []byte
	pos := start
	for pos < len(entries) {
		k, v, kind, next, err := decodeEntry(entries, pos, kbuf)
		if err != nil {
			return nil, false, false, err
		}
		switch bytes.Compare(k, key) {
		case 0:
			return v, kind == sstKindTomb, true, nil
		case 1:
			return nil, false, false, nil // passed it: not in this block
		}
		kbuf, pos = k, next
	}
	return nil, false, false, nil
}

// sstIter walks a table in key order, implementing the merge source
// interface. It loads blocks lazily through the cache.
type sstIter struct {
	t     *sstable
	cache *BlockCache

	bi       int // current block index
	entries  []byte
	pos      int
	curKey   []byte
	curVal   []byte
	curKind  byte
	valid_   bool
	finished bool
}

// iter positions at the first entry with key >= start (the whole table when
// start is nil). The error, if any, is surfaced through the iterator's
// first next().
func (t *sstable) iterGE(start []byte, cache *BlockCache) (*sstIter, error) {
	it := &sstIter{t: t, cache: cache}
	bi := 0
	if start != nil {
		bi = sort.Search(len(t.index), func(i int) bool {
			return bytes.Compare(t.index[i].lastKey, start) >= 0
		})
	}
	if bi == len(t.index) {
		it.finished = true
		return it, nil
	}
	if err := it.loadBlockAt(bi); err != nil {
		return nil, err
	}
	if err := it.advance(); err != nil {
		return nil, err
	}
	if start != nil {
		for it.valid_ && bytes.Compare(it.curKey, start) < 0 {
			if err := it.advance(); err != nil {
				return nil, err
			}
		}
	}
	return it, nil
}

func (it *sstIter) loadBlockAt(bi int) error {
	body, err := it.t.loadBlock(bi, it.cache)
	if err != nil {
		return err
	}
	entries, _, _, err := blockEntries(body)
	if err != nil {
		return err
	}
	it.bi, it.entries, it.pos = bi, entries, 0
	return nil
}

// advance steps to the next entry, crossing block boundaries.
func (it *sstIter) advance() error {
	for it.pos >= len(it.entries) {
		if it.bi+1 >= len(it.t.index) {
			it.valid_, it.finished = false, true
			return nil
		}
		if err := it.loadBlockAt(it.bi + 1); err != nil {
			return err
		}
	}
	k, v, kind, next, err := decodeEntry(it.entries, it.pos, it.curKey)
	if err != nil {
		return err
	}
	it.curKey, it.curVal, it.curKind, it.pos = k, v, kind, next
	it.valid_ = true
	return nil
}

func (it *sstIter) valid() bool   { return it.valid_ }
func (it *sstIter) key() []byte   { return it.curKey }
func (it *sstIter) value() []byte { return it.curVal }
func (it *sstIter) tomb() bool    { return it.curKind == sstKindTomb }
func (it *sstIter) next() error   { return it.advance() }
