package lsm

import (
	"container/list"
	"sync"
)

// BlockCache is a byte-capacity-bounded LRU over verified SSTable data
// blocks, shared across every Backend handed the same instance (a cluster's
// worth of nodes in one process, typically). Keys are (table identity,
// block offset); table identities are process-unique and never reused, so
// entries for compacted-away tables simply age out.
//
// The cache is sharded to keep lock contention off the hot read path: a
// cheap hash of the key picks one of cacheShards independent LRUs.
type BlockCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 16

type cacheKey struct {
	table uint64
	off   int64
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int64
	size  int64
	ll    *list.List // front = most recent
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key   cacheKey
	block []byte
}

// NewBlockCache builds a cache bounded by capBytes of block payload
// (capBytes <= 0 selects a 32 MiB default).
func NewBlockCache(capBytes int64) *BlockCache {
	if capBytes <= 0 {
		capBytes = 32 << 20
	}
	c := &BlockCache{}
	per := capBytes / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, ll: list.New(), items: map[cacheKey]*list.Element{}}
	}
	return c
}

func (c *BlockCache) shard(k cacheKey) *cacheShard {
	h := k.table*0x9e3779b97f4a7c15 + uint64(k.off)
	return &c.shards[(h>>57)%cacheShards]
}

// get returns the cached block for (table, off). The slice is shared and
// must be treated as read-only by every caller.
func (c *BlockCache) get(table uint64, off int64) ([]byte, bool) {
	k := cacheKey{table, off}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

// put inserts a verified block, evicting least-recently-used entries until
// the shard fits its budget. block is retained as-is: callers hand over
// ownership and must not mutate it afterwards.
func (c *BlockCache) put(table uint64, off int64, block []byte) {
	k := cacheKey{table, off}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		// Identical immutable content; just refresh recency.
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&cacheEntry{key: k, block: block})
	s.items[k] = el
	s.size += int64(len(block))
	for s.size > s.cap && s.ll.Len() > 1 {
		back := s.ll.Back()
		ent := back.Value.(*cacheEntry)
		s.ll.Remove(back)
		delete(s.items, ent.key)
		s.size -= int64(len(ent.block))
	}
}
