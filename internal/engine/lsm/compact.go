package lsm

import (
	"bytes"
	"context"
	"math/bits"
	"os"

	"rstore/internal/engine"
	"rstore/internal/types"
)

// This file holds the structural write paths: memtable flush, the merged
// iteration shared by scans/recovery/compaction, size-tiered auto
// compaction after a flush, and the full merge behind engine.Compactor.
//
// Every path commits through the MANIFEST rename (see manifest.go) and is
// ordered so that a crash at any point leaves either the old state or the
// new state plus deletable debris — never a state that loses an
// acknowledged write.

// source is one sorted input of a merged iteration: a memtable or SSTable
// iterator positioned on internal keys. key/value slices may be
// invalidated by next.
type source interface {
	valid() bool
	key() []byte
	value() []byte
	tomb() bool
	next() error
}

// mergeSources walks sources in unified key order. Sources are in age
// order (index 0 oldest); for each distinct key, emit receives the entry
// from the newest source holding it, and shadowed (when non-nil) receives
// every superseded entry. emit's key/value alias iterator buffers.
func mergeSources(sources []source, emit func(key, value []byte, tomb bool, src int) error, shadowed func(src int, keyLen, valLen int) error) error {
	var kbuf []byte
	for {
		win := -1
		for i, s := range sources {
			if !s.valid() {
				continue
			}
			if win == -1 || bytes.Compare(s.key(), sources[win].key()) <= 0 {
				// <= : an equal key in a later (newer) source supersedes.
				win = i
			}
		}
		if win == -1 {
			return nil
		}
		if err := emit(sources[win].key(), sources[win].value(), sources[win].tomb(), win); err != nil {
			return err
		}
		// The winner's buffer changes once advanced, so the key is copied
		// before the duplicate sweep.
		kbuf = append(kbuf[:0], sources[win].key()...)
		for i, s := range sources {
			if !s.valid() || !bytes.Equal(s.key(), kbuf) {
				continue
			}
			if i != win && shadowed != nil {
				if err := shadowed(i, len(s.key()), len(s.value())); err != nil {
					return err
				}
			}
			if err := s.next(); err != nil {
				return err
			}
		}
	}
}

// maybeFlushLocked flushes a full memtable and then lets size-tiered
// compaction absorb the new table. Callers hold b.mu exclusively.
func (b *Backend) maybeFlushLocked(ctx context.Context) error {
	if b.mem.bytes < b.opts.MemtableBytes {
		return nil
	}
	if err := b.flushLocked(ctx); err != nil {
		return err
	}
	return b.maybeTierCompactLocked(ctx)
}

// flushLocked writes the memtable to a new SSTable and retires the WAL.
// Commit order: sst renamed into place → fresh WAL created → MANIFEST
// rename (the commit point) → in-memory swap and old-WAL delete. A crash
// before the MANIFEST leaves the old WAL authoritative and the new files
// as debris. Callers hold b.mu exclusively.
func (b *Backend) flushLocked(ctx context.Context) error {
	if b.mem.count == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	seq := b.nextSeq
	b.nextSeq++
	tmp := b.sstPath(seq) + ".tmp"
	sw, err := newSSTWriter(tmp)
	if err != nil {
		return err
	}
	sw.failBeforeFooter = b.crash == "mid-flush"
	for it := b.mem.iter(nil); it.valid(); it.next() {
		if err := sw.add(it.key(), it.value(), it.tomb()); err != nil {
			sw.abort(tmp, err)
			return err
		}
	}
	if err := sw.finish(); err != nil {
		sw.abort(tmp, err)
		return err
	}
	if err := os.Rename(tmp, b.sstPath(seq)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	if b.crash == "flush-renamed" {
		return ErrCrashed
	}
	walSeq := b.nextSeq
	b.nextSeq++
	nw, err := createWAL(b.walPath(walSeq), walSeq)
	if err != nil {
		return err
	}
	if err := syncDir(b.dir); err != nil {
		nw.close()
		return err
	}
	nt, err := openSSTable(b.sstPath(seq), seq)
	if err != nil {
		nw.close()
		return err
	}
	newTables := append(append([]*sstable(nil), b.tables...), nt)
	if err := writeManifest(b.dir, b.nextSeq, walSeq, newTables); err != nil {
		nw.close()
		nt.close()
		return err
	}
	// Committed. Every memtable value entry is globally newest, so the new
	// table's dead weight is exactly its tombstones.
	nt.live = nt.size - sw.logicalTomb
	b.tables = newTables
	oldWAL := b.wal
	b.wal = nw
	b.mem = newMemtable()
	oldWAL.close()
	os.Remove(b.walPath(oldWAL.seq))
	return syncDir(b.dir)
}

// sizeClass buckets a table size for tiering: tables within the same
// power-of-4 band are peers worth merging.
func sizeClass(size int64) int {
	if size < 1 {
		size = 1
	}
	return (bits.Len64(uint64(size)) + 1) / 2
}

// maybeTierCompactLocked runs size-tiered compaction while the table count
// is at or above MaxTables: it merges the cheapest contiguous run of
// tierWidth tables, preferring a run within one size class. Callers hold
// b.mu exclusively; the work happens inline (the writer pays for the merge
// it triggered), skipped entirely when an explicit Compact is in flight.
func (b *Backend) maybeTierCompactLocked(ctx context.Context) error {
	const tierWidth = 4
	for len(b.tables) >= b.opts.MaxTables && len(b.tables) >= tierWidth {
		if !b.compactMu.TryLock() {
			return nil // explicit Compact in flight; it will absorb the backlog
		}
		lo := b.pickRunLocked(tierWidth)
		err := b.mergeRunLocked(ctx, lo, lo+tierWidth-1)
		b.compactMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// pickRunLocked chooses the start of the tierWidth-wide contiguous run to
// merge: the first same-size-class run if one exists, otherwise the run
// with the smallest total size.
func (b *Backend) pickRunLocked(width int) int {
	best, bestSize := 0, int64(-1)
	for lo := 0; lo+width <= len(b.tables); lo++ {
		var total int64
		same := true
		cls := sizeClass(b.tables[lo].size)
		for _, t := range b.tables[lo : lo+width] {
			total += t.size
			if sizeClass(t.size) != cls {
				same = false
			}
		}
		if same {
			return lo
		}
		if bestSize < 0 || total < bestSize {
			best, bestSize = lo, total
		}
	}
	return best
}

// mergeRunLocked merges tables[lo..hi] into one table under a held b.mu
// (the inline, post-flush path). Tombstones are dropped only when the run
// includes the oldest table — otherwise an even older shadowed version
// would resurrect.
func (b *Backend) mergeRunLocked(ctx context.Context, lo, hi int) error {
	victims := b.tables[lo : hi+1 : hi+1]
	seq := b.nextSeq
	b.nextSeq++
	out, err := b.writeMerged(ctx, victims, lo == 0, seq, b.crash)
	if err != nil {
		return err
	}
	return b.commitMergedLocked(out, lo, hi)
}

// writeMerged k-way-merges victims (age order) into a new SSTable left at
// its temporary name, returning the sealed writer state. Safe without b.mu:
// SSTables are immutable. dropTombs must only be true when victims include
// the oldest table.
type mergedOut struct {
	seq  int64
	tmp  string
	tomb int64 // logical tombstone weight kept in the output
}

// crash is the caller's snapshot of b.crash, taken under b.mu (this
// function may run without the lock).
func (b *Backend) writeMerged(ctx context.Context, victims []*sstable, dropTombs bool, seq int64, crash string) (mergedOut, error) {
	tmp := b.sstPath(seq) + ".tmp"
	sw, err := newSSTWriter(tmp)
	if err != nil {
		return mergedOut{}, err
	}
	sw.failBeforeFooter = crash == "mid-merge"
	sources := make([]source, len(victims))
	for i, t := range victims {
		it, err := t.iterGE(nil, b.cache)
		if err != nil {
			sw.abort(tmp, err)
			return mergedOut{}, err
		}
		sources[i] = it
	}
	err = mergeSources(sources, func(key, value []byte, tomb bool, _ int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if tomb && dropTombs {
			return nil
		}
		return sw.add(key, value, tomb)
	}, nil)
	if err == nil {
		err = sw.finish()
	}
	if err != nil {
		sw.abort(tmp, err)
		return mergedOut{}, err
	}
	return mergedOut{seq: seq, tmp: tmp, tomb: sw.logicalTomb}, nil
}

// commitMergedLocked renames the merged table into place, commits the
// MANIFEST with it replacing tables[lo..hi], splices the in-memory state,
// and deletes the victims. Callers hold b.mu exclusively.
func (b *Backend) commitMergedLocked(out mergedOut, lo, hi int) error {
	//lint:rstore-vet fsyncrename: out.tmp was sealed by writeMerged (sw.finish syncs) before the handoff to this commit phase
	if err := os.Rename(out.tmp, b.sstPath(out.seq)); err != nil {
		os.Remove(out.tmp)
		return err
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	if b.crash == "merge-renamed" {
		return ErrCrashed
	}
	nt, err := openSSTable(b.sstPath(out.seq), out.seq)
	if err != nil {
		return err
	}
	victims := b.tables[lo : hi+1]
	newTables := make([]*sstable, 0, len(b.tables)-len(victims)+1)
	newTables = append(newTables, b.tables[:lo]...)
	newTables = append(newTables, nt)
	newTables = append(newTables, b.tables[hi+1:]...)
	if err := writeManifest(b.dir, b.nextSeq, b.wal.seq, newTables); err != nil {
		nt.close()
		return err
	}
	// Committed: the output inherits the victims' live weight (concurrent
	// overwrites during the merge already decremented it there).
	var victimLive, victimSize int64
	for _, t := range victims {
		victimLive += t.live
		victimSize += t.size
	}
	nt.live = victimLive
	b.tables = newTables
	if reclaimed := victimSize - nt.size; reclaimed > 0 {
		b.compacted += reclaimed
	}
	if b.crash == "merge-manifested" {
		// The commit happened but the victims were not yet deleted; they
		// are debris the next Open removes.
		return ErrCrashed
	}
	for _, t := range victims {
		t.close()
		os.Remove(t.path)
	}
	return syncDir(b.dir)
}

// Compact flushes the memtable and, when anything is reclaimable, merges
// every SSTable into one, dropping shadowed versions and all tombstones.
// The merge itself runs without b.mu — reads and writes proceed — and
// commits only if the table set it captured is still intact (same epoch,
// no competing merge).
func (b *Backend) Compact(ctx context.Context) (engine.CompactionStats, error) {
	if err := ctx.Err(); err != nil {
		return engine.CompactionStats{}, err
	}
	b.compactMu.Lock()
	defer b.compactMu.Unlock()

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return engine.CompactionStats{}, types.ErrClosed
	}
	if err := b.flushLocked(ctx); err != nil {
		b.mu.Unlock()
		return engine.CompactionStats{}, err
	}
	var dead int64
	for _, t := range b.tables {
		dead += t.size - t.live
	}
	nothingToDo := len(b.tables) == 0 || (len(b.tables) == 1 && dead <= 0)
	victims := append([]*sstable(nil), b.tables...)
	epoch, crash := b.epoch, b.crash
	var seq int64
	if !nothingToDo {
		seq = b.nextSeq
		b.nextSeq++
	}
	b.mu.Unlock()

	if nothingToDo {
		return b.CompactionStats(ctx)
	}
	out, err := b.writeMerged(ctx, victims, true, seq, crash)
	if err != nil {
		return engine.CompactionStats{}, err
	}
	b.mu.Lock()
	stillThere := !b.closed && b.epoch == epoch && len(b.tables) >= len(victims)
	if stillThere {
		for i, t := range victims {
			if b.tables[i] != t {
				stillThere = false
				break
			}
		}
	}
	if !stillThere {
		// Reset (or close) intervened; the output must not resurrect data.
		b.mu.Unlock()
		os.Remove(out.tmp)
		if b.closed {
			return engine.CompactionStats{}, types.ErrClosed
		}
		return b.CompactionStats(ctx)
	}
	err = b.commitMergedLocked(out, 0, len(victims)-1)
	b.mu.Unlock()
	if err != nil {
		return engine.CompactionStats{}, err
	}
	return b.CompactionStats(ctx)
}

// CompactionStats reports the reclaim state: total file bytes, the portion
// a full merge must keep, cumulative reclaimed volume, and the file count.
// The WAL counts as fully live (its dead records die at the next flush,
// not by compaction).
func (b *Backend) CompactionStats(ctx context.Context) (engine.CompactionStats, error) {
	if err := ctx.Err(); err != nil {
		return engine.CompactionStats{}, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return engine.CompactionStats{}, types.ErrClosed
	}
	st := engine.CompactionStats{
		DiskBytes:      b.wal.size,
		LiveBytes:      b.wal.size,
		CompactedBytes: b.compacted,
		Segments:       len(b.tables) + 1, // + the WAL
	}
	for _, t := range b.tables {
		st.DiskBytes += t.size
		live := t.live
		if live < 0 {
			// Prefix compression can make logical dead weight exceed the
			// physical file; clamp for reporting.
			live = 0
		}
		st.LiveBytes += live
	}
	return st, nil
}
