// Package lsm is the log-structured merge-tree storage engine: the scaling
// tier above disklog for read-heavy, version-dense workloads (the RStore
// premise — many overlapping versions under heavy read traffic).
//
// Writes land in a sorted in-memory memtable (a skiplist) after being made
// durable in a checksummed write-ahead log; a full memtable is flushed into
// an immutable sorted-string table (SSTable) with a per-block restart-point
// format, a block index, and a bloom filter. Point reads probe a hot-key
// row cache first (one lookup answers a repeated Get), then the memtable,
// then each SSTable from newest to oldest — the bloom filter skips tables
// that cannot hold the key, and a shared LRU block cache serves hot blocks
// without touching disk. Size-tiered compaction merges runs of adjacent
// tables, dropping shadowed versions, and a full merge (the Compactor
// interface) also drops tombstones. The MANIFEST names the live files; its
// atomic rename is the commit point for every structural change, which is
// what makes flush, compaction, and reset crash-safe.
//
// Directory layout: MANIFEST, LOCK (flock), wal-<seq>.log (exactly one
// live), sst-<seq>.sst (oldest first per the MANIFEST). The directory is
// flock-ed for the lifetime of the backend, mirroring disklog: one logical
// writer per data directory. See docs/FORMATS.md for the normative byte
// formats.
package lsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"rstore/internal/codec"
	"rstore/internal/engine"
	"rstore/internal/types"
)

// Options tune a Backend; the zero value selects production defaults.
type Options struct {
	// MemtableBytes is the approximate resident size at which the memtable
	// is flushed to an SSTable (default 4 MiB). Tests set it small to force
	// flushes.
	MemtableBytes int64

	// MaxTables is the SSTable count that triggers size-tiered compaction
	// after a flush (default 8).
	MaxTables int

	// Cache is the block cache serving reads. Passing one instance to every
	// backend of a cluster shares its capacity across nodes; nil gives the
	// backend a private default cache.
	Cache *BlockCache

	// RowCacheBytes bounds the per-backend row cache that answers repeated
	// point reads of hot keys with a single probe (default 8 MiB; negative
	// disables it). Unlike Cache it is never shared: replicas may diverge
	// mid-repair, so row entries are private per data directory.
	RowCacheBytes int64
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxTables <= 0 {
		o.MaxTables = 8
	}
	if o.Cache == nil {
		o.Cache = NewBlockCache(0)
	}
	if o.RowCacheBytes == 0 {
		o.RowCacheBytes = 8 << 20
	}
	return o
}

// ErrCrashed reports that a crash-injection point fired (tests only): the
// backend stopped mid-operation exactly as a power failure would, and must
// be Kill-ed and reopened.
var ErrCrashed = errors.New("lsm: injected crash")

var (
	_ engine.Backend    = (*Backend)(nil)
	_ engine.Compactor  = (*Backend)(nil)
	_ engine.Resetter   = (*Backend)(nil)
	_ engine.HashRanger = (*Backend)(nil)
)

// Backend is the LSM engine for one node's data directory. It implements
// engine.Backend, engine.Compactor, and engine.Resetter.
type Backend struct {
	dir   string
	opts  Options
	cache *BlockCache
	rows  *rowCache // hot-key row cache; nil when disabled
	lock  *os.File  // flock-held LOCK file; released on Close

	// mu guards all mutable state below. The write path (Put/Delete/
	// BatchPut/flush) holds it exclusively; reads share it.
	mu     sync.RWMutex
	closed bool
	// epoch counts Resets; a compaction validates it before committing so a
	// concurrent wipe can never resurrect merged data.
	epoch   int64
	mem     *memtable
	wal     *wal
	tables  []*sstable // age order: oldest first, newest last
	nextSeq int64
	// bytes is Σ len(value) over live keys — the BytesStored contract.
	bytes int64
	// keys counts live keys per user table, backing Tables().
	keys map[string]int
	// compacted accumulates bytes reclaimed by merges (CompactionStats).
	compacted int64
	// gen counts logical-content changes (every applied put/delete/reset);
	// flush and merge leave it alone because they do not change contents.
	// hashMemo caches the last HashTree digest per (table, fanout) at the
	// gen it was computed, so repeated anti-entropy sweeps over unchanged
	// tables skip the merged scan entirely (see hashtree.go).
	gen      int64
	hashMemo map[hashMemoKey]hashMemoEntry

	// compactMu serializes merges (explicit Compact and post-flush
	// size-tiered compaction) so two merges can never race over the same
	// victim tables.
	compactMu sync.Mutex

	// crash names the active crash-injection point ("" in production).
	crash string

	walBuf []byte // record scratch, guarded by mu (write path only)
}

// Open mounts (creating if needed) the LSM store in dir and recovers it:
// debris from crashes is deleted, the MANIFEST's tables are mounted and
// scanned to rebuild accounting, and the WAL is replayed into a fresh
// memtable (truncating a torn tail).
func Open(dir string, opts Options) (*Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		dir:  dir,
		opts: opts.withDefaults(),
		lock: lock,
		mem:  newMemtable(),
		keys: map[string]int{},
	}
	b.cache = b.opts.Cache
	if b.opts.RowCacheBytes > 0 {
		b.rows = newRowCache(b.opts.RowCacheBytes)
	}
	if err := b.recover(); err != nil {
		b.closeFiles()
		return nil, err
	}
	return b, nil
}

func (b *Backend) recover() error {
	nextSeq, walSeq, sstSeqs, exists, err := readManifest(b.dir)
	if !exists && err == nil {
		// Never initialized (or crashed before the first commit): any lsm
		// files present are uncommitted debris from that first attempt.
		if err := b.removeDebris(map[string]bool{}); err != nil {
			return err
		}
		b.nextSeq = 2
		w, err := createWAL(b.walPath(1), 1)
		if err != nil {
			return err
		}
		if err := syncDir(b.dir); err != nil {
			w.close()
			return err
		}
		if err := writeManifest(b.dir, b.nextSeq, 1, nil); err != nil {
			w.close()
			return err
		}
		b.wal = w
		return nil
	}
	if err != nil {
		return err
	}
	b.nextSeq = nextSeq
	referenced := map[string]bool{filepath.Base(b.walPath(walSeq)): true}
	for _, seq := range sstSeqs {
		referenced[filepath.Base(b.sstPath(seq))] = true
	}
	if err := b.removeDebris(referenced); err != nil {
		return err
	}
	for _, seq := range sstSeqs {
		t, err := openSSTable(b.sstPath(seq), seq)
		if err != nil {
			return err
		}
		b.tables = append(b.tables, t)
	}
	if err := b.rebuildAccounting(); err != nil {
		return err
	}
	// Replay the WAL through the normal apply path so memtable state and
	// accounting (including decrements against just-mounted tables) are
	// rebuilt exactly as the original writes built them.
	w, err := replayWAL(b.walPath(walSeq), walSeq, func(kind byte, table, key string, value []byte) error {
		ik := ikey(table, key)
		if kind == walDel {
			return b.applyDelLocked(table, ik)
		}
		return b.applyPutLocked(table, ik, append([]byte(nil), value...))
	})
	if err != nil {
		return err
	}
	b.wal = w
	return nil
}

// removeDebris deletes every lsm-owned file (sst-*.sst, wal-*.log, *.tmp)
// not in referenced. Foreign files (GEOMETRY and friends) are left alone.
func (b *Backend) removeDebris(referenced map[string]bool) error {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	removed := false
	for _, e := range entries {
		name := e.Name()
		if referenced[name] {
			continue
		}
		ours := strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "sst-") && strings.HasSuffix(name, ".sst")) ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"))
		if !ours {
			continue
		}
		if err := os.Remove(filepath.Join(b.dir, name)); err != nil {
			return fmt.Errorf("lsm: %w", err)
		}
		removed = true
	}
	if removed {
		return syncDir(b.dir)
	}
	return nil
}

// rebuildAccounting replays a merged scan of the mounted tables (no
// memtable yet) to reconstruct live bytes, per-table key counts, and each
// table's live counter.
func (b *Backend) rebuildAccounting() error {
	if len(b.tables) == 0 {
		return nil
	}
	sources := make([]source, len(b.tables))
	for i, t := range b.tables {
		it, err := t.iterGE(nil, b.cache)
		if err != nil {
			return err
		}
		sources[i] = it
	}
	dead := make([]int64, len(b.tables))
	err := mergeSources(sources,
		func(key, value []byte, tomb bool, src int) error {
			if tomb {
				dead[src] += logicalSize(len(key), len(value))
				return nil
			}
			table, _, err := splitIKey(key)
			if err != nil {
				return err
			}
			b.bytes += int64(len(value))
			b.keys[table]++
			return nil
		},
		func(src int, keyLen, valLen int) error {
			dead[src] += logicalSize(keyLen, valLen)
			return nil
		})
	if err != nil {
		return err
	}
	for i, t := range b.tables {
		t.live = t.size - dead[i]
	}
	return nil
}

// appendIKey appends the internal key for (table, key) to dst: uvarint(
// len(table)) table key. The uvarint prefix is self-delimiting, so distinct
// tables produce prefix-free ranges and bytewise order groups each table's
// keys contiguously.
func appendIKey(dst []byte, table, key string) []byte {
	dst = codec.PutUvarint(dst, uint64(len(table)))
	dst = append(dst, table...)
	return append(dst, key...)
}

// ikey builds the internal key for (table, key) in a fresh allocation.
func ikey(table, key string) []byte {
	out := make([]byte, 0, codec.UvarintLen(uint64(len(table)))+len(table)+len(key))
	return appendIKey(out, table, key)
}

// tablePrefix is the internal-key prefix shared by every key of table.
func tablePrefix(table string) []byte {
	out := codec.PutUvarint(nil, uint64(len(table)))
	return append(out, table...)
}

// prefixSuccessor returns the smallest byte string greater than every
// string with prefix p (nil when p is all 0xff: no upper bound).
func prefixSuccessor(p []byte) []byte {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0xff {
			out := append([]byte(nil), p[:i+1]...)
			out[i]++
			return out
		}
	}
	return nil
}

// splitIKey inverts ikey.
func splitIKey(ik []byte) (table, key string, err error) {
	l, rest, err := codec.Uvarint(ik)
	if err != nil || uint64(len(rest)) < l {
		return "", "", fmt.Errorf("%w: lsm internal key", types.ErrCorrupt)
	}
	return string(rest[:l]), string(rest[l:]), nil
}

// lookupLocked finds the newest version of ik: (value length, source table
// index or -1 for the memtable, found). A tombstone anywhere newest means
// not found. Callers hold b.mu (any mode).
func (b *Backend) lookupLocked(ik []byte) (valLen, src int, found bool, err error) {
	if v, tomb, ok := b.mem.get(ik); ok {
		if tomb {
			return 0, 0, false, nil
		}
		return len(v), -1, true, nil
	}
	for i := len(b.tables) - 1; i >= 0; i-- {
		v, tomb, ok, err := b.tables[i].get(ik, b.cache)
		if err != nil {
			return 0, 0, false, err
		}
		if ok {
			if tomb {
				return 0, 0, false, nil
			}
			return len(v), i, true, nil
		}
	}
	return 0, 0, false, nil
}

// applyPutLocked installs value (already copied) under ik, updating live
// accounting: a shadowed older version stops being live wherever it lives.
func (b *Backend) applyPutLocked(table string, ik, value []byte) error {
	if b.rows != nil {
		b.rows.invalidate(ik)
	}
	prevLen, src, found, err := b.lookupLocked(ik)
	if err != nil {
		return err
	}
	if found {
		b.bytes -= int64(prevLen)
		if src >= 0 {
			b.tables[src].live -= logicalSize(len(ik), prevLen)
		}
	} else {
		b.keys[table]++
	}
	b.bytes += int64(len(value))
	b.mem.set(ik, value, false)
	b.gen++
	return nil
}

// applyDelLocked installs a tombstone under ik if the key currently exists;
// deleting a missing key is a no-op that writes nothing.
func (b *Backend) applyDelLocked(table string, ik []byte) error {
	if b.rows != nil {
		b.rows.invalidate(ik)
	}
	prevLen, src, found, err := b.lookupLocked(ik)
	if err != nil || !found {
		return err
	}
	b.bytes -= int64(prevLen)
	if src >= 0 {
		b.tables[src].live -= logicalSize(len(ik), prevLen)
	}
	if b.keys[table]--; b.keys[table] <= 0 {
		delete(b.keys, table)
	}
	b.mem.set(ik, nil, true)
	b.gen++
	return nil
}

// Put stores value under (table, key). It is durable no later than the next
// BatchPut, flush, or Close.
func (b *Backend) Put(ctx context.Context, table, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	b.walBuf = encodeWALPut(b.walBuf[:0], table, key, value)
	if err := b.wal.appendRecord(b.walBuf); err != nil {
		return err
	}
	if err := b.applyPutLocked(table, ikey(table, key), append([]byte(nil), value...)); err != nil {
		return err
	}
	return b.maybeFlushLocked(ctx)
}

// BatchPut appends the whole batch as one checksummed WAL record and fsyncs
// before acknowledging, so the batch replays whole or not at all — the
// single record's crc32 is what makes fsync-on-batch atomic under torn
// writes.
func (b *Backend) BatchPut(ctx context.Context, table string, entries []engine.Entry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	wes := make([]walEntry, len(entries))
	for i, e := range entries {
		wes[i] = walEntry{key: e.Key, value: e.Value}
	}
	b.walBuf = encodeWALBatch(b.walBuf[:0], table, wes)
	if err := b.wal.appendRecord(b.walBuf); err != nil {
		return err
	}
	if err := b.wal.sync(); err != nil {
		return err
	}
	// Applied in order, so a later entry for the same key wins.
	for _, e := range entries {
		if err := b.applyPutLocked(table, ikey(table, e.Key), append([]byte(nil), e.Value...)); err != nil {
			return err
		}
	}
	return b.maybeFlushLocked(ctx)
}

// Get returns a copy of the newest value under (table, key).
func (b *Backend) Get(ctx context.Context, table, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, false, types.ErrClosed
	}
	// Short keys build their internal form on the stack: the point-read
	// hot path should cost a cache probe, not an allocation.
	var ikb [96]byte
	ik := appendIKey(ikb[:0], table, key)
	// Row-cache fills happen under the read lock and invalidations under
	// the write lock, so a hit here is always the newest committed value.
	if b.rows != nil {
		if v, ok := b.rows.get(ik); ok {
			return v, true, nil
		}
	}
	if v, tomb, ok := b.mem.get(ik); ok {
		if tomb {
			return nil, false, nil
		}
		if b.rows != nil {
			b.rows.put(ik, v)
		}
		return append([]byte(nil), v...), true, nil
	}
	for i := len(b.tables) - 1; i >= 0; i-- {
		v, tomb, ok, err := b.tables[i].get(ik, b.cache)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if tomb {
				return nil, false, nil
			}
			if b.rows != nil {
				b.rows.put(ik, v)
			}
			return append([]byte(nil), v...), true, nil
		}
	}
	return nil, false, nil
}

// Delete removes (table, key) by writing a tombstone; deleting a missing
// key writes nothing.
func (b *Backend) Delete(ctx context.Context, table, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	ik := ikey(table, key)
	// Look before logging: a no-op delete must not grow the WAL.
	_, _, found, err := b.lookupLocked(ik)
	if err != nil || !found {
		return err
	}
	b.walBuf = encodeWALDel(b.walBuf[:0], table, key)
	if err := b.wal.appendRecord(b.walBuf); err != nil {
		return err
	}
	if err := b.applyDelLocked(table, ik); err != nil {
		return err
	}
	return b.maybeFlushLocked(ctx)
}

// errStopScan aborts a merged scan early (fn returned false, or the range
// end was passed); it never escapes to callers.
var errStopScan = errors.New("lsm: stop scan")

// Scan visits every live key of table in key order. Values passed to fn may
// alias the memtable or cached blocks; fn must not retain or mutate them.
func (b *Backend) Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return types.ErrClosed
	}
	prefix := tablePrefix(table)
	end := prefixSuccessor(prefix)
	sources := make([]source, 0, len(b.tables)+1)
	for _, t := range b.tables {
		it, err := t.iterGE(prefix, b.cache)
		if err != nil {
			return err
		}
		sources = append(sources, it)
	}
	sources = append(sources, b.mem.iter(prefix)) // newest last
	err := mergeSources(sources, func(key, value []byte, tomb bool, _ int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if end != nil && bytes.Compare(key, end) >= 0 {
			return errStopScan
		}
		if tomb {
			return nil
		}
		_, userKey, err := splitIKey(key)
		if err != nil {
			return err
		}
		if !fn(userKey, value) {
			return errStopScan
		}
		return nil
	}, nil)
	if errors.Is(err, errStopScan) {
		return nil
	}
	return err
}

// Tables lists the user tables currently holding at least one live key.
func (b *Backend) Tables(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, types.ErrClosed
	}
	out := make([]string, 0, len(b.keys))
	for t := range b.keys {
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

// BytesStored reports the summed length of all live values.
func (b *Backend) BytesStored() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bytes
}

// Close fsyncs the WAL (making every acknowledged write durable) and
// releases the directory. Close after Close is a no-op.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	err := b.wal.sync()
	if cerr := b.wal.close(); err == nil && cerr != nil {
		err = fmt.Errorf("lsm: %w", cerr)
	}
	for _, t := range b.tables {
		if cerr := t.close(); err == nil && cerr != nil {
			err = fmt.Errorf("lsm: %w", cerr)
		}
	}
	if cerr := b.lock.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("lsm: %w", cerr)
	}
	return err
}

// Reset wipes the store back to empty in one crash-safe step: a new empty
// WAL is created, the MANIFEST is committed referencing only it, and every
// old file is then deleted. The epoch bump makes any in-flight compaction
// abandon its output rather than resurrect wiped data.
func (b *Backend) Reset(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	walSeq := b.nextSeq
	b.nextSeq++
	w, err := createWAL(b.walPath(walSeq), walSeq)
	if err != nil {
		return err
	}
	if err := syncDir(b.dir); err != nil {
		w.close()
		return err
	}
	if err := writeManifest(b.dir, b.nextSeq, walSeq, nil); err != nil {
		w.close()
		return err
	}
	// Committed: tear down the old state.
	b.epoch++
	b.gen++
	b.hashMemo = nil
	if b.rows != nil {
		b.rows.wipe()
	}
	oldWAL, oldTables := b.wal, b.tables
	b.wal, b.tables = w, nil
	b.mem = newMemtable()
	b.bytes = 0
	b.keys = map[string]int{}
	oldWAL.close()
	os.Remove(b.walPath(oldWAL.seq))
	for _, t := range oldTables {
		t.close()
		os.Remove(t.path)
	}
	return syncDir(b.dir)
}

// SetCrashPoint arms a crash-injection point (tests only): the named
// internal step fails with ErrCrashed exactly where a power failure would
// cut. Recognized points: "mid-flush", "flush-renamed", "mid-merge",
// "merge-renamed", "merge-manifested". Empty disarms.
func (b *Backend) SetCrashPoint(point string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.crash = point
}

// Kill simulates process death (tests only): every file handle and the
// directory lock are dropped with no syncing and no cleanup, leaving the
// on-disk state exactly as the crash left it. The backend is unusable
// afterwards; reopen the directory with Open.
func (b *Backend) Kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.closeFiles()
}

// closeFiles drops every descriptor without syncing; callers hold b.mu.
func (b *Backend) closeFiles() {
	if b.wal != nil {
		b.wal.close()
	}
	for _, t := range b.tables {
		t.close()
	}
	if b.lock != nil {
		b.lock.Close() // releases the flock
	}
}

func (b *Backend) sstPath(seq int64) string {
	return filepath.Join(b.dir, fmt.Sprintf("sst-%06d.sst", seq))
}

func (b *Backend) walPath(seq int64) string {
	return filepath.Join(b.dir, fmt.Sprintf("wal-%06d.log", seq))
}

// acquireLock takes an exclusive, non-blocking flock on dir/LOCK. The lock
// dies with the process, so a crash never wedges the directory.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	return nil
}
