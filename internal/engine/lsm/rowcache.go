package lsm

import (
	"sync"
)

// rowCache is a byte-bounded sharded cache from internal key to latest
// live value — the layer above the BlockCache on the point-read path. A
// hit answers a Get with one map probe and one copy, skipping the
// memtable, bloom, index, and block machinery entirely; under skewed read
// traffic (the RStore serving premise) that is where almost every read
// lands.
//
// Entries live in a per-shard slot arena and recency is CLOCK
// (second-chance) rather than a linked-list LRU: a hit sets one bit
// instead of splicing list nodes, and a lookup costs map-bucket → arena
// slot → value — one pointer hop fewer than a list-backed design, which
// is what matters when the tail of a zipfian keyspace misses every CPU
// cache level.
//
// Coherence is by write-side invalidation: Get fills the cache while
// holding b.mu (read mode) and every mutation (applyPutLocked /
// applyDelLocked, called under b.mu exclusive) invalidates the key, so a
// fill and the invalidation that supersedes it cannot interleave. Flush
// and compaction move bytes without changing logical content, so they
// leave the cache alone; Reset wipes it.
//
// The cache is per-Backend: distinct nodes of a cluster may legitimately
// hold different values under the same (table, key) mid-repair, so row
// entries — unlike immutable data blocks — must never be shared.
type rowCache struct {
	shards [rowShards]rowShard
}

const rowShards = 16

type rowShard struct {
	mu    sync.Mutex
	cap   int64
	size  int64
	items map[string]int32 // internal key → slot in ents
	ents  []rowEnt
	free  []int32 // dead slots available for reuse
	hand  int32   // CLOCK sweep position
}

type rowEnt struct {
	key     string
	val     []byte
	touched bool // set on hit, cleared by the sweep: second chance
	live    bool
}

// newRowCache builds a cache bounded by capBytes of key+value payload.
func newRowCache(capBytes int64) *rowCache {
	c := &rowCache{}
	per := capBytes / rowShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = rowShard{cap: per, items: map[string]int32{}}
	}
	return c
}

// shard hashes the internal key (FNV-1a) to one of the independent shards.
func (c *rowCache) shard(ik []byte) *rowShard {
	h := uint64(14695981039346656037)
	for _, b := range ik {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &c.shards[(h>>59)%rowShards]
}

// get returns a copy of the cached value for ik. The map index uses the
// string(ik) conversion form so the lookup itself does not allocate.
func (c *rowCache) get(ik []byte) ([]byte, bool) {
	s := c.shard(ik)
	s.mu.Lock()
	slot, ok := s.items[string(ik)]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	e := &s.ents[slot]
	e.touched = true
	out := make([]byte, len(e.val))
	copy(out, e.val)
	s.mu.Unlock()
	return out, true
}

// put installs a private copy of val under ik, evicting via the CLOCK
// sweep until the shard fits its budget.
func (c *rowCache) put(ik, val []byte) {
	s := c.shard(ik)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.items[string(ik)]; ok {
		e := &s.ents[slot]
		s.size += int64(len(val)) - int64(len(e.val))
		e.val = append(e.val[:0], val...)
		e.touched = true
	} else {
		e := rowEnt{key: string(ik), val: append([]byte(nil), val...), touched: true, live: true}
		var slot int32
		if n := len(s.free); n > 0 {
			slot = s.free[n-1]
			s.free = s.free[:n-1]
			s.ents[slot] = e
		} else {
			slot = int32(len(s.ents))
			s.ents = append(s.ents, e)
		}
		s.items[e.key] = slot
		s.size += int64(len(e.key) + len(e.val))
	}
	for s.size > s.cap && len(s.items) > 1 {
		s.sweepOne()
	}
}

// sweepOne advances the CLOCK hand until it evicts one entry: touched
// entries get their second chance (bit cleared), untouched ones go.
func (s *rowShard) sweepOne() {
	for {
		if int(s.hand) >= len(s.ents) {
			s.hand = 0
		}
		e := &s.ents[s.hand]
		s.hand++
		if !e.live {
			continue
		}
		if e.touched {
			e.touched = false
			continue
		}
		s.evict(s.hand - 1)
		return
	}
}

// evict frees the live entry in slot; callers hold s.mu.
func (s *rowShard) evict(slot int32) {
	e := &s.ents[slot]
	delete(s.items, e.key)
	s.size -= int64(len(e.key) + len(e.val))
	*e = rowEnt{}
	s.free = append(s.free, slot)
}

// invalidate drops ik from the cache; mutations call this under b.mu held
// exclusively, which orders it after any concurrent fill.
func (c *rowCache) invalidate(ik []byte) {
	s := c.shard(ik)
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.items[string(ik)]; ok {
		s.evict(slot)
	}
}

// wipe empties every shard (Reset).
func (c *rowCache) wipe() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = map[string]int32{}
		s.ents = nil
		s.free = nil
		s.size = 0
		s.hand = 0
		s.mu.Unlock()
	}
}
