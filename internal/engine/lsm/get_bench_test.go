package lsm

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkGetHot measures the steady-state point-read hot path (row
// cache hits on a compacted store) — the operation the readheavy bench
// experiment exercises at the macro level.
func BenchmarkGetHot(b *testing.B) {
	ctx := context.Background()
	be, err := Open(b.TempDir(), Options{MemtableBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer be.Close()
	val := make([]byte, 256)
	for i := 0; i < 5000; i++ {
		if err := be.Put(ctx, "t", fmt.Sprintf("doc-%06d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := be.Compact(ctx); err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 5000)
	for i := range keys {
		keys[i] = fmt.Sprintf("doc-%06d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := be.Get(ctx, "t", keys[i%64])
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
	}
}
