package lsm

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rstore/internal/engine"
	"rstore/internal/engine/enginetest"
)

func openT(t *testing.T, dir string, opts Options) *Backend {
	t.Helper()
	b, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// diskBytes sums every lsm data file (SSTables + WAL) under dir straight
// from the filesystem, cross-checking CompactionStats accounting.
func diskBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	for _, pat := range []string{"sst-*.sst", "wal-*.log"} {
		names, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			info, err := os.Stat(name)
			if err != nil {
				t.Fatal(err)
			}
			total += info.Size()
		}
	}
	return total
}

// TestCompactCrashRecovery runs the shared crash-injection suite over every
// dangerous point of the flush/merge pipeline:
//
//   - mid-flush / mid-merge: the output SSTable is half-written with no
//     footer; recovery must delete the .tmp debris and serve from the WAL
//     and intact tables.
//   - flush-renamed / merge-renamed: the SSTable is complete and renamed
//     into place but the MANIFEST never committed it; recovery must drop the
//     unreferenced file (for a flush the WAL is still authoritative).
//   - merge-manifested: the MANIFEST committed the merge but the victim
//     tables were never deleted; recovery must remove them instead of
//     mounting them (which would double-count and resurrect tombstoned
//     keys dropped by the merge).
func TestCompactCrashRecovery(t *testing.T) {
	enginetest.CompactCrashRecovery(t, enginetest.Harness{
		Open: func(t *testing.T, dir string) enginetest.Crasher {
			return openT(t, dir, Options{MemtableBytes: 4 << 10})
		},
		Points:      []string{"mid-flush", "flush-renamed", "mid-merge", "merge-renamed", "merge-manifested"},
		CrashErr:    ErrCrashed,
		DebrisGlobs: []string{"*.tmp"},
		DiskBytes:   diskBytes,
		// Compact reaches the flush points only through a non-empty
		// memtable, and the workload's tail may have landed exactly on a
		// flush boundary — top the memtable up until it holds something.
		Prepare: func(t *testing.T, c enginetest.Crasher) map[string]string {
			b := c.(*Backend)
			ctx := context.Background()
			extra := map[string]string{}
			for i := 0; ; i++ {
				k := fmt.Sprintf("extra-%02d", i)
				v := k + " resident"
				if err := b.Put(ctx, "t", k, []byte(v)); err != nil {
					t.Fatal(err)
				}
				extra[k] = v
				b.mu.RLock()
				n := b.mem.count
				b.mu.RUnlock()
				if n > 0 {
					return extra
				}
			}
		},
	})
}

// TestWALTornTailRecovery is lsm's half of the torn-tail contract disklog
// proves for its segments: a crash mid-append leaves garbage after the last
// acknowledged record; replay must truncate it, serve every acknowledged
// write, and leave the log appendable.
func TestWALTornTailRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := openT(t, dir, Options{}) // default 4 MiB memtable: everything stays in the WAL
	want := map[string]string{}
	var ents []engine.Entry
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("w%03d", i)
		v := fmt.Sprintf("%s committed", k)
		ents = append(ents, engine.Entry{Key: k, Value: []byte(v)})
		want[k] = v
	}
	if err := b.BatchPut(ctx, "t", ents); err != nil { // fsynced on ack
		t.Fatal(err)
	}
	b.Kill()

	logs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("wal files %v (err %v)", logs, err)
	}
	f, err := os.OpenFile(logs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Options{})
	for k, wv := range want {
		v, ok, err := r.Get(ctx, "t", k)
		if err != nil || !ok || string(v) != wv {
			t.Fatalf("%s = %q (ok=%v err=%v), want %q", k, v, ok, err, wv)
		}
	}
	// The truncated log must accept new appends.
	if err := r.Put(ctx, "t", "after", []byte("crash")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openT(t, dir, Options{})
	defer r2.Close()
	if v, ok, _ := r2.Get(ctx, "t", "after"); !ok || string(v) != "crash" {
		t.Fatalf("post-recovery write lost: %q (ok=%v)", v, ok)
	}
}
