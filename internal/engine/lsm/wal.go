package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"rstore/internal/codec"
	"rstore/internal/types"
)

// The write-ahead log makes the memtable durable: every mutation is framed,
// checksummed, and appended to wal-<seq>.log before it touches the skiplist.
// The framing is the same as disklog's record format — length(u32 LE),
// crc32(u32 LE), body — so a torn write from a crash can only affect the
// un-acknowledged tail, which replay detects by checksum and truncates.
// A flush retires the whole log at once: once the memtable's contents are
// committed to an SSTable via the MANIFEST, the old log is deleted and a
// fresh empty one takes its place.

const (
	// walFrameSize is the fixed record prefix: body length + body checksum.
	walFrameSize = 8

	// walMaxBody bounds a single record body (1 GiB); larger lengths during
	// replay are treated as torn/corrupt tails, not allocations.
	walMaxBody = 1 << 30

	// walPut/walDel are record kinds: body = kind(1) table(str) key(str)
	// value(rest). A delete carries no value. walBatch frames a whole
	// BatchPut as ONE record — body = kind(1) table(str) count(uvarint)
	// then per entry key(str) value(bytes) — so the single crc32 makes the
	// batch atomic under torn writes: it replays whole or not at all.
	walPut   byte = 1
	walDel   byte = 2
	walBatch byte = 3
)

// wal is an open write-ahead log file positioned at its append offset.
type wal struct {
	f    *os.File
	seq  int64
	size int64
	buf  []byte // reused frame+body scratch
}

func createWAL(path string, seq int64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	return &wal{f: f, seq: seq}, nil
}

// appendRecord frames body and appends it. Durability is the caller's call:
// sync() after acked batches, nothing after single puts (matching the
// fsync-on-batch contract of engine.Backend).
func (w *wal) appendRecord(body []byte) error {
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(body)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(body))
	w.buf = append(w.buf, body...)
	if _, err := w.f.WriteAt(w.buf, w.size); err != nil {
		return fmt.Errorf("lsm: wal append: %w", err)
	}
	w.size += int64(len(w.buf))
	return nil
}

// encodeWALPut builds a put record body into dst: walPut table key value.
func encodeWALPut(dst []byte, table, key string, value []byte) []byte {
	dst = append(dst, walPut)
	dst = codec.PutString(dst, table)
	dst = codec.PutString(dst, key)
	return append(dst, value...)
}

// encodeWALDel builds a delete record body into dst: walDel table key.
func encodeWALDel(dst []byte, table, key string) []byte {
	dst = append(dst, walDel)
	dst = codec.PutString(dst, table)
	return codec.PutString(dst, key)
}

// encodeWALBatch builds a batch record body into dst.
func encodeWALBatch(dst []byte, table string, entries []walEntry) []byte {
	dst = append(dst, walBatch)
	dst = codec.PutString(dst, table)
	dst = codec.PutUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = codec.PutString(dst, e.key)
		dst = codec.PutBytes(dst, e.value)
	}
	return dst
}

// walEntry is one key/value of a batch record.
type walEntry struct {
	key   string
	value []byte
}

func (w *wal) sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("lsm: wal sync: %w", err)
	}
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// replayWAL reads every intact record of the log at path, calling apply for
// each, and truncates a torn tail in place (a crash mid-append leaves a
// short or checksum-failing record, never a valid one). Corruption before
// the tail — an intact frame followed by a broken one followed by more
// intact data — cannot be distinguished from a torn tail and is handled the
// same way: everything from the first broken record on is discarded.
func replayWAL(path string, seq int64, apply func(kind byte, table, key string, value []byte) error) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	size := st.Size()
	var off int64
	var hdr [walFrameSize]byte
	var body []byte
	for off < size {
		if size-off < walFrameSize {
			break // torn frame header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			f.Close()
			return nil, fmt.Errorf("lsm: wal read: %w", err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if n < 1 || n > walMaxBody || off+walFrameSize+n > size {
			break // torn length or truncated body
		}
		if int64(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := f.ReadAt(body, off+walFrameSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("lsm: wal read: %w", err)
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
			break // torn body
		}
		kind, rest := body[0], body[1:]
		table, rest, terr := codec.String(rest)
		if terr != nil {
			f.Close()
			return nil, fmt.Errorf("%w: lsm wal record table", types.ErrCorrupt)
		}
		switch kind {
		case walPut, walDel:
			key, rest2, kerr := codec.String(rest)
			if kerr != nil {
				err = fmt.Errorf("%w: lsm wal record key", types.ErrCorrupt)
				break
			}
			if kind == walDel {
				if len(rest2) != 0 {
					err = fmt.Errorf("%w: lsm wal delete with value", types.ErrCorrupt)
					break
				}
				rest2 = nil
			}
			err = apply(kind, table, key, rest2)
		case walBatch:
			count, rest2, cerr := codec.Uvarint(rest)
			if cerr != nil {
				err = fmt.Errorf("%w: lsm wal batch count", types.ErrCorrupt)
				break
			}
			for i := uint64(0); i < count && err == nil; i++ {
				var key string
				var val []byte
				if key, rest2, err = codec.String(rest2); err != nil {
					err = fmt.Errorf("%w: lsm wal batch key", types.ErrCorrupt)
					break
				}
				if val, rest2, err = codec.Bytes(rest2); err != nil {
					err = fmt.Errorf("%w: lsm wal batch value", types.ErrCorrupt)
					break
				}
				err = apply(walPut, table, key, val)
			}
			if err == nil && len(rest2) != 0 {
				err = fmt.Errorf("%w: lsm wal batch trailing bytes", types.ErrCorrupt)
			}
		default:
			err = fmt.Errorf("%w: lsm wal record kind %d", types.ErrCorrupt, kind)
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		off += walFrameSize + n
	}
	if off < size {
		// Drop the torn tail so the next append starts on a clean frame.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("lsm: wal truncate: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("lsm: wal sync: %w", err)
		}
	}
	return &wal{f: f, seq: seq, size: off}, nil
}
