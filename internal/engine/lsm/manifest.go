package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rstore/internal/types"
)

// The MANIFEST is the root of the tree: a small text file naming the live
// WAL and every live SSTable in age order (oldest first), committed by
// write-to-temp + fsync + rename + directory fsync. The rename is the
// single commit point for flush, compaction, and reset — any sst-*.sst or
// wal-*.log the MANIFEST does not reference is debris from a crash between
// file creation and commit, and Open deletes it. Age order is what gives
// reads and merges their shadowing rule: an entry in a younger table
// supersedes the same key in any older one.
//
// Format, line by line:
//
//	rstore-lsm v1
//	next <seq>      — next unused file sequence number
//	wal <seq>       — the live write-ahead log, wal-<seq>.log
//	sst <seq>       — one per live SSTable, oldest first
const (
	manifestName   = "MANIFEST"
	manifestHeader = "rstore-lsm v1"
)

// writeManifest atomically commits a new manifest describing walSeq +
// tables (age order) with nextSeq as the sequence floor.
func writeManifest(dir string, nextSeq, walSeq int64, tables []*sstable) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\nnext %d\nwal %d\n", manifestHeader, nextSeq, walSeq)
	for _, t := range tables {
		fmt.Fprintf(&sb, "sst %d\n", t.seq)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		f.Close()
		return fmt.Errorf("lsm: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lsm: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("lsm: manifest rename: %w", err)
	}
	return syncDir(dir)
}

// readManifest parses dir/MANIFEST. exists is false when the file is absent
// (a directory never initialized, or a crash before first commit); any
// other defect is corruption, not a fresh start.
func readManifest(dir string) (nextSeq, walSeq int64, ssts []int64, exists bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, 0, nil, false, nil
	}
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("lsm: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 || lines[0] != manifestHeader {
		return 0, 0, nil, false, fmt.Errorf("%w: lsm manifest header", types.ErrCorrupt)
	}
	field := func(line, key string) (int64, error) {
		rest, ok := strings.CutPrefix(line, key+" ")
		if !ok {
			return 0, fmt.Errorf("%w: lsm manifest: want %q line, got %q", types.ErrCorrupt, key, line)
		}
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("%w: lsm manifest %s %q", types.ErrCorrupt, key, rest)
		}
		return v, nil
	}
	if nextSeq, err = field(lines[1], "next"); err != nil {
		return 0, 0, nil, false, err
	}
	if walSeq, err = field(lines[2], "wal"); err != nil {
		return 0, 0, nil, false, err
	}
	for _, line := range lines[3:] {
		seq, err := field(line, "sst")
		if err != nil {
			return 0, 0, nil, false, err
		}
		ssts = append(ssts, seq)
	}
	return nextSeq, walSeq, ssts, true, nil
}
