// Conformance suite: every engine.Backend implementation must pass these
// semantics — put/get/delete/batch/scan behavior, overwrite accounting,
// value isolation, table isolation, and concurrent access. New backends
// (pebble, tiered, remote) get their correctness contract by adding a row
// to backends().
package engine_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
)

// backends enumerates every implementation under test. Each factory returns
// a fresh empty backend; cleanup is the test's TempDir/Close machinery.
func backends(t *testing.T) map[string]func(t *testing.T) engine.Backend {
	t.Helper()
	return map[string]func(t *testing.T) engine.Backend{
		"memory": func(t *testing.T) engine.Backend { return memory.New() },
		"disklog": func(t *testing.T) engine.Backend {
			b, err := disklog.Open(t.TempDir(), disklog.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		// Disklog with a compaction forced after every mutation: segment
		// rewrites, index swaps, and victim unlinks race the whole suite,
		// and none of it may be observable through the Backend contract.
		"disklog-compacting": func(t *testing.T) engine.Backend {
			b, err := disklog.Open(t.TempDir(), disklog.Options{SegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			return compactingBackend{b}
		},
		// LSM with a memtable small enough that the suite constantly
		// flushes, so reads cross the memtable/SSTable boundary and the
		// size-tiered compactor fires mid-test.
		"lsm": func(t *testing.T) engine.Backend {
			b, err := lsm.Open(t.TempDir(), lsm.Options{MemtableBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		// LSM with a full merge forced after every mutation: flush, merge,
		// MANIFEST commits, and victim unlinks race the whole suite.
		"lsm-compacting": func(t *testing.T) engine.Backend {
			b, err := lsm.Open(t.TempDir(), lsm.Options{MemtableBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			return compactingBackend{b}
		},
		// The wire client against an engined server over real TCP: the
		// remote seam must be indistinguishable from a local backend.
		"remote": func(t *testing.T) engine.Backend {
			srv, err := engined.Start("127.0.0.1:0", memory.New())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c, err := remote.Dial(srv.Addr().String(), remote.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
		// The same wire seam over the lsm engine, exercising OpCompact and
		// friends against a backend whose compaction rewrites whole files.
		"remote-lsm": func(t *testing.T) engine.Backend {
			be, err := lsm.Open(t.TempDir(), lsm.Options{MemtableBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := engined.Start("127.0.0.1:0", be)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close(); be.Close() })
			c, err := remote.Dial(srv.Addr().String(), remote.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return c
		},
	}
}

// compactingBackend wraps any compacting backend so every successful
// mutation immediately triggers a full compaction cycle. An
// aggressive-compaction backend must be semantically indistinguishable from
// a quiescent one.
type compactingBackend struct {
	engine.Backend
}

func (c compactingBackend) compact(ctx context.Context) error {
	_, err := c.Backend.(engine.Compactor).Compact(ctx)
	return err
}

func (c compactingBackend) Put(ctx context.Context, table, key string, value []byte) error {
	if err := c.Backend.Put(ctx, table, key, value); err != nil {
		return err
	}
	return c.compact(ctx)
}

func (c compactingBackend) BatchPut(ctx context.Context, table string, entries []engine.Entry) error {
	if err := c.Backend.BatchPut(ctx, table, entries); err != nil {
		return err
	}
	return c.compact(ctx)
}

func (c compactingBackend) Delete(ctx context.Context, table, key string) error {
	if err := c.Backend.Delete(ctx, table, key); err != nil {
		return err
	}
	return c.compact(ctx)
}

// forEachBackend runs fn against every backend implementation.
func forEachBackend(t *testing.T, fn func(t *testing.T, b engine.Backend)) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := mk(t)
			defer b.Close()
			fn(t, b)
		})
	}
}

func mustGet(t *testing.T, b engine.Backend, table, key string) []byte {
	t.Helper()
	v, ok, err := b.Get(context.Background(), table, key)
	if err != nil {
		t.Fatalf("Get(%s,%s): %v", table, key, err)
	}
	if !ok {
		t.Fatalf("Get(%s,%s): missing", table, key)
	}
	return v
}

func mustMissing(t *testing.T, b engine.Backend, table, key string) {
	t.Helper()
	if _, ok, err := b.Get(context.Background(), table, key); err != nil || ok {
		t.Fatalf("Get(%s,%s) = present, err=%v; want missing", table, key, err)
	}
}

func TestConformancePutGetOverwrite(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		if err := b.Put(context.Background(), "t", "k1", []byte("hello")); err != nil {
			t.Fatal(err)
		}
		if got := mustGet(t, b, "t", "k1"); string(got) != "hello" {
			t.Fatalf("got %q", got)
		}
		if n := b.BytesStored(); n != 5 {
			t.Fatalf("BytesStored = %d, want 5", n)
		}
		// Overwrite replaces the accounting, not adds to it.
		if err := b.Put(context.Background(), "t", "k1", []byte("hi")); err != nil {
			t.Fatal(err)
		}
		if got := mustGet(t, b, "t", "k1"); string(got) != "hi" {
			t.Fatalf("after overwrite: %q", got)
		}
		if n := b.BytesStored(); n != 2 {
			t.Fatalf("BytesStored after overwrite = %d, want 2", n)
		}
		mustMissing(t, b, "t", "nope")
		// Empty values are legal and distinct from missing.
		if err := b.Put(context.Background(), "t", "empty", nil); err != nil {
			t.Fatal(err)
		}
		if v := mustGet(t, b, "t", "empty"); len(v) != 0 {
			t.Fatalf("empty value = %q", v)
		}
	})
}

func TestConformanceDelete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		if err := b.Put(context.Background(), "t", "k", []byte("vvvv")); err != nil {
			t.Fatal(err)
		}
		if err := b.Delete(context.Background(), "t", "k"); err != nil {
			t.Fatal(err)
		}
		mustMissing(t, b, "t", "k")
		if n := b.BytesStored(); n != 0 {
			t.Fatalf("BytesStored after delete = %d", n)
		}
		// Deleting a missing key is a no-op, repeatedly.
		if err := b.Delete(context.Background(), "t", "k"); err != nil {
			t.Fatal(err)
		}
		if err := b.Delete(context.Background(), "other", "never-existed"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceBatchPut(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		var entries []engine.Entry
		for i := 0; i < 50; i++ {
			entries = append(entries, engine.Entry{
				Key:   fmt.Sprintf("k%02d", i),
				Value: []byte(fmt.Sprintf("value-%02d", i)),
			})
		}
		// A duplicate key inside one batch: the later entry wins.
		entries = append(entries, engine.Entry{Key: "k00", Value: []byte("winner")})
		if err := b.BatchPut(context.Background(), "t", entries); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 50; i++ {
			want := fmt.Sprintf("value-%02d", i)
			if got := mustGet(t, b, "t", fmt.Sprintf("k%02d", i)); string(got) != want {
				t.Fatalf("k%02d = %q, want %q", i, got, want)
			}
		}
		if got := mustGet(t, b, "t", "k00"); string(got) != "winner" {
			t.Fatalf("k00 = %q, want winner (last entry wins)", got)
		}
		// Empty batch is a no-op.
		if err := b.BatchPut(context.Background(), "t", nil); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceScan(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		want := map[string]string{}
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("k%02d", i)
			want[k] = "v" + k
			if err := b.Put(context.Background(), "t", k, []byte("v"+k)); err != nil {
				t.Fatal(err)
			}
		}
		got := map[string]int{}
		if err := b.Scan(context.Background(), "t", func(k string, v []byte) bool {
			got[k]++
			if string(v) != want[k] {
				t.Fatalf("scan %s = %q, want %q", k, v, want[k])
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("scanned %d keys, want %d", len(got), len(want))
		}
		for k, n := range got {
			if n != 1 {
				t.Fatalf("key %s visited %d times", k, n)
			}
		}
		// Early stop.
		count := 0
		if err := b.Scan(context.Background(), "t", func(string, []byte) bool { count++; return count < 5 }); err != nil {
			t.Fatal(err)
		}
		if count != 5 {
			t.Fatalf("early stop visited %d", count)
		}
		// Scanning an absent table visits nothing.
		if err := b.Scan(context.Background(), "absent", func(string, []byte) bool {
			t.Fatal("visited a key of an absent table")
			return false
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConformanceTableIsolation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		if err := b.Put(context.Background(), "t1", "k", []byte("one")); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(context.Background(), "t2", "k", []byte("two")); err != nil {
			t.Fatal(err)
		}
		if got := mustGet(t, b, "t1", "k"); string(got) != "one" {
			t.Fatalf("t1/k = %q", got)
		}
		if got := mustGet(t, b, "t2", "k"); string(got) != "two" {
			t.Fatalf("t2/k = %q", got)
		}
		if err := b.Delete(context.Background(), "t1", "k"); err != nil {
			t.Fatal(err)
		}
		mustMissing(t, b, "t1", "k")
		if got := mustGet(t, b, "t2", "k"); string(got) != "two" {
			t.Fatalf("t2/k after deleting t1/k = %q", got)
		}
		tables, err := b.Tables(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) != 1 || tables[0] != "t2" {
			t.Fatalf("Tables = %v, want [t2]", tables)
		}
	})
}

func TestConformanceValueIsolation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		v := []byte("mutable")
		if err := b.Put(context.Background(), "t", "k", v); err != nil {
			t.Fatal(err)
		}
		v[0] = 'X' // caller mutates after put
		if got := mustGet(t, b, "t", "k"); string(got) != "mutable" {
			t.Fatal("put did not defend against caller mutation")
		}
		got := mustGet(t, b, "t", "k")
		got[0] = 'Y' // caller mutates the response
		if again := mustGet(t, b, "t", "k"); string(again) != "mutable" {
			t.Fatal("get returned aliased storage")
		}
		// Same for the batch path.
		bv := []byte("batched")
		if err := b.BatchPut(context.Background(), "t", []engine.Entry{{Key: "bk", Value: bv}}); err != nil {
			t.Fatal(err)
		}
		bv[0] = 'Z'
		if got := mustGet(t, b, "t", "bk"); string(got) != "batched" {
			t.Fatal("batch put did not defend against caller mutation")
		}
	})
}

func TestConformanceMultiGet(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		mg, ok := b.(engine.MultiGetter)
		if !ok {
			// Optional interface; the remote rows exercise it (and with it
			// the OpMultiGet wire op over real TCP).
			t.Skip("backend does not implement engine.MultiGetter")
		}
		ctx := context.Background()
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("k%02d", i)
			if err := b.Put(ctx, "t", k, []byte("v"+k)); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Put(ctx, "t", "empty", nil); err != nil {
			t.Fatal(err)
		}

		// Present, absent, duplicate, and empty-valued keys in one batch;
		// results must come back in request order with count preserved.
		keys := []string{"k03", "nope", "k17", "k03", "empty", "also-missing"}
		values, present, err := mg.MultiGet(ctx, "t", keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(values) != len(keys) || len(present) != len(keys) {
			t.Fatalf("got %d values, %d flags; want %d each", len(values), len(present), len(keys))
		}
		wantPresent := []bool{true, false, true, true, true, false}
		wantValue := []string{"vk03", "", "vk17", "vk03", "", ""}
		for i := range keys {
			if present[i] != wantPresent[i] || string(values[i]) != wantValue[i] {
				t.Fatalf("result %d (%s) = %q present=%v, want %q present=%v",
					i, keys[i], values[i], present[i], wantValue[i], wantPresent[i])
			}
		}
		// Absent keys yield nil values (empty values are present but empty).
		if values[1] != nil || values[5] != nil {
			t.Fatalf("absent keys returned non-nil values: %q %q", values[1], values[5])
		}

		// Batches against an absent table: every key absent, none an error.
		values, present, err = mg.MultiGet(ctx, "absent", []string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		for i := range present {
			if present[i] || values[i] != nil {
				t.Fatalf("absent table result %d = %q present=%v", i, values[i], present[i])
			}
		}

		// Empty batch is a no-op.
		if values, present, err = mg.MultiGet(ctx, "t", nil); err != nil || len(values) != 0 || len(present) != 0 {
			t.Fatalf("empty batch: %v %v %v", values, present, err)
		}

		// Returned values must not alias backend state.
		values, _, err = mg.MultiGet(ctx, "t", []string{"k05"})
		if err != nil {
			t.Fatal(err)
		}
		values[0][0] = 'X'
		if got := mustGet(t, b, "t", "k05"); string(got) != "vk05" {
			t.Fatal("MultiGet returned aliased storage")
		}
	})
}

func TestConformanceConcurrentAccess(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					k := fmt.Sprintf("w%d-k%d", w, i)
					if err := b.Put(context.Background(), "t", k, []byte(k)); err != nil {
						t.Error(err)
						return
					}
					v, ok, err := b.Get(context.Background(), "t", k)
					if err != nil || !ok || string(v) != k {
						t.Errorf("%s: %q %v %v", k, v, ok, err)
						return
					}
					if i%10 == 0 {
						if err := b.Scan(context.Background(), "t", func(string, []byte) bool { return false }); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if n := b.BytesStored(); n <= 0 {
			t.Fatalf("BytesStored = %d after concurrent writes", n)
		}
	})
}

func TestConformanceClosedOperationsFail(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		if err := b.Put(context.Background(), "t", "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		if err := b.Put(context.Background(), "t", "k2", []byte("v")); err == nil {
			t.Fatal("Put after Close succeeded")
		}
		if _, _, err := b.Get(context.Background(), "t", "k"); err == nil {
			t.Fatal("Get after Close succeeded")
		}
		if err := b.Delete(context.Background(), "t", "k"); err == nil {
			t.Fatal("Delete after Close succeeded")
		}
		if err := b.BatchPut(context.Background(), "t", []engine.Entry{{Key: "x", Value: nil}}); err == nil {
			t.Fatal("BatchPut after Close succeeded")
		}
		if err := b.Scan(context.Background(), "t", func(string, []byte) bool { return true }); err == nil {
			t.Fatal("Scan after Close succeeded")
		}
		if _, err := b.Tables(context.Background()); err == nil {
			t.Fatal("Tables after Close succeeded")
		}
	})
}

// TestConformanceHashRange pins the anti-entropy hash seam: every backend
// that implements engine.HashRanger must produce the same digests for the
// same logical content — the whole point of the tree is that two replicas
// built through different engines (or different write orders) agree byte
// for byte. The remote rows exercise OpHashTree/OpHashRange over real TCP.
func TestConformanceHashRange(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		hr, ok := b.(engine.HashRanger)
		if !ok {
			// Optional interface; all built-in backends implement it.
			t.Skip("backend does not implement engine.HashRanger")
		}
		ctx := context.Background()
		const fanout = 8

		// An absent table digests to the canonical empty tree.
		empty, err := hr.HashTree(ctx, "absent", fanout)
		if err != nil {
			t.Fatal(err)
		}
		if len(empty.Leaves) != fanout {
			t.Fatalf("empty tree has %d leaves, want %d", len(empty.Leaves), fanout)
		}
		for i, l := range empty.Leaves {
			if l.Hash != 0 || l.Keys != 0 {
				t.Fatalf("empty tree leaf %d = %+v", i, l)
			}
		}
		for bkt := 0; bkt < fanout; bkt++ {
			khs, err := hr.HashRange(ctx, "absent", fanout, bkt)
			if err != nil {
				t.Fatal(err)
			}
			if len(khs) != 0 {
				t.Fatalf("empty table bucket %d lists %d keys", bkt, len(khs))
			}
		}

		// A single key lands in exactly its BucketOf bucket with its
		// EntryHash, and the root departs from the empty tree's.
		if err := b.Put(ctx, "h", "solo", []byte("payload")); err != nil {
			t.Fatal(err)
		}
		one, err := hr.HashTree(ctx, "h", fanout)
		if err != nil {
			t.Fatal(err)
		}
		if one.Root == empty.Root {
			t.Fatal("single-key tree has the empty root")
		}
		want := engine.BucketOf("solo", fanout)
		for i, l := range one.Leaves {
			switch {
			case i == want && (l.Keys != 1 || l.Hash != engine.EntryHash("solo", []byte("payload"))):
				t.Fatalf("bucket %d = %+v, want the solo entry", i, l)
			case i != want && (l.Keys != 0 || l.Hash != 0):
				t.Fatalf("bucket %d = %+v, want empty", i, l)
			}
		}
		khs, err := hr.HashRange(ctx, "h", fanout, want)
		if err != nil {
			t.Fatal(err)
		}
		if len(khs) != 1 || khs[0].Key != "solo" || khs[0].Hash != engine.EntryHash("solo", []byte("payload")) {
			t.Fatalf("bucket %d = %+v", want, khs)
		}

		// Boundary keys: empty key, empty value, binary bytes, and enough
		// keys that every bucket is hit. Buckets must partition the key
		// set exactly, each listed ascending.
		content := map[string][]byte{"": []byte("empty-key"), "ev": nil, "b\x00\xff": []byte{0, 255}}
		for i := 0; i < 64; i++ {
			content[fmt.Sprintf("k%02d", i)] = []byte(fmt.Sprintf("v%02d", i)) // covers all 8 buckets w.h.p.
		}
		for k, v := range content {
			if err := b.Put(ctx, "h2", k, v); err != nil {
				t.Fatal(err)
			}
		}
		d, err := hr.HashTree(ctx, "h2", fanout)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		var totalKeys uint64
		for bkt := 0; bkt < fanout; bkt++ {
			khs, err := hr.HashRange(ctx, "h2", fanout, bkt)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(len(khs)) != d.Leaves[bkt].Keys {
				t.Fatalf("bucket %d lists %d keys, digest says %d", bkt, len(khs), d.Leaves[bkt].Keys)
			}
			var xor uint64
			for i, kh := range khs {
				if i > 0 && !(khs[i-1].Key < kh.Key) {
					t.Fatalf("bucket %d not ascending at %d: %q >= %q", bkt, i, khs[i-1].Key, kh.Key)
				}
				if engine.BucketOf(kh.Key, fanout) != bkt {
					t.Fatalf("key %q listed in bucket %d, hashes to %d", kh.Key, bkt, engine.BucketOf(kh.Key, fanout))
				}
				v, ok := content[kh.Key]
				if !ok {
					t.Fatalf("bucket %d lists unknown key %q", bkt, kh.Key)
				}
				if kh.Hash != engine.EntryHash(kh.Key, v) {
					t.Fatalf("key %q entry hash mismatch", kh.Key)
				}
				seen[kh.Key] = true
				xor ^= kh.Hash
			}
			if xor != d.Leaves[bkt].Hash {
				t.Fatalf("bucket %d leaf hash is not the XOR of its entries", bkt)
			}
			totalKeys += d.Leaves[bkt].Keys
		}
		if len(seen) != len(content) || totalKeys != uint64(len(content)) {
			t.Fatalf("buckets cover %d keys (%d counted), table holds %d", len(seen), totalKeys, len(content))
		}

		// Mutations move the digest; reverting them restores it exactly
		// (delete → re-hash must not leave tombstone residue in the tree).
		before := d.Root
		if err := b.Put(ctx, "h2", "k00", []byte("changed")); err != nil {
			t.Fatal(err)
		}
		changed, err := hr.HashTree(ctx, "h2", fanout)
		if err != nil {
			t.Fatal(err)
		}
		if changed.Root == before {
			t.Fatal("overwrite did not move the root")
		}
		if err := b.Delete(ctx, "h2", "k00"); err != nil {
			t.Fatal(err)
		}
		deleted, err := hr.HashTree(ctx, "h2", fanout)
		if err != nil {
			t.Fatal(err)
		}
		if deleted.Root == changed.Root {
			t.Fatal("delete did not move the root")
		}
		if err := b.Put(ctx, "h2", "k00", content["k00"]); err != nil {
			t.Fatal(err)
		}
		restored, err := hr.HashTree(ctx, "h2", fanout)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Root != before {
			t.Fatal("restoring the original content did not restore the root")
		}

		// Bad parameters are rejected up front.
		if _, err := hr.HashTree(ctx, "h2", 0); err == nil {
			t.Fatal("fanout 0 accepted")
		}
		if _, err := hr.HashTree(ctx, "h2", engine.MaxHashFanout+1); err == nil {
			t.Fatal("fanout past the limit accepted")
		}
		if _, err := hr.HashRange(ctx, "h2", fanout, fanout); err == nil {
			t.Fatal("bucket == fanout accepted")
		}
		if _, err := hr.HashRange(ctx, "h2", fanout, -1); err == nil {
			t.Fatal("negative bucket accepted")
		}
	})
}
