// Package enginetest is the shared crash-injection harness for the durable
// engine.Backend implementations (disklog, lsm). Each engine arms named
// crash points inside its compaction machinery (SetCrashPoint), simulates
// process death by dropping every descriptor unsynced (Kill), and must then
// recover from the directory with zero loss of acknowledged writes. The
// harness owns the workload, the per-point crash/reopen/verify cycle, and
// the debris sweep, so both engines prove the identical contract and a new
// durable engine gets the whole suite by implementing Crasher.
package enginetest

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"rstore/internal/engine"
)

// Crasher is the crash-injectable surface the durable engines share: a
// compacting backend plus the two test-only hooks.
type Crasher interface {
	engine.Backend
	engine.Compactor
	// SetCrashPoint arms a named injection point; the engine's compaction
	// path fails there with the harness's CrashErr, leaving the directory
	// exactly as a power failure would. Empty disarms.
	SetCrashPoint(point string)
	// Kill simulates process death: every descriptor and lock dropped with
	// no syncing and no cleanup. The backend is unusable afterwards.
	Kill()
}

// Harness describes one durable engine to CompactCrashRecovery.
type Harness struct {
	// Open opens (or reopens, after a crash) the engine rooted at dir,
	// configured so the workload spans several on-disk units (segments /
	// SSTables).
	Open func(t *testing.T, dir string) Crasher
	// Points lists every compaction crash-injection point the engine
	// recognizes; each becomes a subtest.
	Points []string
	// CrashErr is the sentinel an armed point fails with.
	CrashErr error
	// DebrisGlobs are dir-relative patterns of temporary/intermediate files
	// that must never survive a recovery Open.
	DebrisGlobs []string
	// Prepare, when set, runs after the workload and before each point is
	// armed. It must leave the engine in a state where the point is
	// reachable from Compact (e.g. a non-empty memtable for a flush
	// point) and returns any extra live keys it wrote, merged into the
	// expected state.
	Prepare func(t *testing.T, b Crasher) map[string]string
	// DiskBytes, when set, measures the engine's on-disk volume under dir
	// directly from the filesystem; the harness cross-checks it against the
	// CompactionStats of the post-recovery compaction.
	DiskBytes func(t *testing.T, dir string) int64
}

// OverwriteWorkload fills b with an overwrite-heavy, multi-unit history:
// nKeys keys written rounds+1 times each (latest revision wins), then the
// first nKeys/10 deleted. It returns the expected live state: key -> value
// for survivors; deleted keys are absent from the map.
func OverwriteWorkload(t *testing.T, b engine.Backend, nKeys, rounds int) map[string]string {
	t.Helper()
	ctx := context.Background()
	key := func(i int) string { return fmt.Sprintf("k%04d", i) }
	for rev := 0; rev <= rounds; rev++ {
		for i := 0; i < nKeys; i++ {
			v := fmt.Sprintf("%s rev-%d %s", key(i), rev, strings.Repeat("x", 64))
			if err := b.Put(ctx, "t", key(i), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := make(map[string]string, nKeys)
	for i := 0; i < nKeys; i++ {
		want[key(i)] = fmt.Sprintf("%s rev-%d %s", key(i), rounds, strings.Repeat("x", 64))
	}
	for i := 0; i < nKeys/10; i++ {
		if err := b.Delete(ctx, "t", key(i)); err != nil {
			t.Fatal(err)
		}
		delete(want, key(i))
	}
	return want
}

// VerifyState checks that b serves exactly want: every surviving key at its
// last revision, every deleted key absent. Keys outside the k%04d workload
// space (Prepare extras) are checked for presence only.
func VerifyState(t *testing.T, b engine.Backend, nKeys int, want map[string]string) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, err := b.Get(ctx, "t", k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if wv, live := want[k]; live {
			if !ok || string(v) != wv {
				t.Fatalf("%s = %q (ok=%v), want %q", k, v, ok, wv)
			}
		} else if ok {
			t.Fatalf("deleted key %s resurrected as %q", k, v)
		}
	}
	for k, wv := range want {
		if strings.HasPrefix(k, "k") && len(k) == 5 {
			continue // workload key, already checked
		}
		v, ok, err := b.Get(ctx, "t", k)
		if err != nil || !ok || string(v) != wv {
			t.Fatalf("extra key %s = %q (ok=%v err=%v), want %q", k, v, ok, err, wv)
		}
	}
}

// CompactCrashRecovery injects a crash at each of the engine's dangerous
// compaction points and proves reopening the directory loses nothing: the
// workload reads back exactly, no intermediate debris survives recovery,
// and the recovered store compacts successfully and survives a further
// clean close/reopen.
func CompactCrashRecovery(t *testing.T, h Harness) {
	const nKeys = 200
	for _, point := range h.Points {
		t.Run(point, func(t *testing.T) {
			ctx := context.Background()
			dir := t.TempDir()
			b := h.Open(t, dir)
			want := OverwriteWorkload(t, b, nKeys, 4)
			if h.Prepare != nil {
				for k, v := range h.Prepare(t, b) {
					want[k] = v
				}
			}

			b.SetCrashPoint(point)
			if _, err := b.Compact(ctx); !errors.Is(err, h.CrashErr) {
				t.Fatalf("crash hook %q did not fire: %v", point, err)
			}
			b.Kill()

			r := h.Open(t, dir)
			VerifyState(t, r, nKeys, want)

			// No intermediate files may survive recovery...
			for _, g := range h.DebrisGlobs {
				debris, err := filepath.Glob(filepath.Join(dir, g))
				if err != nil {
					t.Fatal(err)
				}
				if len(debris) != 0 {
					t.Fatalf("debris survived recovery: %v", debris)
				}
			}
			// ...and the recovered store must compact successfully.
			st, err := r.Compact(ctx)
			if err != nil {
				t.Fatalf("compact after %s recovery: %v", point, err)
			}
			if h.DiskBytes != nil {
				if got := h.DiskBytes(t, dir); got != st.DiskBytes {
					t.Fatalf("stats say %d disk bytes, filesystem says %d", st.DiskBytes, got)
				}
			}
			VerifyState(t, r, nKeys, want)
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			r2 := h.Open(t, dir)
			defer r2.Close()
			VerifyState(t, r2, nKeys, want)
		})
	}
}
