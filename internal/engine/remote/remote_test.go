// Tests for the transport behaviors the conformance suite cannot see:
// unavailability classification, retry/recovery across a node restart,
// connection pooling, and the scan stream's failure handling. Backend
// semantics are covered by the conformance suite in internal/engine.
package remote_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
	"rstore/internal/types"
)

// fastOpts keeps retry latency test-friendly.
func fastOpts() remote.Options {
	return remote.Options{Attempts: 2, Backoff: 5 * time.Millisecond, DialTimeout: time.Second}
}

// freePort reserves an address nothing listens on (and then releases it,
// so a later server can bind it).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDialValidatesAddress(t *testing.T) {
	if _, err := remote.Dial("not-an-address", remote.Options{}); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestDownNodeIsUnavailableNotHardError(t *testing.T) {
	c, err := remote.Dial(freePort(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(context.Background(), "t", "k", []byte("v")); !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("put to dead node: %v", err)
	}
	if _, _, err := c.Get(context.Background(), "t", "k"); !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("get from dead node: %v", err)
	}
	if err := c.Scan(context.Background(), "t", func(string, []byte) bool { return true }); !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("scan of dead node: %v", err)
	}
	if _, err := c.Stored(context.Background()); !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("stored of dead node: %v", err)
	}
}

func TestBackendErrorIsHardNotUnavailable(t *testing.T) {
	be := memory.New()
	be.Close() // every operation now fails inside the node
	srv, err := engined.Start("127.0.0.1:0", be)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Put(context.Background(), "t", "k", []byte("v"))
	if err == nil || errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("node-side failure classified wrong: %v", err)
	}
	if !errors.Is(err, types.ErrClosed) {
		t.Fatalf("closed-backend error did not map to ErrClosed: %v", err)
	}
}

func TestClientSurvivesNodeRestart(t *testing.T) {
	be := memory.New()
	srv, err := engined.Start("127.0.0.1:0", be)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	c, err := remote.Dial(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(context.Background(), "t", "k", []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Kill the node: the pooled connection is now dead.
	srv.Close()
	if err := c.Put(context.Background(), "t", "k2", []byte("while down")); !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("put while node down: %v", err)
	}

	// Restart on the same address with the same backend: the client must
	// re-dial transparently and see the earlier write.
	srv2, err := engined.Start(addr, be)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	v, ok, err := c.Get(context.Background(), "t", "k")
	if err != nil || !ok || string(v) != "before" {
		t.Fatalf("get after restart: %q %v %v", v, ok, err)
	}
}

func TestRetryRedialsWithinOneOperation(t *testing.T) {
	// A server that accepts and immediately drops the first connection:
	// the client's first attempt dies mid-exchange, the retry must succeed
	// against the real server behind it.
	be := memory.New()
	srv, err := engined.Start("127.0.0.1:0", be)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	var drops int
	var mu sync.Mutex
	go func() {
		for {
			nc, err := front.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			first := drops == 0
			drops++
			mu.Unlock()
			if first {
				nc.Close() // simulate a connection reset
				continue
			}
			// Proxy everything else straight through.
			bc, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				nc.Close()
				return
			}
			go func() { defer nc.Close(); defer bc.Close(); buf := make([]byte, 32<<10); copyConn(nc, bc, buf) }()
			go func() { buf := make([]byte, 32<<10); copyConn(bc, nc, buf) }()
		}
	}()

	c, err := remote.Dial(front.Addr().String(), remote.Options{Attempts: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(context.Background(), "t", "k", []byte("v")); err != nil {
		t.Fatalf("put through flaky front: %v", err)
	}
	v, ok, err := c.Get(context.Background(), "t", "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("get through flaky front: %q %v %v", v, ok, err)
	}
}

func copyConn(dst net.Conn, src net.Conn, buf []byte) {
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func TestOperationsAfterClientClose(t *testing.T) {
	srv, err := engined.Start("127.0.0.1:0", memory.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := c.Put(context.Background(), "t", "k", nil); !errors.Is(err, types.ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
}

func TestConcurrentClientsShareOnePool(t *testing.T) {
	srv, err := engined.Start("127.0.0.1:0", memory.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), remote.Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if err := c.Put(context.Background(), "t", k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				v, ok, err := c.Get(context.Background(), "t", k)
				if err != nil || !ok || string(v) != k {
					t.Errorf("%s: %q %v %v", k, v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestScanEarlyStopLeavesClientUsable(t *testing.T) {
	srv, err := engined.Start("127.0.0.1:0", memory.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 200; i++ {
		if err := c.Put(context.Background(), "t", fmt.Sprintf("k%03d", i), []byte(strings.Repeat("x", 100))); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon the stream after a few entries, repeatedly; the client must
	// keep serving requests on fresh connections.
	for round := 0; round < 3; round++ {
		n := 0
		if err := c.Scan(context.Background(), "t", func(string, []byte) bool { n++; return n < 5 }); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if n != 5 {
			t.Fatalf("round %d visited %d", round, n)
		}
		if _, ok, err := c.Get(context.Background(), "t", "k000"); err != nil || !ok {
			t.Fatalf("get after abandoned scan: %v %v", ok, err)
		}
	}
}

func TestBigValuesCrossTheWire(t *testing.T) {
	srv, err := engined.Start("127.0.0.1:0", memory.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 8<<20) // bigger than any internal buffer
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := c.BatchPut(context.Background(), "t", []engine.Entry{{Key: "big", Value: big}}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(context.Background(), "t", "big")
	if err != nil || !ok || len(v) != len(big) {
		t.Fatalf("big get: %d bytes, %v %v", len(v), ok, err)
	}
	for i := range v {
		if v[i] != big[i] {
			t.Fatalf("big value corrupted at byte %d", i)
		}
	}
}

// TestCompactOverTheWire: a disklog-backed daemon compacts on client demand,
// the stats round-trip, and every value survives the rewrite.
func TestCompactOverTheWire(t *testing.T) {
	be, err := disklog.Open(t.TempDir(), disklog.Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := engined.Start("127.0.0.1:0", be)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Overwrite-heavy history: every key rewritten five times, a few deleted.
	for rev := 0; rev < 5; rev++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("k%03d", i)
			v := fmt.Sprintf("%s rev-%d %s", k, rev, strings.Repeat("x", 64))
			if err := c.Put(context.Background(), "t", k, []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		if err := c.Delete(context.Background(), "t", fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatal(err)
		}
	}

	before, err := c.CompactionStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if before.DiskBytes == 0 || before.LiveRatio() > 0.5 {
		t.Fatalf("workload not dead-heavy enough: %+v", before)
	}
	after, err := c.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if after.DiskBytes > before.DiskBytes/2 {
		t.Fatalf("remote compact reclaimed too little: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	if after.CompactedBytes != before.DiskBytes-after.DiskBytes {
		t.Fatalf("CompactedBytes = %d, want %d", after.CompactedBytes, before.DiskBytes-after.DiskBytes)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, ok, err := c.Get(context.Background(), "t", k)
		if err != nil {
			t.Fatal(err)
		}
		if i < 10 {
			if ok {
				t.Fatalf("deleted %s resurrected as %q", k, v)
			}
			continue
		}
		if want := fmt.Sprintf("%s rev-4 %s", k, strings.Repeat("x", 64)); !ok || string(v) != want {
			t.Fatalf("%s = %q (ok=%v) after remote compact", k, v, ok)
		}
	}
}

// TestCompactUnsupportedBackend: a daemon whose backend cannot compact must
// report engine.ErrNoCompaction — a hard, matchable error, not
// unavailability (retrying a different replica would not help).
func TestCompactUnsupportedBackend(t *testing.T) {
	srv, err := engined.Start("127.0.0.1:0", memory.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Compact(context.Background()); !errors.Is(err, engine.ErrNoCompaction) {
		t.Fatalf("Compact on memory-backed node: %v, want ErrNoCompaction", err)
	}
	if _, err := c.CompactionStats(context.Background()); !errors.Is(err, engine.ErrNoCompaction) {
		t.Fatalf("CompactionStats on memory-backed node: %v, want ErrNoCompaction", err)
	}
	if errors.Is(engine.ErrNoCompaction, engine.ErrUnavailable) {
		t.Fatal("ErrNoCompaction must not be unavailability")
	}
}
