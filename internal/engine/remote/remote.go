// Package remote implements engine.Backend as a client of a storage node
// served by internal/engine/remote/engined: every operation is a framed,
// checksummed request over TCP (see internal/engine/remote/wire). This is
// the seam that turns the in-process cluster simulator into a deployable
// system — the layers above see the same Backend contract whether the node
// is a map in this process or a disklog daemon on another machine.
//
// Connections are pooled and re-dialed on demand, so a node that restarts
// is picked up transparently. Transport-level failures (dial errors, a
// connection dying mid-request) are retried with exponential backoff and,
// if they persist, surface wrapped in engine.ErrUnavailable so the cluster
// layer can route around the node; errors the node itself returned are
// passed through as hard errors. Retrying a possibly-applied write is safe
// because every Backend operation is idempotent (puts overwrite, deletes
// tolerate missing keys).
//
// A failure detector watches those unavailability verdicts: after
// Options.BreakerThreshold consecutive verdicts the node enters probation —
// operations fail fast (still wrapped in engine.ErrUnavailable) while a
// single background prober pings with exponential backoff, so a dead node
// costs one dial per probe interval instead of a dial-retry schedule per
// request. A successful probe closes the breaker and notifies the state
// listener (see breaker.go).
//
// Every operation honors its context end to end: dials go through
// net.Dialer.DialContext, retry backoff sleeps are interruptible, and a
// context that ends mid-exchange slams the connection deadline so even a
// blocked read (including between streamed Scan frames) returns promptly.
// A context-terminated operation surfaces wrapped in engine.ErrUnavailable
// with the context's error preserved in the chain, so callers can match
// both errors.Is(err, engine.ErrUnavailable) and errors.Is(err,
// context.DeadlineExceeded) / context.Canceled.
package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rstore/internal/codec"
	"rstore/internal/engine"
	"rstore/internal/engine/remote/wire"
	"rstore/internal/types"
)

// Options tunes a client. The zero value gives defaults.
type Options struct {
	// PoolSize is the number of idle connections kept for reuse; more may
	// be open at once under concurrency. Default 4.
	PoolSize int
	// DialTimeout bounds one connection attempt (a context deadline may
	// shorten it further). Default 2s.
	DialTimeout time.Duration
	// Attempts is how many times an operation is tried before reporting
	// the node unavailable; each attempt uses a fresh connection when the
	// previous one failed. Default 3.
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// further attempt. Default 25ms.
	Backoff time.Duration
	// IOTimeout bounds each request/response exchange (refreshed per
	// streamed Scan frame; a context deadline may shorten it further).
	// Default 30s.
	IOTimeout time.Duration
	// CompactTimeout bounds the wait for an OpCompact response instead of
	// IOTimeout: a segment merge over a large store legitimately runs for
	// minutes, and timing it out client-side would both fail the call and
	// queue a duplicate merge on every retry. A caller wanting a shorter
	// bound sets a context deadline. Default 15m.
	CompactTimeout time.Duration
	// BreakerThreshold is how many consecutive unavailability verdicts trip
	// the circuit breaker (see breaker.go): once tripped, operations fail
	// fast while a background prober watches for recovery. Default 3 — one
	// flaky exchange must not put a healthy node in probation.
	BreakerThreshold int
	// ProbeInterval is the delay before the breaker's first recovery probe;
	// it doubles per failed probe up to ProbeMaxBackoff. Default 100ms.
	ProbeInterval time.Duration
	// ProbeMaxBackoff caps the probe backoff — the longest a recovered node
	// waits before the breaker notices. Default 5s.
	ProbeMaxBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 30 * time.Second
	}
	if o.CompactTimeout <= 0 {
		o.CompactTimeout = 15 * time.Minute
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 100 * time.Millisecond
	}
	if o.ProbeMaxBackoff <= 0 {
		o.ProbeMaxBackoff = 5 * time.Second
	}
	return o
}

// Client is an engine.Backend served by a remote storage node.
type Client struct {
	addr string
	opts Options
	br   *breaker // failure detector (see breaker.go)

	mu     sync.Mutex
	idle   []*conn
	closed bool
}

var (
	_ engine.Backend     = (*Client)(nil)
	_ engine.Compactor   = (*Client)(nil)
	_ engine.MultiGetter = (*Client)(nil)
	_ engine.HashRanger  = (*Client)(nil)
)

// conn is one pooled connection with its buffered reader and reusable
// receive buffer.
type conn struct {
	nc  net.Conn
	br  *bufio.Reader
	buf []byte
}

// Dial creates a client for the node at addr (host:port). Connecting is
// lazy — a node that is down at Dial time is simply unavailable until it
// comes up — so only the address syntax is validated here.
func Dial(addr string, opts Options) (*Client, error) {
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return nil, fmt.Errorf("remote: bad node address %q: %w", addr, err)
	}
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.br = newBreaker(c)
	return c, nil
}

// Addr returns the node address this client speaks to.
func (c *Client) Addr() string { return c.addr }

// unavailable wraps a transport-level failure for route-around handling.
// err stays in the chain (%w) so context errors remain matchable.
func (c *Client) unavailable(err error) error {
	return fmt.Errorf("remote %s: %w: %w", c.addr, engine.ErrUnavailable, err)
}

// checkout returns a pooled connection or dials a new one under ctx.
func (c *Client) checkout(ctx context.Context) (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, types.ErrClosed
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		// A failed dial is a transport verdict like any other: classify it
		// so do()'s retry loop and the breaker see ErrUnavailable (a
		// ctx cancellation stays matchable through the chain).
		return nil, transportErr(err)
	}
	return &conn{nc: nc, br: bufio.NewReader(nc)}, nil
}

// release returns a healthy connection to the pool (or closes it when the
// pool is full or the client closed).
func (c *Client) release(cn *conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opts.PoolSize {
		c.idle = append(c.idle, cn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cn.nc.Close()
}

// exchange sends req and feeds response frames to handle until it reports
// done. A false done with nil error reads another frame (Scan streaming).
// The returned abandon reports that the connection must not be pooled even
// though the operation did not fail (early-stopped Scan). Context ends are
// enforced two ways: the per-frame deadline is the earlier of IOTimeout and
// the context deadline, and a cancellation mid-read slams the connection
// deadline so the blocked read returns immediately.
func (cn *conn) exchange(ctx context.Context, iot time.Duration, req []byte, handle func(status byte, body []byte) (done, abandon bool, err error)) (abandon bool, err error) {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { cn.nc.SetDeadline(time.Now()) })
		defer func() {
			if !stop() {
				// The slam callback already started (cancellation raced a
				// successful finish): the deadline may be set to the past
				// at any moment, so this connection must not be pooled —
				// the next operation to reuse it would fail spuriously.
				abandon = true
			}
		}()
	}
	frameDeadline := func() time.Time {
		d := time.Now().Add(iot)
		if cd, ok := ctx.Deadline(); ok && cd.Before(d) {
			d = cd
		}
		return d
	}
	cn.nc.SetDeadline(frameDeadline())
	if err := wire.WriteFrame(cn.nc, req); err != nil {
		return false, transportErr(err)
	}
	for {
		payload, err := wire.ReadFrame(cn.br, cn.buf)
		if err != nil {
			return false, transportErr(err)
		}
		if cap(payload) > cap(cn.buf) {
			cn.buf = payload[:0]
		}
		if len(payload) == 0 {
			return false, transportErr(fmt.Errorf("%w: empty response frame", types.ErrCorrupt))
		}
		done, abandon, err := handle(payload[0], payload[1:])
		if err != nil || done {
			return abandon, err
		}
		// Between streamed frames the context is checked explicitly: frames
		// already sitting in the receive buffer would otherwise keep a
		// cancelled stream flowing (buffered reads never consult the
		// connection deadline).
		if err := ctx.Err(); err != nil {
			return false, transportErr(err)
		}
		cn.nc.SetDeadline(frameDeadline()) // streaming: refresh per frame
	}
}

// transportError marks failures that warrant a retry on a fresh connection.
type transportError struct{ err error }

func (e transportError) Error() string { return e.err.Error() }
func (e transportError) Unwrap() error { return e.err }

func transportErr(err error) error { return transportError{err} }

// do runs one operation with pooling, retry, and backoff: transport-level
// failures are retried on a fresh connection (idempotent operations make
// this safe) until attempts run out, then surface as unavailable; errors
// the handler returns are hard and abort immediately. A context that ends —
// before the first dial, during a dial, mid-exchange, or while backing off —
// stops the operation at once and surfaces the context's error wrapped in
// engine.ErrUnavailable. A non-nil canRetry vetoes retries for operations
// whose effects already partially reached the caller (a Scan that delivered
// entries).
func (c *Client) do(ctx context.Context, req []byte, canRetry func() bool, handle func(status byte, body []byte) (done, abandon bool, err error)) error {
	return c.doTimeout(ctx, c.opts.IOTimeout, req, canRetry, handle)
}

// doTimeout is do with an explicit per-exchange deadline, for the rare op
// (compaction) whose server-side work legitimately outlasts IOTimeout.
func (c *Client) doTimeout(ctx context.Context, iot time.Duration, req []byte, canRetry func() bool, handle func(status byte, body []byte) (done, abandon bool, err error)) error {
	if len(req) > wire.MaxFrame {
		// A request no frame can carry is a hard caller error, not node
		// unavailability — retrying cannot help.
		return fmt.Errorf("remote %s: request of %d bytes exceeds the %d-byte frame limit", c.addr, len(req), wire.MaxFrame)
	}
	if c.br.fastFail() {
		// Probation: the failure detector already judged the node down, so
		// fail without a dial. The background prober (breaker.go) is the one
		// paying for reachability checks now.
		return c.unavailable(errProbation)
	}
	var lastErr error
	for attempt := 0; attempt < c.opts.Attempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(c.opts.Backoff << (attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return c.unavailable(ctx.Err())
			case <-t.C:
			}
		}
		if err := ctx.Err(); err != nil {
			return c.unavailable(err)
		}
		cn, err := c.checkout(ctx)
		if err != nil {
			if errors.Is(err, types.ErrClosed) {
				return err
			}
			if cerr := ctx.Err(); cerr != nil {
				return c.unavailable(cerr)
			}
			lastErr = err // dial failure: transient by definition
			continue
		}
		abandon, err := cn.exchange(ctx, iot, req, handle)
		if err == nil {
			c.br.recordSuccess()
			if abandon {
				cn.nc.Close()
			} else {
				c.release(cn)
			}
			return nil
		}
		cn.nc.Close()
		te, transient := err.(transportError)
		if !transient {
			// The node answered (with an error): reachable, so the failure
			// detector's consecutive count resets.
			c.br.recordSuccess()
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			// The transport failure is (or is indistinguishable from) our
			// own deadline slam; the context's end is the real cause.
			return c.unavailable(cerr)
		}
		lastErr = te.err
		// Pooled siblings of a broken connection usually broke with it
		// (node restart): drop them so retries dial fresh.
		c.flushIdle()
		if canRetry != nil && !canRetry() {
			break
		}
	}
	// An exhausted retry schedule with a live context is one unavailability
	// verdict for the failure detector. Context-terminated operations never
	// reach here (they return above) — a caller giving up proves nothing
	// about the node.
	c.br.recordFailure()
	return c.unavailable(lastErr)
}

// flushIdle discards all pooled connections.
func (c *Client) flushIdle() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cn := range idle {
		cn.nc.Close()
	}
}

// okOrErr handles the single OK/Err response of mutating operations.
func okOrErr(status byte, body []byte) (bool, bool, error) {
	switch status {
	case wire.StOK:
		return true, false, nil
	case wire.StErr:
		return true, false, decodeErr(body)
	default:
		return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
	}
}

// decodeErr reconstructs a node-side error. It stays a hard error; sentinel
// identity does not survive the wire except for closed-backend,
// no-compaction, and no-reset errors, which are mapped back so callers can
// match types.ErrClosed / engine.ErrNoCompaction / engine.ErrNoReset.
func decodeErr(body []byte) error {
	msg := string(body)
	switch msg {
	case types.ErrClosed.Error():
		return types.ErrClosed
	case engine.ErrNoCompaction.Error():
		return engine.ErrNoCompaction
	case engine.ErrNoReset.Error():
		return engine.ErrNoReset
	case engine.ErrNoHashRange.Error():
		return engine.ErrNoHashRange
	}
	return fmt.Errorf("remote node: %s", msg)
}

// Put stores value under (table, key) on the node.
func (c *Client) Put(ctx context.Context, table, key string, value []byte) error {
	req := []byte{wire.OpPut}
	req = codec.PutString(req, table)
	req = codec.PutString(req, key)
	req = append(req, value...)
	return c.do(ctx, req, nil, okOrErr)
}

// Get returns the value under (table, key).
func (c *Client) Get(ctx context.Context, table, key string) ([]byte, bool, error) {
	req := []byte{wire.OpGet}
	req = codec.PutString(req, table)
	req = codec.PutString(req, key)
	var value []byte
	found := false
	err := c.do(ctx, req, nil, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StOK:
			value = append([]byte(nil), body...) // body aliases the receive buffer
			found = true
			return true, false, nil
		case wire.StNotFound:
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
	if err != nil {
		return nil, false, err
	}
	return value, found, nil
}

// MultiGet reads many keys of one table in a single wire round trip
// (engine.MultiGetter): values and presence flags come back in request
// order. The whole batch shares one retry schedule, so a dead node costs
// one operation's worth of attempts regardless of batch size.
func (c *Client) MultiGet(ctx context.Context, table string, keys []string) ([][]byte, []bool, error) {
	req := []byte{wire.OpMultiGet}
	req = codec.PutString(req, table)
	req = codec.PutUvarint(req, uint64(len(keys)))
	for _, k := range keys {
		req = codec.PutString(req, k)
	}
	var values [][]byte
	var present []bool
	err := c.do(ctx, req, nil, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StOK:
			// Fresh slices per attempt: a retried exchange must not leak
			// results of a half-decoded earlier response.
			values = make([][]byte, len(keys))
			present = make([]bool, len(keys))
			n, rest, err := codec.Uvarint(body)
			if err != nil {
				return true, false, transportErr(err)
			}
			if n != uint64(len(keys)) {
				return true, false, transportErr(fmt.Errorf("%w: multiget answered %d of %d keys", types.ErrCorrupt, n, len(keys)))
			}
			for i := uint64(0); i < n; i++ {
				if len(rest) == 0 {
					return true, false, transportErr(fmt.Errorf("%w: truncated multiget response", types.ErrCorrupt))
				}
				flag := rest[0]
				rest = rest[1:]
				switch flag {
				case 0:
				case 1:
					var v []byte
					v, rest, err = codec.Bytes(rest)
					if err != nil {
						return true, false, transportErr(err)
					}
					values[i] = append([]byte(nil), v...) // v aliases the receive buffer
					present[i] = true
				default:
					return true, false, transportErr(fmt.Errorf("%w: multiget result flag %d", types.ErrCorrupt, flag))
				}
			}
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return values, present, nil
}

// Delete removes (table, key); deleting a missing key is a no-op.
func (c *Client) Delete(ctx context.Context, table, key string) error {
	req := []byte{wire.OpDelete}
	req = codec.PutString(req, table)
	req = codec.PutString(req, key)
	return c.do(ctx, req, nil, okOrErr)
}

// BatchPut applies all entries to one table with the node's batch
// durability (one fsync per batch on a disklog node).
func (c *Client) BatchPut(ctx context.Context, table string, entries []engine.Entry) error {
	req := []byte{wire.OpBatchPut}
	req = codec.PutString(req, table)
	req = codec.PutUvarint(req, uint64(len(entries)))
	for _, e := range entries {
		req = codec.PutString(req, e.Key)
		req = codec.PutBytes(req, e.Value)
	}
	return c.do(ctx, req, nil, okOrErr)
}

// Scan streams every key/value of a table from the node. Values passed to
// fn alias the receive buffer (the engine.Backend Scan contract). Once
// entries have been delivered a broken stream is not retried — the caller
// would see duplicates — and surfaces as unavailable. Cancelling ctx
// mid-stream abandons the connection; the node notices the severed peer on
// its next frame write and stops scanning.
func (c *Client) Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	req := []byte{wire.OpScan}
	req = codec.PutString(req, table)
	delivered := false
	return c.do(ctx, req, func() bool { return !delivered }, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StEntry:
			key, rest, err := codec.String(body)
			if err != nil {
				return true, false, transportErr(err)
			}
			delivered = true
			if !fn(key, rest) {
				// Abandon the connection: the node is still streaming.
				return true, true, nil
			}
			return false, false, nil
		case wire.StEnd:
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
}

// Tables lists the node's non-empty tables.
func (c *Client) Tables(ctx context.Context) ([]string, error) {
	var tables []string
	err := c.do(ctx, []byte{wire.OpTables}, nil, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StOK:
			n, rest, err := codec.Uvarint(body)
			if err != nil {
				return true, false, transportErr(err)
			}
			// Each table name needs at least its length prefix in the
			// body; don't size an allocation from a corrupt count.
			if n > uint64(len(rest))+1 {
				return true, false, transportErr(fmt.Errorf("%w: table count %d exceeds body", types.ErrCorrupt, n))
			}
			tables = make([]string, 0, n)
			for i := uint64(0); i < n; i++ {
				var t string
				t, rest, err = codec.String(rest)
				if err != nil {
					return true, false, transportErr(err)
				}
				tables = append(tables, t)
			}
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
	if err != nil {
		return nil, err
	}
	return tables, nil
}

// Stored reports the node's resident live payload volume, with the error
// BytesStored's signature cannot carry.
func (c *Client) Stored(ctx context.Context) (int64, error) {
	var n int64
	err := c.do(ctx, []byte{wire.OpBytesStored}, nil, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StOK:
			v, _, err := codec.Uvarint(body)
			if err != nil {
				return true, false, transportErr(err)
			}
			n = int64(v)
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
	return n, err
}

// BytesStored implements engine.Backend; an unreachable node reports 0.
func (c *Client) BytesStored() int64 {
	//lint:rstore-vet ctxfirst: engine.Backend's ctx-free stats surface — this shim mints a root for its one wire round-trip
	n, err := c.Stored(context.Background())
	if err != nil {
		return 0
	}
	return n
}

// compactOp round-trips OpCompact or OpCompactStats and decodes the stats
// response. A node whose backend cannot compact surfaces as
// engine.ErrNoCompaction (a hard error, not unavailability).
func (c *Client) compactOp(ctx context.Context, op byte) (engine.CompactionStats, error) {
	// Only the merge itself earns the long deadline; a stats read is a
	// cheap point request, and Stats probes every node with it — a hung
	// node must cost IOTimeout there, not CompactTimeout.
	iot := c.opts.IOTimeout
	if op == wire.OpCompact {
		iot = c.opts.CompactTimeout
	}
	var st engine.CompactionStats
	err := c.doTimeout(ctx, iot, []byte{op}, nil, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StOK:
			var err error
			st, err = wire.CompactionStats(body)
			if err != nil {
				return true, false, transportErr(err)
			}
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
	return st, err
}

// Compact asks the node to compact its backend and returns the
// post-compaction stats (engine.Compactor). A retried request is safe: a
// second compaction over just-compacted storage finds nothing to reclaim.
func (c *Client) Compact(ctx context.Context) (engine.CompactionStats, error) {
	return c.compactOp(ctx, wire.OpCompact)
}

// CompactionStats reports the node's storage-reclaim state without
// compacting (engine.Compactor).
func (c *Client) CompactionStats(ctx context.Context) (engine.CompactionStats, error) {
	return c.compactOp(ctx, wire.OpCompactStats)
}

// Reset wipes the node's backend empty (engine.Resetter). A node whose
// backend cannot reset surfaces as engine.ErrNoReset (a hard error, not
// unavailability). The wipe deletes files, so it earns the compaction
// deadline rather than the point-request one.
func (c *Client) Reset(ctx context.Context) error {
	return c.doTimeout(ctx, c.opts.CompactTimeout, []byte{wire.OpReset}, nil, okOrErr)
}

// HashTree fetches the node's hash-tree digest of one table
// (engine.HashRanger) — the anti-entropy summary exchange. Retrying is
// safe: digesting is read-only. A node whose backend cannot hash surfaces
// as engine.ErrNoHashRange (a hard error, not unavailability).
func (c *Client) HashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	if err := engine.CheckHashFanout(fanout); err != nil {
		return engine.TreeDigest{}, err
	}
	req := []byte{wire.OpHashTree}
	req = codec.PutString(req, table)
	req = codec.PutUvarint(req, uint64(fanout))
	var d engine.TreeDigest
	err := c.do(ctx, req, nil, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StOK:
			var err error
			// The decoder copies out of the receive buffer (fresh leaf
			// slice), so the digest is safe to retain.
			d, err = wire.HashTree(body)
			if err != nil {
				return true, false, transportErr(err)
			}
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
	if err != nil {
		return engine.TreeDigest{}, err
	}
	return d, nil
}

// HashRange lists one tree bucket's keys with their entry hashes
// (engine.HashRanger), for key-by-key diffing of an unequal leaf.
func (c *Client) HashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error) {
	if err := engine.CheckHashBucket(fanout, bucket); err != nil {
		return nil, err
	}
	req := []byte{wire.OpHashRange}
	req = codec.PutString(req, table)
	req = codec.PutUvarint(req, uint64(fanout))
	req = codec.PutUvarint(req, uint64(bucket))
	var khs []engine.KeyHash
	err := c.do(ctx, req, nil, func(status byte, body []byte) (bool, bool, error) {
		switch status {
		case wire.StOK:
			var err error
			// codec.String copies, so the decoded keys do not alias the
			// receive buffer.
			khs, err = wire.HashRange(body)
			if err != nil {
				return true, false, transportErr(err)
			}
			return true, false, nil
		case wire.StErr:
			return true, false, decodeErr(body)
		default:
			return true, false, transportErr(fmt.Errorf("%w: unexpected response status %d", types.ErrCorrupt, status))
		}
	})
	if err != nil {
		return nil, err
	}
	return khs, nil
}

// Ping round-trips a no-op request, reporting node reachability.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, []byte{wire.OpPing}, nil, okOrErr)
}

// Close releases the client's connections. The node and its data are
// unaffected — a remote backend's lifecycle belongs to its daemon. Closing
// twice is a no-op.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	idle := c.idle
	c.idle = nil
	// Close the drained connections outside the pool lock: Close on a TCP
	// conn can block (lingering writes), and checkout/release contend on mu.
	// The breaker is stopped outside it too — closed is already set, so no
	// new operation can trip it, and nesting c.mu over the breaker's mutex
	// would put a lock-order edge in the rank table for no benefit.
	c.mu.Unlock()
	c.br.close()
	for _, cn := range idle {
		cn.nc.Close()
	}
	return nil
}
