package remote

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/engine/remote/wire"
)

// errProbation is the fast-fail cause while the breaker is open. It is
// wrapped in engine.ErrUnavailable like any other transport failure, so the
// cluster layer routes around the node exactly as if the dial had failed —
// just without paying for the dial.
var errProbation = errors.New("circuit breaker open: node in probation until a probe succeeds")

// BreakerStats is a snapshot of a client's failure-detector state.
type BreakerStats struct {
	// Open reports the node is in probation: operations fail fast while a
	// background probe watches for recovery.
	Open bool
	// Trips counts closed→open transitions over the client's lifetime.
	Trips int64
	// Probes counts background probe attempts (including the one that
	// succeeds and closes the breaker).
	Probes int64
	// FastFails counts operations rejected without touching the network
	// because the breaker was open.
	FastFails int64
}

// breaker is the client's failure detector: a consecutive-failure circuit
// breaker with a single background prober.
//
// An operation that exhausts its retry schedule on transport errors (with a
// live context — a caller's cancelled context says nothing about the node)
// is one unavailability verdict. BreakerThreshold consecutive verdicts trip
// the breaker: subsequent operations fail fast with engine.ErrUnavailable
// and one prober goroutine pings the node with exponential backoff, so a
// dead node costs one dial per probe interval instead of a dial-retry
// schedule per request. Any completed exchange — success or a hard error
// the node itself returned — proves reachability and resets the count; a
// successful probe (or a racing in-flight success) closes the breaker and
// notifies the state listener, which the cluster layer uses to kick hint
// drain.
type breaker struct {
	c *Client

	mu          sync.Mutex
	consecutive int  // unavailability verdicts since the last completed exchange
	open        bool // in probation: fail fast, prober running
	probing     bool // prober goroutine live
	stopped     bool // client closed
	stop        chan struct{}
	listener    func(up bool)

	trips     atomic.Int64
	probes    atomic.Int64
	fastFails atomic.Int64
}

func newBreaker(c *Client) *breaker {
	return &breaker{c: c, stop: make(chan struct{})}
}

// fastFail reports whether the operation should be rejected without
// touching the network, counting the rejection.
func (b *breaker) fastFail() bool {
	b.mu.Lock()
	open := b.open
	b.mu.Unlock()
	if open {
		b.fastFails.Add(1)
	}
	return open
}

// recordSuccess notes a completed exchange: the node is reachable. A racing
// in-flight operation that completes while the breaker is open closes it
// (the prober notices and exits).
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	b.consecutive = 0
	wasOpen := b.open
	b.open = false
	fn := b.listener
	b.mu.Unlock()
	if wasOpen && fn != nil {
		fn(true)
	}
}

// recordFailure notes one unavailability verdict, tripping the breaker and
// starting the prober at the threshold.
func (b *breaker) recordFailure() {
	b.mu.Lock()
	b.consecutive++
	tripped := false
	if !b.open && !b.stopped && b.consecutive >= b.c.opts.BreakerThreshold {
		b.open = true
		tripped = true
		b.trips.Add(1)
		if !b.probing {
			b.probing = true
			go b.probeLoop()
		}
	}
	fn := b.listener
	b.mu.Unlock()
	if tripped && fn != nil {
		fn(false)
	}
}

// probeLoop is the single background prober: ping with exponential backoff
// until the node answers, the breaker closes some other way, or the client
// closes.
func (b *breaker) probeLoop() {
	backoff := b.c.opts.ProbeInterval
	t := time.NewTimer(backoff)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
		}
		b.mu.Lock()
		if !b.open || b.stopped {
			b.probing = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		b.probes.Add(1)
		if b.c.probeOnce() {
			b.mu.Lock()
			b.open = false
			b.consecutive = 0
			b.probing = false
			fn := b.listener
			b.mu.Unlock()
			if fn != nil {
				fn(true)
			}
			return
		}
		if backoff *= 2; backoff > b.c.opts.ProbeMaxBackoff {
			backoff = b.c.opts.ProbeMaxBackoff
		}
		t.Reset(backoff)
	}
}

// close stops the prober permanently (client Close).
func (b *breaker) close() {
	b.mu.Lock()
	if !b.stopped {
		b.stopped = true
		close(b.stop)
	}
	b.mu.Unlock()
}

func (b *breaker) stats() BreakerStats {
	b.mu.Lock()
	open := b.open
	b.mu.Unlock()
	return BreakerStats{
		Open:      open,
		Trips:     b.trips.Load(),
		Probes:    b.probes.Load(),
		FastFails: b.fastFails.Load(),
	}
}

// probeOnce is one single-attempt reachability check: one dial, one ping
// exchange, no retries and no pool — the whole point of the breaker is
// that a dead node costs exactly one dial per probe interval.
func (c *Client) probeOnce() bool {
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	nc, err := d.Dial("tcp", c.addr)
	if err != nil {
		return false
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(c.opts.IOTimeout))
	if err := wire.WriteFrame(nc, []byte{wire.OpPing}); err != nil {
		return false
	}
	payload, err := wire.ReadFrame(bufio.NewReader(nc), nil)
	return err == nil && len(payload) > 0 && payload[0] == wire.StOK
}

// BreakerOpen reports whether the failure detector currently holds the node
// in probation (operations fail fast until a probe succeeds).
func (c *Client) BreakerOpen() bool {
	c.br.mu.Lock()
	defer c.br.mu.Unlock()
	return c.br.open
}

// BreakerStats snapshots the failure detector's state and counters.
func (c *Client) BreakerStats() BreakerStats { return c.br.stats() }

// SetStateListener installs fn to be called on breaker transitions: fn(false)
// when the node enters probation, fn(true) when it recovers. The cluster
// layer uses recovery to kick hint drain so parked writes replay promptly.
// fn is called from client goroutines (including the prober) and must not
// block. Replaces any previous listener; nil removes it.
func (c *Client) SetStateListener(fn func(up bool)) {
	c.br.mu.Lock()
	c.br.listener = fn
	c.br.mu.Unlock()
}
