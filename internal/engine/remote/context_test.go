package remote_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
)

// Satellite acceptance: a deadline-exceeded dial surfaces
// context.DeadlineExceeded wrapped in engine.ErrUnavailable, so callers can
// both route around the node and see why the attempt ended.

func TestExpiredContextDialIsUnavailableAndDeadlineExceeded(t *testing.T) {
	c, err := remote.Dial("127.0.0.1:9", remote.Options{Attempts: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err = c.Get(ctx, "t", "k")
	if !errors.Is(err, engine.ErrUnavailable) {
		t.Fatalf("expired-deadline dial not classified unavailable: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context.DeadlineExceeded lost from the chain: %v", err)
	}
}

func TestDeadlineMidExchangeIsUnavailableAndDeadlineExceeded(t *testing.T) {
	// A listener that accepts and then never responds: the dial succeeds,
	// the exchange stalls, and only the context deadline ends the wait.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // hold the connection open, silent
		}
	}()

	c, err := remote.Dial(ln.Addr().String(), remote.Options{Attempts: 3, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = c.Get(ctx, "t", "k")
	if !errors.Is(err, engine.ErrUnavailable) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled exchange: %v", err)
	}
	// The deadline must end the operation promptly — not after the 30s
	// default IO timeout or the full retry schedule.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to take effect", elapsed)
	}
}

func TestCancelledContextStopsRetries(t *testing.T) {
	// No listener at all: every attempt fails; cancelling between backoffs
	// must stop the retry loop with the context's error in the chain.
	c, err := remote.Dial("127.0.0.1:9", remote.Options{Attempts: 100, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = c.Put(ctx, "t", "k", []byte("v"))
	if !errors.Is(err, engine.ErrUnavailable) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled retries: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v (retry loop not interrupted)", elapsed)
	}
}

func TestContextCancelAbortsScanMidStream(t *testing.T) {
	be := memory.New()
	ctx := context.Background()
	for i := 0; i < 512; i++ {
		if err := be.Put(ctx, "t", string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune('A'+i%26)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := engined.Start("127.0.0.1:0", be)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := remote.Dial(srv.Addr().String(), remote.Options{Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err = c.Scan(sctx, "t", func(string, []byte) bool {
		seen++
		if seen == 3 {
			cancel() // mid-stream: later frames must not be waited for
		}
		return true
	})
	if err == nil {
		t.Fatal("cancelled scan completed cleanly")
	}
	if !errors.Is(err, engine.ErrUnavailable) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scan error: %v", err)
	}
	// The client remains usable for later operations on a fresh context.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("client unusable after cancelled scan: %v", err)
	}
}
