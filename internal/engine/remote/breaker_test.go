// Failure-detector tests: breaker trip/fast-fail behavior, the
// steady-state dial budget against a dead node (one probe per backoff
// interval, not one dial schedule per request), and probe-driven recovery
// with its state-listener notification.
package remote_test

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
)

// slamListener accepts and immediately closes every connection, counting
// the accepts: a node that is reachable at the TCP layer but dead at the
// protocol layer, with an observable dial count.
type slamListener struct {
	ln     net.Listener
	dials  atomic.Int64
	closed chan struct{}
}

func newSlamListener(t *testing.T) *slamListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &slamListener{ln: ln, closed: make(chan struct{})}
	go func() {
		defer close(s.closed)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.dials.Add(1)
			c.Close()
		}
	}()
	return s
}

func (s *slamListener) addr() string { return s.ln.Addr().String() }

func (s *slamListener) close() {
	s.ln.Close()
	<-s.closed
}

// breakerOpts trips fast and probes on a test-friendly cadence.
func breakerOpts() remote.Options {
	return remote.Options{
		Attempts:         1,
		Backoff:          time.Millisecond,
		DialTimeout:      time.Second,
		IOTimeout:        time.Second,
		BreakerThreshold: 2,
		ProbeInterval:    30 * time.Millisecond,
		ProbeMaxBackoff:  time.Second,
	}
}

// trip drives the client to BreakerThreshold unavailability verdicts.
func trip(t *testing.T, c *remote.Client, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Put(context.Background(), "t", "k", []byte("v")); !errors.Is(err, engine.ErrUnavailable) {
			t.Fatalf("verdict %d: %v", i, err)
		}
	}
	if !c.BreakerOpen() {
		t.Fatalf("breaker not open after %d verdicts", n)
	}
}

func TestBreakerTripsAndFastFails(t *testing.T) {
	s := newSlamListener(t)
	defer s.close()
	c, err := remote.Dial(s.addr(), breakerOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	trip(t, c, 2)
	st := c.BreakerStats()
	if !st.Open || st.Trips != 1 {
		t.Fatalf("after trip: %+v", st)
	}

	// Probation ops fail fast — still classified unavailable (the cluster
	// layer must route around them like any down node) but without a dial.
	for i := 0; i < 5; i++ {
		if err := c.Put(context.Background(), "t", "k", []byte("v")); !errors.Is(err, engine.ErrUnavailable) {
			t.Fatalf("probation put %d: %v", i, err)
		}
	}
	if st = c.BreakerStats(); st.FastFails < 5 {
		t.Fatalf("FastFails = %d, want >= 5", st.FastFails)
	}
}

// TestDeadNodeCostsOneProbePerInterval is the dial-budget contract: once
// the breaker is open, requests stop paying for dials entirely — the only
// connections a dead node sees are the background probes, one per backoff
// interval.
func TestDeadNodeCostsOneProbePerInterval(t *testing.T) {
	s := newSlamListener(t)
	defer s.close()
	opts := breakerOpts()
	opts.ProbeInterval = 40 * time.Millisecond
	c, err := remote.Dial(s.addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	trip(t, c, 2)
	base := s.dials.Load()

	// Steady state: hammer the dead node, then let a known number of probe
	// intervals elapse. With backoff 40ms, 80ms, ... at most 3 probes fit
	// in 200ms; 100 requests must not add a single dial beyond them.
	const reqs = 100
	for i := 0; i < reqs; i++ {
		if err := c.Put(context.Background(), "t", "k", []byte("v")); !errors.Is(err, engine.ErrUnavailable) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	dials := s.dials.Load() - base
	st := c.BreakerStats()
	if dials > 4 {
		t.Fatalf("dead node saw %d dials for %d requests; want only the probes (<= 4). stats: %+v", dials, reqs, st)
	}
	if st.Probes < 1 || dials < 1 {
		t.Fatalf("no probe reached the node (probes=%d dials=%d): prober not running", st.Probes, dials)
	}
	if st.FastFails < reqs {
		t.Fatalf("FastFails = %d, want >= %d", st.FastFails, reqs)
	}
}

func TestBreakerRecoversWhenNodeReturns(t *testing.T) {
	s := newSlamListener(t)
	c, err := remote.Dial(s.addr(), breakerOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	transitions := make(chan bool, 16)
	c.SetStateListener(func(up bool) { transitions <- up })

	addr := s.addr()
	trip(t, c, 2)
	select {
	case up := <-transitions:
		if up {
			t.Fatal("first transition was up, want down")
		}
	case <-time.After(time.Second):
		t.Fatal("no down transition after trip")
	}

	// Replace the protocol-dead listener with a real daemon on the same
	// address: the next probe must close the breaker.
	s.close()
	srv, err := engined.Start(addr, memory.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	select {
	case up := <-transitions:
		if !up {
			t.Fatal("second transition was down, want up (recovery)")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("breaker never recovered after node restart")
	}
	if c.BreakerOpen() {
		t.Fatal("breaker still open after recovery notification")
	}
	// And the client is fully usable again.
	if err := c.Put(context.Background(), "t", "k", []byte("after")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(context.Background(), "t", "k")
	if err != nil || !ok || string(v) != "after" {
		t.Fatalf("get after recovery: %q %v %v", v, ok, err)
	}
}

// TestProbationOpsNeverDial: with the prober parked, an open breaker
// admits no traffic at all — even after the node has actually returned,
// operations keep fast-failing until a probe (or a racing in-flight
// success) proves reachability. This is the gate the dial budget rests on.
func TestProbationOpsNeverDial(t *testing.T) {
	s := newSlamListener(t)
	opts := breakerOpts()
	opts.ProbeInterval = time.Hour // park the prober
	c, err := remote.Dial(s.addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	addr := s.addr()
	trip(t, c, 2)
	s.close()
	srv, err := engined.Start(addr, memory.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The node is healthy again, but nothing has probed it: operations
	// must still fail fast, and the breaker must still be open.
	for i := 0; i < 3; i++ {
		if err := c.Put(context.Background(), "t", "k", []byte("v")); !errors.Is(err, engine.ErrUnavailable) {
			t.Fatalf("probation put %d: %v", i, err)
		}
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker closed without a probe or completed exchange")
	}
	if st := c.BreakerStats(); st.Probes != 0 {
		t.Fatalf("parked prober still probed %d times", st.Probes)
	}
}
