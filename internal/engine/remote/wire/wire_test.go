package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"rstore/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{OpPing},
		[]byte("hello frames"),
		make([]byte, 1<<16), // bigger than any bufio boundary
		{},                  // empty payloads are legal at the framing layer
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var reuse []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, reuse)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		reuse = got[:0]
	}
	if _, err := ReadFrame(&buf, nil); !errors.Is(err, io.EOF) {
		t.Fatalf("read past last frame: %v", err)
	}
}

func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("precious payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x40 // flip a payload bit; header stays intact
	_, err := ReadFrame(bytes.NewReader(raw), nil)
	if !errors.Is(err, types.ErrCorrupt) || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted frame: %v", err)
	}
}

func TestFrameRejectsHugeLength(t *testing.T) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), nil)
	if !errors.Is(err, types.ErrCorrupt) {
		t.Fatalf("oversized announcement: %v", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("truncated in flight")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadFrame(bytes.NewReader(raw), nil); err == nil {
		t.Fatal("truncated frame decoded cleanly")
	}
}
