// Package wire defines the binary protocol a remote storage node speaks:
// the framing and message encodings shared by the client
// (internal/engine/remote) and the server (internal/engine/remote/engined).
//
// Every message — request or response — travels in one frame:
//
//	frame   := length(uint32 LE, of payload) crc32(uint32 LE, IEEE of payload) payload
//
// The checksum makes a half-written or bit-flipped frame detectable at the
// receiver instead of being decoded into garbage operations, mirroring the
// per-record checksums of the disklog segment format.
//
// Request payloads start with an op byte; response payloads start with a
// status byte. Strings and byte strings are uvarint-length-prefixed
// (internal/codec). One request yields exactly one response frame, except
// Scan, which streams StEntry frames and terminates with StEnd (or StErr).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"rstore/internal/codec"
	"rstore/internal/engine"
	"rstore/internal/types"
)

// Request opcodes (first byte of a request payload).
const (
	OpPut byte = iota + 1
	OpGet
	OpDelete
	OpBatchPut
	OpScan
	OpTables
	OpBytesStored
	OpPing
	// OpCompact asks the node to compact its backend (engine.Compactor) and
	// reply with the post-compaction stats; OpCompactStats reads the stats
	// without compacting. A node whose backend cannot compact replies StErr
	// with the engine.ErrNoCompaction text.
	OpCompact
	OpCompactStats
	// OpReset asks the node to wipe its backend empty (engine.Resetter) so a
	// running daemon can be reused between benchmark or test phases. A node
	// whose backend cannot reset replies StErr with the engine.ErrNoReset
	// text.
	OpReset
	// OpMultiGet reads N keys of one table in a single round trip:
	//
	//	request  := OpMultiGet table(string) count(uvarint) key(string)*count
	//	response := StOK count(uvarint) result*count   |   StErr text
	//	result   := 0x00                (key absent)
	//	          | 0x01 value(bytes)   (key present)
	//
	// Results are returned in request order and count always equals the
	// request's count. This is the batched read the cluster's MultiGet path
	// rides on: one frame out, one frame back, instead of one exchange per
	// key per replica.
	OpMultiGet
	// OpHashTree fetches a hash-tree digest of one table — the anti-entropy
	// summary exchange (engine.HashRanger):
	//
	//	request  := OpHashTree table(string) fanout(uvarint)
	//	response := StOK tree-digest   |   StErr text
	//
	// A node whose backend cannot hash replies StErr with the
	// engine.ErrNoHashRange text.
	OpHashTree
	// OpHashRange drills into one bucket of the tree, listing its keys with
	// their entry hashes so the caller can diff key-by-key:
	//
	//	request  := OpHashRange table(string) fanout(uvarint) bucket(uvarint)
	//	response := StOK key-hashes   |   StErr text
	OpHashRange
)

// Response statuses (first byte of a response payload).
const (
	// StOK acknowledges the request; op-specific results follow.
	StOK byte = iota + 1
	// StErr reports a backend error; the error text follows. The operation
	// reached the node and failed there — a hard error, not unavailability.
	StErr
	// StNotFound is Get's "key absent" result (not an error; matches the
	// engine.Backend contract).
	StNotFound
	// StEntry carries one streamed Scan key/value.
	StEntry
	// StEnd terminates a Scan stream.
	StEnd
)

// PutCompactionStats appends the OpCompact/OpCompactStats response body —
// four uvarints: disk bytes, live bytes, compacted bytes, segment count.
// Shared by client and server so the encoding cannot diverge.
func PutCompactionStats(buf []byte, st engine.CompactionStats) []byte {
	buf = codec.PutUvarint(buf, uint64(st.DiskBytes))
	buf = codec.PutUvarint(buf, uint64(st.LiveBytes))
	buf = codec.PutUvarint(buf, uint64(st.CompactedBytes))
	buf = codec.PutUvarint(buf, uint64(st.Segments))
	return buf
}

// CompactionStats decodes the body PutCompactionStats produced.
func CompactionStats(body []byte) (engine.CompactionStats, error) {
	var st engine.CompactionStats
	disk, rest, err := codec.Uvarint(body)
	if err != nil {
		return st, err
	}
	live, rest, err := codec.Uvarint(rest)
	if err != nil {
		return st, err
	}
	compacted, rest, err := codec.Uvarint(rest)
	if err != nil {
		return st, err
	}
	segs, _, err := codec.Uvarint(rest)
	if err != nil {
		return st, err
	}
	st.DiskBytes = int64(disk)
	st.LiveBytes = int64(live)
	st.CompactedBytes = int64(compacted)
	st.Segments = int(segs)
	return st, nil
}

// putU64 appends a fixed 8-byte little-endian integer. Hashes travel
// fixed-width: a uniformly distributed 64-bit value averages more than 8
// bytes as a uvarint.
func putU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// u64 consumes a fixed 8-byte little-endian integer.
func u64(body []byte) (uint64, []byte, error) {
	if len(body) < 8 {
		return 0, nil, fmt.Errorf("%w: short u64", types.ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(body), body[8:], nil
}

// PutHashTree appends the OpHashTree response body: root(u64le)
// bytesHashed(uvarint) count(uvarint) count × (hash(u64le) keys(uvarint)).
// Shared by client and server so the encoding cannot diverge.
func PutHashTree(buf []byte, d engine.TreeDigest) []byte {
	buf = putU64(buf, d.Root)
	buf = codec.PutUvarint(buf, uint64(d.Bytes))
	buf = codec.PutUvarint(buf, uint64(len(d.Leaves)))
	for _, l := range d.Leaves {
		buf = putU64(buf, l.Hash)
		buf = codec.PutUvarint(buf, l.Keys)
	}
	return buf
}

// HashTree decodes the body PutHashTree produced. The leaf count is
// validated against both engine.MaxHashFanout and the remaining body
// before the slice is sized, and trailing bytes after the declared leaves
// are a framing error — a corrupt frame cannot force an allocation or
// smuggle data.
func HashTree(body []byte) (engine.TreeDigest, error) {
	var d engine.TreeDigest
	root, rest, err := u64(body)
	if err != nil {
		return d, err
	}
	hashed, rest, err := codec.Uvarint(rest)
	if err != nil {
		return d, err
	}
	n, rest, err := codec.Uvarint(rest)
	if err != nil {
		return d, err
	}
	// Each leaf is at least 9 bytes (8-byte hash + ≥1-byte count).
	if n > engine.MaxHashFanout || n > uint64(len(rest))/9+1 {
		return d, fmt.Errorf("%w: hash tree announces %d leaves in %d bytes", types.ErrCorrupt, n, len(rest))
	}
	d.Root = root
	d.Bytes = int64(hashed)
	d.Leaves = make([]engine.LeafDigest, n)
	for i := range d.Leaves {
		if d.Leaves[i].Hash, rest, err = u64(rest); err != nil {
			return engine.TreeDigest{}, err
		}
		if d.Leaves[i].Keys, rest, err = codec.Uvarint(rest); err != nil {
			return engine.TreeDigest{}, err
		}
	}
	if len(rest) != 0 {
		return engine.TreeDigest{}, fmt.Errorf("%w: %d trailing bytes after hash tree", types.ErrCorrupt, len(rest))
	}
	return d, nil
}

// PutHashRange appends the OpHashRange response body: count(uvarint)
// count × (key(string) hash(u64le)).
func PutHashRange(buf []byte, khs []engine.KeyHash) []byte {
	buf = codec.PutUvarint(buf, uint64(len(khs)))
	for _, kh := range khs {
		buf = codec.PutString(buf, kh.Key)
		buf = putU64(buf, kh.Hash)
	}
	return buf
}

// HashRange decodes the body PutHashRange produced, with the same
// count-before-allocation and no-trailing-bytes discipline as HashTree.
func HashRange(body []byte) ([]engine.KeyHash, error) {
	n, rest, err := codec.Uvarint(body)
	if err != nil {
		return nil, err
	}
	// Each entry is at least 9 bytes (≥1-byte length prefix + 8-byte hash).
	if n > uint64(len(rest))/9+1 {
		return nil, fmt.Errorf("%w: hash range announces %d keys in %d bytes", types.ErrCorrupt, n, len(rest))
	}
	out := make([]engine.KeyHash, n)
	for i := range out {
		if out[i].Key, rest, err = codec.String(rest); err != nil {
			return nil, err
		}
		if out[i].Hash, rest, err = u64(rest); err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after hash range", types.ErrCorrupt, len(rest))
	}
	return out, nil
}

// frameHeader is the fixed prefix of every frame: payload length + checksum.
const frameHeader = 8

// MaxFrame bounds a single payload (1 GiB, matching disklog's maxBody):
// larger announced lengths are treated as stream corruption rather than
// allocated.
const MaxFrame = 1 << 30

// WriteFrame frames payload onto w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r, verifying the checksum. The payload is
// read into buf when it fits (the returned slice then aliases buf), so a
// caller looping over frames can reuse one buffer.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: wire frame announces %d bytes", types.ErrCorrupt, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: wire frame checksum mismatch", types.ErrCorrupt)
	}
	return payload, nil
}
