package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Decoder hardening: arbitrary bytes off the network must never panic the
// frame reader, and anything it accepts must be a frame WriteFrame could
// have produced.

func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, []byte("hello, frame")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	if err := WriteFrame(&empty, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// A header announcing more than MaxFrame with no body: must be
	// rejected as corruption, not allocated.
	huge := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(huge[0:4], MaxFrame+1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return // torn/corrupt input; rejecting is the contract
		}
		// An accepted frame must re-encode to exactly the bytes consumed.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("re-encoding accepted payload: %v", err)
		}
		if len(data) < out.Len() || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted frame does not round-trip: read %d-byte payload from %d input bytes", len(payload), len(data))
		}
		// Reading into a reused buffer must yield the same payload.
		again, err := ReadFrame(bytes.NewReader(data), make([]byte, 0, 64))
		if err != nil || !bytes.Equal(again, payload) {
			t.Fatalf("buffer-reuse read disagrees: %v", err)
		}
	})
}
