package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"rstore/internal/engine"
	"rstore/internal/types"
)

// Decoder hardening: arbitrary bytes off the network must never panic the
// frame reader, and anything it accepts must be a frame WriteFrame could
// have produced.

func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteFrame(&valid, []byte("hello, frame")); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	if err := WriteFrame(&empty, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// A header announcing more than MaxFrame with no body: must be
	// rejected as corruption, not allocated.
	huge := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(huge[0:4], MaxFrame+1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			return // torn/corrupt input; rejecting is the contract
		}
		// An accepted frame must re-encode to exactly the bytes consumed.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("re-encoding accepted payload: %v", err)
		}
		if len(data) < out.Len() || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted frame does not round-trip: read %d-byte payload from %d input bytes", len(payload), len(data))
		}
		// Reading into a reused buffer must yield the same payload.
		again, err := ReadFrame(bytes.NewReader(data), make([]byte, 0, 64))
		if err != nil || !bytes.Equal(again, payload) {
			t.Fatalf("buffer-reuse read disagrees: %v", err)
		}
	})
}

// The hash-tree payload decoders guard the anti-entropy path: their input
// is whatever a peer (or a corrupted stream the frame checksum happened to
// miss) put on the wire. Rejections must classify as corruption, accepted
// inputs must round-trip semantically — byte-identity is not required
// because uvarints admit non-canonical encodings, but decode(encode(
// decode(x))) must be a fixed point.

func FuzzHashTreeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(PutHashTree(nil, engine.TreeDigest{}))
	f.Add(PutHashTree(nil, engine.TreeDigest{
		Root:   0xdeadbeefcafef00d,
		Bytes:  12345,
		Leaves: []engine.LeafDigest{{Hash: 1, Keys: 2}, {Hash: 0, Keys: 0}, {Hash: 1 << 63, Keys: 1}},
	}))
	// A leaf count past MaxHashFanout must be rejected before allocation.
	var huge []byte
	huge = putU64(huge, 1)
	huge = append(huge, 0) // bytes
	huge = binary.AppendUvarint(huge, engine.MaxHashFanout+1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := HashTree(data)
		if err != nil {
			if !errors.Is(err, types.ErrCorrupt) {
				t.Fatalf("rejection not classified as corruption: %v", err)
			}
			return
		}
		if uint64(len(d.Leaves)) > engine.MaxHashFanout {
			t.Fatalf("accepted %d leaves past the fanout limit", len(d.Leaves))
		}
		// Semantic round-trip: re-encoding the accepted digest and decoding
		// it again must reproduce it exactly.
		again, err := HashTree(PutHashTree(nil, d))
		if err != nil {
			t.Fatalf("re-decoding accepted digest: %v", err)
		}
		if again.Root != d.Root || again.Bytes != d.Bytes || len(again.Leaves) != len(d.Leaves) {
			t.Fatalf("digest does not round-trip: %+v vs %+v", again, d)
		}
		for i := range d.Leaves {
			if again.Leaves[i] != d.Leaves[i] {
				t.Fatalf("leaf %d does not round-trip: %+v vs %+v", i, again.Leaves[i], d.Leaves[i])
			}
		}
	})
}

func FuzzHashRangeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(PutHashRange(nil, nil))
	f.Add(PutHashRange(nil, []engine.KeyHash{
		{Key: "alpha", Hash: 42},
		{Key: "", Hash: 0},
		{Key: "z\x00binary", Hash: 1 << 63},
	}))
	// A count the body cannot hold must be rejected before allocation.
	f.Add(binary.AppendUvarint(nil, 1<<40))
	f.Fuzz(func(t *testing.T, data []byte) {
		khs, err := HashRange(data)
		if err != nil {
			if !errors.Is(err, types.ErrCorrupt) {
				t.Fatalf("rejection not classified as corruption: %v", err)
			}
			return
		}
		again, err := HashRange(PutHashRange(nil, khs))
		if err != nil {
			t.Fatalf("re-decoding accepted key hashes: %v", err)
		}
		if len(again) != len(khs) {
			t.Fatalf("length does not round-trip: %d vs %d", len(again), len(khs))
		}
		for i := range khs {
			if again[i] != khs[i] {
				t.Fatalf("entry %d does not round-trip: %+v vs %+v", i, again[i], khs[i])
			}
		}
	})
}
