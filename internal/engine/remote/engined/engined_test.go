package engined_test

import (
	"context"
	"testing"
	"time"

	"rstore/internal/engine/memory"
	"rstore/internal/engine/remote"
	"rstore/internal/engine/remote/engined"
)

// Shutdown must drain promptly even with idle pooled client connections
// parked in between-request reads, and be a no-op the second time.
func TestShutdownDrainsIdleConnections(t *testing.T) {
	be := memory.New()
	srv, err := engined.Start("127.0.0.1:0", be)
	if err != nil {
		t.Fatal(err)
	}
	c, err := remote.Dial(srv.Addr().String(), remote.Options{Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	// Leave an idle pooled connection behind.
	if err := c.Put(ctx, "t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain of an idle connection took %v", elapsed)
	}
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close after shutdown: %v", err)
	}

	// The daemon is gone; the backend is untouched and still the caller's.
	if err := c.Ping(ctx); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
	if v, ok, err := be.Get(ctx, "t", "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("backend state lost across shutdown: %q %v %v", v, ok, err)
	}
}
