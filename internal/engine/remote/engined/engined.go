// Package engined serves any local engine.Backend over the TCP protocol of
// internal/engine/remote/wire, making it a storage node that
// internal/engine/remote clients (and therefore whole kvstore clusters) can
// use in place of an in-process backend. One goroutine per connection;
// requests on a connection are served serially, concurrency comes from
// clients pooling connections.
//
// The server does not own the backend: callers open it, pass it in, and
// close it after the server stops (cmd/rstore-node wires up that lifecycle
// for a disklog backend).
package engined

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rstore/internal/codec"
	"rstore/internal/engine"
	"rstore/internal/engine/remote/wire"
	"rstore/internal/types"
)

// Server serves one backend on one listener.
type Server struct {
	be engine.Backend

	// baseCtx scopes every backend operation the server issues; Close
	// cancels it so in-flight work aborts, Shutdown leaves it live until
	// the drain deadline passes.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New builds a server over a backend; call Serve to start it.
func New(be engine.Backend) *Server {
	//lint:rstore-vet ctxfirst: the daemon is a lifecycle root — per-connection contexts derive from it and Close/Shutdown cancel it
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{be: be, baseCtx: ctx, cancelBase: cancel, conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (host:port; port 0 picks a free one) and serves in
// the background. The chosen address is available via Addr.
func Start(addr string, be engine.Backend) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("engined: %w", err)
	}
	s := New(be)
	s.ln = ln // assigned before Serve so Addr works immediately
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return s, nil
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Close, returning nil once closed.
// Accept errors while the server is live (fd exhaustion, transient network
// failures) are retried with capped backoff rather than killing the loop —
// a storage daemon that silently stops accepting while its process stays
// up (holding the data directory lock) is the worst failure mode.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("engined: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	backoff := 5 * time.Millisecond
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, severs every open connection, cancels in-flight
// backend operations, and waits for the per-connection goroutines. The
// backend is left open (the caller owns it). Closing twice is a no-op.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	// Sever connections outside the table lock: Close can block on a
	// lingering peer, and handleConn goroutines need mu to deregister.
	for _, nc := range conns {
		nc.Close()
	}
	s.cancelBase()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown drains the server gracefully: it stops accepting, lets every
// in-flight request finish writing its response, and closes connections as
// they go idle (each pooled client connection is nudged with an immediate
// read deadline, so blocked between-request reads return right away while
// responses in progress complete — the read deadline only bites on the NEXT
// request read). If ctx ends before the drain completes, the remaining
// connections are severed hard and ctx's error is returned. The backend is
// left open either way; Shutdown twice (or after Close) is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for nc := range s.conns {
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelBase()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		conns := make([]net.Conn, 0, len(s.conns))
		for nc := range s.conns {
			conns = append(conns, nc)
		}
		s.mu.Unlock()
		for _, nc := range conns {
			nc.Close()
		}
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

// handleConn serves framed requests until the peer hangs up or a frame is
// unreadable (corruption poisons the stream; the connection is dropped and
// the client re-dials).
func (s *Server) handleConn(nc net.Conn) {
	defer nc.Close()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	var buf, resp []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			return
		}
		if cap(payload) > cap(buf) {
			buf = payload[:0]
		}
		if len(payload) == 0 {
			return
		}
		resp, err = s.serveOp(nc, bw, payload[0], payload[1:], resp[:0])
		if err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeTimeout bounds how long a response write may stall on TCP
// backpressure. It matters most for Scan, which streams from inside the
// backend's Scan callback while the backend lock is held: without a
// deadline, one hung peer would wedge every writer on the node until the
// kernel gives up on retransmission. Reads carry no deadline — pooled
// client connections idle legitimately between requests.
const writeTimeout = 60 * time.Second

// reply frames a response whose payload is status followed by body.
func reply(bw *bufio.Writer, resp []byte, status byte, body []byte) ([]byte, error) {
	resp = append(resp[:0], status)
	resp = append(resp, body...)
	return resp, wire.WriteFrame(bw, resp)
}

// replyErr reports a backend failure to the client.
func replyErr(bw *bufio.Writer, resp []byte, err error) ([]byte, error) {
	// Unwrap to the sentinel text when possible so the client can map the
	// node's closed-backend errors back onto types.ErrClosed.
	msg := err.Error()
	if errors.Is(err, types.ErrClosed) {
		msg = types.ErrClosed.Error()
	}
	return reply(bw, resp, wire.StErr, []byte(msg))
}

// serveOp decodes and executes one request, writing the response frame(s)
// to bw. The returned buffer is reused across requests; a non-nil error
// means the connection is unusable (decode failure or mid-stream write
// error).
func (s *Server) serveOp(nc net.Conn, bw *bufio.Writer, op byte, body, resp []byte) ([]byte, error) {
	nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	switch op {
	case wire.OpPut:
		table, rest, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		key, value, err := codec.String(rest)
		if err != nil {
			return resp, err
		}
		if err := s.be.Put(s.baseCtx, table, key, value); err != nil {
			return replyErr(bw, resp, err)
		}
		return reply(bw, resp, wire.StOK, nil)

	case wire.OpGet:
		table, rest, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		key, _, err := codec.String(rest)
		if err != nil {
			return resp, err
		}
		value, ok, err := s.be.Get(s.baseCtx, table, key)
		if err != nil {
			return replyErr(bw, resp, err)
		}
		if !ok {
			return reply(bw, resp, wire.StNotFound, nil)
		}
		return reply(bw, resp, wire.StOK, value)

	case wire.OpDelete:
		table, rest, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		key, _, err := codec.String(rest)
		if err != nil {
			return resp, err
		}
		if err := s.be.Delete(s.baseCtx, table, key); err != nil {
			return replyErr(bw, resp, err)
		}
		return reply(bw, resp, wire.StOK, nil)

	case wire.OpBatchPut:
		table, rest, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		n, rest, err := codec.Uvarint(rest)
		if err != nil {
			return resp, err
		}
		// Every entry needs at least two length prefixes in the body; a
		// count the body cannot possibly hold is stream corruption (or a
		// hostile client) and must not size an allocation.
		if n > uint64(len(rest)/2)+1 {
			return resp, fmt.Errorf("engined: batch count %d exceeds body", n)
		}
		entries := make([]engine.Entry, 0, n)
		for i := uint64(0); i < n; i++ {
			var key string
			key, rest, err = codec.String(rest)
			if err != nil {
				return resp, err
			}
			var value []byte
			value, rest, err = codec.Bytes(rest)
			if err != nil {
				return resp, err
			}
			entries = append(entries, engine.Entry{Key: key, Value: value})
		}
		if err := s.be.BatchPut(s.baseCtx, table, entries); err != nil {
			return replyErr(bw, resp, err)
		}
		return reply(bw, resp, wire.StOK, nil)

	case wire.OpMultiGet:
		table, rest, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		n, rest, err := codec.Uvarint(rest)
		if err != nil {
			return resp, err
		}
		// Every key needs at least its length prefix in the body; a count
		// the body cannot possibly hold is stream corruption (or a hostile
		// client) and must not size an allocation.
		if n > uint64(len(rest))+1 {
			return resp, fmt.Errorf("engined: multiget count %d exceeds body", n)
		}
		keys := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var k string
			k, rest, err = codec.String(rest)
			if err != nil {
				return resp, err
			}
			keys = append(keys, k)
		}
		resp = append(resp[:0], wire.StOK)
		resp = codec.PutUvarint(resp, uint64(len(keys)))
		for _, k := range keys {
			value, ok, err := s.be.Get(s.baseCtx, table, k)
			if err != nil {
				return replyErr(bw, resp, err)
			}
			if !ok {
				resp = append(resp, 0)
				continue
			}
			resp = append(resp, 1)
			resp = codec.PutBytes(resp, value)
		}
		// A batch whose combined values exceed MaxFrame fails the frame
		// write and drops the connection; the cluster layer falls back to
		// per-key reads for such batches.
		return resp, wire.WriteFrame(bw, resp)

	case wire.OpScan:
		table, _, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		var streamErr error
		scanErr := s.be.Scan(s.baseCtx, table, func(key string, value []byte) bool {
			// Refresh per entry: a progressing stream may legitimately
			// outlast one writeTimeout; a stalled peer must not.
			nc.SetWriteDeadline(time.Now().Add(writeTimeout))
			resp = append(resp[:0], wire.StEntry)
			resp = codec.PutString(resp, key)
			resp = append(resp, value...)
			if streamErr = wire.WriteFrame(bw, resp); streamErr != nil {
				return false
			}
			return true
		})
		if streamErr != nil {
			return resp, streamErr // peer gone mid-stream
		}
		if scanErr != nil {
			return replyErr(bw, resp, scanErr)
		}
		return reply(bw, resp, wire.StEnd, nil)

	case wire.OpTables:
		tables, err := s.be.Tables(s.baseCtx)
		if err != nil {
			return replyErr(bw, resp, err)
		}
		resp = append(resp[:0], wire.StOK)
		resp = codec.PutUvarint(resp, uint64(len(tables)))
		for _, t := range tables {
			resp = codec.PutString(resp, t)
		}
		return resp, wire.WriteFrame(bw, resp)

	case wire.OpBytesStored:
		resp = append(resp[:0], wire.StOK)
		resp = codec.PutUvarint(resp, uint64(s.be.BytesStored()))
		return resp, wire.WriteFrame(bw, resp)

	case wire.OpCompact, wire.OpCompactStats:
		c, ok := s.be.(engine.Compactor)
		if !ok {
			// Reported with the sentinel's exact text so the client can map
			// it back onto engine.ErrNoCompaction (mirrors ErrClosed).
			return reply(bw, resp, wire.StErr, []byte(engine.ErrNoCompaction.Error()))
		}
		var st engine.CompactionStats
		var err error
		if op == wire.OpCompact {
			st, err = c.Compact(s.baseCtx)
		} else {
			st, err = c.CompactionStats(s.baseCtx)
		}
		// A long merge may outlive the deadline set at dispatch; the
		// response write gets a fresh one.
		nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err != nil {
			return replyErr(bw, resp, err)
		}
		resp = append(resp[:0], wire.StOK)
		resp = wire.PutCompactionStats(resp, st)
		return resp, wire.WriteFrame(bw, resp)

	case wire.OpReset:
		r, ok := s.be.(engine.Resetter)
		if !ok {
			// Exact sentinel text so the client maps it back onto
			// engine.ErrNoReset (mirrors ErrNoCompaction above).
			return reply(bw, resp, wire.StErr, []byte(engine.ErrNoReset.Error()))
		}
		err := r.Reset(s.baseCtx)
		// A large wipe may outlive the deadline set at dispatch; the
		// response write gets a fresh one.
		nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err != nil {
			return replyErr(bw, resp, err)
		}
		return reply(bw, resp, wire.StOK, nil)

	case wire.OpHashTree:
		hr, ok := s.be.(engine.HashRanger)
		if !ok {
			// Exact sentinel text so the client maps it back onto
			// engine.ErrNoHashRange (mirrors ErrNoCompaction above).
			return reply(bw, resp, wire.StErr, []byte(engine.ErrNoHashRange.Error()))
		}
		table, rest, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		fanout, _, err := codec.Uvarint(rest)
		if err != nil {
			return resp, err
		}
		if fanout > engine.MaxHashFanout {
			return resp, fmt.Errorf("engined: hash fanout %d exceeds limit", fanout)
		}
		d, err := hr.HashTree(s.baseCtx, table, int(fanout))
		// A full-table sweep may outlive the deadline set at dispatch; the
		// response write gets a fresh one.
		nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err != nil {
			return replyErr(bw, resp, err)
		}
		resp = append(resp[:0], wire.StOK)
		resp = wire.PutHashTree(resp, d)
		return resp, wire.WriteFrame(bw, resp)

	case wire.OpHashRange:
		hr, ok := s.be.(engine.HashRanger)
		if !ok {
			// Exact sentinel text, as for OpHashTree.
			return reply(bw, resp, wire.StErr, []byte(engine.ErrNoHashRange.Error()))
		}
		table, rest, err := codec.String(body)
		if err != nil {
			return resp, err
		}
		fanout, rest, err := codec.Uvarint(rest)
		if err != nil {
			return resp, err
		}
		bucket, _, err := codec.Uvarint(rest)
		if err != nil {
			return resp, err
		}
		if fanout > engine.MaxHashFanout || bucket >= fanout {
			return resp, fmt.Errorf("engined: hash bucket %d/%d out of range", bucket, fanout)
		}
		khs, err := hr.HashRange(s.baseCtx, table, int(fanout), int(bucket))
		// A bucket sweep may outlive the deadline set at dispatch; the
		// response write gets a fresh one.
		nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err != nil {
			return replyErr(bw, resp, err)
		}
		resp = append(resp[:0], wire.StOK)
		resp = wire.PutHashRange(resp, khs)
		return resp, wire.WriteFrame(bw, resp)

	case wire.OpPing:
		return reply(bw, resp, wire.StOK, nil)

	default:
		return resp, fmt.Errorf("engined: unknown op %d", op)
	}
}
