// Package engine defines the storage-backend seam of the simulated cluster:
// every kvstore node owns one Backend and delegates all data operations to
// it. The paper's design point is that RStore layers on an off-the-shelf
// key-value substrate (§2.4); this interface is our substrate boundary, so
// alternative engines (in-memory maps, a log-structured disk store, and in
// the future pebble/remote/tiered backends) can be swapped under the same
// cluster, core, and query layers.
//
// Every data operation takes a context.Context as its first parameter and
// must honor cancellation and deadlines: an implementation that can block —
// on the network, on disk, or on a long scan — returns (an error wrapping)
// ctx.Err() promptly once the context ends, instead of finishing work nobody
// is waiting for. Purely in-memory implementations may only check the
// context at natural yield points (per scanned entry); they must still not
// start new work under a dead context.
//
// Implementations must be safe for concurrent use. Values passed to Put and
// BatchPut must be copied (or otherwise made immune to caller mutation)
// before the call returns, and values returned by Get must not alias backend
// state. Scan is the one exception: the values it passes to the callback may
// alias internal buffers and must not be retained or mutated.
package engine

import (
	"context"
	"errors"
)

// ErrUnavailable classifies a backend failure as transient unavailability:
// the node could not be reached (connection refused, dial timeout, a
// connection that died mid-request) or is administratively down, as opposed
// to a hard engine error (corruption, I/O failure, closed backend) that
// reached the node and failed there. Layers above route around unavailable
// replicas and retry; hard errors abort the operation. Implementations wrap
// transport-level failures so errors.Is(err, ErrUnavailable) holds.
//
// A context that ends mid-operation also surfaces wrapped in ErrUnavailable
// by the remote backend (the node was not proven reachable), with the
// context's error preserved in the chain so errors.Is(err,
// context.DeadlineExceeded) (or context.Canceled) holds too.
var ErrUnavailable = errors.New("engine: backend unavailable")

// Entry is one key/value pair of a batched write.
type Entry struct {
	Key   string
	Value []byte
}

// Backend is a per-node storage engine: a durable (or simulated) map of
// (table, key) → value with batched writes and full-table scans.
type Backend interface {
	// Put stores value under (table, key), overwriting any previous value.
	Put(ctx context.Context, table, key string, value []byte) error

	// Get returns the value under (table, key). The second result reports
	// whether the key was present; the error is reserved for engine
	// failures (I/O errors, closed backend), not for missing keys.
	Get(ctx context.Context, table, key string) ([]byte, bool, error)

	// Delete removes (table, key). Deleting a missing key is a no-op.
	Delete(ctx context.Context, table, key string) error

	// BatchPut applies all entries to one table atomically with respect to
	// durability: a durable backend must not acknowledge the batch until
	// every entry is on stable storage (fsync-on-batch). Entries are applied
	// in order, so a later entry for the same key wins. Cancellation must
	// not break the atomicity contract: a batch either fails before any
	// entry is durable or completes whole.
	BatchPut(ctx context.Context, table string, entries []Entry) error

	// Scan visits every key/value of a table in unspecified order until fn
	// returns false, the table is exhausted, or ctx ends (the scan then
	// returns ctx's error). Values passed to fn may alias internal storage;
	// fn must not retain or mutate them.
	Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error

	// Tables lists the tables that currently hold at least one key, in
	// unspecified order.
	Tables(ctx context.Context) ([]string, error)

	// BytesStored reports the resident live payload volume: the summed
	// length of all current values, excluding per-key overhead, dead
	// versions, and tombstones.
	BytesStored() int64

	// Close releases the backend's resources, flushing anything buffered to
	// stable storage first. Operations after Close fail.
	Close() error
}
