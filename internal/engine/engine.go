// Package engine defines the storage-backend seam of the simulated cluster:
// every kvstore node owns one Backend and delegates all data operations to
// it. The paper's design point is that RStore layers on an off-the-shelf
// key-value substrate (§2.4); this interface is our substrate boundary, so
// alternative engines (in-memory maps, a log-structured disk store, and in
// the future pebble/remote/tiered backends) can be swapped under the same
// cluster, core, and query layers.
//
// Every data operation takes a context.Context as its first parameter and
// must honor cancellation and deadlines: an implementation that can block —
// on the network, on disk, or on a long scan — returns (an error wrapping)
// ctx.Err() promptly once the context ends, instead of finishing work nobody
// is waiting for. Purely in-memory implementations may only check the
// context at natural yield points (per scanned entry); they must still not
// start new work under a dead context.
//
// Implementations must be safe for concurrent use. Values passed to Put and
// BatchPut must be copied (or otherwise made immune to caller mutation)
// before the call returns, and values returned by Get must not alias backend
// state. Scan is the one exception: the values it passes to the callback may
// alias internal buffers and must not be retained or mutated.
//
// # Deployment caveat: one logical writer
//
// A Backend serializes the individual operations it receives, but the seam
// offers no compare-and-swap or compare-and-delete: read-then-write
// sequences issued by DIFFERENT cluster clients against the same backend
// can interleave. The layers above (kvstore's replication repair, core's
// flush path) therefore assume each backend is driven by one logical
// writer at a time — one cluster client per data directory (disklog
// enforces this with an exclusive flock) or per remote daemon. Multiple
// concurrent *reading* clients are fine; concurrent writing clients are
// outside the contract (see the tombstone-GC follow-up in ROADMAP.md).
//
// Backends that reclaim dead storage additionally implement the optional
// Compactor interface; callers discover it with a type assertion.
package engine

import (
	"context"
	"errors"
)

// ErrUnavailable classifies a backend failure as transient unavailability:
// the node could not be reached (connection refused, dial timeout, a
// connection that died mid-request) or is administratively down, as opposed
// to a hard engine error (corruption, I/O failure, closed backend) that
// reached the node and failed there. Layers above route around unavailable
// replicas and retry; hard errors abort the operation. Implementations wrap
// transport-level failures so errors.Is(err, ErrUnavailable) holds.
//
// A context that ends mid-operation also surfaces wrapped in ErrUnavailable
// by the remote backend (the node was not proven reachable), with the
// context's error preserved in the chain so errors.Is(err,
// context.DeadlineExceeded) (or context.Canceled) holds too.
var ErrUnavailable = errors.New("engine: backend unavailable")

// Entry is one key/value pair of a batched write.
type Entry struct {
	Key   string
	Value []byte
}

// Backend is a per-node storage engine: a durable (or simulated) map of
// (table, key) → value with batched writes and full-table scans.
type Backend interface {
	// Put stores value under (table, key), overwriting any previous value.
	Put(ctx context.Context, table, key string, value []byte) error

	// Get returns the value under (table, key). The second result reports
	// whether the key was present; the error is reserved for engine
	// failures (I/O errors, closed backend), not for missing keys.
	Get(ctx context.Context, table, key string) ([]byte, bool, error)

	// Delete removes (table, key). Deleting a missing key is a no-op.
	Delete(ctx context.Context, table, key string) error

	// BatchPut applies all entries to one table atomically with respect to
	// durability: a durable backend must not acknowledge the batch until
	// every entry is on stable storage (fsync-on-batch). Entries are applied
	// in order, so a later entry for the same key wins. Cancellation must
	// not break the atomicity contract: a batch either fails before any
	// entry is durable or completes whole.
	BatchPut(ctx context.Context, table string, entries []Entry) error

	// Scan visits every key/value of a table in unspecified order until fn
	// returns false, the table is exhausted, or ctx ends (the scan then
	// returns ctx's error). Values passed to fn may alias internal storage;
	// fn must not retain or mutate them.
	Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error

	// Tables lists the tables that currently hold at least one key, in
	// unspecified order.
	Tables(ctx context.Context) ([]string, error)

	// BytesStored reports the resident live payload volume: the summed
	// length of all current values, excluding per-key overhead, dead
	// versions, and tombstones.
	BytesStored() int64

	// Close releases the backend's resources, flushing anything buffered to
	// stable storage first. Operations after Close fail.
	Close() error
}

// MultiGetter is the optional batched-read extension of Backend: MultiGet
// resolves many keys of one table in a single call, returning values and
// presence flags in request order (values[i] and present[i] answer keys[i]).
// Returned values follow the Get contract — they must not alias backend
// state. The error is all-or-nothing: a failing backend fails the whole
// batch rather than returning partial results.
//
// The remote wire client implements it (one network round trip for the
// whole batch instead of one per key); callers discover it by type
// assertion and fall back to per-key Get when it is absent.
type MultiGetter interface {
	MultiGet(ctx context.Context, table string, keys []string) (values [][]byte, present []bool, err error)
}

// ErrNoCompaction reports that a backend does not implement Compactor (or,
// over the wire, that the daemon's backend does not). Callers that compact
// opportunistically match it with errors.Is and move on.
var ErrNoCompaction = errors.New("engine: backend does not support compaction")

// CompactionStats is a snapshot of a backend's storage-reclaim state. All
// byte counts include record framing, so DiskBytes-LiveBytes is exactly the
// volume a full compaction could reclaim from sealed storage.
type CompactionStats struct {
	// DiskBytes is the total size of the backend's log/segment files.
	DiskBytes int64
	// LiveBytes is the portion of DiskBytes that compaction cannot reclaim:
	// records the key index still references, plus fixed structural
	// overhead (e.g. disklog's compacted-segment markers). The rest is
	// dead — overwritten values, tombstones, superseded records.
	LiveBytes int64
	// CompactedBytes is the cumulative volume reclaimed by compaction over
	// the lifetime of this backend instance.
	CompactedBytes int64
	// Segments is the number of log files backing the store.
	Segments int
}

// LiveRatio is LiveBytes/DiskBytes — the fraction of on-disk storage that
// is live. An empty backend reports 1 (nothing is dead).
func (s CompactionStats) LiveRatio() float64 {
	if s.DiskBytes <= 0 {
		return 1
	}
	return float64(s.LiveBytes) / float64(s.DiskBytes)
}

// ErrNoReset reports that a backend does not implement Resetter (or, over
// the wire, that the daemon's backend does not).
var ErrNoReset = errors.New("engine: backend does not support reset")

// Resetter is the optional wipe extension of Backend: Reset drops every
// table and key, returning the backend to its freshly-opened empty state
// without closing it. Benchmarks and end-to-end tests use it to reuse a
// running daemon between phases instead of restarting the process.
// Durable backends make the wipe crash-safe: a crash mid-reset recovers to
// either the old contents or empty, never to a half-wiped hybrid that
// resurrects deleted data.
type Resetter interface {
	Reset(ctx context.Context) error
}

// Compactor is the optional storage-reclaim extension of Backend: log- or
// LSM-structured engines accumulate dead bytes (overwritten values,
// tombstones) that only a merge can give back to the filesystem. Callers
// obtain it by type assertion; engines with nothing to compact (in-memory
// maps) simply do not implement it.
type Compactor interface {
	// Compact merges dead-heavy storage, rewriting only live records, and
	// returns the post-compaction stats. It is safe to call concurrently
	// with reads and writes, must be crash-safe (a crash mid-compaction
	// loses no acknowledged write), and is a no-op when nothing can be
	// reclaimed.
	Compact(ctx context.Context) (CompactionStats, error)

	// CompactionStats reports the current reclaim state without compacting.
	CompactionStats(ctx context.Context) (CompactionStats, error)
}
