// Package memory implements engine.Backend with per-table in-process maps —
// the original substrate of the simulated cluster, now behind the backend
// seam. It is the default engine: nothing persists, but it is fast and
// allocation-exact, which the cost-model experiments depend on.
package memory

import (
	"context"
	"sort"
	"sync"

	"rstore/internal/engine"
	"rstore/internal/types"
)

// Backend is an in-memory engine.Backend. The zero value is not usable; call
// New.
type Backend struct {
	mu     sync.RWMutex
	closed bool
	data   map[string]map[string][]byte // table → key → value
	// bytesStored tracks the resident payload volume for storage accounting.
	bytesStored int64
}

// New returns an empty in-memory backend.
func New() *Backend {
	return &Backend{data: make(map[string]map[string][]byte)}
}

var (
	_ engine.Backend    = (*Backend)(nil)
	_ engine.Resetter   = (*Backend)(nil)
	_ engine.HashRanger = (*Backend)(nil)
)

// Put stores a copy of value under (table, key).
func (b *Backend) Put(ctx context.Context, table, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	b.putLocked(table, key, value)
	return nil
}

// putLocked installs a defensive copy of value; callers hold b.mu.
func (b *Backend) putLocked(table, key string, value []byte) {
	t, ok := b.data[table]
	if !ok {
		t = make(map[string][]byte)
		b.data[table] = t
	}
	if old, ok := t[key]; ok {
		b.bytesStored -= int64(len(old))
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	t[key] = cp
	b.bytesStored += int64(len(cp))
}

// Get returns a copy of the value under (table, key).
func (b *Backend) Get(ctx context.Context, table, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, false, types.ErrClosed
	}
	v, ok := b.data[table][key]
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true, nil
}

// Delete removes (table, key); deleting a missing key is a no-op.
func (b *Backend) Delete(ctx context.Context, table, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	if old, ok := b.data[table][key]; ok {
		b.bytesStored -= int64(len(old))
		delete(b.data[table], key)
	}
	return nil
}

// BatchPut applies all entries under one lock acquisition. Memory is always
// "durable", so the batch contract reduces to atomicity against concurrent
// readers.
func (b *Backend) BatchPut(ctx context.Context, table string, entries []engine.Entry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	for _, e := range entries {
		b.putLocked(table, e.Key, e.Value)
	}
	return nil
}

// Scan visits every key/value of a table under the read lock. Values passed
// to fn alias internal storage; fn must not retain or mutate them. The
// context is checked periodically so a cancelled caller does not pay for a
// full sweep of a large table.
func (b *Backend) Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return types.ErrClosed
	}
	i := 0
	for k, v := range b.data[table] {
		if i++; i&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !fn(k, v) {
			break
		}
	}
	return nil
}

// Tables lists tables that hold at least one key.
func (b *Backend) Tables(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, types.ErrClosed
	}
	out := make([]string, 0, len(b.data))
	for t, kv := range b.data {
		if len(kv) > 0 {
			out = append(out, t)
		}
	}
	return out, nil
}

// BytesStored reports the summed length of all live values.
func (b *Backend) BytesStored() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bytesStored
}

// HashTree digests a table into a fanout-bucket hash tree
// (engine.HashRanger). The context is checked periodically, like Scan.
func (b *Backend) HashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	if err := engine.CheckHashFanout(fanout); err != nil {
		return engine.TreeDigest{}, err
	}
	if err := ctx.Err(); err != nil {
		return engine.TreeDigest{}, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return engine.TreeDigest{}, types.ErrClosed
	}
	th := engine.NewTreeHasher(fanout)
	i := 0
	for k, v := range b.data[table] {
		if i++; i&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return engine.TreeDigest{}, err
			}
		}
		th.Add(k, v)
	}
	return th.Digest(), nil
}

// HashRange lists one bucket's keys with their entry hashes, ascending by
// key (engine.HashRanger).
func (b *Backend) HashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error) {
	if err := engine.CheckHashBucket(fanout, bucket); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, types.ErrClosed
	}
	var out []engine.KeyHash
	i := 0
	for k, v := range b.data[table] {
		if i++; i&0x3ff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if engine.BucketOf(k, fanout) == bucket {
			out = append(out, engine.KeyHash{Key: k, Hash: engine.EntryHash(k, v)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Reset drops every table and key (engine.Resetter).
func (b *Backend) Reset(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	b.data = make(map[string]map[string][]byte)
	b.bytesStored = 0
	return nil
}

// Close marks the backend closed; subsequent operations fail.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}
