// Package disklog implements engine.Backend as a log-structured disk store:
// writes append length-prefixed, checksummed records to segment files, an
// in-memory index maps each live (table, key) to the position of its value
// on disk, and opening a directory replays the segments to rebuild the index
// (LSM-style recovery).
//
// Durability contract: BatchPut fsyncs before acknowledging (fsync-on-batch,
// the unit RStore's flush path commits in), Close fsyncs, and single Put /
// Delete are durable no later than the next batch or Close. A torn write
// from a crash can therefore only affect the un-acknowledged tail of the
// last segment; replay detects it by checksum/length and truncates it.
//
// The backend expects one logical writer: the directory is exclusively
// flock-ed (LOCK), so two processes can never interleave appends, and the
// layers above additionally assume one cluster client drives each backend
// (see the package comment of internal/engine).
//
// # Compaction
//
// Overwritten values and tombstones are dead bytes that only a merge gives
// back to the filesystem. The backend tracks live bytes per segment and
// implements engine.Compactor: Compact seals the active segment when it
// holds dead bytes, rewrites only-live records from the dead-holding prefix
// of sealed segments into one new segment, atomically swaps the in-memory
// index to the rewritten locations, and unlinks the originals. Victims are
// always a prefix of the log (oldest sealed segments first): every record
// of a key whose latest record lies in the prefix also lies in the prefix,
// so the rewrite can drop tombstones and stale versions without an older
// surviving segment resurrecting them on replay.
//
// Crash safety: the rewrite lands in seg-NNNNNN.log.cmp (N = the highest
// victim id), framed by a recCompactBegin header record and sealed by a
// recCompactEnd trailer, fsynced before the swap. The commit point on disk
// is the atomic rename of the .cmp file over seg-NNNNNN.log. Open discards
// or completes whatever a crash left behind: an unsealed .cmp is debris
// from an interrupted rewrite (deleted; victims intact), a sealed .cmp is
// a completed rewrite whose swap never happened (adopted: victims deleted,
// file renamed into place), and a segment whose first record is
// recCompactBegin supersedes every lower-numbered segment (leftovers of an
// interrupted unlink phase are deleted).
//
// # On-disk format
//
// Per segment file (seg-NNNNNN.log; normative spec in docs/FORMATS.md):
//
//	record  := length(uint32 LE) crc32(uint32 LE, of body) body
//	body    := kind(1 byte) table(uvarint-len string) key(uvarint-len string) value
//	kind    := 1 (put: value is the rest of the body)
//	         | 2 (delete: empty value)
//	         | 3 (compacted-segment header: empty table/key/value)
//	         | 4 (compacted-segment seal: empty table/key/value)
package disklog

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"rstore/internal/codec"
	"rstore/internal/engine"
	"rstore/internal/types"
)

const (
	recPut = 1
	recDel = 2
	// recCompactBegin is the mandatory first record of a compacted segment.
	// Its presence marks the segment as superseding every segment with a
	// lower id (replay deletes them as interrupted-compaction leftovers).
	recCompactBegin = 3
	// recCompactEnd is the mandatory last record of a compacted segment
	// while it still carries the .cmp suffix: it proves the rewrite ran to
	// completion, so replay can adopt the file instead of discarding it.
	recCompactEnd = 4

	// frameSize is the fixed record prefix: body length + body checksum.
	frameSize = 8

	// maxBody bounds a single record body (1 GiB); larger lengths during
	// replay are treated as corruption rather than allocated.
	maxBody = 1 << 30

	// DefaultSegmentBytes is the segment rotation threshold.
	DefaultSegmentBytes = 64 << 20

	// cmpSuffix marks an in-progress compaction output file.
	cmpSuffix = ".cmp"
)

// Options tunes a disklog backend. The zero value gives defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: a batch that would grow the
	// active segment past it opens a new segment first. A single batch
	// larger than the threshold still lands in one segment. Default 64 MiB.
	SegmentBytes int64
}

// ref locates one live value on disk.
type ref struct {
	seg  int   // id of the owning segment
	off  int64 // byte offset of the value within the segment file
	len  int   // value length in bytes
	size int64 // full record length (frame + body), for live accounting
}

// segment is one append-only log file.
type segment struct {
	id   int
	f    *os.File
	size int64 // append offset
	live int64 // bytes of records the index still references (incl. framing)
}

// Backend is a log-structured disk engine.Backend (and engine.Compactor).
type Backend struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	lock    *os.File         // flock-held LOCK file; released on Close
	segs    []*segment       // ordered by id; the last one is the active writer
	segByID map[int]*segment // same segments, addressed by id (refs hold ids)
	index   map[string]map[string]ref
	bytes   int64 // live value bytes (BytesStored)
	closed  bool

	// compactMu serializes compactions; data operations are not blocked by
	// it (they take mu, which compaction only holds briefly at its edges).
	compactMu sync.Mutex
	compacted int64 // cumulative bytes reclaimed by compaction
	// epoch counts Resets. Compact snapshots it at phase 1 and abandons its
	// output if a Reset intervened: the victim segments it rewrote no longer
	// exist, and renaming the rewrite into place would resurrect wiped data.
	epoch int64

	// compactCrash names the active crash-injection point (SetCrashPoint;
	// "" in production): Compact aborts there with ErrCrashed, leaving the
	// directory exactly as a power failure would.
	compactCrash string
}

var (
	_ engine.Backend    = (*Backend)(nil)
	_ engine.Compactor  = (*Backend)(nil)
	_ engine.Resetter   = (*Backend)(nil)
	_ engine.HashRanger = (*Backend)(nil)
)

// ErrCrashed reports that a crash-injection point armed by SetCrashPoint
// fired (tests only): Compact was aborted at the named step, leaving the
// directory exactly as a power failure there would.
var ErrCrashed = errors.New("disklog: injected crash")

// Open opens (creating if needed) a disklog backend rooted at dir, replaying
// existing segments to rebuild the key index. The directory is exclusively
// flock-ed for the lifetime of the backend: two processes appending to the
// same segments with independent offsets would corrupt committed records.
// Debris of an interrupted compaction is discarded or completed first (see
// the package comment).
func Open(dir string, opts Options) (*Backend, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		dir: dir, opts: opts, lock: lock,
		segByID: make(map[int]*segment),
		index:   make(map[string]map[string]ref),
	}

	ids, err := b.resolveCompaction()
	if err != nil {
		b.closeFiles()
		return nil, err
	}

	for i, id := range ids {
		f, err := os.OpenFile(b.segPath(id), os.O_RDWR, 0)
		if err != nil {
			b.closeFiles()
			return nil, fmt.Errorf("disklog: %w", err)
		}
		seg := &segment{id: id, f: f}
		b.segs = append(b.segs, seg)
		b.segByID[id] = seg
		if err := b.replay(seg, i == len(ids)-1); err != nil {
			b.closeFiles()
			return nil, err
		}
	}
	if len(b.segs) == 0 {
		if err := b.addSegment(0); err != nil {
			b.closeFiles()
			return nil, err
		}
	}
	return b, nil
}

// resolveCompaction brings the directory to a consistent pre-replay state:
// it adopts or discards any .cmp file a crash left behind, deletes segments
// superseded by a completed compaction whose unlink phase was interrupted,
// and returns the surviving segment ids in replay order.
func (b *Backend) resolveCompaction() ([]int, error) {
	cmps, err := filepath.Glob(filepath.Join(b.dir, "seg-*.log"+cmpSuffix))
	if err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	for _, name := range cmps {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%06d.log"+cmpSuffix, &id); err != nil {
			return nil, fmt.Errorf("disklog: stray compaction file %q", name)
		}
		sealed, err := compactionSealed(name)
		if err != nil {
			return nil, err
		}
		if !sealed {
			// The rewrite never completed: the victims are intact and
			// authoritative, the half-written output is debris.
			if err := os.Remove(name); err != nil {
				return nil, fmt.Errorf("disklog: %w", err)
			}
			continue
		}
		// The rewrite completed but the swap did not: finish it. Delete
		// every victim (all segments with id <= the output's id — victims
		// are always a prefix of the log), then commit with the rename.
		if err := b.removeSegmentsBelow(id + 1); err != nil {
			return nil, err
		}
		//lint:rstore-vet fsyncrename: recovery replay — the .cmp file was sealed (written+synced) by the crashed process's compact phase 2
		if err := os.Rename(name, b.segPath(id)); err != nil {
			return nil, fmt.Errorf("disklog: %w", err)
		}
	}
	if len(cmps) > 0 {
		if err := syncDir(b.dir); err != nil {
			return nil, err
		}
	}

	ids, err := b.listSegmentIDs()
	if err != nil {
		return nil, err
	}

	// A segment opening with recCompactBegin is a completed compaction that
	// supersedes every lower id; lower-numbered survivors are leftovers of
	// an interrupted unlink phase. Their live data is duplicated in the
	// compacted segment, and replaying them would resurrect keys whose
	// tombstones the rewrite dropped — delete, don't replay.
	super := -1
	for _, id := range ids {
		compacted, err := isCompactedSegment(b.segPath(id))
		if err != nil {
			return nil, err
		}
		if compacted && id > super {
			super = id
		}
	}
	if super >= 0 {
		if err := b.removeSegmentsBelow(super); err != nil {
			return nil, err
		}
		kept := ids[:0]
		for _, id := range ids {
			if id >= super {
				kept = append(kept, id)
			}
		}
		ids = kept
		if err := syncDir(b.dir); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// listSegmentIDs globs the directory's segment files and returns their ids
// in ascending order. Any seg-*.log name that does not parse is a stray
// file and errors — it would otherwise be silently ignored by replay and
// then corrupt the id sequence when a legitimate segment reuses its name.
func (b *Backend) listSegmentIDs() ([]int, error) {
	names, err := filepath.Glob(filepath.Join(b.dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%06d.log", &id); err != nil {
			return nil, fmt.Errorf("disklog: stray segment file %q", name)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// removeSegmentsBelow deletes every seg-N.log with N < bound.
func (b *Backend) removeSegmentsBelow(bound int) error {
	ids, err := b.listSegmentIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if id < bound {
			if err := os.Remove(b.segPath(id)); err != nil {
				return fmt.Errorf("disklog: %w", err)
			}
		}
	}
	return nil
}

// compactionSealed reports whether a .cmp file is a complete compaction
// output: every frame checks out, the first record is recCompactBegin, and
// the last is recCompactEnd. Anything else — torn tail, missing seal, bad
// checksum — means the rewrite was interrupted.
func compactionSealed(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("disklog: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return false, fmt.Errorf("disklog: %w", err)
	}
	size := info.Size()
	var off int64
	var hdr [frameSize]byte
	var body []byte
	first := true
	var lastKind byte
	for off < size {
		if size-off < frameSize {
			return false, nil
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return false, fmt.Errorf("disklog: %w", err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if n < 1 || n > maxBody || off+frameSize+n > size {
			return false, nil
		}
		if int64(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := f.ReadAt(body, off+frameSize); err != nil {
			return false, fmt.Errorf("disklog: %w", err)
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return false, nil
		}
		if first && body[0] != recCompactBegin {
			return false, nil
		}
		first = false
		lastKind = body[0]
		off += frameSize + n
	}
	return !first && lastKind == recCompactEnd, nil
}

// isCompactedSegment reports whether a segment file opens with a whole,
// checksum-valid recCompactBegin record. The full validation matters: a
// positive answer triggers deletion of every lower-numbered segment, and a
// genuine compacted segment's header is always intact (the file was fsynced
// before the committing rename), so a first record that is torn or fails
// its CRC — however its kind byte reads — must never count.
func isCompactedSegment(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("disklog: %w", err)
	}
	defer f.Close()
	var hdr [frameSize]byte
	if n, err := f.ReadAt(hdr[:], 0); n < len(hdr) {
		if err != nil && !errors.Is(err, io.EOF) {
			return false, fmt.Errorf("disklog: %w", err)
		}
		return false, nil // shorter than one record: not a compacted segment
	}
	// A genuine recCompactBegin body is 3 bytes (kind + two empty strings);
	// anything larger is some other record or garbage, so the tiny bound
	// doubles as protection against allocating a torn length prefix.
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	if n < 1 || n > 64 {
		return false, nil
	}
	body := make([]byte, n)
	if rn, err := f.ReadAt(body, frameSize); rn < len(body) {
		if err != nil && !errors.Is(err, io.EOF) {
			return false, fmt.Errorf("disklog: %w", err)
		}
		return false, nil // torn first record
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return false, nil
	}
	return body[0] == recCompactBegin, nil
}

// acquireLock takes an exclusive, non-blocking flock on dir/LOCK. The lock
// dies with the process, so a crash never wedges the directory.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("disklog: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func (b *Backend) segPath(id int) string {
	return filepath.Join(b.dir, fmt.Sprintf("seg-%06d.log", id))
}

// addSegment creates and activates a fresh segment file, fsyncing the
// directory so the new entry itself survives a power failure.
func (b *Backend) addSegment(id int) error {
	f, err := os.OpenFile(b.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	if err := syncDir(b.dir); err != nil {
		f.Close()
		return err
	}
	seg := &segment{id: id, f: f}
	b.segs = append(b.segs, seg)
	b.segByID[id] = seg
	return nil
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	return nil
}

func (b *Backend) closeFiles() {
	for _, s := range b.segs {
		s.f.Close()
	}
	if b.lock != nil {
		b.lock.Close() // releases the flock
	}
}

// replay scans one segment, applying its records to the index. Corruption at
// the tail of the last segment is a torn write: the segment is truncated to
// the last whole record. Corruption anywhere else is fatal.
func (b *Backend) replay(seg *segment, last bool) error {
	info, err := seg.f.Stat()
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	size := info.Size()
	var off int64
	var hdr [frameSize]byte
	body := make([]byte, 0, 4096)
	for off < size {
		good := false
		if size-off >= frameSize {
			if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
				return fmt.Errorf("disklog: %w", err)
			}
			n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
			sum := binary.LittleEndian.Uint32(hdr[4:8])
			if n <= maxBody && off+frameSize+n <= size {
				if int64(cap(body)) < n {
					body = make([]byte, n)
				}
				body = body[:n]
				if _, err := seg.f.ReadAt(body, off+frameSize); err != nil {
					return fmt.Errorf("disklog: %w", err)
				}
				if crc32.ChecksumIEEE(body) == sum {
					if err := b.applyRecord(body, seg.id, off+frameSize); err != nil {
						return err
					}
					off += frameSize + n
					good = true
				}
			}
		}
		if !good {
			if !last {
				return fmt.Errorf("%w: disklog segment %d corrupt at offset %d", types.ErrCorrupt, seg.id, off)
			}
			// Torn tail from a crash mid-append: drop it.
			if err := seg.f.Truncate(off); err != nil {
				return fmt.Errorf("disklog: %w", err)
			}
			size = off
			break
		}
	}
	seg.size = size
	return nil
}

// applyRecord replays one record body located at absolute offset bodyOff in
// segment si (a segment id).
func (b *Backend) applyRecord(body []byte, si int, bodyOff int64) error {
	if len(body) < 1 {
		return fmt.Errorf("%w: disklog empty record body", types.ErrCorrupt)
	}
	kind := body[0]
	if kind == recCompactBegin || kind == recCompactEnd {
		// Compaction markers carry no data but count as live bytes: they
		// are not reclaimable (rewriting the segment would just emit fresh
		// markers), and counting them dead would make every freshly
		// compacted segment a perpetual compaction victim.
		b.segByID[si].live += frameSize + int64(len(body))
		return nil
	}
	table, rest, err := codec.String(body[1:])
	if err != nil {
		return fmt.Errorf("%w: disklog record table", types.ErrCorrupt)
	}
	key, rest, err := codec.String(rest)
	if err != nil {
		return fmt.Errorf("%w: disklog record key", types.ErrCorrupt)
	}
	switch kind {
	case recPut:
		valOff := bodyOff + int64(len(body)-len(rest))
		b.indexPut(table, key, ref{seg: si, off: valOff, len: len(rest), size: frameSize + int64(len(body))})
	case recDel:
		b.indexDelete(table, key)
	default:
		return fmt.Errorf("%w: disklog record kind %d", types.ErrCorrupt, kind)
	}
	return nil
}

// indexPut installs a ref, maintaining the live-bytes counts (global and
// per-segment).
func (b *Backend) indexPut(table, key string, r ref) {
	t, ok := b.index[table]
	if !ok {
		t = make(map[string]ref)
		b.index[table] = t
	}
	if old, ok := t[key]; ok {
		b.bytes -= int64(old.len)
		b.segByID[old.seg].live -= old.size
	}
	t[key] = r
	b.bytes += int64(r.len)
	b.segByID[r.seg].live += r.size
}

// indexDelete removes a key, maintaining the live-bytes counts.
func (b *Backend) indexDelete(table, key string) {
	if old, ok := b.index[table][key]; ok {
		b.bytes -= int64(old.len)
		b.segByID[old.seg].live -= old.size
		delete(b.index[table], key)
	}
}

// appendRecord appends one framed record for (kind, table, key, value) to
// buf and returns the extended buffer plus the offset of the value bytes
// relative to the start of buf.
func appendRecord(buf []byte, kind byte, table, key string, value []byte) (out []byte, valRel int) {
	frameAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	bodyAt := len(buf)
	buf = append(buf, kind)
	buf = codec.PutString(buf, table)
	buf = codec.PutString(buf, key)
	valRel = len(buf)
	buf = append(buf, value...)
	body := buf[bodyAt:]
	binary.LittleEndian.PutUint32(buf[frameAt:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[frameAt+4:], crc32.ChecksumIEEE(body))
	return buf, valRel
}

// write appends buf to the active segment (rotating first if the batch would
// overflow it) and returns the segment written to and the absolute offset
// buf was written at. Callers hold b.mu.
func (b *Backend) write(buf []byte) (seg *segment, base int64, err error) {
	seg = b.segs[len(b.segs)-1]
	if seg.size > 0 && seg.size+int64(len(buf)) > b.opts.SegmentBytes {
		if err := seg.f.Sync(); err != nil {
			return nil, 0, fmt.Errorf("disklog: %w", err)
		}
		if err := b.addSegment(seg.id + 1); err != nil {
			return nil, 0, err
		}
		seg = b.segs[len(b.segs)-1]
	}
	base = seg.size
	if _, err := seg.f.WriteAt(buf, base); err != nil {
		return nil, 0, fmt.Errorf("disklog: %w", err)
	}
	seg.size += int64(len(buf))
	return seg, base, nil
}

// Put appends one record. It is durable no later than the next BatchPut or
// Close.
func (b *Backend) Put(ctx context.Context, table, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	buf, valRel := appendRecord(nil, recPut, table, key, value)
	seg, base, err := b.write(buf)
	if err != nil {
		return err
	}
	b.indexPut(table, key, ref{seg: seg.id, off: base + int64(valRel), len: len(value), size: int64(len(buf))})
	return nil
}

// BatchPut appends all entries as consecutive records in one write and
// fsyncs before acknowledging.
func (b *Backend) BatchPut(ctx context.Context, table string, entries []engine.Entry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	var buf []byte
	rels := make([]int, len(entries))
	sizes := make([]int64, len(entries))
	for i, e := range entries {
		start := len(buf)
		buf, rels[i] = appendRecord(buf, recPut, table, e.Key, e.Value)
		sizes[i] = int64(len(buf) - start)
	}
	seg, base, err := b.write(buf)
	if err != nil {
		return err
	}
	if err := seg.f.Sync(); err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	for i, e := range entries {
		b.indexPut(table, e.Key, ref{seg: seg.id, off: base + int64(rels[i]), len: len(e.Value), size: sizes[i]})
	}
	return nil
}

// Get reads the value under (table, key) from disk.
func (b *Backend) Get(ctx context.Context, table, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, false, types.ErrClosed
	}
	r, ok := b.index[table][key]
	if !ok {
		return nil, false, nil
	}
	v, err := b.readRef(r)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// readRef fetches one value from disk; callers hold b.mu (any mode).
func (b *Backend) readRef(r ref) ([]byte, error) {
	v := make([]byte, r.len)
	if _, err := b.segByID[r.seg].f.ReadAt(v, r.off); err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	return v, nil
}

// Delete appends a tombstone; deleting a missing key writes nothing. The
// tombstone record itself is dead weight from birth — compaction reclaims
// it once its segment seals.
func (b *Backend) Delete(ctx context.Context, table, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	if _, ok := b.index[table][key]; !ok {
		return nil
	}
	buf, _ := appendRecord(nil, recDel, table, key, nil)
	if _, _, err := b.write(buf); err != nil {
		return err
	}
	b.indexDelete(table, key)
	return nil
}

// Scan visits every live key of a table, reading each value from disk. The
// context is checked per entry: every iteration pays a disk read, so a
// cancelled caller stops the sweep at the next key.
func (b *Backend) Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return types.ErrClosed
	}
	for k, r := range b.index[table] {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := b.readRef(r)
		if err != nil {
			return err
		}
		if !fn(k, v) {
			break
		}
	}
	return nil
}

// HashTree digests a table into a fanout-bucket hash tree
// (engine.HashRanger). Every live value is read from disk — the digest
// covers the stored bytes, not the index — so the call costs one sweep of
// the table, like Scan; the context is checked per entry.
func (b *Backend) HashTree(ctx context.Context, table string, fanout int) (engine.TreeDigest, error) {
	if err := engine.CheckHashFanout(fanout); err != nil {
		return engine.TreeDigest{}, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return engine.TreeDigest{}, types.ErrClosed
	}
	th := engine.NewTreeHasher(fanout)
	for k, r := range b.index[table] {
		if err := ctx.Err(); err != nil {
			return engine.TreeDigest{}, err
		}
		v, err := b.readRef(r)
		if err != nil {
			return engine.TreeDigest{}, err
		}
		th.Add(k, v)
	}
	return th.Digest(), nil
}

// HashRange lists one bucket's keys with their entry hashes, ascending by
// key (engine.HashRanger). Only the bucket's own values are read from
// disk; the rest of the table costs one in-memory bucket computation per
// key.
func (b *Backend) HashRange(ctx context.Context, table string, fanout, bucket int) ([]engine.KeyHash, error) {
	if err := engine.CheckHashBucket(fanout, bucket); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, types.ErrClosed
	}
	var out []engine.KeyHash
	for k, r := range b.index[table] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if engine.BucketOf(k, fanout) != bucket {
			continue
		}
		v, err := b.readRef(r)
		if err != nil {
			return nil, err
		}
		out = append(out, engine.KeyHash{Key: k, Hash: engine.EntryHash(k, v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Tables lists tables that hold at least one live key.
func (b *Backend) Tables(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, types.ErrClosed
	}
	out := make([]string, 0, len(b.index))
	for t, kv := range b.index {
		if len(kv) > 0 {
			out = append(out, t)
		}
	}
	return out, nil
}

// BytesStored reports the summed length of all live values (excluding
// framing, dead versions, and tombstones).
func (b *Backend) BytesStored() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bytes
}

// Segments reports how many segment files back the log, for rotation tests
// and ops introspection.
func (b *Backend) Segments() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.segs)
}

// Reset drops every table and key (engine.Resetter): it activates a fresh
// segment, empties the index, and unlinks every previous segment file.
// Disklog has no manifest, so the wipe commits segment by segment rather
// than atomically: a crash mid-reset replays whichever suffix of segments
// survived — somewhere between the old contents and empty. Unlinking
// oldest-first keeps even that partial state sound: a put can vanish before
// the tombstone that shadows it, never the reverse, so deleted keys stay
// deleted. The epoch bump makes an in-flight compaction abandon its output
// instead of renaming it over a freed segment id.
func (b *Backend) Reset(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	old := b.segs
	// Ids keep counting upward so the new active segment replays after any
	// old segment a crash leaves behind, and never collides with a .cmp
	// file an abandoned compaction is still holding.
	if err := b.addSegment(old[len(old)-1].id + 1); err != nil {
		return err
	}
	b.epoch++
	b.segs = b.segs[len(b.segs)-1:]
	b.segByID = map[int]*segment{b.segs[0].id: b.segs[0]}
	b.index = make(map[string]map[string]ref)
	b.bytes = 0
	var firstErr error
	for _, s := range old {
		if err := s.f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("disklog: %w", err)
		}
		if err := os.Remove(b.segPath(s.id)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("disklog: %w", err)
		}
	}
	if err := syncDir(b.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// SetCrashPoint arms a crash-injection point (tests only): Compact aborts
// with ErrCrashed at the named step, leaving the directory exactly as a
// power failure there would. Recognized points: "mid-rewrite" (the .cmp
// output half-written and unsealed), "sealed" (the .cmp complete and
// fsynced but never swapped in), "renamed" (the rename committed but the
// victim unlink interrupted). Empty disarms.
func (b *Backend) SetCrashPoint(point string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.compactCrash = point
}

// Kill simulates process death (tests only): every descriptor and the
// directory flock are dropped with no syncing and no cleanup, leaving the
// on-disk state exactly as the crash left it. The backend is unusable
// afterwards; reopen the directory with Open.
func (b *Backend) Kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.closeFiles()
}

// statsLocked snapshots the reclaim state; callers hold b.mu (any mode).
func (b *Backend) statsLocked() engine.CompactionStats {
	st := engine.CompactionStats{CompactedBytes: b.compacted, Segments: len(b.segs)}
	for _, s := range b.segs {
		st.DiskBytes += s.size
		st.LiveBytes += s.live
	}
	return st
}

// CompactionStats reports disk/live/reclaimed byte counts without
// compacting (engine.Compactor).
func (b *Backend) CompactionStats(ctx context.Context) (engine.CompactionStats, error) {
	if err := ctx.Err(); err != nil {
		return engine.CompactionStats{}, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return engine.CompactionStats{}, types.ErrClosed
	}
	return b.statsLocked(), nil
}

// rewriteItem is one live record carried through a compaction: its identity,
// where it lives in the victim segments, and where the rewrite placed it.
type rewriteItem struct {
	table, key string
	old, new   ref
}

// Compact reclaims dead storage (engine.Compactor): it seals the active
// segment if it holds dead bytes, rewrites the live records of every sealed
// segment up to and including the last one holding dead bytes into a single
// new segment, swaps the index to the rewritten locations, and deletes the
// originals. Reads and writes proceed concurrently — the rewrite works on
// sealed (immutable) segments without the store lock, and a record
// overwritten or deleted mid-rewrite simply stays dead in the new segment
// until the next compaction. A no-op when nothing is reclaimable.
func (b *Backend) Compact(ctx context.Context) (engine.CompactionStats, error) {
	if err := ctx.Err(); err != nil {
		return engine.CompactionStats{}, err
	}
	b.compactMu.Lock()
	defer b.compactMu.Unlock()

	// Phase 1 (locked): seal a dirty active segment, pick the victims —
	// the prefix of sealed segments covering every sealed segment with
	// dead bytes — and snapshot the live refs pointing into them.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return engine.CompactionStats{}, types.ErrClosed
	}
	active := b.segs[len(b.segs)-1]
	if active.size > active.live {
		if err := active.f.Sync(); err != nil {
			b.mu.Unlock()
			return engine.CompactionStats{}, fmt.Errorf("disklog: %w", err)
		}
		if err := b.addSegment(active.id + 1); err != nil {
			b.mu.Unlock()
			return engine.CompactionStats{}, err
		}
	}
	sealed := b.segs[:len(b.segs)-1]
	nVictims := 0
	var deadBytes int64
	for i, s := range sealed {
		if s.size > s.live {
			nVictims = i + 1
		}
		deadBytes += s.size - s.live
	}
	// The rewrite output carries two marker records; reclaiming less than
	// their framing would GROW the log (and report a negative reclaim), so
	// that little dead weight is cheaper left in place.
	const markerOverhead = 2 * (frameSize + 3) // recCompactBegin + recCompactEnd
	if nVictims == 0 || deadBytes <= markerOverhead {
		st := b.statsLocked()
		b.mu.Unlock()
		return st, nil
	}
	victims := append([]*segment(nil), sealed[:nVictims]...)
	victimIDs := make(map[int]bool, nVictims)
	for _, v := range victims {
		victimIDs[v.id] = true
	}
	newID := victims[nVictims-1].id
	epoch := b.epoch
	var items []rewriteItem
	for table, kv := range b.index {
		for key, r := range kv {
			if victimIDs[r.seg] {
				items = append(items, rewriteItem{table: table, key: key, old: r})
			}
		}
	}
	b.mu.Unlock()

	// Reading the victims in log order turns the rewrite into sequential
	// I/O instead of a random walk.
	sort.Slice(items, func(i, j int) bool {
		if items[i].old.seg != items[j].old.seg {
			return items[i].old.seg < items[j].old.seg
		}
		return items[i].old.off < items[j].old.off
	})

	// Phase 2 (unlocked): rewrite the live records into seg-<newID>.log.cmp,
	// framed by the compaction marker records, and fsync it. Victim
	// segments are sealed and therefore immutable; concurrent writers only
	// touch the active segment.
	cmpPath := b.segPath(newID) + cmpSuffix
	f, err := os.OpenFile(cmpPath, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return engine.CompactionStats{}, fmt.Errorf("disklog: %w", err)
	}
	abort := func(err error) (engine.CompactionStats, error) {
		f.Close()
		os.Remove(cmpPath)
		return engine.CompactionStats{}, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var off int64
	writeRec := func(buf []byte) error {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("disklog: %w", err)
		}
		off += int64(len(buf))
		return nil
	}
	hdr, _ := appendRecord(nil, recCompactBegin, "", "", nil)
	if err := writeRec(hdr); err != nil {
		return abort(err)
	}
	var recBuf []byte
	val := make([]byte, 0, 4096)
	for i := range items {
		it := &items[i]
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		if b.compactCrash == "mid-rewrite" && i == len(items)/2 {
			w.Flush()
			f.Close()
			return engine.CompactionStats{}, ErrCrashed
		}
		if cap(val) < it.old.len {
			val = make([]byte, it.old.len)
		}
		v := val[:it.old.len]
		b.mu.RLock()
		if b.closed {
			b.mu.RUnlock()
			return abort(types.ErrClosed)
		}
		if b.epoch != epoch {
			// A Reset unlinked the victims mid-rewrite; the output is moot.
			st := b.statsLocked()
			b.mu.RUnlock()
			f.Close()
			os.Remove(cmpPath)
			return st, nil
		}
		_, rerr := b.segByID[it.old.seg].f.ReadAt(v, it.old.off)
		b.mu.RUnlock()
		if rerr != nil && it.old.len > 0 {
			return abort(fmt.Errorf("disklog: %w", rerr))
		}
		var valRel int
		recBuf, valRel = appendRecord(recBuf[:0], recPut, it.table, it.key, v)
		it.new = ref{seg: newID, off: off + int64(valRel), len: it.old.len, size: int64(len(recBuf))}
		if err := writeRec(recBuf); err != nil {
			return abort(err)
		}
	}
	seal, _ := appendRecord(nil, recCompactEnd, "", "", nil)
	if err := writeRec(seal); err != nil {
		return abort(err)
	}
	if err := w.Flush(); err != nil {
		return abort(fmt.Errorf("disklog: %w", err))
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("disklog: %w", err))
	}
	if err := syncDir(b.dir); err != nil {
		return abort(err)
	}
	if b.compactCrash == "sealed" {
		f.Close()
		return engine.CompactionStats{}, ErrCrashed
	}

	// Phase 3 (locked): commit. The rename over seg-<newID>.log is the
	// on-disk commit point; the index swap is the in-memory one. Records
	// overwritten or deleted while the rewrite ran lose the swap check and
	// stay dead in the new segment.
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		f.Close()
		os.Remove(cmpPath)
		return engine.CompactionStats{}, types.ErrClosed
	}
	if b.epoch != epoch {
		// A Reset intervened after the rewrite was sealed; renaming it into
		// place would resurrect wiped data, so drop it instead.
		f.Close()
		os.Remove(cmpPath)
		return b.statsLocked(), nil
	}
	if err := os.Rename(cmpPath, b.segPath(newID)); err != nil {
		f.Close()
		os.Remove(cmpPath)
		return engine.CompactionStats{}, fmt.Errorf("disklog: %w", err)
	}
	if b.compactCrash == "renamed" {
		f.Close()
		return engine.CompactionStats{}, ErrCrashed
	}
	// The marker records count as live, mirroring replay: a compacted
	// segment whose every data record is still referenced has nothing to
	// reclaim and must not become the next compaction's victim.
	newSeg := &segment{id: newID, f: f, size: off, live: int64(len(hdr)) + int64(len(seal))}
	for i := range items {
		it := &items[i]
		cur, ok := b.index[it.table][it.key]
		if !ok || cur != it.old {
			continue
		}
		b.index[it.table][it.key] = it.new
		newSeg.live += it.new.size
	}
	reclaimed := -newSeg.size
	for _, v := range victims {
		reclaimed += v.size
		v.f.Close()
		delete(b.segByID, v.id)
	}
	// Victims were a prefix of b.segs when snapshotted, and rotations only
	// append, so the prefix is unchanged.
	b.segs = append([]*segment{newSeg}, b.segs[nVictims:]...)
	b.segByID[newID] = newSeg
	b.compacted += reclaimed
	for _, v := range victims[:nVictims-1] {
		if err := os.Remove(b.segPath(v.id)); err != nil {
			return engine.CompactionStats{}, fmt.Errorf("disklog: %w", err)
		}
	}
	if err := syncDir(b.dir); err != nil {
		return engine.CompactionStats{}, err
	}
	return b.statsLocked(), nil
}

// Close fsyncs the active segment, closes all files, and releases the
// directory lock.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	err := b.segs[len(b.segs)-1].f.Sync()
	for _, s := range b.segs {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := b.lock.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	return nil
}
