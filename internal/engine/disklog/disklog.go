// Package disklog implements engine.Backend as a log-structured disk store:
// writes append length-prefixed, checksummed records to segment files, an
// in-memory index maps each live (table, key) to the position of its value
// on disk, and opening a directory replays the segments to rebuild the index
// (LSM-style recovery, without compaction yet — dead record space is
// reclaimed only by copying into a fresh backend).
//
// Durability contract: BatchPut fsyncs before acknowledging (fsync-on-batch,
// the unit RStore's flush path commits in), Close fsyncs, and single Put /
// Delete are durable no later than the next batch or Close. A torn write
// from a crash can therefore only affect the un-acknowledged tail of the
// last segment; replay detects it by checksum/length and truncates it.
//
// On-disk format, per segment file (seg-NNNNNN.log):
//
//	record  := length(uint32 LE) crc32(uint32 LE, of body) body
//	body    := kind(1 byte) table(uvarint-len string) key(uvarint-len string) value
//	kind    := 1 (put: value is the rest of the body) | 2 (delete: empty value)
package disklog

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"rstore/internal/codec"
	"rstore/internal/engine"
	"rstore/internal/types"
)

const (
	recPut = 1
	recDel = 2

	// frameSize is the fixed record prefix: body length + body checksum.
	frameSize = 8

	// maxBody bounds a single record body (1 GiB); larger lengths during
	// replay are treated as corruption rather than allocated.
	maxBody = 1 << 30

	// DefaultSegmentBytes is the segment rotation threshold.
	DefaultSegmentBytes = 64 << 20
)

// Options tunes a disklog backend. The zero value gives defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: a batch that would grow the
	// active segment past it opens a new segment first. A single batch
	// larger than the threshold still lands in one segment. Default 64 MiB.
	SegmentBytes int64
}

// ref locates one live value on disk.
type ref struct {
	seg int   // index into Backend.segs
	off int64 // byte offset of the value within the segment file
	len int   // value length in bytes
}

// segment is one append-only log file.
type segment struct {
	id   int
	f    *os.File
	size int64 // append offset
}

// Backend is a log-structured disk engine.Backend.
type Backend struct {
	mu     sync.RWMutex
	dir    string
	opts   Options
	lock   *os.File   // flock-held LOCK file; released on Close
	segs   []*segment // ordered by id; the last one is the active writer
	index  map[string]map[string]ref
	bytes  int64 // live value bytes (BytesStored)
	closed bool
}

var _ engine.Backend = (*Backend)(nil)

// Open opens (creating if needed) a disklog backend rooted at dir, replaying
// existing segments to rebuild the key index. The directory is exclusively
// flock-ed for the lifetime of the backend: two processes appending to the
// same segments with independent offsets would corrupt committed records.
func Open(dir string, opts Options) (*Backend, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	b := &Backend{dir: dir, opts: opts, lock: lock, index: make(map[string]map[string]ref)}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		b.closeFiles()
		return nil, fmt.Errorf("disklog: %w", err)
	}
	ids := make([]int, 0, len(names))
	for _, name := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(name), "seg-%06d.log", &id); err != nil {
			b.closeFiles()
			return nil, fmt.Errorf("disklog: stray segment file %q", name)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)

	for i, id := range ids {
		f, err := os.OpenFile(b.segPath(id), os.O_RDWR, 0)
		if err != nil {
			b.closeFiles()
			return nil, fmt.Errorf("disklog: %w", err)
		}
		seg := &segment{id: id, f: f}
		b.segs = append(b.segs, seg)
		if err := b.replay(seg, i, i == len(ids)-1); err != nil {
			b.closeFiles()
			return nil, err
		}
	}
	if len(b.segs) == 0 {
		if err := b.addSegment(0); err != nil {
			b.closeFiles()
			return nil, err
		}
	}
	return b, nil
}

// acquireLock takes an exclusive, non-blocking flock on dir/LOCK. The lock
// dies with the process, so a crash never wedges the directory.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("disklog: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func (b *Backend) segPath(id int) string {
	return filepath.Join(b.dir, fmt.Sprintf("seg-%06d.log", id))
}

// addSegment creates and activates a fresh segment file, fsyncing the
// directory so the new entry itself survives a power failure.
func (b *Backend) addSegment(id int) error {
	f, err := os.OpenFile(b.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	if err := syncDir(b.dir); err != nil {
		f.Close()
		return err
	}
	b.segs = append(b.segs, &segment{id: id, f: f})
	return nil
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	return nil
}

func (b *Backend) closeFiles() {
	for _, s := range b.segs {
		s.f.Close()
	}
	if b.lock != nil {
		b.lock.Close() // releases the flock
	}
}

// replay scans one segment, applying its records to the index. Corruption at
// the tail of the last segment is a torn write: the segment is truncated to
// the last whole record. Corruption anywhere else is fatal.
func (b *Backend) replay(seg *segment, si int, last bool) error {
	info, err := seg.f.Stat()
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	size := info.Size()
	var off int64
	var hdr [frameSize]byte
	body := make([]byte, 0, 4096)
	for off < size {
		good := false
		if size-off >= frameSize {
			if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
				return fmt.Errorf("disklog: %w", err)
			}
			n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
			sum := binary.LittleEndian.Uint32(hdr[4:8])
			if n <= maxBody && off+frameSize+n <= size {
				if int64(cap(body)) < n {
					body = make([]byte, n)
				}
				body = body[:n]
				if _, err := seg.f.ReadAt(body, off+frameSize); err != nil {
					return fmt.Errorf("disklog: %w", err)
				}
				if crc32.ChecksumIEEE(body) == sum {
					if err := b.applyRecord(body, si, off+frameSize); err != nil {
						return err
					}
					off += frameSize + n
					good = true
				}
			}
		}
		if !good {
			if !last {
				return fmt.Errorf("%w: disklog segment %d corrupt at offset %d", types.ErrCorrupt, seg.id, off)
			}
			// Torn tail from a crash mid-append: drop it.
			if err := seg.f.Truncate(off); err != nil {
				return fmt.Errorf("disklog: %w", err)
			}
			size = off
			break
		}
	}
	seg.size = size
	return nil
}

// applyRecord replays one record body located at absolute offset bodyOff in
// segment si.
func (b *Backend) applyRecord(body []byte, si int, bodyOff int64) error {
	if len(body) < 1 {
		return fmt.Errorf("%w: disklog empty record body", types.ErrCorrupt)
	}
	kind := body[0]
	table, rest, err := codec.String(body[1:])
	if err != nil {
		return fmt.Errorf("%w: disklog record table", types.ErrCorrupt)
	}
	key, rest, err := codec.String(rest)
	if err != nil {
		return fmt.Errorf("%w: disklog record key", types.ErrCorrupt)
	}
	switch kind {
	case recPut:
		valOff := bodyOff + int64(len(body)-len(rest))
		b.indexPut(table, key, ref{seg: si, off: valOff, len: len(rest)})
	case recDel:
		b.indexDelete(table, key)
	default:
		return fmt.Errorf("%w: disklog record kind %d", types.ErrCorrupt, kind)
	}
	return nil
}

// indexPut installs a ref, maintaining the live-bytes count.
func (b *Backend) indexPut(table, key string, r ref) {
	t, ok := b.index[table]
	if !ok {
		t = make(map[string]ref)
		b.index[table] = t
	}
	if old, ok := t[key]; ok {
		b.bytes -= int64(old.len)
	}
	t[key] = r
	b.bytes += int64(r.len)
}

// indexDelete removes a key, maintaining the live-bytes count.
func (b *Backend) indexDelete(table, key string) {
	if old, ok := b.index[table][key]; ok {
		b.bytes -= int64(old.len)
		delete(b.index[table], key)
	}
}

// appendRecord appends one framed record for (kind, table, key, value) to
// buf and returns the extended buffer plus the offset of the value bytes
// relative to the start of buf.
func appendRecord(buf []byte, kind byte, table, key string, value []byte) (out []byte, valRel int) {
	frameAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	bodyAt := len(buf)
	buf = append(buf, kind)
	buf = codec.PutString(buf, table)
	buf = codec.PutString(buf, key)
	valRel = len(buf)
	buf = append(buf, value...)
	body := buf[bodyAt:]
	binary.LittleEndian.PutUint32(buf[frameAt:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[frameAt+4:], crc32.ChecksumIEEE(body))
	return buf, valRel
}

// write appends buf to the active segment (rotating first if the batch would
// overflow it) and returns the segment index and the absolute offset buf was
// written at. Callers hold b.mu.
func (b *Backend) write(buf []byte) (si int, base int64, err error) {
	seg := b.segs[len(b.segs)-1]
	if seg.size > 0 && seg.size+int64(len(buf)) > b.opts.SegmentBytes {
		if err := seg.f.Sync(); err != nil {
			return 0, 0, fmt.Errorf("disklog: %w", err)
		}
		if err := b.addSegment(seg.id + 1); err != nil {
			return 0, 0, err
		}
		seg = b.segs[len(b.segs)-1]
	}
	base = seg.size
	if _, err := seg.f.WriteAt(buf, base); err != nil {
		return 0, 0, fmt.Errorf("disklog: %w", err)
	}
	seg.size += int64(len(buf))
	return len(b.segs) - 1, base, nil
}

// Put appends one record. It is durable no later than the next BatchPut or
// Close.
func (b *Backend) Put(ctx context.Context, table, key string, value []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	buf, valRel := appendRecord(nil, recPut, table, key, value)
	si, base, err := b.write(buf)
	if err != nil {
		return err
	}
	b.indexPut(table, key, ref{seg: si, off: base + int64(valRel), len: len(value)})
	return nil
}

// BatchPut appends all entries as consecutive records in one write and
// fsyncs before acknowledging.
func (b *Backend) BatchPut(ctx context.Context, table string, entries []engine.Entry) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	var buf []byte
	rels := make([]int, len(entries))
	for i, e := range entries {
		buf, rels[i] = appendRecord(buf, recPut, table, e.Key, e.Value)
	}
	si, base, err := b.write(buf)
	if err != nil {
		return err
	}
	if err := b.segs[si].f.Sync(); err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	for i, e := range entries {
		b.indexPut(table, e.Key, ref{seg: si, off: base + int64(rels[i]), len: len(e.Value)})
	}
	return nil
}

// Get reads the value under (table, key) from disk.
func (b *Backend) Get(ctx context.Context, table, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, false, types.ErrClosed
	}
	r, ok := b.index[table][key]
	if !ok {
		return nil, false, nil
	}
	v, err := b.readRef(r)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// readRef fetches one value from disk; callers hold b.mu (any mode).
func (b *Backend) readRef(r ref) ([]byte, error) {
	v := make([]byte, r.len)
	if _, err := b.segs[r.seg].f.ReadAt(v, r.off); err != nil {
		return nil, fmt.Errorf("disklog: %w", err)
	}
	return v, nil
}

// Delete appends a tombstone; deleting a missing key writes nothing.
func (b *Backend) Delete(ctx context.Context, table, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return types.ErrClosed
	}
	if _, ok := b.index[table][key]; !ok {
		return nil
	}
	buf, _ := appendRecord(nil, recDel, table, key, nil)
	if _, _, err := b.write(buf); err != nil {
		return err
	}
	b.indexDelete(table, key)
	return nil
}

// Scan visits every live key of a table, reading each value from disk. The
// context is checked per entry: every iteration pays a disk read, so a
// cancelled caller stops the sweep at the next key.
func (b *Backend) Scan(ctx context.Context, table string, fn func(key string, value []byte) bool) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return types.ErrClosed
	}
	for k, r := range b.index[table] {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := b.readRef(r)
		if err != nil {
			return err
		}
		if !fn(k, v) {
			break
		}
	}
	return nil
}

// Tables lists tables that hold at least one live key.
func (b *Backend) Tables(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, types.ErrClosed
	}
	out := make([]string, 0, len(b.index))
	for t, kv := range b.index {
		if len(kv) > 0 {
			out = append(out, t)
		}
	}
	return out, nil
}

// BytesStored reports the summed length of all live values (excluding
// framing, dead versions, and tombstones).
func (b *Backend) BytesStored() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.bytes
}

// Segments reports how many segment files back the log, for rotation tests
// and ops introspection.
func (b *Backend) Segments() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.segs)
}

// Close fsyncs the active segment, closes all files, and releases the
// directory lock.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	err := b.segs[len(b.segs)-1].f.Sync()
	for _, s := range b.segs {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := b.lock.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("disklog: %w", err)
	}
	return nil
}
