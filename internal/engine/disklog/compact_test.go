package disklog

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rstore/internal/engine/enginetest"
)

// overwriteWorkload and verifyState delegate to the shared crash-injection
// harness helpers, so disklog and lsm prove the identical recovery contract
// on the identical workload.
func overwriteWorkload(t *testing.T, b *Backend, nKeys, rounds int) map[string]string {
	t.Helper()
	return enginetest.OverwriteWorkload(t, b, nKeys, rounds)
}

func verifyState(t *testing.T, b *Backend, nKeys int, want map[string]string) {
	t.Helper()
	enginetest.VerifyState(t, b, nKeys, want)
}

func diskBytes(t *testing.T, dir string) int64 {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestCompactReclaims is the headline contract: an overwrite-heavy history
// compacts to a fraction of its on-disk volume with identical reads, the
// stats account for the reclaim, and the compacted layout replays.
func TestCompactReclaims(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 4 << 10})
	const nKeys = 200
	want := overwriteWorkload(t, b, nKeys, 4)

	before, err := b.CompactionStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.LiveRatio() > 0.5 {
		t.Fatalf("workload not dead-heavy enough: live ratio %.2f", before.LiveRatio())
	}
	st, err := b.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DiskBytes > before.DiskBytes/2 {
		t.Fatalf("compaction reclaimed too little: %d -> %d disk bytes", before.DiskBytes, st.DiskBytes)
	}
	if st.CompactedBytes != before.DiskBytes-st.DiskBytes {
		t.Fatalf("CompactedBytes = %d, want %d", st.CompactedBytes, before.DiskBytes-st.DiskBytes)
	}
	if got := diskBytes(t, dir); got != st.DiskBytes {
		t.Fatalf("stats say %d disk bytes, filesystem says %d", st.DiskBytes, got)
	}
	verifyState(t, b, nKeys, want)

	// Compacting again immediately must be a no-op: the compacted segment
	// is fully live (marker records included), so re-selecting it as a
	// victim would rewrite all data to reclaim nothing. Stats alone cannot
	// tell a no-op from a useless full rewrite (both end with the same
	// byte counts), so check the segment file identity too.
	compactedSeg := filepath.Join(dir, fmt.Sprintf("seg-%06d.log", b.segs[0].id))
	infoBefore, err := os.Stat(compactedSeg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := b.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if again != st {
		t.Fatalf("repeat compact was not a no-op: %+v -> %+v", st, again)
	}
	infoAfter, err := os.Stat(compactedSeg)
	if err != nil {
		t.Fatal(err)
	}
	if !os.SameFile(infoBefore, infoAfter) {
		t.Fatal("repeat compact rewrote the fully-live compacted segment")
	}

	// The compacted layout must replay byte-for-byte equivalent state.
	wantBytes := b.BytesStored()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir, Options{SegmentBytes: 4 << 10})
	defer r.Close()
	verifyState(t, r, nKeys, want)
	if got := r.BytesStored(); got != wantBytes {
		t.Fatalf("BytesStored after reopen = %d, want %d", got, wantBytes)
	}
}

// TestCompactNothingToReclaim: a write-once history has no dead bytes, so
// Compact must be a no-op — same files, no rewrite output.
func TestCompactNothingToReclaim(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 4 << 10})
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := b.Put(ctx, "t", fmt.Sprintf("k%03d", i), []byte(strings.Repeat("v", 64))); err != nil {
			t.Fatal(err)
		}
	}
	before, err := b.CompactionStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st != before {
		t.Fatalf("no-op compact changed stats: %+v -> %+v", before, st)
	}
	if st.CompactedBytes != 0 {
		t.Fatalf("no-op compact claims %d bytes reclaimed", st.CompactedBytes)
	}
}

// TestCompactThenWrite: the log keeps accepting (and replaying) writes after
// a compaction — the rewritten segment and the survivors form a consistent
// id sequence.
func TestCompactThenWrite(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 4 << 10})
	const nKeys = 100
	want := overwriteWorkload(t, b, nKeys, 3)
	if _, err := b.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("post%03d", i)
		if err := b.Put(ctx, "t", k, []byte("after-compact")); err != nil {
			t.Fatal(err)
		}
	}
	// A second compaction over the mixed (compacted + fresh) layout.
	if _, err := b.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	verifyState(t, b, nKeys, want)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir, Options{SegmentBytes: 4 << 10})
	defer r.Close()
	verifyState(t, r, nKeys, want)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("post%03d", i)
		if v, ok, _ := r.Get(ctx, "t", k); !ok || string(v) != "after-compact" {
			t.Fatalf("%s = %q (ok=%v) after reopen", k, v, ok)
		}
	}
}

// TestCompactCrashRecovery injects a crash at each of Compact's dangerous
// points (via the shared enginetest harness) and proves reopening the
// directory loses nothing:
//
//   - mid-rewrite: the .cmp output is half-written and unsealed; replay must
//     discard it and serve from the intact victims.
//   - sealed: the .cmp is complete and fsynced but the swap never happened;
//     replay must adopt it (victims deleted, file renamed into place).
//   - renamed: the rename committed but the victim unlink was interrupted;
//     replay must delete the lower-numbered leftovers instead of replaying
//     them (which would resurrect dropped tombstones).
func TestCompactCrashRecovery(t *testing.T) {
	enginetest.CompactCrashRecovery(t, enginetest.Harness{
		Open: func(t *testing.T, dir string) enginetest.Crasher {
			return openT(t, dir, Options{SegmentBytes: 4 << 10})
		},
		Points:      []string{"mid-rewrite", "sealed", "renamed"},
		CrashErr:    ErrCrashed,
		DebrisGlobs: []string{"seg-*.log" + cmpSuffix},
		DiskBytes:   diskBytes,
	})
}

// TestCompactConcurrentWrites: writes racing a compaction land in the active
// segment and are never lost or regressed by the index swap.
func TestCompactConcurrentWrites(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 4 << 10})
	defer b.Close()
	const nKeys = 200
	overwriteWorkload(t, b, nKeys, 4)

	done := make(chan error, 1)
	go func() {
		// Overwrite a slice of the keyspace while the compaction runs; the
		// swap's ref equality check must keep these newer values.
		var err error
		for rev := 0; rev < 20 && err == nil; rev++ {
			for i := 50; i < 100 && err == nil; i++ {
				k := fmt.Sprintf("k%04d", i)
				err = b.Put(ctx, "t", k, []byte(fmt.Sprintf("%s racing-%d", k, rev)))
			}
		}
		done <- err
	}()
	if _, err := b.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 100; i++ {
		k := fmt.Sprintf("k%04d", i)
		v, ok, err := b.Get(ctx, "t", k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = ok=%v err=%v", k, ok, err)
		}
		if want := fmt.Sprintf("%s racing-19", k); string(v) != want {
			t.Fatalf("%s = %q, want %q", k, v, want)
		}
	}
}

// TestTornCompactHeaderDoesNotSupersede: deciding that a segment is a
// compacted one triggers deletion of every lower-numbered segment, so that
// decision must never be made from a torn or corrupt first record — even
// one whose kind byte happens to read recCompactBegin. A genuine compacted
// segment's header always passes its CRC (the file is fsynced before the
// committing rename).
func TestTornCompactHeaderDoesNotSupersede(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 4 << 10})
	const nKeys = 100
	want := overwriteWorkload(t, b, nKeys, 2)
	if b.Segments() < 2 {
		t.Fatal("test needs multiple segments")
	}
	lastID := b.segs[len(b.segs)-1].id
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-first-write of a freshly rotated segment whose
	// garbage kind byte reads recCompactBegin: frame length 3, bogus CRC,
	// body {recCompactBegin, 0, 0}.
	torn := []byte{3, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, recCompactBegin, 0, 0}
	tornPath := filepath.Join(dir, fmt.Sprintf("seg-%06d.log", lastID+1))
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Options{SegmentBytes: 4 << 10})
	defer r.Close()
	verifyState(t, r, nKeys, want)
}

// TestCompactTinyDeadIsLeftInPlace: when the sealed dead bytes are smaller
// than the marker framing a rewrite would add, compaction must decline —
// otherwise it would grow the log and report a negative reclaim.
func TestCompactTinyDeadIsLeftInPlace(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 4 << 10})
	defer b.Close()
	if err := b.Put(ctx, "t", "k", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(ctx, "t", "k", []byte("b")); err != nil { // ~14 dead bytes
		t.Fatal(err)
	}
	before, err := b.CompactionStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompactedBytes != 0 {
		t.Fatalf("tiny-dead compact claims %d bytes reclaimed", st.CompactedBytes)
	}
	if st.DiskBytes > before.DiskBytes {
		t.Fatalf("tiny-dead compact grew the log: %d -> %d", before.DiskBytes, st.DiskBytes)
	}
	if v, ok, _ := b.Get(ctx, "t", "k"); !ok || string(v) != "b" {
		t.Fatalf("k = %q (ok=%v)", v, ok)
	}
}
