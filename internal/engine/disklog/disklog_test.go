package disklog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rstore/internal/engine"
	"rstore/internal/types"
)

func openT(t *testing.T, dir string, opts Options) *Backend {
	t.Helper()
	b, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReopenRecovers is the crash-recovery contract: everything committed —
// puts, batches, overwrites, deletes — must come back identically after
// Close + Open, including the BytesStored accounting.
func TestReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{})

	var entries []engine.Entry
	for i := 0; i < 100; i++ {
		entries = append(entries, engine.Entry{
			Key:   fmt.Sprintf("k%03d", i),
			Value: []byte(fmt.Sprintf("value-%03d", i)),
		})
	}
	if err := b.BatchPut(context.Background(), "chunks", entries); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(context.Background(), "meta", "manifest", []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(context.Background(), "meta", "manifest", []byte("manifest-2")); err != nil { // overwrite
		t.Fatal(err)
	}
	if err := b.Delete(context.Background(), "chunks", "k050"); err != nil {
		t.Fatal(err)
	}
	wantBytes := b.BytesStored()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Options{})
	defer r.Close()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%03d", i)
		v, ok, err := r.Get(context.Background(), "chunks", k)
		if err != nil {
			t.Fatal(err)
		}
		if i == 50 {
			if ok {
				t.Fatalf("deleted key %s resurrected as %q", k, v)
			}
			continue
		}
		if want := fmt.Sprintf("value-%03d", i); !ok || string(v) != want {
			t.Fatalf("%s = %q (ok=%v), want %q", k, v, ok, want)
		}
	}
	if v, ok, _ := r.Get(context.Background(), "meta", "manifest"); !ok || string(v) != "manifest-2" {
		t.Fatalf("manifest = %q (ok=%v)", v, ok)
	}
	if got := r.BytesStored(); got != wantBytes {
		t.Fatalf("BytesStored after reopen = %d, want %d", got, wantBytes)
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 60; i++ {
		if err := b.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("value-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := b.Segments(); n < 2 {
		t.Fatalf("no rotation happened: %d segments", n)
	}
	// Overwrites land in later segments and must shadow earlier ones.
	if err := b.Put(context.Background(), "t", "k00", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Options{SegmentBytes: 256})
	defer r.Close()
	if r.Segments() < 2 {
		t.Fatalf("reopen lost segments: %d", r.Segments())
	}
	if v, ok, _ := r.Get(context.Background(), "t", "k00"); !ok || string(v) != "new" {
		t.Fatalf("k00 = %q (ok=%v), want new", v, ok)
	}
	for i := 1; i < 60; i++ {
		k := fmt.Sprintf("k%02d", i)
		if v, ok, _ := r.Get(context.Background(), "t", k); !ok || string(v) != fmt.Sprintf("value-%02d", i) {
			t.Fatalf("%s = %q (ok=%v)", k, v, ok)
		}
	}
}

// TestTornTailTruncated simulates a crash mid-append: garbage after the last
// whole record must be discarded on replay without losing committed data.
func TestTornTailTruncated(t *testing.T) {
	for _, tail := range map[string][]byte{
		"garbage":        []byte("\xde\xad\xbe\xef"),
		"partial-header": {0xff, 0x00, 0x00},
		"giant-length":   {0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8},
	} {
		b := openT(t, t.TempDir(), Options{})
		dir := b.dir
		if err := b.Put(context.Background(), "t", "committed", []byte("safe")); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(filepath.Join(dir, "seg-000000.log"), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		r := openT(t, dir, Options{})
		if v, ok, _ := r.Get(context.Background(), "t", "committed"); !ok || string(v) != "safe" {
			t.Fatalf("committed record lost to torn tail: %q (ok=%v)", v, ok)
		}
		// The tail was truncated away, so appends resume cleanly.
		if err := r.Put(context.Background(), "t", "after", []byte("crash")); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2 := openT(t, dir, Options{})
		if v, ok, _ := r2.Get(context.Background(), "t", "after"); !ok || string(v) != "crash" {
			t.Fatalf("post-truncation append lost: %q (ok=%v)", v, ok)
		}
		r2.Close()
	}
}

// TestCorruptionInOlderSegmentIsFatal: only the tail of the LAST segment may
// be torn; a flipped byte in an older segment is real corruption and must
// refuse to open rather than silently drop data.
func TestCorruptionInOlderSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		if err := b.Put(context.Background(), "t", fmt.Sprintf("k%02d", i), []byte("vvvvvvvvvvvvvvvv")); err != nil {
			t.Fatal(err)
		}
	}
	if b.Segments() < 2 {
		t.Fatal("test needs multiple segments")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "seg-000000.log"), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 20); err != nil { // inside the first record's body
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); !errors.Is(err, types.ErrCorrupt) {
		t.Fatalf("corrupt older segment opened: %v", err)
	}
}

func TestDeleteMissingWritesNothing(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{})
	if err := b.Delete(context.Background(), "t", "never-existed"); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(dir, "seg-000000.log"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("no-op delete appended %d bytes", info.Size())
	}
}

// TestDirectoryLocked: two live backends on one directory would append with
// independent offsets and shred committed records; the second open must be
// refused until the first closes.
func TestDirectoryLocked(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second open of a locked directory succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2 := openT(t, dir, Options{})
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStraySegmentFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-zzz.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("stray segment file accepted")
	}
}
