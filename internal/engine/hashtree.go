package engine

// The hash-tree seam: the optional extension anti-entropy rides on. A
// backend that implements HashRanger can summarize a table's contents as a
// fixed-fanout digest tree — one 64-bit root over per-bucket leaf digests —
// so two replicas can detect divergence by exchanging O(fanout) bytes and
// drill into exactly the buckets that differ instead of comparing every
// key.
//
// The tree parameters are part of the wire contract (docs/FORMATS.md):
//
//   - Keys are partitioned into buckets by hash, not by lexicographic
//     split: bucket(key) = FNV-1a-64(key) mod fanout. Hash partitioning
//     keeps bucket b comparable across replicas whose key sets have
//     diverged — a lexicographic split would shift every boundary.
//   - An entry hashes as FNV-1a-64 over uvarint(len(key)) || key ||
//     stored-value-bytes; the length prefix keeps (key, value) boundaries
//     unambiguous. For cluster data the stored value is the LWW envelope,
//     so two replicas holding the same payload at different timestamps
//     still hash apart.
//   - A leaf digest is the XOR of its entries' hashes (order-independent,
//     because backends scan in unspecified order; an empty bucket is 0)
//     plus the entry count.
//   - The root is FNV-1a-64 over the fanout and every leaf's (hash, count)
//     in bucket order.
//
// All of it is deterministic across backends and across restarts: equal
// (key → stored-bytes) sets produce equal digests on any implementation.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrNoHashRange reports that a backend does not implement HashRanger (or,
// over the wire, that the daemon's backend does not). The anti-entropy
// loop matches it with errors.Is and skips the node.
var ErrNoHashRange = errors.New("engine: backend does not support hash ranges")

// DefaultHashFanout is the bucket count the anti-entropy loop requests: a
// whole-table comparison costs fanout leaf digests on the wire, and each
// divergent key costs one bucket drill-down of roughly keys/fanout
// entries.
const DefaultHashFanout = 64

// MaxHashFanout bounds the fanout any caller — including a hostile wire
// peer — may request, so a digest reply can never be made to allocate an
// unbounded leaf slice.
const MaxHashFanout = 1 << 12

// LeafDigest summarizes one bucket of a hash tree.
type LeafDigest struct {
	// Hash is the XOR of the bucket's entry hashes; 0 for an empty bucket.
	Hash uint64
	// Keys is the number of keys in the bucket.
	Keys uint64
}

// TreeDigest is a whole-table hash tree: the root plus every leaf in
// bucket order.
type TreeDigest struct {
	// Root commits to every leaf (hash and count) and the fanout.
	Root uint64
	// Leaves holds exactly fanout entries, index = bucket.
	Leaves []LeafDigest
	// Bytes is the key+value volume hashed to produce this digest — the
	// I/O the call cost. A memoized implementation reports 0 on a hit.
	Bytes int64
}

// KeyHash is one entry of a bucket drill-down: the key and its entry hash.
type KeyHash struct {
	Key  string
	Hash uint64
}

// HashRanger is the optional hash-tree extension of Backend. Callers
// discover it by type assertion; backends that cannot enumerate their
// contents cheaply simply do not implement it (ErrNoHashRange).
type HashRanger interface {
	// HashTree digests every (key, stored-value) of table into a
	// fanout-bucket tree. A missing table is an empty tree, not an error.
	HashTree(ctx context.Context, table string, fanout int) (TreeDigest, error)

	// HashRange lists the keys of one bucket with their entry hashes, in
	// ascending key order. A missing table or empty bucket returns an
	// empty list.
	HashRange(ctx context.Context, table string, fanout, bucket int) ([]KeyHash, error)
}

// CheckHashFanout validates a HashTree fanout before any allocation is
// sized from it. Shared by every backend so a hostile wire value is
// rejected identically everywhere.
func CheckHashFanout(fanout int) error {
	if fanout < 1 || fanout > MaxHashFanout {
		return fmt.Errorf("engine: hash fanout %d out of range [1, %d]", fanout, MaxHashFanout)
	}
	return nil
}

// CheckHashBucket validates a HashRange (fanout, bucket) pair.
func CheckHashBucket(fanout, bucket int) error {
	if err := CheckHashFanout(fanout); err != nil {
		return err
	}
	if bucket < 0 || bucket >= fanout {
		return fmt.Errorf("engine: hash bucket %d out of range [0, %d)", bucket, fanout)
	}
	return nil
}

// fnv1a64 constants (FNV-1a, 64 bit) — the same hash family the lsm bloom
// filter persists, chosen here for the same reason: stable across builds,
// cheap, and dependency-free.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// BucketOf maps a key to its tree bucket: FNV-1a-64(key) mod fanout.
func BucketOf(key string, fanout int) int {
	return int(fnvString(fnvOffset64, key) % uint64(fanout))
}

// EntryHash hashes one stored entry: FNV-1a-64 over uvarint(len(key)) ||
// key || value.
func EntryHash(key string, value []byte) uint64 {
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(len(key)))
	h := fnvBytes(fnvOffset64, pfx[:n])
	h = fnvString(h, key)
	return fnvBytes(h, value)
}

// TreeHasher accumulates a table's entries into a TreeDigest. Entries may
// be added in any order; each key must be added at most once.
type TreeHasher struct {
	leaves []LeafDigest
	bytes  int64
}

// NewTreeHasher returns an accumulator for a fanout-bucket tree. The
// caller must have validated fanout with CheckHashFanout.
func NewTreeHasher(fanout int) *TreeHasher {
	return &TreeHasher{leaves: make([]LeafDigest, fanout)}
}

// Add folds one stored entry into its bucket.
func (t *TreeHasher) Add(key string, value []byte) {
	b := BucketOf(key, len(t.leaves))
	t.leaves[b].Hash ^= EntryHash(key, value)
	t.leaves[b].Keys++
	t.bytes += int64(len(key) + len(value))
}

// Digest seals the accumulated entries into a TreeDigest. The hasher may
// not be reused afterwards (the digest aliases its leaf slice).
func (t *TreeHasher) Digest() TreeDigest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(t.leaves)))
	root := fnvBytes(fnvOffset64, buf[:8])
	for _, l := range t.leaves {
		binary.LittleEndian.PutUint64(buf[:8], l.Hash)
		binary.LittleEndian.PutUint64(buf[8:], l.Keys)
		root = fnvBytes(root, buf[:])
	}
	return TreeDigest{Root: root, Leaves: t.leaves, Bytes: t.bytes}
}
