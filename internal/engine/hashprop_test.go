// Property tests for the hash-tree seam: the anti-entropy loop's
// correctness rests on three invariants that no example-based test can pin
// down — (a) two backends digest equal iff their logical content is equal,
// regardless of the operation histories that produced it; (b) when they
// differ, the unequal leaves cover exactly the differing keys, so the
// drill-down phase never misses a divergence and never fetches a clean
// bucket; (c) a durable backend's digest survives Close/reopen, so a
// restarted replica doesn't look diverged to its peers.
package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/lsm"
	"rstore/internal/engine/memory"
)

// randMutations applies n random put/delete/overwrite operations to b and
// returns the resulting logical content. Keys are drawn from a small pool
// so overwrites and delete-then-reput sequences actually happen.
func randMutations(t *testing.T, rng *rand.Rand, b engine.Backend, table string, n int) map[string][]byte {
	t.Helper()
	ctx := context.Background()
	content := map[string][]byte{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", rng.Intn(40))
		switch {
		case rng.Intn(4) == 0 && len(content) > 0:
			if err := b.Delete(ctx, table, key); err != nil {
				t.Fatal(err)
			}
			delete(content, key)
		default:
			val := make([]byte, rng.Intn(64))
			rng.Read(val)
			if err := b.Put(ctx, table, key, val); err != nil {
				t.Fatal(err)
			}
			content[key] = val
		}
	}
	return content
}

// replay writes content to b through a shuffled, redundant history: every
// key is first written with a garbage value, a random subset is deleted and
// re-put, and the final values land in random order. The logical outcome is
// identical to content; the physical history shares nothing with the one
// that produced it.
func replay(t *testing.T, rng *rand.Rand, b engine.Backend, table string, content map[string][]byte) {
	t.Helper()
	ctx := context.Background()
	keys := make([]string, 0, len(content))
	for k := range content {
		keys = append(keys, k)
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if err := b.Put(ctx, table, k, []byte("garbage-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if rng.Intn(2) == 0 {
			if err := b.Delete(ctx, table, k); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Put(ctx, table, k, content[k]); err != nil {
			t.Fatal(err)
		}
	}
}

// diffKeys returns the keys whose values differ (or exist on one side only).
func diffKeys(a, b map[string][]byte) map[string]bool {
	d := map[string]bool{}
	for k, v := range a {
		if bv, ok := b[k]; !ok || string(bv) != string(v) {
			d[k] = true
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			d[k] = true
		}
	}
	return d
}

func TestHashTreeProperties(t *testing.T) {
	const fanout = 16
	ctx := context.Background()
	forEachBackend(t, func(t *testing.T, b engine.Backend) {
		hr, ok := b.(engine.HashRanger)
		if !ok {
			t.Skip("backend does not implement engine.HashRanger")
		}
		var other engine.Backend = memory.New() // reference replica, always hashable
		defer other.Close()
		ohr := other.(engine.HashRanger)

		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			// A fresh table per round: untracked leftovers from a previous
			// round's history would otherwise alias into the comparison.
			table := fmt.Sprintf("prop-%d", seed)

			// (a) history-independence: the same logical content reached
			// through a disjoint operation history digests identically.
			content := randMutations(t, rng, b, table, 120)
			replay(t, rng, other, table, content)
			db, err := hr.HashTree(ctx, table, fanout)
			if err != nil {
				t.Fatal(err)
			}
			do, err := ohr.HashTree(ctx, table, fanout)
			if err != nil {
				t.Fatal(err)
			}
			if db.Root != do.Root {
				t.Fatalf("seed %d: equal content, unequal roots %x vs %x", seed, db.Root, do.Root)
			}

			// Diverge the reference in a random handful of ways: value
			// flips, one-sided deletes, one-sided extra keys.
			refContent := map[string][]byte{}
			for k, v := range content {
				refContent[k] = v
			}
			for i := 0; i < 1+rng.Intn(6); i++ {
				switch k := fmt.Sprintf("key-%03d", rng.Intn(40)); rng.Intn(3) {
				case 0:
					if err := other.Put(ctx, table, k, []byte("diverged")); err != nil {
						t.Fatal(err)
					}
					refContent[k] = []byte("diverged")
				case 1:
					if err := other.Delete(ctx, table, k); err != nil {
						t.Fatal(err)
					}
					delete(refContent, k)
				case 2:
					extra := fmt.Sprintf("extra-%03d", rng.Intn(40))
					if err := other.Put(ctx, table, extra, []byte("one-sided")); err != nil {
						t.Fatal(err)
					}
					refContent[extra] = []byte("one-sided")
				}
			}
			want := diffKeys(content, refContent)
			do, err = ohr.HashTree(ctx, table, fanout)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				if db.Root != do.Root {
					t.Fatalf("seed %d: divergence cancelled out but roots differ", seed)
				}
			} else if db.Root == do.Root {
				t.Fatalf("seed %d: %d differing keys but equal roots", seed, len(want))
			}

			// (b) unequal leaves cover exactly the differing keys: every
			// differing key's bucket is unequal, and drilling every unequal
			// bucket recovers the full difference and nothing else.
			wantBuckets := map[int]bool{}
			for k := range want {
				wantBuckets[engine.BucketOf(k, fanout)] = true
			}
			got := map[string]bool{}
			for i := 0; i < fanout; i++ {
				if db.Leaves[i] == do.Leaves[i] {
					if wantBuckets[i] {
						t.Fatalf("seed %d: bucket %d holds differing keys but leaves are equal", seed, i)
					}
					continue
				}
				if !wantBuckets[i] {
					t.Fatalf("seed %d: leaves differ in bucket %d but no key differs there", seed, i)
				}
				lb, err := hr.HashRange(ctx, table, fanout, i)
				if err != nil {
					t.Fatal(err)
				}
				lo, err := ohr.HashRange(ctx, table, fanout, i)
				if err != nil {
					t.Fatal(err)
				}
				hashes := map[string]uint64{}
				for _, kh := range lb {
					hashes[kh.Key] = kh.Hash
				}
				for _, kh := range lo {
					if h, ok := hashes[kh.Key]; ok && h == kh.Hash {
						delete(hashes, kh.Key) // agrees on both sides
					} else {
						got[kh.Key] = true
					}
				}
				for k := range hashes {
					got[k] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d: drill-down found %d differing keys, want %d", seed, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("seed %d: drill-down missed differing key %q", seed, k)
				}
			}
		}
	})
}

// TestHashTreeReopenStability pins (c): a durable backend's digest is a
// function of its logical content, not of in-memory state — after
// Close/reopen (log replay, SSTable reload, memo cache cold) the tree must
// come back bit-identical, or every restart would trigger a spurious
// anti-entropy repair storm.
func TestHashTreeReopenStability(t *testing.T) {
	const table = "stable"
	const fanout = 32
	ctx := context.Background()
	engines := map[string]func(dir string) (engine.Backend, error){
		"disklog": func(dir string) (engine.Backend, error) {
			return disklog.Open(dir, disklog.Options{})
		},
		// Tiny memtable so the content spans WAL, flushed SSTables, and
		// merged SSTables when it comes back.
		"lsm": func(dir string) (engine.Backend, error) {
			return lsm.Open(dir, lsm.Options{MemtableBytes: 512})
		},
	}
	for name, open := range engines {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			b, err := open(dir)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			randMutations(t, rng, b, table, 200)
			before, err := b.(engine.HashRanger).HashTree(ctx, table, fanout)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}

			b, err = open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			after, err := b.(engine.HashRanger).HashTree(ctx, table, fanout)
			if err != nil {
				t.Fatal(err)
			}
			if after.Root != before.Root {
				t.Fatalf("root changed across reopen: %x vs %x", after.Root, before.Root)
			}
			for i := range before.Leaves {
				if after.Leaves[i] != before.Leaves[i] {
					t.Fatalf("leaf %d changed across reopen: %+v vs %+v", i, after.Leaves[i], before.Leaves[i])
				}
			}
		})
	}
}
