package workload

import (
	"encoding/json"
	"testing"

	"rstore/internal/corpus"
	"rstore/internal/docgen"
	"rstore/internal/types"
)

func TestCatalogIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalog() {
		if seen[s.Name] {
			t.Fatalf("duplicate dataset %s", s.Name)
		}
		seen[s.Name] = true
		if s.Versions <= 0 || s.RecordsPerVersion <= 0 || s.UpdatePct <= 0 || s.UpdatePct > 1 {
			t.Fatalf("%s: bad parameters %+v", s.Name, s)
		}
	}
	for _, name := range []string{"A0", "B1", "C0", "D2", "E", "F"} {
		if _, err := SpecByName(name); err != nil {
			t.Fatalf("SpecByName(%s): %v", name, err)
		}
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestScaled(t *testing.T) {
	s, _ := SpecByName("C0")
	sc := s.Scaled(0.01, 0.01, 0.5)
	if sc.Versions != 100 || sc.RecordsPerVersion != 200 {
		t.Fatalf("scaled: %+v", sc)
	}
	if sc.AvgDepth >= s.AvgDepth {
		t.Fatal("depth not scaled")
	}
	// Floors hold.
	tiny := s.Scaled(0.00001, 0.00001, 0.00001)
	if tiny.Versions < 3 || tiny.RecordsPerVersion < 8 || tiny.RecordSize < 64 {
		t.Fatalf("floors violated: %+v", tiny)
	}
}

func genSmall(t testing.TB, spec Spec) *corpusT {
	t.Helper()
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: corpus invalid: %v", spec.Name, err)
	}
	return c
}

func TestGeneratedDatasetShape(t *testing.T) {
	spec := Spec{
		Name: "shape", Versions: 50, AvgDepth: 12, RecordsPerVersion: 200,
		UpdatePct: 0.10, Update: RandomUpdate, RecordSize: 128, Seed: 3,
	}
	c := genSmall(t, spec)
	if c.NumVersions() != 50 {
		t.Fatalf("versions = %d", c.NumVersions())
	}
	// Version cardinality stays approximately constant (deletes ≈ inserts).
	for _, v := range []types.VersionID{0, 25, 49} {
		m, err := c.Members(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) < 180 || len(m) > 220 {
			t.Fatalf("V%d has %d records, want ≈200", v, len(m))
		}
	}
	// Update volume per version ≈ UpdatePct.
	adds := len(c.Adds(20))
	if adds < 10 || adds > 40 {
		t.Fatalf("V20 has %d adds, want ≈20", adds)
	}
	// Root adds exactly RecordsPerVersion.
	if len(c.Adds(0)) != 200 {
		t.Fatalf("root adds %d", len(c.Adds(0)))
	}
	// Payloads are valid JSON documents.
	var parsed map[string]any
	if err := json.Unmarshal(c.Record(0).Value, &parsed); err != nil {
		t.Fatalf("payload not JSON: %v", err)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec := Spec{
		Name: "det", Versions: 30, AvgDepth: 8, RecordsPerVersion: 60,
		UpdatePct: 0.2, Update: SkewedUpdate, RecordSize: 96, Seed: 7,
	}
	a := genSmall(t, spec)
	b := genSmall(t, spec)
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", a.NumRecords(), b.NumRecords())
	}
	for id := 0; id < a.NumRecords(); id++ {
		ra, rb := a.Record(uint32(id)), b.Record(uint32(id))
		if ra.CK != rb.CK || string(ra.Value) != string(rb.Value) {
			t.Fatalf("record %d differs", id)
		}
	}
}

func TestPdBoundsMutations(t *testing.T) {
	spec := Spec{
		Name: "pd", Versions: 20, RecordsPerVersion: 50,
		UpdatePct: 0.3, Update: RandomUpdate, RecordSize: 2048, Pd: 0.05, Seed: 9,
	}
	c := genSmall(t, spec)
	// For every modified record (key exists with an earlier origin), the
	// byte-difference from its predecessor stays near Pd.
	checked := 0
	for _, key := range c.Keys() {
		ids := c.KeyRecords(key)
		for i := 1; i < len(ids); i++ {
			prev, cur := c.Record(ids[i-1]).Value, c.Record(ids[i]).Value
			frac := docgen.DiffFraction(prev, cur)
			if frac > 0.08 { // Pd + one field of slack
				t.Fatalf("key %s rev %d: %.3f byte change (Pd=0.05)", key, i, frac)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d modifications checked", checked)
	}
}

func TestSkewedUpdatesConcentrate(t *testing.T) {
	random := genSmall(t, Spec{
		Name: "r", Versions: 60, RecordsPerVersion: 300,
		UpdatePct: 0.1, Update: RandomUpdate, RecordSize: 64, Seed: 11,
	})
	skewed := genSmall(t, Spec{
		Name: "s", Versions: 60, RecordsPerVersion: 300,
		UpdatePct: 0.1, Update: SkewedUpdate, RecordSize: 64, Seed: 11,
	})
	// Zipf updates hit fewer distinct keys: the hottest key accumulates
	// more revisions than under uniform selection.
	maxRevs := func(c *corpusT) int {
		best := 0
		for _, k := range c.Keys() {
			if n := len(c.KeyRecords(k)); n > best {
				best = n
			}
		}
		return best
	}
	if maxRevs(skewed) <= maxRevs(random) {
		t.Fatalf("skew not visible: skewed max revs %d vs random %d",
			maxRevs(skewed), maxRevs(random))
	}
}

func TestWorkloadQueries(t *testing.T) {
	c := genSmall(t, Spec{
		Name: "q", Versions: 25, AvgDepth: 6, RecordsPerVersion: 40,
		UpdatePct: 0.2, Update: RandomUpdate, RecordSize: 64, Seed: 13,
	})
	w := NewWorkload(c, 1)
	q1 := w.FullVersionQueries(20)
	if len(q1) != 20 {
		t.Fatal("q1 count")
	}
	for _, q := range q1 {
		if int(q.Version) >= c.NumVersions() {
			t.Fatalf("q1 version %d out of range", q.Version)
		}
	}
	q2 := w.PartialVersionQueries(20, 0.1)
	for _, q := range q2 {
		if q.LoKey >= q.HiKey {
			t.Fatalf("q2 range [%s, %s) empty", q.LoKey, q.HiKey)
		}
	}
	q3 := w.RecordEvolutionQueries(20)
	for _, q := range q3 {
		if len(c.KeyRecords(q.Key)) == 0 {
			t.Fatalf("q3 key %s unknown", q.Key)
		}
	}
	pq := w.PointQueries(10)
	for _, q := range pq {
		members, _ := c.Members(q.Version)
		found := false
		for _, id := range members {
			if c.Record(id).CK.Key == q.Key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point query key %s not live in v%d", q.Key, q.Version)
		}
	}
}

func TestKeyFor(t *testing.T) {
	if KeyFor(1) >= KeyFor(2) || KeyFor(99) >= KeyFor(100) {
		t.Fatal("keys not lexicographically ordered by index")
	}
}

// corpusT aliases the generated corpus type for test readability.
type corpusT = corpus.Corpus
