// Package workload generates the synthetic versioned datasets of paper §5.1
// and the query workloads of §5.4: a version graph grown with the method of
// [4], a base version of JSON records, and per-version updates that modify,
// delete, and insert records under a random or skewed (Zipf) key-selection
// distribution, with the per-update byte-change bound P_d of §5.3.
package workload

import (
	"fmt"

	"rstore/internal/types"
)

// UpdateType selects how update targets are drawn from the live key set.
type UpdateType int

const (
	// RandomUpdate picks uniformly random keys.
	RandomUpdate UpdateType = iota
	// SkewedUpdate picks Zipf-distributed keys (hot keys updated often).
	SkewedUpdate
)

func (u UpdateType) String() string {
	if u == SkewedUpdate {
		return "Skewed"
	}
	return "Random"
}

// Spec describes one dataset, mirroring a Table 2 row.
type Spec struct {
	// Name is the Table 2 dataset label.
	Name string
	// Versions is the number of versions including the root.
	Versions int
	// AvgDepth is the target average leaf depth of the version tree;
	// 0 or ≥ Versions produces a linear chain.
	AvgDepth float64
	// RecordsPerVersion is the (approximately constant) version size m_v.
	RecordsPerVersion int
	// UpdatePct is the fraction of a version's records changed per commit
	// (Table 2's "%update", as a fraction).
	UpdatePct float64
	// Update selects random vs skewed target keys.
	Update UpdateType
	// RecordSize is the approximate JSON payload size in bytes.
	RecordSize int
	// Pd bounds the byte-change fraction of a modified record (§5.3);
	// 0 means unbounded (full rewrite).
	Pd float64
	// DeleteFrac and InsertFrac are the shares of the per-version update
	// budget spent on deletions and insertions (the rest are
	// modifications). Defaults are 5% each.
	DeleteFrac, InsertFrac float64
	// MergeProb adds merge commits (exercises the DAG→tree conversion);
	// the paper's evaluation datasets are merge-free.
	MergeProb float64
	// Seed makes the dataset deterministic.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.RecordSize <= 0 {
		s.RecordSize = 1024
	}
	if s.DeleteFrac <= 0 {
		s.DeleteFrac = 0.05
	}
	if s.InsertFrac <= 0 {
		s.InsertFrac = 0.05
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Scaled returns a proportionally shrunk copy: versionFrac scales the
// version count, recordFrac the records per version, sizeFrac the record
// size. Scaling preserves the relative quantities the paper's figures
// report (spans, ratios, crossovers) while keeping laptop-scale runtimes;
// see DESIGN.md §1.
func (s Spec) Scaled(versionFrac, recordFrac, sizeFrac float64) Spec {
	out := s
	out.Versions = scaleInt(s.Versions, versionFrac, 3)
	if s.AvgDepth > 0 {
		out.AvgDepth = s.AvgDepth * versionFrac
		if out.AvgDepth < 2 {
			out.AvgDepth = 2
		}
	}
	out.RecordsPerVersion = scaleInt(s.RecordsPerVersion, recordFrac, 8)
	out.RecordSize = scaleInt(s.RecordSize, sizeFrac, 64)
	return out
}

func scaleInt(v int, f float64, min int) int {
	out := int(float64(v) * f)
	if out < min {
		out = min
	}
	return out
}

// String summarizes the spec.
func (s Spec) String() string {
	return fmt.Sprintf("%s{n=%d depth=%.0f m=%d upd=%.0f%% %s}",
		s.Name, s.Versions, s.AvgDepth, s.RecordsPerVersion, s.UpdatePct*100, s.Update)
}

// Catalog returns the Table 2 dataset catalog with the paper's parameters.
// Callers scale them with Spec.Scaled for laptop-sized runs.
func Catalog() []Spec {
	return []Spec{
		{Name: "A0", Versions: 300, AvgDepth: 0, RecordsPerVersion: 100000, UpdatePct: 0.50, Update: RandomUpdate},
		{Name: "A1", Versions: 300, AvgDepth: 0, RecordsPerVersion: 100000, UpdatePct: 0.05, Update: SkewedUpdate},
		{Name: "A2", Versions: 300, AvgDepth: 0, RecordsPerVersion: 100000, UpdatePct: 0.05, Update: RandomUpdate},
		{Name: "B0", Versions: 1001, AvgDepth: 293.5, RecordsPerVersion: 100000, UpdatePct: 0.05, Update: SkewedUpdate},
		{Name: "B1", Versions: 1001, AvgDepth: 293.5, RecordsPerVersion: 100000, UpdatePct: 0.05, Update: RandomUpdate},
		{Name: "B2", Versions: 1001, AvgDepth: 293.5, RecordsPerVersion: 100000, UpdatePct: 0.10, Update: RandomUpdate},
		{Name: "C0", Versions: 10001, AvgDepth: 143, RecordsPerVersion: 20000, UpdatePct: 0.10, Update: RandomUpdate},
		{Name: "C1", Versions: 10001, AvgDepth: 143, RecordsPerVersion: 20000, UpdatePct: 0.01, Update: RandomUpdate},
		{Name: "C2", Versions: 10001, AvgDepth: 143, RecordsPerVersion: 20000, UpdatePct: 0.05, Update: SkewedUpdate},
		{Name: "D0", Versions: 10002, AvgDepth: 94.4, RecordsPerVersion: 20000, UpdatePct: 0.10, Update: RandomUpdate},
		{Name: "D1", Versions: 10002, AvgDepth: 94.4, RecordsPerVersion: 20000, UpdatePct: 0.01, Update: RandomUpdate},
		{Name: "D2", Versions: 10002, AvgDepth: 94.4, RecordsPerVersion: 20000, UpdatePct: 0.05, Update: SkewedUpdate},
		{Name: "E", Versions: 10001, AvgDepth: 170, RecordsPerVersion: 20000, UpdatePct: 0.10, Update: RandomUpdate, RecordSize: 4928},
		{Name: "F", Versions: 1001, AvgDepth: 56, RecordsPerVersion: 100000, UpdatePct: 0.20, Update: RandomUpdate, RecordSize: 4928},
	}
}

// SpecByName finds a catalog entry.
func SpecByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: no dataset %q in catalog", name)
}

// ScalingSpecs returns the Fig 12 weak-scaling datasets G and H at a node
// count: versions double with the cluster, mirroring "approximately double
// the amount of data by doubling the number of versions".
func ScalingSpecs(nodes int) []Spec {
	base := nodes // 1,2,4,8,12,16 scale multipliers applied by caller
	_ = base
	return []Spec{
		{Name: "G", Versions: 10000, AvgDepth: 170, RecordsPerVersion: 50000, UpdatePct: 0.10, Update: RandomUpdate},
		{Name: "H", Versions: 2000, AvgDepth: 100, RecordsPerVersion: 100000, UpdatePct: 0.10, Update: RandomUpdate, RecordSize: 2800},
	}
}

// KeyFor renders the i-th auto-incremented primary key. Keys are
// fixed-width so lexicographic order matches numeric order, which makes
// range queries well-defined.
func KeyFor(i int) types.Key {
	return types.Key(fmt.Sprintf("k%08d", i))
}
