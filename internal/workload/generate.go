package workload

import (
	"fmt"
	"math/rand"

	"rstore/internal/corpus"
	"rstore/internal/docgen"
	"rstore/internal/types"
	"rstore/internal/vgraph"
)

// Generate builds the dataset described by spec: the version graph, every
// version's delta, and the corpus registering them. Generation walks the
// tree depth-first with apply/undo state so memory stays proportional to one
// version plus the total delta volume.
func Generate(spec Spec) (*corpus.Corpus, error) {
	spec = spec.withDefaults()
	if spec.Versions < 1 {
		return nil, fmt.Errorf("workload: dataset %q needs at least 1 version", spec.Name)
	}
	if spec.UpdatePct < 0 || spec.UpdatePct > 1 {
		return nil, fmt.Errorf("workload: update pct %.2f out of range", spec.UpdatePct)
	}

	opts := vgraph.OptionsForDepth(spec.Versions, spec.AvgDepth, spec.Seed)
	opts.MergeProb = spec.MergeProb
	g, err := vgraph.Generate(opts)
	if err != nil {
		return nil, err
	}

	gen := newDeltaGen(spec, g)
	deltas, err := gen.run()
	if err != nil {
		return nil, err
	}

	c := corpus.New(g)
	for v := 0; v < g.NumVersions(); v++ {
		if err := c.AddVersionDelta(types.VersionID(v), deltas[v]); err != nil {
			return nil, fmt.Errorf("workload: dataset %q version %d: %w", spec.Name, v, err)
		}
	}
	return c, nil
}

// deltaGen carries the mutable generation state during the tree walk.
type deltaGen struct {
	spec Spec
	g    *vgraph.Graph
	rng  *rand.Rand
	zipf *rand.Zipf
	docs *docgen.Generator

	state   map[types.Key]types.Record // visible record per live key
	live    []types.Key                // live keys, deterministic order
	keyPos  map[types.Key]int
	nextKey int

	deltas []*types.Delta
}

func newDeltaGen(spec Spec, g *vgraph.Graph) *deltaGen {
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	return &deltaGen{
		spec:   spec,
		g:      g,
		rng:    rng,
		zipf:   rand.NewZipf(rng, 1.2, 1, uint64(1<<31)),
		docs:   docgen.New(spec.Seed + 2),
		state:  make(map[types.Key]types.Record),
		keyPos: make(map[types.Key]int),
		deltas: make([]*types.Delta, g.NumVersions()),
	}
}

// undoEntry records one inverse operation for backtracking.
type undoEntry struct {
	key      types.Key
	prior    types.Record // record visible before this version touched key
	hadPrior bool
	// liveOp: 0 none, 1 = key was inserted (remove on undo),
	// 2 = key was removed at position idx (restore on undo).
	liveOp int
	idx    int
}

func (d *deltaGen) run() ([]*types.Delta, error) {
	var walk func(v types.VersionID) error
	walk = func(v types.VersionID) error {
		delta, undo := d.makeDelta(v)
		d.deltas[v] = delta
		for _, ch := range d.g.Children(v) {
			if err := walk(ch); err != nil {
				return err
			}
		}
		d.applyUndo(undo)
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return d.deltas, nil
}

// makeDelta creates and applies the delta of version v against the current
// state (its tree parent's contents), returning the undo log.
func (d *deltaGen) makeDelta(v types.VersionID) (*types.Delta, []undoEntry) {
	delta := &types.Delta{}
	var undo []undoEntry

	insert := func() {
		key := KeyFor(d.nextKey)
		d.nextKey++
		rec := types.Record{
			CK:    types.CompositeKey{Key: key, Version: v},
			Value: d.docs.Document(key, d.spec.RecordSize),
		}
		delta.Adds = append(delta.Adds, rec)
		undo = append(undo, undoEntry{key: key, liveOp: 1})
		d.state[key] = rec
		d.keyPos[key] = len(d.live)
		d.live = append(d.live, key)
	}

	if v == 0 {
		for i := 0; i < d.spec.RecordsPerVersion; i++ {
			insert()
		}
		return delta, undo
	}

	u := int(d.spec.UpdatePct * float64(len(d.live)))
	if u < 1 {
		u = 1
	}
	nDel := int(d.spec.DeleteFrac * float64(u))
	nIns := int(d.spec.InsertFrac * float64(u))
	nMod := u - nDel - nIns
	if nMod < 0 {
		nMod = 0
	}

	// Draw distinct victim keys for modifications and deletions.
	victims := d.pickDistinct(nMod + nDel)
	for i, key := range victims {
		old := d.state[key]
		if i < nMod {
			// Modification: a new record of the same key originates at v.
			rec := types.Record{
				CK:    types.CompositeKey{Key: key, Version: v},
				Value: d.docs.Mutate(old.Value, d.pd()),
			}
			delta.Adds = append(delta.Adds, rec)
			delta.Dels = append(delta.Dels, old.CK)
			undo = append(undo, undoEntry{key: key, prior: old, hadPrior: true})
			d.state[key] = rec
			continue
		}
		// Deletion.
		delta.Dels = append(delta.Dels, old.CK)
		idx := d.keyPos[key]
		undo = append(undo, undoEntry{key: key, prior: old, hadPrior: true, liveOp: 2, idx: idx})
		last := len(d.live) - 1
		moved := d.live[last]
		d.live[idx] = moved
		d.keyPos[moved] = idx
		d.live = d.live[:last]
		delete(d.keyPos, key)
		delete(d.state, key)
	}
	for i := 0; i < nIns; i++ {
		insert()
	}
	return delta, undo
}

func (d *deltaGen) pd() float64 {
	if d.spec.Pd <= 0 || d.spec.Pd > 1 {
		return 1
	}
	return d.spec.Pd
}

// pickDistinct draws n distinct live keys under the spec's distribution.
func (d *deltaGen) pickDistinct(n int) []types.Key {
	if n >= len(d.live) {
		out := make([]types.Key, len(d.live))
		copy(out, d.live)
		return out
	}
	picked := make(map[int]struct{}, n)
	out := make([]types.Key, 0, n)
	attempts := 0
	maxAttempts := 20*n + 100
	for len(out) < n {
		var idx int
		if d.spec.Update == SkewedUpdate {
			idx = int(d.zipf.Uint64() % uint64(len(d.live)))
		} else {
			idx = d.rng.Intn(len(d.live))
		}
		attempts++
		if _, dup := picked[idx]; dup {
			if attempts > maxAttempts {
				// Zipf with few live keys can stall on hot indexes; fall
				// back to a linear sweep for the remainder.
				for i := 0; i < len(d.live) && len(out) < n; i++ {
					if _, dup := picked[i]; !dup {
						picked[i] = struct{}{}
						out = append(out, d.live[i])
					}
				}
				break
			}
			continue
		}
		picked[idx] = struct{}{}
		out = append(out, d.live[idx])
	}
	return out
}

// applyUndo reverts one version's effects in reverse order.
func (d *deltaGen) applyUndo(undo []undoEntry) {
	for i := len(undo) - 1; i >= 0; i-- {
		e := undo[i]
		switch e.liveOp {
		case 1: // inserted here: must currently be the last live key
			last := len(d.live) - 1
			d.live = d.live[:last]
			delete(d.keyPos, e.key)
			delete(d.state, e.key)
		case 2: // removed here at e.idx: restore the swap-remove
			last := len(d.live)
			d.live = append(d.live, e.key)
			if e.idx < last {
				moved := d.live[e.idx] // the element swapped into idx
				d.live[last] = moved
				d.keyPos[moved] = last
				d.live[e.idx] = e.key
			}
			d.keyPos[e.key] = e.idx
			d.state[e.key] = e.prior
		default: // modification: restore prior record
			if e.hadPrior {
				d.state[e.key] = e.prior
			}
		}
	}
}
