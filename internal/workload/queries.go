package workload

import (
	"math/rand"

	"rstore/internal/corpus"
	"rstore/internal/types"
)

// QueryKind enumerates the paper's retrieval queries (§2.1, §5.4).
type QueryKind int

const (
	// FullVersion is Q1: retrieve every record of one version.
	FullVersion QueryKind = iota
	// PartialVersion is Q2: retrieve records of one version within a
	// primary-key range.
	PartialVersion
	// RecordEvolution is Q3: retrieve every record with a given primary
	// key across all versions.
	RecordEvolution
	// PointRecord retrieves one record: a key within a version.
	PointRecord
)

// Query is one workload element.
type Query struct {
	Kind    QueryKind
	Version types.VersionID
	Key     types.Key
	// LoKey/HiKey bound a PartialVersion range, inclusive/exclusive.
	LoKey, HiKey types.Key
}

// Workload generates a random query mix over a generated corpus,
// reproducing the "randomly generated workload" of §5.4.
type Workload struct {
	rng *rand.Rand
	c   *corpus.Corpus
}

// NewWorkload returns a deterministic workload generator.
func NewWorkload(c *corpus.Corpus, seed int64) *Workload {
	return &Workload{rng: rand.New(rand.NewSource(seed)), c: c}
}

// FullVersionQueries draws n uniformly random version-retrieval queries.
func (w *Workload) FullVersionQueries(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = Query{Kind: FullVersion, Version: w.randomVersion()}
	}
	return out
}

// PartialVersionQueries draws n range-retrieval queries; each covers
// approximately frac of the key space of a random version.
func (w *Workload) PartialVersionQueries(n int, frac float64) []Query {
	keys := w.c.Keys()
	out := make([]Query, n)
	for i := range out {
		width := int(frac * float64(len(keys)))
		if width < 1 {
			width = 1
		}
		start := w.rng.Intn(len(keys))
		end := start + width
		hi := types.Key("\xff")
		if end < len(keys) {
			hi = KeyFor(keyIndexOf(keys[start]) + width)
		}
		out[i] = Query{
			Kind:    PartialVersion,
			Version: w.randomVersion(),
			LoKey:   keys[start],
			HiKey:   hi,
		}
	}
	return out
}

// RecordEvolutionQueries draws n evolution queries over random keys.
func (w *Workload) RecordEvolutionQueries(n int) []Query {
	keys := w.c.Keys()
	out := make([]Query, n)
	for i := range out {
		out[i] = Query{Kind: RecordEvolution, Key: keys[w.rng.Intn(len(keys))]}
	}
	return out
}

// PointQueries draws n single-record lookups with keys guaranteed live in
// the queried version (the interesting case; missing keys short-circuit in
// the index).
func (w *Workload) PointQueries(n int) []Query {
	out := make([]Query, 0, n)
	for len(out) < n {
		v := w.randomVersion()
		members, err := w.c.Members(v)
		if err != nil || len(members) == 0 {
			continue
		}
		rec := w.c.Record(members[w.rng.Intn(len(members))])
		out = append(out, Query{Kind: PointRecord, Version: v, Key: rec.CK.Key})
	}
	return out
}

func (w *Workload) randomVersion() types.VersionID {
	return types.VersionID(w.rng.Intn(w.c.NumVersions()))
}

// keyIndexOf parses the auto-increment ordinal back out of a generated key.
func keyIndexOf(k types.Key) int {
	n := 0
	for _, c := range string(k)[1:] {
		n = n*10 + int(c-'0')
	}
	return n
}
