package kvstore

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestBatchPutReadBack(t *testing.T) {
	s := open(t, 4, 2)
	var entries []Entry
	for i := 0; i < 120; i++ {
		entries = append(entries, Entry{
			Key:   fmt.Sprintf("k%03d", i),
			Value: []byte(fmt.Sprintf("value-%03d", i)),
		})
	}
	if err := s.BatchPut(context.Background(), "t", entries); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		got, err := s.Get(context.Background(), "t", fmt.Sprintf("k%03d", i))
		if err != nil || string(got) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("k%03d = %q, %v", i, got, err)
		}
	}
	st := s.Stats(context.Background())
	if st.Requests < 120+120 { // 120 batched puts + 120 gets
		t.Fatalf("Requests = %d", st.Requests)
	}
	if st.BytesPut == 0 || st.SimElapsed <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Empty batch is a no-op.
	if err := s.BatchPut(context.Background(), "t", nil); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPutAccountingMatchesPut: a single-entry batch must cost exactly
// what the equivalent Put costs, so converting a write path to BatchPut
// never skews the simulated experiments.
func TestBatchPutAccountingMatchesPut(t *testing.T) {
	a := open(t, 4, 2)
	b := open(t, 4, 2)
	val := make([]byte, 1000)
	if err := a.Put(context.Background(), "t", "k", val); err != nil {
		t.Fatal(err)
	}
	if err := b.BatchPut(context.Background(), "t", []Entry{{Key: "k", Value: val}}); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(context.Background()), b.Stats(context.Background())
	if sa.Requests != sb.Requests || sa.BytesPut != sb.BytesPut || sa.SimElapsed != sb.SimElapsed {
		t.Fatalf("Put %+v vs BatchPut %+v", sa, sb)
	}
}

// TestBatchPutCheaperThanSequentialPuts: the batch commits through parallel
// node lanes, so its simulated elapsed time must undercut the same writes
// issued one by one.
func TestBatchPutCheaperThanSequentialPuts(t *testing.T) {
	seq := open(t, 4, 1)
	bat := open(t, 4, 1)
	var entries []Entry
	for i := 0; i < 64; i++ {
		e := Entry{Key: fmt.Sprintf("k%03d", i), Value: make([]byte, 256)}
		entries = append(entries, e)
		if err := seq.Put(context.Background(), "t", e.Key, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.BatchPut(context.Background(), "t", entries); err != nil {
		t.Fatal(err)
	}
	if s, b := seq.Stats(context.Background()).SimElapsed, bat.Stats(context.Background()).SimElapsed; b >= s {
		t.Fatalf("batch elapsed %v not cheaper than sequential %v", b, s)
	}
}

func TestBatchPutSurvivesReplicaFailure(t *testing.T) {
	s := open(t, 4, 2)
	if err := s.SetNodeUp(1, false); err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry{Key: fmt.Sprintf("k%03d", i), Value: []byte{byte(i)}})
	}
	// Every key still has one live replica (rf=2, one node down).
	if err := s.BatchPut(context.Background(), "t", entries); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, err := s.Get(context.Background(), "t", fmt.Sprintf("k%03d", i))
		if err != nil || got[0] != byte(i) {
			t.Fatalf("k%03d = %v, %v", i, got, err)
		}
	}
}

func TestBatchPutAllReplicasDownIsAnError(t *testing.T) {
	s := open(t, 2, 1)
	owner := s.ring.primary("a")
	if err := s.SetNodeUp(owner, false); err != nil {
		t.Fatal(err)
	}
	err := s.BatchPut(context.Background(), "t", []Entry{{Key: "a", Value: []byte("1")}})
	if err == nil || !strings.Contains(err.Error(), "all replicas down") {
		t.Fatalf("batch to fully-dead replica set: %v", err)
	}
}

func TestDeleteAllReplicasDownIsAnError(t *testing.T) {
	s := open(t, 2, 1)
	if err := s.Put(context.Background(), "t", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	owner := s.ring.primary("a")
	if err := s.SetNodeUp(owner, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(context.Background(), "t", "a"); err == nil {
		t.Fatal("delete with every replica down succeeded (tombstone took hold nowhere)")
	}
	// Back up: delete works and is idempotent again.
	if err := s.SetNodeUp(owner, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(context.Background(), "t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(context.Background(), "t", "a"); err != nil {
		t.Fatal(err)
	}
}

// TestClusterOnDisklog runs a cluster on the disk backend: contents must
// survive Close + reopen of the same data directory, including replicated
// keys and batch writes.
func TestClusterOnDisklog(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Nodes: 3, ReplicationFactor: 2, Engine: EngineDisklog, Dir: dir, Cost: DefaultCostModel()}
	s, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for i := 0; i < 200; i++ {
		entries = append(entries, Entry{Key: fmt.Sprintf("k%03d", i), Value: []byte(fmt.Sprintf("v%03d", i))})
	}
	if err := s.BatchPut(context.Background(), "t", entries); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(context.Background(), "t", "k007"); err != nil {
		t.Fatal(err)
	}
	stored := s.Stats(context.Background()).BytesStored
	if stored <= 0 {
		t.Fatalf("BytesStored = %d", stored)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%03d", i)
		got, err := r.Get(context.Background(), "t", k)
		if i == 7 {
			if err == nil {
				t.Fatalf("deleted key %s resurrected as %q", k, got)
			}
			continue
		}
		if err != nil || string(got) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("%s = %q, %v", k, got, err)
		}
	}
	if got := r.Stats(context.Background()).BytesStored; got != stored {
		t.Fatalf("BytesStored after reopen = %d, want %d", got, stored)
	}
	// The ring hashes identically across opens, so every node finds its own
	// data; scans still visit each key exactly once.
	seen := 0
	if err := r.Scan(context.Background(), "t", func(string, []byte) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 199 {
		t.Fatalf("scan visited %d keys, want 199", seen)
	}
}

func TestOpenUnknownEngineFails(t *testing.T) {
	if _, err := Open(context.Background(), Config{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := Open(context.Background(), Config{Engine: EngineDisklog}); err == nil {
		t.Fatal("disklog without Dir accepted")
	}
}

// TestDisklogGeometryPinned: a disklog data directory records the node
// count it was created with; reopening with a different count would rehash
// keys onto the wrong nodes, so it must refuse.
func TestDisklogGeometryPinned(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(context.Background(), Config{Nodes: 3, Engine: EngineDisklog, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), "t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(context.Background(), Config{Nodes: 2, Engine: EngineDisklog, Dir: dir}); err == nil {
		t.Fatal("reopen with different node count accepted")
	}
	// Same geometry reopens fine; rf changes are allowed.
	r, err := Open(context.Background(), Config{Nodes: 3, ReplicationFactor: 2, Engine: EngineDisklog, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, err := r.Get(context.Background(), "t", "k"); err != nil || string(got) != "v" {
		t.Fatalf("k = %q, %v", got, err)
	}
}
