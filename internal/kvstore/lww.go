package kvstore

import (
	"fmt"

	"rstore/internal/types"
)

// Last-write-wins envelopes.
//
// With replication, a node that was down (or partitioned) while its peers
// accepted writes comes back *stale but present*: it happily serves an old
// value for an overwritten key, or a resurrected value for a deleted one.
// A boolean up/down flag cannot catch this — the node is genuinely up. So
// every value the cluster stores is wrapped in a small envelope carrying a
// write timestamp and a tombstone flag, and reads at replication factor
// > 1 consult every live replica and take the newest version (Cassandra's
// conflict rule). Outvoting alone leaves the losing replica wrong on disk;
// the repair subsystem (repair.go) writes the winner back to losers (read
// repair) and queues writes missed by down nodes (hinted handoff).
//
// Envelope layout: flag (1 byte: value|tombstone) | timestamp (8 bytes LE,
// nanoseconds) | payload. Timestamps come from a per-cluster-client hybrid
// clock (wall time, forced monotonic), so writes from a reopened client
// order after the previous client's as long as wall clocks move forward.
// Deletes are tombstone writes: a replica that missed the delete is
// outvoted by the tombstone's newer timestamp instead of resurrecting the
// value. Tombstones are garbage-collected once every replica of the key
// has acknowledged one (or, optionally, after RepairOptions.TombstoneTTL);
// see repair.go.

const (
	envValue     = 0
	envTombstone = 1

	// EnvelopeOverhead is the per-key byte cost of the envelope; it shows
	// up in BytesStored (which reports resident backend bytes) but not in
	// BytesPut/BytesRead (which report client payload traffic).
	EnvelopeOverhead = 9
)

// nextTS returns a timestamp strictly greater than any this Store handed
// out before, tracking wall time when it moves forward.
func (s *Store) nextTS() uint64 {
	for {
		last := s.lastTS.Load()
		ts := uint64(walltime().UnixNano())
		if ts <= last {
			ts = last + 1
		}
		if s.lastTS.CompareAndSwap(last, ts) {
			return ts
		}
	}
}

// envelope wraps payload for storage.
func envelope(flag byte, ts uint64, payload []byte) []byte {
	out := make([]byte, EnvelopeOverhead+len(payload))
	out[0] = flag
	for i := 0; i < 8; i++ {
		out[1+i] = byte(ts >> (8 * i))
	}
	copy(out[EnvelopeOverhead:], payload)
	return out
}

// lwwNewer reports whether version (tsA, tombA) served by node nodeA beats
// (tsB, tombB) served by nodeB. Newest timestamp wins; a timestamp tie —
// possible when two cluster clients write through colliding wall clocks —
// resolves deterministically instead of by replica iteration order: a
// tombstone beats a value (the destructive read of a clock collision is
// the one that cannot resurrect deleted data on a lagging replica), and
// equal flags resolve to the lowest node id. Every reader picks the same
// winner, so read repair converges replicas instead of flapping.
func lwwNewer(tsA uint64, tombA bool, nodeA int, tsB uint64, tombB bool, nodeB int) bool {
	if tsA != tsB {
		return tsA > tsB
	}
	if tombA != tombB {
		return tombA
	}
	return nodeA < nodeB
}

// unenvelope splits a stored value. The payload ALIASES b: callers that
// retain it past the next operation on the backend that produced b (or
// return it across the Store's public surface) must copy it first. Today's
// call sites are audited against that rule — Get-path buffers are owned by
// the caller (engine.Backend.Get returns copies), and every Scan-path
// consumer copies before retaining, because Scan values may alias backend
// storage (the memory engine's do).
func unenvelope(b []byte) (payload []byte, ts uint64, tombstone bool, err error) {
	if len(b) < EnvelopeOverhead || b[0] > envTombstone {
		return nil, 0, false, fmt.Errorf("%w: %d-byte value is not an LWW envelope", types.ErrCorrupt, len(b))
	}
	for i := 0; i < 8; i++ {
		ts |= uint64(b[1+i]) << (8 * i)
	}
	return b[EnvelopeOverhead:], ts, b[0] == envTombstone, nil
}
