package kvstore

import (
	"fmt"
	"time"

	"rstore/internal/types"
)

// Last-write-wins envelopes.
//
// With replication, a node that was down (or partitioned) while its peers
// accepted writes comes back *stale but present*: it happily serves an old
// value for an overwritten key, or a resurrected value for a deleted one.
// A boolean up/down flag cannot catch this — the node is genuinely up. So
// every value the cluster stores is wrapped in a small envelope carrying a
// write timestamp and a tombstone flag, and reads at replication factor
// > 1 consult every live replica and take the newest version (Cassandra's
// conflict rule, without its background repair — a stale replica stays
// stale on disk until overwritten; see ROADMAP "replication repair").
//
// Envelope layout: flag (1 byte: value|tombstone) | timestamp (8 bytes LE,
// nanoseconds) | payload. Timestamps come from a per-cluster-client hybrid
// clock (wall time, forced monotonic), so writes from a reopened client
// order after the previous client's as long as wall clocks move forward.
// Deletes are tombstone writes: a replica that missed the delete is
// outvoted by the tombstone's newer timestamp instead of resurrecting the
// value. Tombstones are currently kept forever (deletes are rare in
// RStore: repartition cleanup and delta drains).

const (
	envValue     = 0
	envTombstone = 1

	// EnvelopeOverhead is the per-key byte cost of the envelope; it shows
	// up in BytesStored (which reports resident backend bytes) but not in
	// BytesPut/BytesRead (which report client payload traffic).
	EnvelopeOverhead = 9
)

// nextTS returns a timestamp strictly greater than any this Store handed
// out before, tracking wall time when it moves forward.
func (s *Store) nextTS() uint64 {
	for {
		last := s.lastTS.Load()
		ts := uint64(time.Now().UnixNano())
		if ts <= last {
			ts = last + 1
		}
		if s.lastTS.CompareAndSwap(last, ts) {
			return ts
		}
	}
}

// envelope wraps payload for storage.
func envelope(flag byte, ts uint64, payload []byte) []byte {
	out := make([]byte, EnvelopeOverhead+len(payload))
	out[0] = flag
	for i := 0; i < 8; i++ {
		out[1+i] = byte(ts >> (8 * i))
	}
	copy(out[EnvelopeOverhead:], payload)
	return out
}

// unenvelope splits a stored value. The payload aliases b.
func unenvelope(b []byte) (payload []byte, ts uint64, tombstone bool, err error) {
	if len(b) < EnvelopeOverhead || b[0] > envTombstone {
		return nil, 0, false, fmt.Errorf("%w: %d-byte value is not an LWW envelope", types.ErrCorrupt, len(b))
	}
	for i := 0; i < 8; i++ {
		ts |= uint64(b[1+i]) << (8 * i)
	}
	return b[EnvelopeOverhead:], ts, b[0] == envTombstone, nil
}
