package kvstore

import (
	"context"
	"fmt"
	"testing"
)

// TestReadBalanceSpreadsLoad verifies that with replication and read
// balancing on, a multi-get batch spreads over more nodes (shorter serial
// queues → lower simulated elapsed) than primary-only reads.
func TestReadBalanceSpreadsLoad(t *testing.T) {
	mk := func(balance bool) *Store {
		s, err := Open(context.Background(), Config{
			Nodes: 4, ReplicationFactor: 3, ReadBalance: balance,
			Cost: DefaultCostModel(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := s.Put(context.Background(), "t", fmt.Sprintf("k%04d", i), make([]byte, 256)); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
	}

	plain := mk(false)
	balanced := mk(true)
	rp, err := plain.MultiGet(context.Background(), "t", keys)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := balanced.MultiGet(context.Background(), "t", keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Missing) != 0 || len(rp.Missing) != 0 {
		t.Fatalf("missing keys: %v %v", rp.Missing, rb.Missing)
	}
	// Same data either way.
	for i := range keys {
		if len(rb.Values[i]) != len(rp.Values[i]) {
			t.Fatalf("value %d differs", i)
		}
	}
	// Balanced reads must not be slower; with rf=3 over 4 nodes they
	// should be measurably faster (near-even queues).
	if rb.Elapsed > rp.Elapsed {
		t.Fatalf("balanced %v slower than primary-only %v", rb.Elapsed, rp.Elapsed)
	}
}

// TestReadBalanceAvoidsDeadNodes: balancing only considers live replicas.
func TestReadBalanceAvoidsDeadNodes(t *testing.T) {
	s, err := Open(context.Background(), Config{Nodes: 3, ReplicationFactor: 2, ReadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("k%03d", i)
		keys = append(keys, k)
		if err := s.Put(context.Background(), "t", k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetNodeUp(1, false); err != nil {
		t.Fatal(err)
	}
	res, err := s.MultiGet(context.Background(), "t", keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 0 {
		t.Fatalf("missing after node death: %v", res.Missing)
	}
	for i, v := range res.Values {
		if string(v) != keys[i] {
			t.Fatalf("value %d = %q", i, v)
		}
	}
}
