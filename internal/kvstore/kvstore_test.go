package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rstore/internal/types"
)

func open(t testing.TB, nodes, rf int) *Store {
	t.Helper()
	s, err := Open(context.Background(), Config{Nodes: nodes, ReplicationFactor: rf, Cost: DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := open(t, 4, 2)
	if err := s.Put(context.Background(), "t", "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), "t", "k1")
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite.
	if err := s.Put(context.Background(), "t", "k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(context.Background(), "t", "k1")
	if string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
	// Missing key.
	if _, err := s.Get(context.Background(), "t", "nope"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	// Delete (idempotent).
	if err := s.Delete(context.Background(), "t", "k1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(context.Background(), "t", "k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), "t", "k1"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestValueIsolation(t *testing.T) {
	s := open(t, 1, 1)
	v := []byte("mutable")
	s.Put(context.Background(), "t", "k", v)
	v[0] = 'X' // caller mutates after put
	got, _ := s.Get(context.Background(), "t", "k")
	if string(got) != "mutable" {
		t.Fatal("put did not copy the value")
	}
	got[0] = 'Y' // caller mutates the response
	again, _ := s.Get(context.Background(), "t", "k")
	if string(again) != "mutable" {
		t.Fatal("get returned aliased storage")
	}
}

func TestMultiGet(t *testing.T) {
	s := open(t, 4, 1)
	var keys []string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		keys = append(keys, k)
		if err := s.Put(context.Background(), "t", k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys = append(keys, "missing-1", "missing-2")
	res, err := s.MultiGet(context.Background(), "t", keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 102 {
		t.Fatalf("%d values", len(res.Values))
	}
	for i := 0; i < 100; i++ {
		if string(res.Values[i]) != keys[i] {
			t.Fatalf("value %d = %q", i, res.Values[i])
		}
	}
	if len(res.Missing) != 2 || res.Missing[0] != 100 || res.Missing[1] != 101 {
		t.Fatalf("Missing = %v", res.Missing)
	}
	if res.Requests != 102 || res.BytesRead == 0 || res.Elapsed <= 0 {
		t.Fatalf("stats: %+v", res)
	}
}

func TestReplicationSurvivesNodeFailure(t *testing.T) {
	s := open(t, 4, 2)
	for i := 0; i < 200; i++ {
		if err := s.Put(context.Background(), "t", fmt.Sprintf("k%03d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one node: every key must still be readable from its replica.
	if err := s.SetNodeUp(2, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		got, err := s.Get(context.Background(), "t", fmt.Sprintf("k%03d", i))
		if err != nil || got[0] != byte(i) {
			t.Fatalf("k%03d after failure: %v %v", i, got, err)
		}
	}
	// MultiGet routes around the dead node too.
	res, err := s.MultiGet(context.Background(), "t", []string{"k000", "k001", "k002"})
	if err != nil || len(res.Missing) != 0 {
		t.Fatalf("MultiGet after failure: %v %v", res.Missing, err)
	}
	// Recovery.
	if err := s.SetNodeUp(2, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(context.Background(), "t", "k000"); err != nil {
		t.Fatal(err)
	}
}

func TestUnreplicatedFailureIsAnError(t *testing.T) {
	s := open(t, 2, 1)
	s.Put(context.Background(), "t", "a", []byte("1"))
	// Find which node holds "a" and kill it.
	owner := s.ring.primary("a")
	s.SetNodeUp(owner, false)
	if _, err := s.Get(context.Background(), "t", "a"); err == nil {
		t.Fatal("read from fully-dead replica set succeeded")
	}
}

func TestScanVisitsEachKeyOnce(t *testing.T) {
	s := open(t, 4, 3) // replication would triple naive scans
	want := map[string]string{}
	for i := 0; i < 150; i++ {
		k := fmt.Sprintf("k%03d", i)
		want[k] = k
		s.Put(context.Background(), "t", k, []byte(k))
	}
	got := map[string]int{}
	s.Scan(context.Background(), "t", func(k string, v []byte) bool {
		got[k]++
		if string(v) != want[k] {
			t.Fatalf("scan %s = %q", k, v)
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scanned %d keys, want %d", len(got), len(want))
	}
	for k, n := range got {
		if n != 1 {
			t.Fatalf("key %s visited %d times", k, n)
		}
	}
	// Early stop.
	count := 0
	s.Scan(context.Background(), "t", func(string, []byte) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRingBalance(t *testing.T) {
	s := open(t, 8, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8000; i++ {
		s.Put(context.Background(), "t", fmt.Sprintf("key-%d-%d", i, rng.Int63()), make([]byte, 64))
	}
	per := s.NodeBytes(context.Background())
	var total int64
	for _, b := range per {
		total += b
	}
	mean := total / int64(len(per))
	for n, b := range per {
		if b < mean/3 || b > mean*3 {
			t.Errorf("node %d holds %d bytes (mean %d): badly balanced", n, b, mean)
		}
	}
}

// TestRingBalanceSequentialKeys pins the splitmix64 finalizer in
// hashString: the store's real key families are a fixed prefix plus a
// counter ("c%08x" chunk ids, "d%08x" delta ids), which raw FNV clusters
// onto a single node.
func TestRingBalanceSequentialKeys(t *testing.T) {
	r := newRing(4)
	counts := map[int]int{}
	for i := 0; i < 256; i++ {
		counts[r.primary(fmt.Sprintf("c%08x", i))]++
	}
	for n := 0; n < 4; n++ {
		if counts[n] == 0 {
			t.Fatalf("node %d owns no sequential keys: %v", n, counts)
		}
		if counts[n] > 256/2 {
			t.Fatalf("node %d owns %d/256 sequential keys: badly clustered", n, counts[n])
		}
	}
}

func TestReplicasDistinctAndStable(t *testing.T) {
	r := newRing(5)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key%d", i)
		reps := r.replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("%s: %d replicas", k, len(reps))
		}
		seen := map[int]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("%s: duplicate replica %d", k, n)
			}
			seen[n] = true
		}
		again := r.replicas(k, 3)
		for j := range reps {
			if reps[j] != again[j] {
				t.Fatalf("%s: unstable replicas", k)
			}
		}
	}
	// rf capped at node count.
	if got := r.replicas("x", 99); len(got) != 5 {
		t.Fatalf("rf cap: %d", len(got))
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := open(t, 4, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Put(context.Background(), "t", k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				got, err := s.Get(context.Background(), "t", k)
				if err != nil || string(got) != k {
					t.Errorf("%s: %q %v", k, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Stats(context.Background()).Requests == 0 {
		t.Fatal("no requests accounted")
	}
}

func TestCostModelMath(t *testing.T) {
	c := CostModel{PerRequest: time.Millisecond, Bandwidth: 1 << 20, Parallelism: 4}
	// One request of 1 MiB: 1ms + 1s.
	if got := c.requestCost(1 << 20); got != time.Millisecond+time.Second {
		t.Fatalf("requestCost = %v", got)
	}
	// Batch: 8 unit requests on one node → serial: 8ms; lanes: 8ms/4 = 2ms;
	// node is the bottleneck.
	perNode := map[int][]int{0: {0, 0, 0, 0, 0, 0, 0, 0}}
	if got := c.batchElapsed(perNode); got != 8*time.Millisecond {
		t.Fatalf("single-node batch = %v", got)
	}
	// Spread over 4 nodes, 2 each → slowest node 2ms, lanes 2ms → 2ms.
	perNode = map[int][]int{0: {0, 0}, 1: {0, 0}, 2: {0, 0}, 3: {0, 0}}
	if got := c.batchElapsed(perNode); got != 2*time.Millisecond {
		t.Fatalf("spread batch = %v", got)
	}
	if c.batchElapsed(nil) != 0 {
		t.Fatal("empty batch cost")
	}
	// Zero-value model costs nothing.
	var zero CostModel
	if zero.requestCost(100) != 0 || zero.scanCost(100) != 0 {
		t.Fatal("zero model accrues cost")
	}
}

func TestStatsAndClock(t *testing.T) {
	s := open(t, 2, 1)
	s.Put(context.Background(), "t", "a", make([]byte, 1000))
	s.Get(context.Background(), "t", "a")
	s.ChargeScan(1000)
	st := s.Stats(context.Background())
	if st.Requests < 2 || st.BytesRead < 1000 || st.BytesPut < 1000 || st.SimElapsed <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Resident bytes include the per-key LWW envelope; payload counters
	// (BytesPut/BytesRead) do not.
	if st.BytesStored != 1000+EnvelopeOverhead {
		t.Fatalf("BytesStored = %d, want %d", st.BytesStored, 1000+EnvelopeOverhead)
	}
	s.ResetClock()
	st = s.Stats(context.Background())
	if st.Requests != 0 || st.SimElapsed != 0 {
		t.Fatalf("after reset: %+v", st)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := open(t, 4, 2)
	want := map[string]map[string]string{
		"chunks": {}, "meta": {},
	}
	rng := rand.New(rand.NewSource(3))
	for table := range want {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("%s-key-%03d", table, i)
			v := fmt.Sprintf("val-%d", rng.Int63())
			want[table][k] = v
			if err := src.Put(context.Background(), table, k, []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var buf bytes.Buffer
	if err := src.Dump(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	// Snapshots are deterministic.
	var buf2 bytes.Buffer
	if err := src.Dump(context.Background(), &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot not deterministic")
	}

	// Restore into a DIFFERENT topology.
	dst := open(t, 7, 3)
	if err := dst.Restore(context.Background(), bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for table, kv := range want {
		for k, v := range kv {
			got, err := dst.Get(context.Background(), table, k)
			if err != nil || string(got) != v {
				t.Fatalf("restored %s/%s = %q, %v", table, k, got, err)
			}
		}
	}
	// Corrupt snapshots are rejected.
	if err := open(t, 1, 1).Restore(context.Background(), bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
