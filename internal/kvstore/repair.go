package kvstore

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/codec"
	"rstore/internal/engine"
)

// Replication repair: the subsystem that makes replicas converge instead of
// staying wrong on disk.
//
// LWW envelopes (lww.go) let reads outvote a stale replica, but outvoting
// is camouflage, not a cure — the losing replica keeps serving old bytes
// from its backend forever, and every read of the key pays the conflict
// resolution again. Dynamo-style repair fixes the divergence at the source:
//
//   - Read repair: when a replicated read (lwwGet, and through it Get and
//     MultiGet) or a replicated Scan observes a live replica returning an
//     older version than the LWW winner — or missing the key, or carrying a
//     value a tombstone deleted — the winning envelope is written back to
//     the losing replicas asynchronously, through a small worker pool with
//     per-key deduplication and a bounded queue (an unmergeable backlog is
//     dropped and counted, never allowed to stall reads).
//
//   - Hinted handoff: a write that had to skip a down replica parks a hint
//     (target node, table, key, winning envelope) durably in the !hints
//     table of a replica that did take the write — through the engine seam,
//     so disklog/remote deployments keep hints across client restarts — and
//     a drain loop replays the hints (with per-target exponential backoff)
//     once the target is observed up again. A restarted node therefore
//     converges without waiting to be read.
//
//   - Tombstone GC: deletes write tombstones so lagging replicas cannot
//     resurrect data, but a tombstone whose delete every replica has
//     acknowledged protects nothing. Acknowledgments are tracked across the
//     delete itself, hint replays, and read repairs; once complete, the
//     tombstone is physically removed from all replicas. A configurable
//     TombstoneTTL additionally collects tombstones whose ack tracking was
//     lost (a restarted cluster client), but only when a read observed
//     every replica agreeing on the tombstone — so TTL collection can never
//     re-expose data held by a stale or unreachable replica.
//
// All repair writes carry the winning envelope with its ORIGINAL
// timestamp: replaying one is idempotent, cannot reorder against newer
// writes, and is applied conditionally (the target's current version is
// re-checked first) so a replica that converged through another path is
// never regressed.

// hintsTable is the kvstore-private table hints are parked in. Like
// !cluster it is node-local bookkeeping, not data: excluded from Dump, and
// written/read per node directly (hints are not themselves replicated).
const hintsTable = "!hints"

// RepairOptions tunes the replication-repair subsystem. The zero value
// enables read repair and hinted handoff with default sizing whenever
// ReplicationFactor > 1; at ReplicationFactor 1 there is nothing to
// repair and the subsystem is not started.
type RepairOptions struct {
	// DisableReadRepair turns off winner write-back on reads and scans.
	DisableReadRepair bool
	// DisableHints turns off hint parking and draining for writes that
	// skip a down replica.
	DisableHints bool
	// Workers sizes the repair worker pool (default 2).
	Workers int
	// QueueLen bounds the pending repair queue (default 256); repairs
	// past the bound are dropped and counted in Stats.RepairDropped.
	QueueLen int
	// HintInterval is the base cadence of the hint drain loop and the
	// initial per-target retry backoff (default 1s).
	HintInterval time.Duration
	// HintMaxBackoff caps the per-target exponential backoff between
	// replay attempts against a still-down node (default 30s).
	HintMaxBackoff time.Duration
	// TombstoneTTL, when positive, garbage-collects any tombstone older
	// than the TTL once a read observes every replica of the key agreeing
	// on it. Zero keeps acknowledgment-based GC only. It exists to collect
	// tombstones whose acknowledgment tracking died with a previous
	// cluster client.
	TombstoneTTL time.Duration
	// AntiEntropyInterval, when positive, starts the background
	// anti-entropy loop (antientropy.go): each interval one replica pair's
	// hash trees are compared and any divergence — including divergence no
	// read or hint ever observed — is repaired. Zero (the default) leaves
	// convergence to read repair and hinted handoff. Requires every node's
	// backend to implement engine.HashRanger (all built-in engines do).
	AntiEntropyInterval time.Duration
	// AntiEntropyFanout is the hash-tree bucket count the loop digests
	// tables into (default engine.DefaultHashFanout, capped at
	// engine.MaxHashFanout). More buckets mean finer drill-down on a
	// diverged table at the cost of a larger digest frame.
	AntiEntropyFanout int
}

func (o RepairOptions) withDefaults() RepairOptions {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.HintInterval <= 0 {
		o.HintInterval = time.Second
	}
	if o.HintMaxBackoff <= 0 {
		o.HintMaxBackoff = 30 * time.Second
	}
	return o
}

// repairTask is one unit of asynchronous convergence work on a key: either
// writing the winning envelope to the losing replicas, or (gc) physically
// removing a fully-acknowledged tombstone from its replicas.
type repairTask struct {
	table, key string
	env        []byte // winning envelope (owned copy; nil for gc tasks)
	ts         uint64
	tomb       bool
	gc         bool
	targets    []int
}

// hintRef locates one durable hint record: parked on node park under key
// hkey of the !hints table. The record itself holds the payload; keeping
// only the reference in memory bounds the index to O(pending hints) keys.
type hintRef struct {
	park int
	hkey string
}

// hintQueue is the per-target drain state.
type hintQueue struct {
	pending []hintRef // replay order (hint keys embed a monotonic sequence)
	backoff time.Duration
	next    time.Time // do not re-probe the target before this
}

// tombWait tracks which replicas of a deleted key have not yet
// acknowledged its tombstone.
type tombWait struct {
	ts      uint64
	pending map[int]bool
}

type repairer struct {
	s    *Store
	opts RepairOptions

	// Read-repair pool. Workers start lazily on the first task so stores
	// that never observe divergence spawn no goroutines.
	tasks     chan repairTask
	startWork sync.Once
	mu        sync.Mutex // guards inflight
	inflight  map[string]bool

	// Hinted handoff. The drain loop starts lazily on the first parked or
	// recovered hint.
	hmu        sync.Mutex // guards hints
	hints      map[int]*hintQueue
	startDrain sync.Once
	kick       chan struct{}

	tmu   sync.Mutex // guards tombs
	tombs map[string]*tombWait

	// ctx is the repairer's lifecycle root: background convergence —
	// read-repair write-backs, hint replay, tombstone GC — runs on the
	// repairer's schedule, not any caller's, and is cancelled by close().
	ctx    context.Context
	cancel context.CancelFunc

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Counters, surfaced through Stats.
	repairWrites  atomic.Int64
	repairDropped atomic.Int64
	hintsQueued   atomic.Int64
	hintsReplayed atomic.Int64
	hintsPending  atomic.Int64
	tombstonesGC  atomic.Int64
}

func newRepairer(s *Store, opts RepairOptions) *repairer {
	opts = opts.withDefaults()
	//lint:rstore-vet ctxfirst: the repairer is a lifecycle root — its convergence work outlives any caller's request context and is cancelled by close()
	ctx, cancel := context.WithCancel(context.Background())
	return &repairer{
		s:        s,
		opts:     opts,
		ctx:      ctx,
		cancel:   cancel,
		tasks:    make(chan repairTask, opts.QueueLen),
		inflight: make(map[string]bool),
		hints:    make(map[int]*hintQueue),
		kick:     make(chan struct{}, 1),
		tombs:    make(map[string]*tombWait),
		stop:     make(chan struct{}),
	}
}

// close stops the workers and the drain loop and waits for in-flight
// repair operations to finish (they are bounded: per-op transports either
// fail fast or retry a bounded number of times).
func (r *repairer) close() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.cancel()
	})
	r.wg.Wait()
}

func taskKey(table, key string) string { return table + "\x00" + key }

// dedupKey is the in-flight coalescing identity. GC tasks carry a marker:
// a tombstone repair whose final acknowledgment completes DURING run() —
// the anti-entropy path, where the repair write itself is the last ack —
// schedules the collection while its own key is still marked in-flight,
// and coalescing the GC against the repair that spawned it would drop the
// collection forever (the ack set is already consumed, so nothing would
// ever reschedule it).
func (t repairTask) dedupKey() string {
	k := taskKey(t.table, t.key)
	if t.gc {
		k += "\x00gc"
	}
	return k
}

// enqueue hands a task to the worker pool. Tasks for a key already being
// repaired coalesce (dropped silently — the in-flight repair converges the
// same replicas); tasks past the queue bound are dropped and counted.
func (r *repairer) enqueue(t repairTask) {
	if len(t.targets) == 0 {
		return
	}
	select {
	case <-r.stop:
		return // closing; nothing may start workers anymore
	default:
	}
	r.startWork.Do(func() {
		for i := 0; i < r.opts.Workers; i++ {
			r.wg.Add(1)
			go r.worker()
		}
	})
	k := t.dedupKey()
	r.mu.Lock()
	if r.inflight[k] {
		r.mu.Unlock()
		return
	}
	r.inflight[k] = true
	r.mu.Unlock()
	select {
	case r.tasks <- t:
	default:
		r.mu.Lock()
		delete(r.inflight, k)
		r.mu.Unlock()
		r.repairDropped.Add(1)
	}
}

func (r *repairer) worker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case t := <-r.tasks:
			r.run(t)
			r.mu.Lock()
			delete(r.inflight, t.dedupKey())
			r.mu.Unlock()
		}
	}
}

// run converges one key: write-back for repair tasks, conditional physical
// deletion for gc tasks. Everything is best effort — a replica that cannot
// be repaired now will be caught by the next observation or hint replay.
func (r *repairer) run(t repairTask) {
	ctx := r.ctx
	gcOK := false
	for _, nid := range t.targets {
		select {
		case <-r.stop:
			return
		default:
		}
		n := r.s.nodes[nid]
		if t.gc {
			if r.gcReplica(ctx, n, t) {
				gcOK = true
			}
			continue
		}
		raw, ok, err := n.get(ctx, t.table, t.key)
		if err != nil {
			continue
		}
		if ok {
			// An existing value that does not parse as an envelope was
			// never written by the store — the replica's bytes rotted (or
			// something else wrote there). There is nothing to compare
			// timestamps against, and skipping would leave the corruption
			// in place forever; any well-formed envelope is an improvement,
			// so fall through and overwrite it unconditionally. Anti-entropy
			// relies on this: its reconcile treats unparsable state as
			// absent and nominates the intact replica's version.
			if _, ts, tomb, err := unenvelope(raw); err == nil {
				// Apply only strictly newer state (or the tombstone side of a
				// timestamp tie). The re-check closes the race with the replica
				// having converged through another path — an older envelope
				// must never regress it.
				if !(t.ts > ts || (t.ts == ts && t.tomb && !tomb)) {
					if tomb && ts == t.ts && t.tomb {
						r.tombAck(t.table, t.key, t.ts, nid)
					}
					continue
				}
			}
		} else if t.tomb {
			// The replica has nothing to resurrect; writing a tombstone
			// over nothing adds no safety and would undo tombstone GC.
			// Holding nothing counts as having acknowledged the delete.
			r.tombAck(t.table, t.key, t.ts, nid)
			continue
		}
		if err := n.put(ctx, t.table, t.key, t.env); err != nil {
			continue
		}
		r.repairWrites.Add(1)
		if t.tomb {
			r.tombAck(t.table, t.key, t.ts, nid)
		}
	}
	if t.gc && gcOK {
		r.tombstonesGC.Add(1)
		// A TTL-scheduled collection may still have a (now moot) ack wait
		// registered; drop it so the tracker cannot grow unboundedly.
		k := taskKey(t.table, t.key)
		r.tmu.Lock()
		if w := r.tombs[k]; w != nil && w.ts == t.ts {
			delete(r.tombs, k)
		}
		r.tmu.Unlock()
	}
}

// gcReplica physically deletes a fully-acknowledged tombstone from one
// replica, re-checking that the replica still holds exactly that tombstone
// (a newer write must survive).
//
// The re-check-then-delete pair is not atomic: a writer re-creating the
// SAME key concurrently with its delete can land a put inside the window
// and have it removed from this replica (other replicas still hold it, so
// LWW reads survive and read repair restores the loser; losing the write
// everywhere needs the race won on every replica independently). A
// compare-and-delete op on engine.Backend would close the window; until
// then this matches the engine's documented single-logical-writer
// deployment (§2.4), where delete-then-recreate of one key is never
// concurrent.
func (r *repairer) gcReplica(ctx context.Context, n *node, t repairTask) bool {
	raw, ok, err := n.get(ctx, t.table, t.key)
	if err != nil {
		return false
	}
	if !ok {
		return true // already gone
	}
	_, ts, tomb, err := unenvelope(raw)
	if err != nil || !tomb || ts != t.ts {
		return false
	}
	return n.del(ctx, t.table, t.key) == nil
}

// ---- Hinted handoff ----

// hintKey renders the durable key of one hint: the target node and a
// monotonic sequence (the store's write clock), so a lexicographic sweep
// replays hints per target in write order and keys are unique across the
// hints a client parks.
func hintKey(target int, seq uint64) string {
	return fmt.Sprintf("%06d.%016x", target, seq)
}

// parseHintKey recovers the target node from a parked hint's key.
func parseHintKey(k string) (target int, ok bool) {
	i := strings.IndexByte(k, '.')
	if i < 0 {
		return 0, false
	}
	t, err := strconv.Atoi(k[:i])
	if err != nil || t < 0 {
		return 0, false
	}
	return t, true
}

// encodeHint packs the replay payload: destination table, key, and the
// winning envelope.
func encodeHint(table, key string, env []byte) []byte {
	var buf []byte
	buf = codec.PutString(buf, table)
	buf = codec.PutString(buf, key)
	buf = codec.PutBytes(buf, env)
	return buf
}

func decodeHint(raw []byte) (table, key string, env []byte, err error) {
	table, rest, err := codec.String(raw)
	if err != nil {
		return "", "", nil, err
	}
	key, rest, err = codec.String(rest)
	if err != nil {
		return "", "", nil, err
	}
	env, _, err = codec.Bytes(rest)
	if err != nil {
		return "", "", nil, err
	}
	return table, key, env, nil
}

// hintSpec is one write missed by a down replica, to be parked durably.
type hintSpec struct {
	target     int
	table, key string
	env        []byte
}

// addHints durably parks hints on node park (a replica that accepted the
// write) in one batch — the batch path is the one durable backends fsync —
// and registers them with the drain loop. Parking is best effort: the
// write itself already succeeded on the live replicas, so a failed park
// only degrades the down node's convergence to read repair.
func (r *repairer) addHints(ctx context.Context, park int, specs []hintSpec) {
	if r.opts.DisableHints || len(specs) == 0 {
		return
	}
	entries := make([]engine.Entry, len(specs))
	refs := make([]hintRef, len(specs))
	targets := make([]int, len(specs))
	for i, sp := range specs {
		hkey := hintKey(sp.target, r.s.nextTS())
		entries[i] = engine.Entry{Key: hkey, Value: encodeHint(sp.table, sp.key, sp.env)}
		refs[i] = hintRef{park: park, hkey: hkey}
		targets[i] = sp.target
	}
	if err := r.s.nodes[park].batchPut(ctx, hintsTable, entries); err != nil {
		return
	}
	r.hmu.Lock()
	for i, ref := range refs {
		q := r.hints[targets[i]]
		if q == nil {
			q = &hintQueue{}
			r.hints[targets[i]] = q
		}
		q.pending = append(q.pending, ref)
	}
	r.hmu.Unlock()
	r.hintsQueued.Add(int64(len(specs)))
	r.hintsPending.Add(int64(len(specs)))
	r.ensureDrain()
}

// resetState drops all in-memory repair bookkeeping after a cluster wipe
// (Store.Reset): parked-hint indexes, read-repair dedup state, and
// tombstone waits all describe data that no longer exists, and replaying
// a stale hint would resurrect it.
func (r *repairer) resetState() {
	r.hmu.Lock()
	for _, q := range r.hints {
		r.hintsPending.Add(-int64(len(q.pending)))
	}
	r.hints = make(map[int]*hintQueue)
	r.hmu.Unlock()
	r.mu.Lock()
	r.inflight = make(map[string]bool)
	r.mu.Unlock()
	r.tmu.Lock()
	r.tombs = make(map[string]*tombWait)
	r.tmu.Unlock()
}

// recoverHints rebuilds the in-memory hint index from the !hints tables of
// every reachable node, so a restarted cluster client resumes draining
// hints a previous client parked. The nodes are scanned concurrently: this
// runs inside Open, and on a remote cluster a down node costs a full
// dial-retry cycle — serial scans would stack that latency in front of
// every Open. Hints on nodes unreachable right now are picked up by
// whichever client opens after they return.
func (r *repairer) recoverHints(ctx context.Context) {
	if r.opts.DisableHints {
		return
	}
	perNode := make([][]hintRef, len(r.s.nodes))
	var wg sync.WaitGroup
	for i, nd := range r.s.nodes {
		wg.Add(1)
		go func(i int, nd *node) {
			defer wg.Done()
			_ = nd.scan(ctx, hintsTable, func(k string, _ []byte) bool {
				if target, ok := parseHintKey(k); ok && target < len(r.s.nodes) {
					perNode[i] = append(perNode[i], hintRef{park: nd.id, hkey: k})
				}
				return true
			})
		}(i, nd)
	}
	wg.Wait()

	n := 0
	r.hmu.Lock()
	for _, refs := range perNode {
		for _, ref := range refs {
			target, _ := parseHintKey(ref.hkey)
			q := r.hints[target]
			if q == nil {
				q = &hintQueue{}
				r.hints[target] = q
			}
			q.pending = append(q.pending, ref)
			n++
		}
	}
	for _, q := range r.hints {
		// Backend scans are unordered; hint keys embed the write sequence.
		sort.Slice(q.pending, func(i, j int) bool { return q.pending[i].hkey < q.pending[j].hkey })
	}
	r.hmu.Unlock()
	if n > 0 {
		r.hintsQueued.Add(int64(n))
		r.hintsPending.Add(int64(n))
		r.ensureDrain()
	}
}

func (r *repairer) ensureDrain() {
	select {
	case <-r.stop:
		return // closing; nothing may start the drain loop anymore
	default:
	}
	r.startDrain.Do(func() {
		r.wg.Add(1)
		go r.drainLoop()
	})
}

// kickDrain wakes the drain loop immediately and clears per-target
// backoff — called when a node is known to have just come back (failure
// injection flipping it up), so tests and operators see prompt convergence.
func (r *repairer) kickDrain() {
	r.hmu.Lock()
	for _, q := range r.hints {
		q.next = time.Time{}
		q.backoff = 0
	}
	r.hmu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

func (r *repairer) drainLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.opts.HintInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		case <-r.kick:
		}
		now := walltime()
		var due []int
		r.hmu.Lock()
		for target, q := range r.hints {
			if len(q.pending) > 0 && !now.Before(q.next) {
				due = append(due, target)
			}
		}
		r.hmu.Unlock()
		sort.Ints(due)
		for _, target := range due {
			r.drainTarget(target)
		}
	}
}

// drainTarget replays parked hints to one target in order until the queue
// empties or the target (or a parking node) proves unreachable, in which
// case the target backs off exponentially.
func (r *repairer) drainTarget(target int) {
	ctx := r.ctx
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		r.hmu.Lock()
		q := r.hints[target]
		if q == nil || len(q.pending) == 0 {
			if q != nil {
				q.backoff = 0
			}
			r.hmu.Unlock()
			return
		}
		ref := q.pending[0]
		r.hmu.Unlock()

		if !r.replayHint(ctx, target, ref) {
			r.hmu.Lock()
			q.backoff = max(2*q.backoff, r.opts.HintInterval)
			q.backoff = min(q.backoff, r.opts.HintMaxBackoff)
			q.next = walltime().Add(q.backoff)
			r.hmu.Unlock()
			return
		}
		r.hmu.Lock()
		q.pending = q.pending[1:]
		q.backoff = 0
		r.hmu.Unlock()
		r.hintsPending.Add(-1)
		r.hintsReplayed.Add(1)
	}
}

// replayHint delivers one parked hint: read it back from its parking node,
// conditionally apply it to the target (only if strictly newer than what
// the target holds now), then remove the parked record. False means "try
// this target again later" (park or target unreachable); true consumes the
// hint — including hints that turn out to be stale, corrupt, or already
// replayed by another client.
func (r *repairer) replayHint(ctx context.Context, target int, ref hintRef) bool {
	discard := func() bool {
		_ = r.s.nodes[ref.park].del(ctx, hintsTable, ref.hkey)
		return true
	}
	raw, ok, err := r.s.nodes[ref.park].get(ctx, hintsTable, ref.hkey)
	if err != nil {
		return false
	}
	if !ok {
		return true // another client replayed and removed it
	}
	table, key, env, err := decodeHint(raw)
	if err != nil {
		return discard()
	}
	_, ts, tomb, err := unenvelope(env)
	if err != nil {
		return discard()
	}
	cur, ok, err := r.s.nodes[target].get(ctx, table, key)
	if err != nil {
		return false
	}
	apply := true
	if ok {
		if _, cts, ctomb, err := unenvelope(cur); err == nil {
			apply = ts > cts || (ts == cts && tomb && !ctomb)
		}
	} else if tomb {
		apply = false // nothing to outvote; see run()
	}
	if apply {
		if err := r.s.nodes[target].put(ctx, table, key, env); err != nil {
			return false
		}
		r.repairWrites.Add(1)
	}
	if tomb {
		r.tombAck(table, key, ts, target)
	}
	return discard()
}

// ---- Tombstone GC ----

// trackTombstone registers a freshly written tombstone and the replicas
// that have not yet acknowledged it. With no laggards the tombstone is
// immediately eligible for collection.
func (r *repairer) trackTombstone(table, key string, ts uint64, pending map[int]bool, replicas []int) {
	if len(pending) == 0 {
		r.scheduleGC(table, key, ts, replicas)
		return
	}
	r.tmu.Lock()
	r.tombs[taskKey(table, key)] = &tombWait{ts: ts, pending: pending}
	r.tmu.Unlock()
}

// tombAck records that one replica now holds (or provably does not need)
// the tombstone; the last acknowledgment schedules physical collection.
func (r *repairer) tombAck(table, key string, ts uint64, nid int) {
	k := taskKey(table, key)
	r.tmu.Lock()
	w := r.tombs[k]
	if w == nil || w.ts != ts {
		r.tmu.Unlock()
		return
	}
	delete(w.pending, nid)
	done := len(w.pending) == 0
	if done {
		delete(r.tombs, k)
	}
	r.tmu.Unlock()
	if done {
		r.scheduleGC(table, key, ts, r.s.ring.replicas(key, r.s.cfg.ReplicationFactor))
	}
}

func (r *repairer) scheduleGC(table, key string, ts uint64, replicas []int) {
	targets := make([]int, len(replicas))
	copy(targets, replicas)
	r.enqueue(repairTask{table: table, key: key, ts: ts, tomb: true, gc: true, targets: targets})
}

// observeExpiredTombstone is the TTL fallback for tombstones whose
// acknowledgment tracking died with a previous client. It only ever fires
// when the caller observed EVERY replica of the key reachable and agreeing
// on the tombstone — collecting any earlier could re-expose data still
// held by a stale or unreachable replica.
func (r *repairer) observeExpiredTombstone(table, key string, ts uint64, replicas []int) {
	ttl := r.opts.TombstoneTTL
	if ttl <= 0 || time.Since(time.Unix(0, int64(ts))) < ttl {
		return
	}
	r.scheduleGC(table, key, ts, replicas)
}
