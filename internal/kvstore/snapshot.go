package kvstore

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"

	"rstore/internal/codec"
	"rstore/internal/types"
)

// Snapshot support: the cluster's full contents can be serialized to a
// stream and restored into a fresh cluster (of any size — keys re-hash onto
// the new ring). This gives single-process tools durable state and gives
// tests a migration/recovery path.

const snapshotMagic = "rstorekv1"

// Dump writes every table's contents to w. Iteration is deterministic
// (sorted tables and keys) so snapshots of equal state are byte-identical.
func (s *Store) Dump(ctx context.Context, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}

	// Collect table names across nodes.
	tableSet := make(map[string]struct{})
	for _, n := range s.nodes {
		ts, err := n.tables(ctx)
		if err != nil {
			if isUnavailable(err) {
				continue
			}
			return err
		}
		for _, t := range ts {
			if t == clusterTable || t == hintsTable {
				// Per-daemon identity records and parked hints are
				// node-local bookkeeping, not data.
				continue
			}
			tableSet[t] = struct{}{}
		}
	}
	tables := make([]string, 0, len(tableSet))
	for t := range tableSet {
		tables = append(tables, t)
	}
	sort.Strings(tables)

	var buf []byte
	buf = codec.PutUvarint(buf, uint64(len(tables)))
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, table := range tables {
		type kvPair struct {
			k string
			v []byte
		}
		var pairs []kvPair
		if err := s.Scan(ctx, table, func(k string, v []byte) bool {
			pairs = append(pairs, kvPair{k, v})
			return true
		}); err != nil {
			return err
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })

		buf = buf[:0]
		buf = codec.PutString(buf, table)
		buf = codec.PutUvarint(buf, uint64(len(pairs)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		for _, p := range pairs {
			buf = buf[:0]
			buf = codec.PutString(buf, p.k)
			buf = codec.PutBytes(buf, p.v)
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Restore loads a snapshot produced by Dump into this (empty) cluster.
func (s *Store) Restore(ctx context.Context, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("%w: not a kvstore snapshot", types.ErrCorrupt)
	}
	rest := data[len(snapshotMagic):]
	nTables, rest, err := codec.Uvarint(rest)
	if err != nil {
		return err
	}
	for t := uint64(0); t < nTables; t++ {
		var table string
		table, rest, err = codec.String(rest)
		if err != nil {
			return err
		}
		var nKeys uint64
		nKeys, rest, err = codec.Uvarint(rest)
		if err != nil {
			return err
		}
		for i := uint64(0); i < nKeys; i++ {
			var k string
			k, rest, err = codec.String(rest)
			if err != nil {
				return err
			}
			var v []byte
			v, rest, err = codec.Bytes(rest)
			if err != nil {
				return err
			}
			if err := s.Put(ctx, table, k, v); err != nil {
				return err
			}
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing snapshot bytes", types.ErrCorrupt, len(rest))
	}
	return nil
}
