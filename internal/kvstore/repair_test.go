package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/memory"
	"rstore/internal/types"
)

// openRepair builds a cluster over captured in-memory backends so tests
// can observe each replica's on-disk (well, in-map) state directly — the
// whole point of repair is that the BACKEND converges, not just the
// merged read view.
func openRepair(t testing.TB, nodes, rf int, opts RepairOptions) (*Store, []*memory.Backend) {
	t.Helper()
	backends := make([]*memory.Backend, nodes)
	s, err := Open(context.Background(), Config{
		Nodes:             nodes,
		ReplicationFactor: rf,
		Repair:            opts,
		NewBackend: func(id int) (engine.Backend, error) {
			backends[id] = memory.New()
			return backends[id], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, backends
}

// fastRepair is the test tuning: tight drain cadence, no long backoff.
func fastRepair() RepairOptions {
	return RepairOptions{HintInterval: 2 * time.Millisecond, HintMaxBackoff: 10 * time.Millisecond}
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func rawGet(t testing.TB, be *memory.Backend, table, key string) ([]byte, bool) {
	t.Helper()
	v, ok, err := be.Get(context.Background(), table, key)
	if err != nil {
		t.Fatal(err)
	}
	return v, ok
}

// rawEqual reports whether two replicas hold byte-identical state for a key.
func rawEqual(t testing.TB, a, b *memory.Backend, table, key string) bool {
	t.Helper()
	va, oka := rawGet(t, a, table, key)
	vb, okb := rawGet(t, b, table, key)
	return oka == okb && bytes.Equal(va, vb)
}

// TestReadRepairOverwritesStaleReplica: a replica that was down during an
// overwrite must be rewritten on disk by the first read that observes it
// stale — not just outvoted forever.
func TestReadRepairOverwritesStaleReplica(t *testing.T) {
	opts := fastRepair()
	opts.DisableHints = true // isolate the read-repair path
	s, backends := openRepair(t, 3, 3, opts)
	ctx := context.Background()

	if err := s.Put(ctx, "t", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNodeUp(1, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "t", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNodeUp(1, true); err != nil {
		t.Fatal(err)
	}
	// Node 1 is stale but present on disk.
	if raw, ok := rawGet(t, backends[1], "t", "k"); !ok || bytes.Equal(raw, mustRaw(t, backends[0], "t", "k")) {
		t.Fatalf("precondition: node 1 should hold the stale version (present=%v)", ok)
	}

	if got, err := s.Get(ctx, "t", "k"); err != nil || string(got) != "v2" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	waitFor(t, "stale replica rewritten on disk", func() bool {
		return rawEqual(t, backends[0], backends[1], "t", "k")
	})
	if st := s.Stats(ctx); st.RepairWrites < 1 {
		t.Fatalf("RepairWrites = %d, want >= 1", st.RepairWrites)
	}
}

func mustRaw(t testing.TB, be *memory.Backend, table, key string) []byte {
	t.Helper()
	v, ok := rawGet(t, be, table, key)
	if !ok {
		t.Fatalf("%s/%s missing", table, key)
	}
	return v
}

// TestReadRepairFillsMissingKey: a replica that missed the original write
// entirely converges through read repair too.
func TestReadRepairFillsMissingKey(t *testing.T) {
	opts := fastRepair()
	opts.DisableHints = true
	s, backends := openRepair(t, 3, 3, opts)
	ctx := context.Background()

	if err := s.SetNodeUp(2, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "t", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNodeUp(2, true); err != nil {
		t.Fatal(err)
	}
	if _, ok := rawGet(t, backends[2], "t", "k"); ok {
		t.Fatal("precondition: node 2 should miss the key")
	}
	if got, err := s.Get(ctx, "t", "k"); err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	waitFor(t, "missing replica filled", func() bool {
		return rawEqual(t, backends[0], backends[2], "t", "k")
	})
}

// TestScanQueuesReadRepair: a replicated Scan doubles as a whole-table
// divergence sweep.
func TestScanQueuesReadRepair(t *testing.T) {
	opts := fastRepair()
	opts.DisableHints = true
	s, backends := openRepair(t, 3, 2, opts)
	ctx := context.Background()

	for i := 0; i < 20; i++ {
		if err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetNodeUp(0, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(ctx, "t", fmt.Sprintf("k%02d", i), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetNodeUp(0, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Scan(ctx, "t", func(string, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// Every key node 0 replicates must converge to the overwrite on disk.
	waitFor(t, "scan-detected stale replicas rewritten", func() bool {
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("k%02d", i)
			for _, n := range s.ring.replicas(k, 2) {
				if n == 0 {
					if raw, ok := rawGet(t, backends[0], "t", k); !ok || !bytes.Equal(raw, mustRaw(t, backends[other(s, k, 0)], "t", k)) {
						return false
					}
				}
			}
		}
		return true
	})
}

// other returns a replica of key that is not node exclude.
func other(s *Store, key string, exclude int) int {
	for _, n := range s.ring.replicas(key, s.cfg.ReplicationFactor) {
		if n != exclude {
			return n
		}
	}
	return -1
}

// TestHintedHandoffDrainsWithoutReads: a write missed by a down replica is
// parked durably and replayed when the node returns — the replica
// converges on disk with NO client read of the key.
func TestHintedHandoffDrainsWithoutReads(t *testing.T) {
	opts := fastRepair()
	opts.DisableReadRepair = true // isolate the hint path
	s, backends := openRepair(t, 3, 2, opts)
	ctx := context.Background()

	key := "handoff-key"
	replicas := s.ring.replicas(key, 2)
	a, b := replicas[0], replicas[1]

	if err := s.SetNodeUp(b, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "t", key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(ctx); st.HintsQueued != 1 || st.HintsPending != 1 {
		t.Fatalf("after missed write: queued=%d pending=%d, want 1/1", st.HintsQueued, st.HintsPending)
	}
	if _, ok := rawGet(t, backends[b], "t", key); ok {
		t.Fatal("down replica has the key?")
	}
	if err := s.SetNodeUp(b, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hint drained to restarted replica", func() bool {
		return rawEqual(t, backends[a], backends[b], "t", key)
	})
	waitFor(t, "hint bookkeeping settled", func() bool {
		st := s.Stats(ctx)
		return st.HintsPending == 0 && st.HintsReplayed == 1
	})
	// The parked record itself is cleaned up.
	waitFor(t, "parked hint removed", func() bool {
		n := 0
		for _, be := range backends {
			be.Scan(ctx, hintsTable, func(string, []byte) bool { n++; return true })
		}
		return n == 0
	})
}

// TestHintBatchPutAndRecovery: hints parked by BatchPut survive a client
// restart (they live in the !hints table through the engine seam) and are
// drained by the next client.
func TestHintBatchPutAndRecovery(t *testing.T) {
	shared := make([]*memory.Backend, 3)
	for i := range shared {
		shared[i] = memory.New()
	}
	newBackend := func(id int) (engine.Backend, error) { return keepOpen{shared[id]}, nil }

	slow := fastRepair()
	slow.HintInterval = time.Hour // park only; the next client drains
	s1, err := Open(context.Background(), Config{Nodes: 3, ReplicationFactor: 2, Repair: slow, NewBackend: newBackend})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s1.SetNodeUp(1, false); err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for i := 0; i < 30; i++ {
		entries = append(entries, Entry{Key: fmt.Sprintf("k%02d", i), Value: []byte("v1")})
	}
	if err := s1.BatchPut(ctx, "t", entries); err != nil {
		t.Fatal(err)
	}
	missed := s1.Stats(ctx).HintsQueued
	if missed == 0 {
		t.Fatal("no hints parked — expected node 1 to replicate some keys")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh client recovers the durable hints and delivers them.
	s2, err := Open(context.Background(), Config{Nodes: 3, ReplicationFactor: 2, Repair: fastRepair(), NewBackend: newBackend})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(ctx).HintsPending; got != missed {
		t.Fatalf("recovered %d hints, want %d", got, missed)
	}
	waitFor(t, "recovered hints drained", func() bool {
		return s2.Stats(ctx).HintsPending == 0
	})
	for _, e := range entries {
		for _, n := range s2.ring.replicas(e.Key, 2) {
			if _, ok := rawGet(t, shared[n], "t", e.Key); !ok {
				t.Fatalf("replica %d still missing %s after hint recovery", n, e.Key)
			}
		}
	}
}

// keepOpen lets one in-memory backend outlive a Store.Close, simulating a
// durable backend reopened by the next cluster client.
type keepOpen struct{ engine.Backend }

func (keepOpen) Close() error { return nil }

// TestTombstoneGCAllAcked: a delete acknowledged by every replica leaves
// no tombstone behind.
func TestTombstoneGCAllAcked(t *testing.T) {
	s, backends := openRepair(t, 3, 2, fastRepair())
	ctx := context.Background()

	if err := s.Put(ctx, "t", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "t", "k"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fully-acked tombstone physically removed", func() bool {
		for _, be := range backends {
			if _, ok := rawGet(t, be, "t", "k"); ok {
				return false
			}
		}
		return true
	})
	if st := s.Stats(ctx); st.TombstonesGCed != 1 {
		t.Fatalf("TombstonesGCed = %d, want 1", st.TombstonesGCed)
	}
	if _, err := s.Get(ctx, "t", "k"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("after GC: %v", err)
	}
}

// TestTombstoneGCAfterHintAck: a replica that missed the delete receives
// the tombstone by hint replay; its acknowledgment completes the set and
// the tombstone is collected everywhere.
func TestTombstoneGCAfterHintAck(t *testing.T) {
	opts := fastRepair()
	opts.DisableReadRepair = true
	s, backends := openRepair(t, 3, 2, opts)
	ctx := context.Background()

	key := "del-key"
	b := s.ring.replicas(key, 2)[1]
	if err := s.Put(ctx, "t", key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetNodeUp(b, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "t", key); err != nil {
		t.Fatal(err)
	}
	// The lagging replica still holds the live value on disk.
	if raw, ok := rawGet(t, backends[b], "t", key); !ok || raw[0] != envValue {
		t.Fatal("precondition: lagging replica should hold the old value")
	}
	if err := s.SetNodeUp(b, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tombstone delivered, acked, and collected", func() bool {
		for _, be := range backends {
			if _, ok := rawGet(t, be, "t", key); ok {
				return false
			}
		}
		return true
	})
	st := s.Stats(ctx)
	if st.HintsReplayed != 1 || st.TombstonesGCed != 1 {
		t.Fatalf("replayed=%d gced=%d, want 1/1", st.HintsReplayed, st.TombstonesGCed)
	}
	if _, err := s.Get(ctx, "t", key); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("after GC: %v", err)
	}
}

// TestTombstoneTTLRequiresAgreement pins the TTL-collection safety gate: an
// expired tombstone is NOT collected while any replica still holds older
// state (collecting it would resurrect the value), and IS collected once a
// read observes every replica agreeing on it. The tracker knows nothing of
// this tombstone (it was written by a "previous client" — directly into
// the backends), so only the TTL path can collect it.
func TestTombstoneTTLRequiresAgreement(t *testing.T) {
	opts := fastRepair()
	opts.TombstoneTTL = time.Nanosecond // everything is expired
	s, backends := openRepair(t, 2, 2, opts)
	ctx := context.Background()

	key := "ttl-key"
	replicas := s.ring.replicas(key, 2)
	a, b := replicas[0], replicas[1]
	// Replica a: tombstone at ts=200. Replica b: stale live value at ts=100.
	if err := backends[a].Put(ctx, "t", key, envelope(envTombstone, 200, nil)); err != nil {
		t.Fatal(err)
	}
	if err := backends[b].Put(ctx, "t", key, envelope(envValue, 100, []byte("stale"))); err != nil {
		t.Fatal(err)
	}

	// First read: tombstone wins, read repair starts converging b, but the
	// replicas did not agree — the tombstone must survive.
	if _, err := s.Get(ctx, "t", key); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("Get = %v, want not found", err)
	}
	waitFor(t, "stale replica overwritten by the tombstone", func() bool {
		raw, ok := rawGet(t, backends[b], "t", key)
		return ok && raw[0] == envTombstone
	})
	if _, ok := rawGet(t, backends[a], "t", key); !ok {
		t.Fatal("tombstone collected while a replica was stale — resurrection hazard")
	}

	// Now reads observe full agreement; TTL collection may proceed.
	waitFor(t, "expired tombstone collected after agreement", func() bool {
		if _, err := s.Get(ctx, "t", key); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("Get = %v", err)
		}
		_, oka := rawGet(t, backends[a], "t", key)
		_, okb := rawGet(t, backends[b], "t", key)
		return !oka && !okb
	})
}

// TestLWWTieBreakDeterministic pins the equal-timestamp resolution order:
// tombstone beats value, then lowest node id — regardless of replica
// iteration order. (Equal timestamps arise from distinct cluster clients
// with colliding wall clocks.)
func TestLWWTieBreakDeterministic(t *testing.T) {
	opts := RepairOptions{DisableReadRepair: true, DisableHints: true}
	s, backends := openRepair(t, 2, 2, opts)
	ctx := context.Background()

	// Tombstone vs value at the same timestamp: the tombstone must win on
	// Get and on Scan, whichever node serves it.
	for flip := 0; flip < 2; flip++ {
		key := fmt.Sprintf("tie-tomb-%d", flip)
		backends[flip].Put(ctx, "t", key, envelope(envTombstone, 500, nil))
		backends[1-flip].Put(ctx, "t", key, envelope(envValue, 500, []byte("alive")))
		if _, err := s.Get(ctx, "t", key); !errors.Is(err, types.ErrNotFound) {
			t.Fatalf("tombstone lost the tie (flip=%d): %v", flip, err)
		}
		if err := s.Scan(ctx, "t", func(k string, _ []byte) bool {
			if k == key {
				t.Fatalf("Scan surfaced a key whose tie-winning version is a tombstone (flip=%d)", flip)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Value vs value at the same timestamp: the lowest node id wins.
	backends[0].Put(ctx, "t", "tie-val", envelope(envValue, 600, []byte("from-node-0")))
	backends[1].Put(ctx, "t", "tie-val", envelope(envValue, 600, []byte("from-node-1")))
	if got, err := s.Get(ctx, "t", "tie-val"); err != nil || string(got) != "from-node-0" {
		t.Fatalf("Get tie = %q, %v; want from-node-0", got, err)
	}
	found := false
	if err := s.Scan(ctx, "t", func(k string, v []byte) bool {
		if k == "tie-val" {
			found = true
			if string(v) != "from-node-0" {
				t.Fatalf("Scan tie = %q, want from-node-0", v)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("tie-val not scanned")
	}
}

// TestHintsExcludedFromDump: parked hints are node-local bookkeeping and
// must not leak into snapshots.
func TestHintsExcludedFromDump(t *testing.T) {
	opts := fastRepair()
	opts.HintInterval = time.Hour // keep the hint parked during the test
	s, _ := openRepair(t, 3, 2, opts)
	ctx := context.Background()

	key := "dump-key"
	if err := s.SetNodeUp(s.ring.replicas(key, 2)[1], false); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, "t", key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if s.Stats(ctx).HintsPending == 0 {
		t.Fatal("no hint parked")
	}
	var buf bytes.Buffer
	if err := s.Dump(ctx, &buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(hintsTable)) {
		t.Fatal("snapshot contains the hints table")
	}
}

// TestScanValueIsolation pins the ownership contract of Store.Scan: the
// values handed to fn are copies — mutating or retaining them cannot
// corrupt backend state, on either the replicated or the unreplicated
// path (the memory engine's backend-level Scan DOES alias its storage).
func TestScanValueIsolation(t *testing.T) {
	for _, rf := range []int{1, 2} {
		s, _ := openRepair(t, 2, rf, RepairOptions{DisableReadRepair: true, DisableHints: true})
		ctx := context.Background()
		if err := s.Put(ctx, "t", "k", []byte("pristine")); err != nil {
			t.Fatal(err)
		}
		var retained []byte
		if err := s.Scan(ctx, "t", func(_ string, v []byte) bool {
			retained = v
			for i := range v {
				v[i] = 'X' // hostile consumer scribbles on the value
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if got, err := s.Get(ctx, "t", "k"); err != nil || string(got) != "pristine" {
			t.Fatalf("rf=%d: backend corrupted through scan value: %q %v", rf, got, err)
		}
		_ = retained
	}
}
