package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/engine"
	"rstore/internal/engine/disklog"
	"rstore/internal/engine/memory"
	"rstore/internal/types"
)

// Engine names accepted by Config.Engine.
const (
	// EngineMemory is the default in-process map backend; nothing persists.
	EngineMemory = "memory"
	// EngineDisklog is the log-structured disk backend; each node's
	// segments live under Config.Dir/node-N and survive restarts.
	EngineDisklog = "disklog"
)

// Config configures a cluster.
type Config struct {
	// Nodes is the cluster size. Defaults to 1.
	Nodes int
	// ReplicationFactor is the number of replicas per key. Defaults to 1,
	// capped at Nodes.
	ReplicationFactor int
	// ReadBalance spreads multi-get reads across live replicas (token-aware
	// round-robin, like Cassandra drivers) instead of always reading the
	// primary. With ReplicationFactor > 1 this shortens the per-node serial
	// queue that bounds batch retrieval — the replication effect the
	// paper's conclusion flags for future study.
	ReadBalance bool
	// Cost is the latency model; zero value disables simulated timing.
	Cost CostModel
	// Engine selects the per-node storage backend: EngineMemory (the
	// default) or EngineDisklog.
	Engine string
	// Dir is the data directory for disk-backed engines; node i stores its
	// data under Dir/node-i. Required when Engine is EngineDisklog.
	Dir string
	// NewBackend, when set, overrides Engine/Dir with a custom backend
	// factory (tests, out-of-tree engines).
	NewBackend func(nodeID int) (engine.Backend, error)
}

// backendFactory resolves the per-node backend constructor.
func (cfg Config) backendFactory() (func(int) (engine.Backend, error), error) {
	if cfg.NewBackend != nil {
		return cfg.NewBackend, nil
	}
	switch cfg.Engine {
	case "", EngineMemory:
		return func(int) (engine.Backend, error) { return memory.New(), nil }, nil
	case EngineDisklog:
		if cfg.Dir == "" {
			return nil, fmt.Errorf("kvstore: engine %q needs Config.Dir", cfg.Engine)
		}
		return func(id int) (engine.Backend, error) {
			return disklog.Open(filepath.Join(cfg.Dir, fmt.Sprintf("node-%d", id)), disklog.Options{})
		}, nil
	default:
		return nil, fmt.Errorf("kvstore: unknown engine %q (want %q or %q)", cfg.Engine, EngineMemory, EngineDisklog)
	}
}

// Entry is one key/value pair of a batched write.
type Entry = engine.Entry

// geometryFile records the cluster shape a disk-backed data directory was
// created with. Keys hash onto nodes by the ring, so reopening a directory
// with a different node count would look up keys on the wrong nodes and
// silently present a partial (or empty) store; refuse instead. The
// replication factor is not pinned: the primary replica stays first under
// any rf, so reads keep finding their data.
const geometryFile = "GEOMETRY"

func checkGeometry(dir string, nodes int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	path := filepath.Join(dir, geometryFile)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return writeGeometry(dir, path, nodes)
	}
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	var got int
	if _, err := fmt.Sscanf(string(b), "nodes=%d", &got); err != nil {
		return fmt.Errorf("kvstore: corrupt geometry file %s: %q", path, b)
	}
	if got != nodes {
		return fmt.Errorf("kvstore: data directory %s was created with %d nodes, reopened with %d", dir, got, nodes)
	}
	return nil
}

// writeGeometry durably records the node count (file and directory entry
// both fsynced — the pin is worthless if a power failure can drop it).
func writeGeometry(dir, path string, nodes int) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	if _, err := fmt.Fprintf(f, "nodes=%d\n", nodes); err != nil {
		f.Close()
		return fmt.Errorf("kvstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("kvstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	return nil
}

// Store is an in-process distributed key-value store: the substrate RStore
// persists chunks, chunk maps, indexes, and delta batches into. It exposes
// only the basic get/put/delete interface the paper assumes, plus a parallel
// MultiGet (issuing point gets concurrently, exactly what RStore's query
// module does), a replica-batched BatchPut (the unit the engine's flush path
// commits in), and an administrative Scan used for index rebuilds. Each node
// delegates its data to an engine.Backend selected by Config.Engine.
type Store struct {
	cfg   Config
	ring  *ring
	nodes []*node

	// Virtual clock and counters (atomics; Store is safe for concurrent
	// use).
	simClock  atomic.Int64 // accumulated simulated time, ns
	reqCount  atomic.Int64
	bytesRead atomic.Int64
	bytesPut  atomic.Int64
}

// Open creates a cluster, opening one backend per node.
func Open(cfg Config) (*Store, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	factory, err := cfg.backendFactory()
	if err != nil {
		return nil, err
	}
	if cfg.NewBackend == nil && cfg.Engine == EngineDisklog {
		if err := checkGeometry(cfg.Dir, cfg.Nodes); err != nil {
			return nil, err
		}
	}
	s := &Store{cfg: cfg, ring: newRing(cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		be, err := factory(i)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("kvstore: open node %d: %w", i, err)
		}
		s.nodes = append(s.nodes, newNode(i, be))
	}
	return s, nil
}

// Close closes every node's backend, flushing disk-backed engines.
func (s *Store) Close() error {
	var first error
	for _, n := range s.nodes {
		if err := n.be.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nodes returns the cluster size.
func (s *Store) Nodes() int { return s.cfg.Nodes }

// Cost returns the configured cost model.
func (s *Store) Cost() CostModel { return s.cfg.Cost }

// Put stores value under (table, key) on all replicas.
func (s *Store) Put(table, key string, value []byte) error {
	replicas := s.ring.replicas(key, s.cfg.ReplicationFactor)
	ok := false
	for _, n := range replicas {
		switch err := s.nodes[n].put(table, key, value); {
		case err == nil:
			ok = true
		case errors.Is(err, errNodeDown):
			// Routed around; the key survives on other replicas.
		default:
			return fmt.Errorf("kvstore: put %s/%s: %w", table, key, err)
		}
	}
	if !ok {
		return fmt.Errorf("kvstore: put %s/%s: all replicas down", table, key)
	}
	s.bytesPut.Add(int64(len(value)))
	s.simClock.Add(int64(s.cfg.Cost.requestCost(len(value))))
	s.reqCount.Add(1)
	return nil
}

// BatchPut stores many values in one table, grouping the writes per replica
// node and committing each group through the node's backend in a single
// call — one durability sync per node per batch instead of one per key.
// Like Put, it fails only if some entry has no live replica or a backend
// errors; simulated timing follows the MultiGet batch model (per-node serial
// service, parallel client lanes).
func (s *Store) BatchPut(table string, entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	perNode := make(map[int][]int)
	primaries := make([]int, len(entries))
	for i, e := range entries {
		replicas := s.ring.replicas(e.Key, s.cfg.ReplicationFactor)
		primaries[i] = replicas[0]
		for _, n := range replicas {
			perNode[n] = append(perNode[n], i)
		}
	}
	committed := make([]bool, len(entries))
	for nid, idxs := range perNode {
		group := make([]engine.Entry, len(idxs))
		for j, i := range idxs {
			group[j] = entries[i]
		}
		switch err := s.nodes[nid].batchPut(table, group); {
		case err == nil:
			for _, i := range idxs {
				committed[i] = true
			}
		case errors.Is(err, errNodeDown):
			// Routed around; entries survive on other replicas.
		default:
			return fmt.Errorf("kvstore: batchput %s: node %d: %w", table, nid, err)
		}
	}
	var bytes int64
	for i, e := range entries {
		if !committed[i] {
			return fmt.Errorf("kvstore: batchput %s/%s: all replicas down", table, e.Key)
		}
		bytes += int64(len(e.Value))
	}

	// Simulated timing: per-primary serial service, client-side lanes
	// (replica fan-out is free, matching Put's accounting).
	perPrimary := make(map[int][]int)
	for i, e := range entries {
		perPrimary[primaries[i]] = append(perPrimary[primaries[i]], len(e.Value))
	}
	s.bytesPut.Add(bytes)
	s.reqCount.Add(int64(len(entries)))
	s.simClock.Add(int64(s.cfg.Cost.batchElapsed(perPrimary)))
	return nil
}

// Get retrieves the value under (table, key), trying replicas in preference
// order. It returns types.ErrNotFound if no live replica has the key.
func (s *Store) Get(table, key string) ([]byte, error) {
	replicas := s.ring.replicas(key, s.cfg.ReplicationFactor)
	anyUp := false
	for _, n := range replicas {
		v, ok, err := s.nodes[n].get(table, key)
		if errors.Is(err, errNodeDown) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("kvstore: get %s/%s: %w", table, key, err)
		}
		anyUp = true
		if ok {
			s.account(1, len(v))
			return v, nil
		}
		break // live primary authoritative: missing means missing
	}
	if !anyUp {
		return nil, fmt.Errorf("kvstore: get %s/%s: all replicas down", table, key)
	}
	s.account(1, 0)
	return nil, fmt.Errorf("%w: %s/%s", types.ErrNotFound, table, key)
}

// Delete removes (table, key) from all replicas. Deleting a missing key is
// not an error, but — matching Put — deleting while every replica is down
// is: the tombstone took hold nowhere.
func (s *Store) Delete(table, key string) error {
	ok := false
	for _, n := range s.ring.replicas(key, s.cfg.ReplicationFactor) {
		switch err := s.nodes[n].delete(table, key); {
		case err == nil:
			ok = true
		case errors.Is(err, errNodeDown):
		default:
			return fmt.Errorf("kvstore: delete %s/%s: %w", table, key, err)
		}
	}
	if !ok {
		return fmt.Errorf("kvstore: delete %s/%s: all replicas down", table, key)
	}
	s.account(1, 0)
	return nil
}

// MultiGetResult reports the outcome of a parallel multi-key fetch.
type MultiGetResult struct {
	// Values holds one entry per requested key, in request order; missing
	// keys yield nil entries.
	Values [][]byte
	// Missing lists the indexes of keys that were not found.
	Missing []int
	// Requests is the number of point requests issued.
	Requests int
	// BytesRead is the total response volume.
	BytesRead int64
	// Elapsed is the simulated wall time of the batch under the cost model
	// (parallel lanes, per-node serialization).
	Elapsed time.Duration
}

// MultiGet fetches many keys from one table, issuing the point reads
// concurrently grouped by owning node — the access pattern of RStore's
// query processing module. Missing keys are reported, not errors, because
// the projections RStore consults are lossy (§2.4).
func (s *Store) MultiGet(table string, keys []string) (*MultiGetResult, error) {
	res := &MultiGetResult{Values: make([][]byte, len(keys))}
	if len(keys) == 0 {
		return res, nil
	}

	// Group request indexes by serving replica: the primary by default, or
	// the least-loaded live replica when read balancing is on.
	byNode := make(map[int][]int)
	for i, k := range keys {
		n := -1
		if s.cfg.ReadBalance {
			best := -1
			for _, r := range s.ring.replicas(k, s.cfg.ReplicationFactor) {
				if !s.nodes[r].isUp() {
					continue
				}
				if best == -1 || len(byNode[r]) < len(byNode[best]) {
					best = r
				}
			}
			n = best
		} else {
			n = s.pickReplica(k)
		}
		if n < 0 {
			return nil, fmt.Errorf("kvstore: multiget %s: all replicas down for %q", table, k)
		}
		byNode[n] = append(byNode[n], i)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards res.Missing and firstErr
	var firstErr error
	for nid, idxs := range byNode {
		wg.Add(1)
		go func(nid int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				v, ok, err := s.nodes[nid].get(table, keys[i])
				if err != nil && !errors.Is(err, errNodeDown) {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("kvstore: multiget %s/%s: %w", table, keys[i], err)
					}
					mu.Unlock()
					return
				}
				if ok {
					res.Values[i] = v
				} else {
					// Missing, or the node died mid-batch.
					mu.Lock()
					res.Missing = append(res.Missing, i)
					mu.Unlock()
				}
			}
		}(nid, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Ints(res.Missing)

	// Simulated timing: per-node serial service, client-side lanes.
	perNode := make(map[int][]int, len(byNode))
	for nid, idxs := range byNode {
		sizes := make([]int, len(idxs))
		for j, i := range idxs {
			sizes[j] = len(res.Values[i])
		}
		perNode[nid] = sizes
	}
	res.Requests = len(keys)
	for _, v := range res.Values {
		res.BytesRead += int64(len(v))
	}
	res.Elapsed = s.cfg.Cost.batchElapsed(perNode)
	s.reqCount.Add(int64(res.Requests))
	s.bytesRead.Add(res.BytesRead)
	s.simClock.Add(int64(res.Elapsed))
	return res, nil
}

// pickReplica returns the first live replica for key, or -1.
func (s *Store) pickReplica(key string) int {
	for _, n := range s.ring.replicas(key, s.cfg.ReplicationFactor) {
		if s.nodes[n].isUp() {
			return n
		}
	}
	return -1
}

// Scan visits every key/value in a table across all live nodes, restricted
// to each node's primarily-owned keys so replicated entries are visited
// once. Values are copied before fn sees them. Backend failures surface as
// the returned error; down nodes are skipped.
func (s *Store) Scan(table string, fn func(key string, value []byte) bool) error {
	stop := false
	for _, n := range s.nodes {
		if stop {
			return nil
		}
		err := n.scan(table, func(k string, v []byte) bool {
			if s.ring.primary(k) != n.id {
				return true // visited via its primary owner
			}
			cp := make([]byte, len(v))
			copy(cp, v)
			if !fn(k, cp) {
				stop = true
				return false
			}
			return true
		})
		if err != nil && !errors.Is(err, errNodeDown) {
			return fmt.Errorf("kvstore: scan %s: %w", table, err)
		}
	}
	return nil
}

// account books a sequential operation.
func (s *Store) account(reqs, bytes int) {
	s.reqCount.Add(int64(reqs))
	s.bytesRead.Add(int64(bytes))
	s.simClock.Add(int64(s.cfg.Cost.requestCost(bytes)))
}

// ChargeScan adds client-side scan cost for n bytes to the virtual clock and
// returns the charged duration. The query module calls it when extracting
// records from retrieved chunks.
func (s *Store) ChargeScan(n int) time.Duration {
	d := s.cfg.Cost.scanCost(n)
	s.simClock.Add(int64(d))
	return d
}

// Stats is a snapshot of cluster counters.
type Stats struct {
	Requests    int64
	BytesRead   int64
	BytesPut    int64
	SimElapsed  time.Duration
	BytesStored int64 // resident across nodes (including replicas)
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Requests:   s.reqCount.Load(),
		BytesRead:  s.bytesRead.Load(),
		BytesPut:   s.bytesPut.Load(),
		SimElapsed: time.Duration(s.simClock.Load()),
	}
	for _, n := range s.nodes {
		st.BytesStored += n.stored()
	}
	return st
}

// ResetClock zeroes the virtual clock and counters (between experiment
// phases).
func (s *Store) ResetClock() {
	s.simClock.Store(0)
	s.reqCount.Store(0)
	s.bytesRead.Store(0)
	s.bytesPut.Store(0)
}

// SetNodeUp marks a node up or down, for failure-injection tests.
func (s *Store) SetNodeUp(id int, up bool) error {
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("kvstore: no node %d", id)
	}
	s.nodes[id].setUp(up)
	return nil
}

// NodeBytes returns resident bytes per node, for balance checks.
func (s *Store) NodeBytes() []int64 {
	out := make([]int64, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = n.stored()
	}
	return out
}
