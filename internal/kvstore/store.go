package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rstore/internal/types"
)

// Config configures a cluster.
type Config struct {
	// Nodes is the cluster size. Defaults to 1.
	Nodes int
	// ReplicationFactor is the number of replicas per key. Defaults to 1,
	// capped at Nodes.
	ReplicationFactor int
	// ReadBalance spreads multi-get reads across live replicas (token-aware
	// round-robin, like Cassandra drivers) instead of always reading the
	// primary. With ReplicationFactor > 1 this shortens the per-node serial
	// queue that bounds batch retrieval — the replication effect the
	// paper's conclusion flags for future study.
	ReadBalance bool
	// Cost is the latency model; zero value disables simulated timing.
	Cost CostModel
}

// Store is an in-process distributed key-value store: the substrate RStore
// persists chunks, chunk maps, indexes, and delta batches into. It exposes
// only the basic get/put/delete interface the paper assumes, plus a parallel
// MultiGet (issuing point gets concurrently, exactly what RStore's query
// module does) and an administrative Scan used for index rebuilds.
type Store struct {
	cfg   Config
	ring  *ring
	nodes []*node

	// Virtual clock and counters (atomics; Store is safe for concurrent
	// use).
	simClock  atomic.Int64 // accumulated simulated time, ns
	reqCount  atomic.Int64
	bytesRead atomic.Int64
	bytesPut  atomic.Int64
}

// Open creates a cluster.
func Open(cfg Config) (*Store, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	s := &Store{cfg: cfg, ring: newRing(cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, newNode(i))
	}
	return s, nil
}

// Nodes returns the cluster size.
func (s *Store) Nodes() int { return s.cfg.Nodes }

// Cost returns the configured cost model.
func (s *Store) Cost() CostModel { return s.cfg.Cost }

// Put stores value under (table, key) on all replicas.
func (s *Store) Put(table, key string, value []byte) error {
	replicas := s.ring.replicas(key, s.cfg.ReplicationFactor)
	ok := false
	for _, n := range replicas {
		if s.nodes[n].put(table, key, value) {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("kvstore: put %s/%s: all replicas down", table, key)
	}
	s.bytesPut.Add(int64(len(value)))
	s.simClock.Add(int64(s.cfg.Cost.requestCost(len(value))))
	s.reqCount.Add(1)
	return nil
}

// Get retrieves the value under (table, key), trying replicas in preference
// order. It returns types.ErrNotFound if no live replica has the key.
func (s *Store) Get(table, key string) ([]byte, error) {
	replicas := s.ring.replicas(key, s.cfg.ReplicationFactor)
	anyUp := false
	for _, n := range replicas {
		if !s.nodes[n].isUp() {
			continue
		}
		anyUp = true
		if v, ok := s.nodes[n].get(table, key); ok {
			s.account(1, len(v))
			return v, nil
		}
		break // live primary authoritative: missing means missing
	}
	if !anyUp {
		return nil, fmt.Errorf("kvstore: get %s/%s: all replicas down", table, key)
	}
	s.account(1, 0)
	return nil, fmt.Errorf("%w: %s/%s", types.ErrNotFound, table, key)
}

// Delete removes (table, key) from all replicas. Deleting a missing key is
// not an error.
func (s *Store) Delete(table, key string) error {
	for _, n := range s.ring.replicas(key, s.cfg.ReplicationFactor) {
		s.nodes[n].delete(table, key)
	}
	s.account(1, 0)
	return nil
}

// MultiGetResult reports the outcome of a parallel multi-key fetch.
type MultiGetResult struct {
	// Values holds one entry per requested key, in request order; missing
	// keys yield nil entries.
	Values [][]byte
	// Missing lists the indexes of keys that were not found.
	Missing []int
	// Requests is the number of point requests issued.
	Requests int
	// BytesRead is the total response volume.
	BytesRead int64
	// Elapsed is the simulated wall time of the batch under the cost model
	// (parallel lanes, per-node serialization).
	Elapsed time.Duration
}

// MultiGet fetches many keys from one table, issuing the point reads
// concurrently grouped by owning node — the access pattern of RStore's
// query processing module. Missing keys are reported, not errors, because
// the projections RStore consults are lossy (§2.4).
func (s *Store) MultiGet(table string, keys []string) (*MultiGetResult, error) {
	res := &MultiGetResult{Values: make([][]byte, len(keys))}
	if len(keys) == 0 {
		return res, nil
	}

	// Group request indexes by serving replica: the primary by default, or
	// the least-loaded live replica when read balancing is on.
	byNode := make(map[int][]int)
	for i, k := range keys {
		n := -1
		if s.cfg.ReadBalance {
			best := -1
			for _, r := range s.ring.replicas(k, s.cfg.ReplicationFactor) {
				if !s.nodes[r].isUp() {
					continue
				}
				if best == -1 || len(byNode[r]) < len(byNode[best]) {
					best = r
				}
			}
			n = best
		} else {
			n = s.pickReplica(k)
		}
		if n < 0 {
			return nil, fmt.Errorf("kvstore: multiget %s: all replicas down for %q", table, k)
		}
		byNode[n] = append(byNode[n], i)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards res.Missing
	for nid, idxs := range byNode {
		wg.Add(1)
		go func(nid int, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				v, ok := s.nodes[nid].get(table, keys[i])
				if ok {
					res.Values[i] = v
				} else {
					mu.Lock()
					res.Missing = append(res.Missing, i)
					mu.Unlock()
				}
			}
		}(nid, idxs)
	}
	wg.Wait()
	sort.Ints(res.Missing)

	// Simulated timing: per-node serial service, client-side lanes.
	perNode := make(map[int][]int, len(byNode))
	for nid, idxs := range byNode {
		sizes := make([]int, len(idxs))
		for j, i := range idxs {
			sizes[j] = len(res.Values[i])
		}
		perNode[nid] = sizes
	}
	res.Requests = len(keys)
	for _, v := range res.Values {
		res.BytesRead += int64(len(v))
	}
	res.Elapsed = s.cfg.Cost.batchElapsed(perNode)
	s.reqCount.Add(int64(res.Requests))
	s.bytesRead.Add(res.BytesRead)
	s.simClock.Add(int64(res.Elapsed))
	return res, nil
}

// pickReplica returns the first live replica for key, or -1.
func (s *Store) pickReplica(key string) int {
	for _, n := range s.ring.replicas(key, s.cfg.ReplicationFactor) {
		if s.nodes[n].isUp() {
			return n
		}
	}
	return -1
}

// Scan visits every key/value in a table across all live nodes, restricted
// to each node's primarily-owned keys so replicated entries are visited
// once. Values are copied before fn sees them.
func (s *Store) Scan(table string, fn func(key string, value []byte) bool) {
	stop := false
	for _, n := range s.nodes {
		if stop {
			return
		}
		n.scan(table, func(k string, v []byte) bool {
			if s.ring.primary(k) != n.id {
				return true // visited via its primary owner
			}
			cp := make([]byte, len(v))
			copy(cp, v)
			if !fn(k, cp) {
				stop = true
				return false
			}
			return true
		})
	}
}

// account books a sequential operation.
func (s *Store) account(reqs, bytes int) {
	s.reqCount.Add(int64(reqs))
	s.bytesRead.Add(int64(bytes))
	s.simClock.Add(int64(s.cfg.Cost.requestCost(bytes)))
}

// ChargeScan adds client-side scan cost for n bytes to the virtual clock and
// returns the charged duration. The query module calls it when extracting
// records from retrieved chunks.
func (s *Store) ChargeScan(n int) time.Duration {
	d := s.cfg.Cost.scanCost(n)
	s.simClock.Add(int64(d))
	return d
}

// Stats is a snapshot of cluster counters.
type Stats struct {
	Requests    int64
	BytesRead   int64
	BytesPut    int64
	SimElapsed  time.Duration
	BytesStored int64 // resident across nodes (including replicas)
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Requests:   s.reqCount.Load(),
		BytesRead:  s.bytesRead.Load(),
		BytesPut:   s.bytesPut.Load(),
		SimElapsed: time.Duration(s.simClock.Load()),
	}
	for _, n := range s.nodes {
		st.BytesStored += n.stored()
	}
	return st
}

// ResetClock zeroes the virtual clock and counters (between experiment
// phases).
func (s *Store) ResetClock() {
	s.simClock.Store(0)
	s.reqCount.Store(0)
	s.bytesRead.Store(0)
	s.bytesPut.Store(0)
}

// SetNodeUp marks a node up or down, for failure-injection tests.
func (s *Store) SetNodeUp(id int, up bool) error {
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("kvstore: no node %d", id)
	}
	s.nodes[id].setUp(up)
	return nil
}

// NodeBytes returns resident bytes per node, for balance checks.
func (s *Store) NodeBytes() []int64 {
	out := make([]int64, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = n.stored()
	}
	return out
}
